#!/usr/bin/env python3
"""CI gate over BENCH_sweep.json: per-section schema validation.

The sweep bench is the repository's perf trajectory record *and* its
cross-engine correctness oracle: the intra_scale, delta, and timeline
sections each carry hard checksum comparisons (tiled vs untiled, delta-on
vs delta-off, merged vs scratch timelines) that must all hold — a
divergence is a correctness bug in an execution knob that claims to be
invisible, not benchmark noise. This script fails loudly, naming the
workload and scale that diverged, if any section is missing, any checksum
mismatches, or a section's shape degenerates (empty scale lists, zero
timings).

Usage:
    python3 ci/check_bench.py --file /tmp/bench_sweep.json
    python3 ci/check_bench.py --self-test
"""

import argparse
import json
import sys

WORKLOADS = ("dense_uniform", "sparse_ring", "sparse_burst")


class GateFailure(Exception):
    """A named, human-actionable gate violation."""


def require(condition, message):
    if not condition:
        raise GateFailure(message)


def section(bench, name):
    require(name in bench, f"section `{name}` is missing from the bench JSON")
    return bench[name]


def check_workloads(bench):
    """The per-workload pipeline sections: legacy vs current per scale."""
    for workload in WORKLOADS:
        rows = section(bench, workload).get("per_scale")
        require(rows, f"{workload}: per_scale is missing or empty")
        for row in rows:
            k = row.get("k")
            require(
                row.get("current_pipeline_seconds", 0) > 0,
                f"{workload} k={k}: current_pipeline_seconds must be > 0",
            )
            require(
                row.get("legacy_pipeline_seconds", 0) > 0,
                f"{workload} k={k}: legacy_pipeline_seconds must be > 0",
            )


def check_intra_scale(bench):
    """Target tiling + degree-1 fast path: checksums and shape."""
    intra = section(bench, "intra_scale")
    require(
        intra.get("checksums_match") is True,
        "intra_scale: tiled vs untiled checksum mismatch",
    )
    require(intra.get("tile_sensitivity"), "intra_scale: no tile sensitivity points")
    require(
        intra.get("single_scale_threads"), "intra_scale: no single-scale thread points"
    )
    degree1 = intra.get("degree1") or {}
    require(
        degree1.get("fast_path_seconds", 0) > 0,
        "intra_scale.degree1: fast_path_seconds must be > 0",
    )
    require(
        degree1.get("single_edge_steps", 0) > 0,
        "intra_scale.degree1: no single-edge steps measured",
    )


def check_delta(bench):
    """Delta propagation ablation: per-workload per-scale checksums."""
    delta = section(bench, "delta")
    require(
        delta.get("checksums_match") is True,
        "delta: delta-on vs delta-off checksum mismatch",
    )
    for workload in WORKLOADS:
        rows = delta.get(workload)
        require(rows, f"delta: section has no {workload} scales")
        for row in rows:
            k = row.get("k")
            require(
                row.get("checksum_match") is True,
                f"delta: {workload} k={k} checksum diverged",
            )
            require(
                row.get("delta_on_seconds", 0) > 0,
                f"delta: {workload} k={k} delta_on_seconds must be > 0",
            )


def check_timeline(bench):
    """Incremental (adjacent-window merge) timeline construction: the
    merged timeline must be field-for-field identical to the scratch build
    at every ladder step of every workload."""
    timeline = section(bench, "timeline")
    require(
        timeline.get("checksums_match") is True,
        "timeline: merged vs scratch checksum mismatch",
    )
    for workload in WORKLOADS:
        rows = timeline.get(workload)
        require(rows, f"timeline: section has no {workload} ladder")
        for row in rows:
            k, from_k = row.get("k"), row.get("from_k")
            where = f"timeline: {workload} {from_k} -> {k}"
            require(
                row.get("checksum_match") is True,
                f"{where}: merged timeline diverged from scratch build",
            )
            require(
                row.get("scratch_seconds", 0) > 0,
                f"{where}: scratch_seconds must be > 0",
            )
            require(
                row.get("incremental_seconds", 0) > 0,
                f"{where}: incremental_seconds must be > 0",
            )
            require(
                from_k and k and from_k % k == 0,
                f"{where}: ladder scales must be divisor-related",
            )


def check_streaming(bench):
    """Streaming ingest refresh: a session's warm incremental refresh must
    reproduce the scratch sweep byte-identically at every append round, and
    it must actually be faster — a session cache that loses to scratch (or
    never reuses a scale) is a regression in the whole streaming API's
    reason to exist."""
    streaming = section(bench, "streaming")
    require(
        streaming.get("reports_identical") is True,
        "streaming: refresh vs scratch report mismatch",
    )
    require(
        streaming.get("speedup", 0) > 1.0,
        "streaming: warm refresh must beat the scratch sweep (speedup <= 1)",
    )
    require(
        streaming.get("scales_reused", 0) >= 1,
        "streaming: no scales reused across refreshes",
    )
    require(
        streaming.get("suffix_windows_rebuilt", 0) >= 1,
        "streaming: no suffix windows respliced (appends never hit the splice path)",
    )
    rounds = streaming.get("per_round")
    require(rounds, "streaming: per_round is missing or empty")
    for row in rounds:
        where = f"streaming: round {row.get('round')}"
        require(
            row.get("reports_identical") is True,
            f"{where}: refresh report diverged from scratch",
        )
        require(
            row.get("refresh_seconds", 0) > 0,
            f"{where}: refresh_seconds must be > 0",
        )
        require(
            row.get("scratch_seconds", 0) > 0,
            f"{where}: scratch_seconds must be > 0",
        )


CHECKS = (check_workloads, check_intra_scale, check_delta, check_timeline, check_streaming)


def run_gate(bench):
    for check in CHECKS:
        check(bench)


def self_test():
    """The gate must reject every class of violation it exists to catch."""
    with open("BENCH_sweep.json", encoding="utf-8") as f:
        good = json.load(f)
    run_gate(good)  # the committed record must itself pass

    def failing(mutate, expect):
        bench = json.loads(json.dumps(good))
        mutate(bench)
        try:
            run_gate(bench)
        except GateFailure as e:
            assert expect in str(e), f"wrong message: {e!r} (wanted {expect!r})"
        else:
            raise AssertionError(f"gate accepted a bench violating: {expect}")

    failing(lambda b: b.pop("timeline"), "`timeline` is missing")
    failing(lambda b: b.pop("delta"), "`delta` is missing")
    failing(lambda b: b.pop("intra_scale"), "`intra_scale` is missing")
    failing(
        lambda b: b["timeline"].update(checksums_match=False),
        "merged vs scratch checksum mismatch",
    )
    failing(
        lambda b: b["timeline"]["sparse_ring"][0].update(checksum_match=False),
        "merged timeline diverged",
    )
    failing(
        lambda b: b["timeline"]["sparse_burst"][0].update(incremental_seconds=0),
        "incremental_seconds must be > 0",
    )
    failing(lambda b: b["timeline"].update(sparse_ring=[]), "no sparse_ring ladder")
    failing(
        lambda b: b["delta"]["sparse_ring"][0].update(checksum_match=False),
        "checksum diverged",
    )
    failing(
        lambda b: b["intra_scale"].update(checksums_match=False),
        "tiled vs untiled checksum mismatch",
    )
    failing(
        lambda b: b["sparse_burst"].update(per_scale=[]),
        "per_scale is missing or empty",
    )
    failing(lambda b: b.pop("streaming"), "`streaming` is missing")
    failing(
        lambda b: b["streaming"].update(reports_identical=False),
        "refresh vs scratch report mismatch",
    )
    failing(
        lambda b: b["streaming"].update(speedup=0.97),
        "warm refresh must beat the scratch sweep",
    )
    failing(
        lambda b: b["streaming"].update(scales_reused=0),
        "no scales reused",
    )
    failing(
        lambda b: b["streaming"].update(suffix_windows_rebuilt=0),
        "never hit the splice path",
    )
    failing(
        lambda b: b["streaming"]["per_round"][0].update(reports_identical=False),
        "refresh report diverged from scratch",
    )
    failing(
        lambda b: b["streaming"]["per_round"][1].update(refresh_seconds=0),
        "refresh_seconds must be > 0",
    )
    failing(lambda b: b["streaming"].update(per_round=[]), "per_round is missing or empty")
    print("check_bench self-test: all violation classes rejected")


def main():
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument(
        "--file",
        default="BENCH_sweep.json",
        help="bench JSON to validate (default: the committed BENCH_sweep.json)",
    )
    parser.add_argument(
        "--self-test",
        action="store_true",
        help="verify the gate rejects known-bad mutations of the committed record",
    )
    args = parser.parse_args()
    if args.self_test:
        self_test()
        return
    with open(args.file, encoding="utf-8") as f:
        bench = json.load(f)
    try:
        run_gate(bench)
    except GateFailure as e:
        print(f"check_bench: FAIL: {e}", file=sys.stderr)
        sys.exit(1)
    print(f"check_bench: {args.file} passes all section gates")


if __name__ == "__main__":
    main()
