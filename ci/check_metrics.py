#!/usr/bin/env python3
"""CI gate over a `/v1/metrics` scrape: Prometheus-text validation.

The telemetry contract: the exposition parses line by line (`# HELP` /
`# TYPE` comments and `name[{labels}] value` samples only), every sample
belongs to a declared family, histograms are internally consistent
(cumulative buckets never decrease, the `+Inf` bucket equals `_count`),
and the families the server documents are all present. `--min` assertions
let the smoke job prove specific counters actually moved after its curl
round-trips — explicit counters, not timing inference.

Usage:
    python3 ci/check_metrics.py --file /tmp/metrics.txt \
        --min 'saturn_requests_total{route="analyze",status="2xx"}=4'
    python3 ci/check_metrics.py --self-test
"""

import argparse
import re
import sys

SAMPLE = re.compile(
    r"^(?P<name>[a-zA-Z_:][a-zA-Z0-9_:]*)(?P<labels>\{[^}]*\})? (?P<value>\S+)$"
)
LABEL = re.compile(r'^[a-zA-Z_][a-zA-Z0-9_]*="[^"]*"$')

# Every family crates/server/src/lib.rs documents, with its declared type.
EXPECTED_FAMILIES = {
    "saturn_requests_total": "counter",
    "saturn_queue_depth": "gauge",
    "saturn_cache_bytes": "gauge",
    "saturn_cache_entries": "gauge",
    "saturn_cache_hits_total": "counter",
    "saturn_cache_misses_total": "counter",
    "saturn_cache_evictions_total": "counter",
    "saturn_cache_disk_bytes": "gauge",
    "saturn_cache_disk_hits_total": "counter",
    "saturn_cache_disk_misses_total": "counter",
    "saturn_cache_disk_writes_total": "counter",
    "saturn_cache_disk_evictions_total": "counter",
    "saturn_cache_disk_corrupt_total": "counter",
    "saturn_cache_disk_errors_total": "counter",
    "saturn_jobs_executed_total": "counter",
    "saturn_jobs_completed_total": "counter",
    "saturn_jobs_cancelled_total": "counter",
    "saturn_jobs_panicked_total": "counter",
    "saturn_jobs_coalesced_total": "counter",
    "saturn_jobs_rejected_total": "counter",
    "saturn_jobs_deadline_rejected_total": "counter",
    "saturn_shard_queue_depth": "gauge",
    "saturn_shard_ewma_job_seconds": "gauge",
    "saturn_shard_jobs_executed_total": "counter",
    "saturn_shard_jobs_completed_total": "counter",
    "saturn_shard_jobs_cancelled_total": "counter",
    "saturn_shard_jobs_panicked_total": "counter",
    "saturn_shard_jobs_coalesced_total": "counter",
    "saturn_shard_jobs_rejected_total": "counter",
    "saturn_shard_jobs_deadline_rejected_total": "counter",
    "saturn_executor_restarts_total": "counter",
    "saturn_stream_sessions_open": "gauge",
    "saturn_stream_sessions_opened_total": "counter",
    "saturn_stream_sessions_expired_total": "counter",
    "saturn_stream_events_appended_total": "counter",
    "saturn_stream_refreshes_total": "counter",
    "saturn_stream_scales_reused_total": "counter",
    "saturn_stream_tiles_skipped_total": "counter",
    "saturn_stream_suffix_windows_rebuilt_total": "counter",
    "saturn_stream_stale_refreshes_total": "counter",
    "saturn_sweep_tiles_total": "counter",
    "saturn_sweep_scales_total": "counter",
    "saturn_dp_trips_total": "counter",
    "saturn_dp_traversals_total": "counter",
    "saturn_dp_chain_offers_total": "counter",
    "saturn_dp_snap_entries_total": "counter",
    "saturn_dp_degree1_steps_total": "counter",
    "saturn_parse_seconds": "histogram",
    "saturn_handle_seconds": "histogram",
    "saturn_serialize_seconds": "histogram",
    "saturn_request_seconds": "histogram",
    "saturn_queue_wait_seconds": "histogram",
    "saturn_sweep_seconds": "histogram",
    "saturn_tile_seconds": "histogram",
}


class GateFailure(Exception):
    """A named, human-actionable gate violation."""


def require(condition, message):
    if not condition:
        raise GateFailure(message)


def family_of(name, types):
    """The declared family a sample name belongs to, accounting for the
    histogram suffixes."""
    if name in types:
        return name
    for suffix in ("_bucket", "_sum", "_count"):
        base = name.removesuffix(suffix)
        if base != name and types.get(base) == "histogram":
            return base
    return None


def parse(text):
    """Parses an exposition into (types, samples, sampled_families).

    types: family name -> declared type.
    samples: full sample key (name plus label set, verbatim) -> float value.
    sampled_families: set of family names that have at least one sample.
    """
    types = {}
    samples = {}
    sampled_families = set()
    for lineno, line in enumerate(text.splitlines(), 1):
        where = f"line {lineno}: `{line}`"
        require(line.strip() == line and line, f"{where}: blank or padded line")
        if line.startswith("# HELP "):
            continue
        if line.startswith("# TYPE "):
            parts = line.split(" ")
            require(len(parts) == 4, f"{where}: malformed TYPE comment")
            _, _, name, kind = parts
            require(name not in types, f"{where}: duplicate TYPE for {name}")
            require(
                kind in ("counter", "gauge", "histogram"),
                f"{where}: unknown type {kind}",
            )
            types[name] = kind
            continue
        require(not line.startswith("#"), f"{where}: unknown comment form")
        m = SAMPLE.match(line)
        require(m, f"{where}: not `name[{{labels}}] value`")
        if m.group("labels"):
            inner = m.group("labels")[1:-1]
            for pair in inner.split(","):
                require(LABEL.match(pair), f"{where}: malformed label `{pair}`")
        try:
            value = float(m.group("value"))
        except ValueError:
            raise GateFailure(f"{where}: non-numeric value")
        name = m.group("name")
        family = family_of(name, types)
        require(
            family is not None,
            f"{where}: sample without a preceding TYPE declaration",
        )
        sampled_families.add(family)
        key = name + (m.group("labels") or "")
        require(key not in samples, f"{where}: duplicate sample {key}")
        samples[key] = value
    return types, samples, sampled_families


def check_histograms(types, samples):
    """Bucket consistency: `le` bounds increase, cumulative counts never
    decrease, `+Inf` equals `_count`, and `_sum` is present."""
    for name, kind in types.items():
        if kind != "histogram":
            continue
        buckets = []
        for key, value in samples.items():
            m = re.match(rf'^{re.escape(name)}_bucket{{le="([^"]+)"}}$', key)
            if m:
                bound = float("inf") if m.group(1) == "+Inf" else float(m.group(1))
                buckets.append((bound, value))
        require(buckets, f"{name}: no buckets")
        bounds = [b for b, _ in buckets]
        require(bounds == sorted(bounds), f"{name}: bucket bounds out of order")
        require(bounds[-1] == float("inf"), f"{name}: missing +Inf bucket")
        counts = [c for _, c in buckets]
        require(
            all(a <= b for a, b in zip(counts, counts[1:])),
            f"{name}: cumulative bucket counts decrease",
        )
        count = samples.get(f"{name}_count")
        require(count is not None, f"{name}: missing _count")
        require(f"{name}_sum" in samples, f"{name}: missing _sum")
        require(
            counts[-1] == count,
            f"{name}: +Inf bucket {counts[-1]} != _count {count}",
        )


def check_scrape(text, minimums=()):
    types, samples, sampled_families = parse(text)
    for family, kind in EXPECTED_FAMILIES.items():
        require(family in types, f"expected family {family} is missing")
        require(
            types[family] == kind,
            f"{family}: declared {types[family]}, expected {kind}",
        )
        require(family in sampled_families, f"{family}: declared but has no samples")
    check_histograms(types, samples)
    for spec in minimums:
        key, _, want = spec.rpartition("=")
        require(key and want, f"--min `{spec}`: expected `sample=value`")
        require(key in samples, f"--min {key}: sample not in scrape")
        require(
            samples[key] >= float(want),
            f"--min {key}: {samples[key]} < {want}",
        )
    return types, samples


# ---------------------------------------------------------------------------


def synthetic_scrape(hits=3.0, analyze=4.0, inf_count=2.0):
    """A minimal well-formed scrape covering every expected family."""
    lines = []
    for family, kind in EXPECTED_FAMILIES.items():
        lines.append(f"# HELP {family} test")
        lines.append(f"# TYPE {family} {kind}")
        if kind == "histogram":
            lines.append(f'{family}_bucket{{le="0.001"}} 1')
            lines.append(f'{family}_bucket{{le="+Inf"}} {inf_count:g}')
            lines.append(f"{family}_sum 0.5")
            lines.append(f"{family}_count {inf_count:g}")
        elif family == "saturn_requests_total":
            lines.append(
                f'saturn_requests_total{{route="analyze",status="2xx"}} {analyze:g}'
            )
            lines.append('saturn_requests_total{route="other",status="other"} 0')
        elif family == "saturn_cache_hits_total":
            lines.append(f"saturn_cache_hits_total {hits:g}")
        elif family.startswith("saturn_shard_") or family == "saturn_executor_restarts_total":
            # per-shard families are always labeled, one sample per shard
            lines.append(f'{family}{{shard="0"}} 1')
            lines.append(f'{family}{{shard="1"}} 0')
        else:
            lines.append(f"{family} 0")
    return "\n".join(lines) + "\n"


def expect_failure(text, fragment, minimums=()):
    try:
        check_scrape(text, minimums)
    except GateFailure as failure:
        assert fragment in str(failure), f"wrong failure: {failure}"
        return
    raise AssertionError(f"gate accepted a scrape that should fail ({fragment})")


def self_test():
    good = synthetic_scrape()
    check_scrape(
        good,
        minimums=[
            'saturn_requests_total{route="analyze",status="2xx"}=4',
            'saturn_shard_jobs_executed_total{shard="0"}=1',
            'saturn_executor_restarts_total{shard="1"}=0',
        ],
    )
    # minimum not met
    expect_failure(
        good,
        "< 5",
        minimums=['saturn_requests_total{route="analyze",status="2xx"}=5'],
    )
    # unknown sample name
    expect_failure(good + "mystery_metric 1\n", "without a preceding TYPE")
    # non-numeric value
    expect_failure(good + "saturn_cache_hits_total x\n", "non-numeric")
    # missing family
    broken = good.replace("# TYPE saturn_queue_depth gauge\nsaturn_queue_depth 0\n", "")
    broken = broken.replace("# HELP saturn_queue_depth test\n", "")
    expect_failure(broken, "saturn_queue_depth is missing")
    # +Inf bucket disagreeing with _count
    broken = synthetic_scrape().replace(
        'saturn_sweep_seconds_bucket{le="+Inf"} 2', 'saturn_sweep_seconds_bucket{le="+Inf"} 1'
    )
    expect_failure(broken, "+Inf bucket")
    # decreasing cumulative counts
    broken = synthetic_scrape().replace(
        'saturn_tile_seconds_bucket{le="0.001"} 1', 'saturn_tile_seconds_bucket{le="0.001"} 9'
    )
    expect_failure(broken, "decrease")
    print("check_metrics self-test passed")


def main():
    ap = argparse.ArgumentParser(description=__doc__)
    ap.add_argument("--file", help="scrape of GET /v1/metrics to validate")
    ap.add_argument(
        "--min",
        action="append",
        default=[],
        metavar="SAMPLE=N",
        help="require a sample (labels verbatim) to be >= N; repeatable",
    )
    ap.add_argument("--self-test", action="store_true")
    args = ap.parse_args()
    if args.self_test:
        self_test()
        return
    if not args.file:
        ap.error("--file or --self-test required")
    with open(args.file, encoding="utf-8") as handle:
        text = handle.read()
    try:
        types, samples = check_scrape(text, args.min)
    except GateFailure as failure:
        print(f"check_metrics: FAIL: {failure}", file=sys.stderr)
        sys.exit(1)
    print(
        f"check_metrics: OK — {len(types)} families, {len(samples)} samples, "
        f"{len(args.min)} minimum(s) held"
    )


if __name__ == "__main__":
    main()
