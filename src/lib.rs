//! # saturn — saturation-scale analysis of link streams
//!
//! A complete Rust implementation of *Non-Altering Time Scales for
//! Aggregation of Dynamic Networks into Series of Graphs* (Yannick Léo,
//! Christophe Crespelle, Eric Fleury — CoNEXT 2015; full version
//! arXiv:1805.06188).
//!
//! Many dynamic networks are *link streams*: finite collections of triplets
//! `(u, v, t)`. Analyses usually start by aggregating the stream into a
//! series of graphs over windows of length `Δ` — but how large can `Δ` be
//! before the series stops faithfully describing the stream? This library
//! computes the answer: the **saturation scale γ**, beyond which the
//! propagation properties (temporal paths, transitions, reachability delays)
//! of the series are demonstrably altered.
//!
//! ## Crates / modules
//!
//! This facade re-exports the workspace crates as modules:
//!
//! * [`linkstream`] — the stream data model, windows, parsing;
//! * [`graphseries`] — aggregation into snapshot series and classical
//!   per-snapshot statistics;
//! * [`trips`] — temporal paths, minimal trips, occupancy rates, the
//!   `O(nM)` backward dynamic program;
//! * [`distrib`] — distributions on `[0, 1]`, Monge–Kantorovich distance,
//!   entropies;
//! * [`core`] — the occupancy method: sweeps, γ detection, validation;
//! * [`synth`] — synthetic generators (time-uniform, two-mode, dataset
//!   stand-ins).
//!
//! ## Quickstart
//!
//! ```
//! use saturn::prelude::*;
//!
//! // Build a stream (or parse one with saturn::linkstream::io).
//! let mut b = LinkStreamBuilder::new(Directedness::Undirected);
//! for i in 0..200i64 {
//!     let names = ["a", "b", "c", "d", "e"];
//!     b.add(names[(i % 5) as usize], names[((i + 1) % 5) as usize], i * 50);
//! }
//! let stream = b.build().unwrap();
//!
//! // Run the occupancy method.
//! let report = OccupancyMethod::new()
//!     .grid(SweepGrid::Geometric { points: 24 })
//!     .run(&stream);
//! let gamma = report.gamma().expect("well-formed stream");
//! println!("saturation scale: {} ticks", gamma.delta_ticks);
//! ```

pub use saturn_core as core;
pub use saturn_distrib as distrib;
pub use saturn_graphseries as graphseries;
pub use saturn_linkstream as linkstream;
pub use saturn_synth as synth;
pub use saturn_trips as trips;

/// The most common imports, for `use saturn::prelude::*`.
pub mod prelude {
    pub use saturn_core::{
        classic_sweep, compare_selection_methods, validation_sweep, GammaResult, KeepPolicy,
        OccupancyMethod, OccupancyReport, SweepGrid, TargetSpec,
    };
    pub use saturn_distrib::{SelectionMetric, WeightedDist};
    pub use saturn_graphseries::{GraphSeries, Snapshot};
    pub use saturn_linkstream::{
        Directedness, Link, LinkStream, LinkStreamBuilder, NodeId, Time, WindowPartition,
    };
    pub use saturn_synth::{DatasetProfile, TimeUniform, TwoMode};
    pub use saturn_trips::{occupancy_histogram, stream_minimal_trips, TargetSet, Timeline};
}
