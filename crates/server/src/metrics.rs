//! Dependency-free telemetry: atomic counters, gauges, and log-bucketed
//! latency histograms behind one statically-registered [`Metrics`] struct,
//! rendered as Prometheus text exposition for `GET /v1/metrics`.
//!
//! Design constraints, in order:
//!
//! * **Observation never changes results.** Every instrument here is fed
//!   from outside the sweep's data path (request framing, the job executor,
//!   [`SweepObserver`] tile callbacks). Nothing in this module enters cache
//!   fingerprints or report bytes — the knob-matrix CI job holds with
//!   telemetry active because telemetry *cannot* reach the output.
//! * **One registry, many views.** The server's [`ReportCache`] and
//!   [`JobManager`] share the context's `Arc<Metrics>`, and their
//!   `/v1/health` stats structs are read *from* these counters — health and
//!   `/v1/metrics` can never disagree because they are the same atomics.
//! * **Fixed cardinality.** Label sets are compile-time arrays
//!   ([`ROUTES`] × [`STATUS_CLASSES`]); unknown values collapse into
//!   `"other"`. A scrape allocates one `String` and reads atomics — no maps,
//!   no locks, no allocation per sample.
//!
//! Histograms bucket by powers of two over *microseconds*
//! (`le = 2^i µs`, `i = 0..`[`FINITE_BUCKETS`]`, plus `+Inf`), which spans
//! 1 µs to ~17.9 min in [`BUCKETS`]` = 32` buckets — relative error is
//! bounded by 2× everywhere, which is what a p99 over a log-normal-ish
//! latency distribution needs. Exposition follows the Prometheus histogram
//! convention: cumulative `_bucket{le=…}` counts with `le` in **seconds**,
//! plus `_sum` (seconds) and `_count`.
//!
//! [`ReportCache`]: crate::cache::ReportCache
//! [`JobManager`]: crate::jobs::JobManager
//! [`SweepObserver`]: saturn_core::SweepObserver

use saturn_core::{SweepObserver, TileSpan};
use std::fmt::Write as _;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// A monotonically increasing `u64`. Relaxed ordering throughout: counters
/// are statistics, not synchronization.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.0.fetch_add(1, Ordering::Relaxed);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A non-negative instantaneous value (queue depth, resident bytes).
/// Updated by `set` under whatever lock already guards the source of truth,
/// so reads are consistent with the owning structure's own accounting.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: u64) {
        self.0.store(v, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A gauge holding an `f64` (EWMA seconds), stored as raw bits in an
/// `AtomicU64`. Same discipline as [`Gauge`]: `set` under the owning lock,
/// relaxed reads anywhere.
#[derive(Debug, Default)]
pub struct FloatGauge(AtomicU64);

impl FloatGauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        FloatGauge(AtomicU64::new(0))
    }

    /// Overwrites the value.
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Number of finite bucket bounds: `le = 2^i` µs for `i = 0..FINITE_BUCKETS`.
pub const FINITE_BUCKETS: usize = 31;

/// Total buckets, including the final `+Inf` overflow bucket.
pub const BUCKETS: usize = FINITE_BUCKETS + 1;

/// Lock-free log₂-bucketed latency histogram over microseconds.
///
/// `record` is one relaxed `fetch_add` per sample plus two for count/sum;
/// concurrent recorders never contend on anything but cache lines. Quantile
/// extraction returns the *upper bound* of the bucket containing the
/// requested rank — an overestimate by at most 2×, consistent across merge
/// order and thread interleaving.
#[derive(Debug, Default)]
pub struct Histogram {
    buckets: [AtomicU64; BUCKETS],
    count: AtomicU64,
    sum_micros: AtomicU64,
}

/// The finite upper bound of bucket `i`, in microseconds.
pub fn bucket_bound_micros(i: usize) -> u64 {
    debug_assert!(i < FINITE_BUCKETS);
    1u64 << i
}

/// Index of the bucket whose bound is the smallest `2^i` µs ≥ `micros`
/// (values past the largest finite bound land in the `+Inf` bucket).
fn bucket_index(micros: u64) -> usize {
    if micros <= 1 {
        return 0;
    }
    let i = (64 - (micros - 1).leading_zeros()) as usize;
    i.min(FINITE_BUCKETS)
}

impl Histogram {
    /// An empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one sample of `micros` microseconds.
    pub fn observe_micros(&self, micros: u64) {
        self.buckets[bucket_index(micros)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum_micros.fetch_add(micros, Ordering::Relaxed);
    }

    /// Records one duration sample.
    pub fn observe(&self, d: Duration) {
        self.observe_micros(u64::try_from(d.as_micros()).unwrap_or(u64::MAX));
    }

    /// Total samples recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// Sum of all samples, microseconds.
    pub fn sum_micros(&self) -> u64 {
        self.sum_micros.load(Ordering::Relaxed)
    }

    /// Adds every sample of `other` into `self` (bucket-wise; exact).
    pub fn merge(&self, other: &Histogram) {
        for (mine, theirs) in self.buckets.iter().zip(&other.buckets) {
            mine.fetch_add(theirs.load(Ordering::Relaxed), Ordering::Relaxed);
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum_micros.fetch_add(other.sum_micros(), Ordering::Relaxed);
    }

    /// The `q`-quantile (`0 < q <= 1`) as the upper bound, in microseconds,
    /// of the bucket holding the sample of that rank. `None` when empty.
    /// Samples in the `+Inf` bucket report the largest finite bound
    /// (clipped, like every value their bucket cannot distinguish).
    /// Cumulative counts saturate instead of wrapping, so pathological
    /// totals degrade to a clipped answer rather than a wrong one.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        let total = self.count();
        if total == 0 {
            return None;
        }
        let rank = ((q * total as f64).ceil() as u64).clamp(1, total);
        let mut seen: u64 = 0;
        for (i, bucket) in self.buckets.iter().enumerate() {
            seen = seen.saturating_add(bucket.load(Ordering::Relaxed));
            if seen >= rank {
                return Some(bucket_bound_micros(i.min(FINITE_BUCKETS - 1)));
            }
        }
        Some(bucket_bound_micros(FINITE_BUCKETS - 1))
    }

    /// `(p50, p90, p99)` in microseconds; `None` when empty.
    pub fn percentiles(&self) -> Option<(u64, u64, u64)> {
        Some((self.quantile(0.50)?, self.quantile(0.90)?, self.quantile(0.99)?))
    }

    /// Non-cumulative per-bucket counts, for tests and custom reports.
    pub fn bucket_counts(&self) -> [u64; BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }
}

/// Route labels of `saturn_requests_total`, in exposition order. Paths the
/// server does not route (and malformed requests) count as `"other"`.
pub const ROUTES: [&str; 8] =
    ["analyze", "validate", "stats", "streams", "health", "jobs", "metrics", "other"];

/// Status-class labels of `saturn_requests_total`. Bounded on purpose:
/// per-code label cardinality grows without limit under fuzzing, classes
/// do not.
pub const STATUS_CLASSES: [&str; 4] = ["2xx", "4xx", "5xx", "other"];

/// The route label of a request path.
pub fn route_label(path: &str) -> &'static str {
    match path {
        "/v1/analyze" => "analyze",
        "/v1/validate" => "validate",
        "/v1/stats" => "stats",
        "/v1/health" => "health",
        "/v1/metrics" => "metrics",
        p if p.starts_with("/v1/jobs/") => "jobs",
        p if p.starts_with("/v1/streams") => "streams",
        _ => "other",
    }
}

fn route_index(route: &str) -> usize {
    ROUTES.iter().position(|&r| r == route).unwrap_or(ROUTES.len() - 1)
}

fn status_index(status: u16) -> usize {
    match status {
        200..=299 => 0,
        400..=499 => 1,
        500..=599 => 2,
        _ => 3,
    }
}

/// Wall-time breakdown of one HTTP request, measured on the connection
/// thread. `parse` runs from the first read to a complete parsed request,
/// so it includes the time the peer takes to *send* the request (and, on a
/// keep-alive connection, the idle wait for its first byte); `handle` is
/// routing plus the synchronous wait for the job outcome; `serialize` is
/// response emission to the socket. Queue wait and sweep execution are
/// recorded separately by the job executor ([`Metrics::queue_wait_seconds`],
/// [`Metrics::sweep_seconds`]) because a `202 Accepted` job outlives its
/// request.
#[derive(Clone, Copy, Debug, Default)]
pub struct RequestTimings {
    /// Read + parse of the request head and body.
    pub parse: Duration,
    /// Routing and (synchronous) job wait.
    pub handle: Duration,
    /// Response write to the socket.
    pub serialize: Duration,
}

impl RequestTimings {
    /// End-to-end wall time.
    pub fn total(&self) -> Duration {
        self.parse + self.handle + self.serialize
    }
}

/// Per-shard job instruments, exported with a `shard="<i>"` label. One
/// entry per executor shard; the aggregate `jobs_*` counters are always
/// incremented alongside these, so summing a family over shards equals its
/// aggregate — `/v1/health`'s per-shard array is a view over the same
/// atomics and the integration tests assert that identity.
#[derive(Debug, Default)]
pub struct ShardMetrics {
    /// `saturn_shard_queue_depth{shard}` — jobs waiting in this shard.
    pub queue_depth: Gauge,
    /// `saturn_shard_ewma_job_seconds{shard}` — this shard's EWMA of job
    /// service seconds (drives its admission control and `Retry-After`).
    pub ewma_job_seconds: FloatGauge,
    /// `saturn_shard_jobs_executed_total{shard}`.
    pub executed: Counter,
    /// `saturn_shard_jobs_completed_total{shard}`.
    pub completed: Counter,
    /// `saturn_shard_jobs_cancelled_total{shard}`.
    pub cancelled: Counter,
    /// `saturn_shard_jobs_panicked_total{shard}` — includes jobs lost to a
    /// crashed or abandoned executor.
    pub panicked: Counter,
    /// `saturn_shard_jobs_coalesced_total{shard}`.
    pub coalesced: Counter,
    /// `saturn_shard_jobs_rejected_total{shard}`.
    pub rejected: Counter,
    /// `saturn_shard_jobs_deadline_rejected_total{shard}`.
    pub deadline_rejected: Counter,
    /// `saturn_executor_restarts_total{shard}` — supervisor restarts of
    /// this shard's executor (death or stall escalation).
    pub restarts: Counter,
}

/// The shard instrument vector. Newtyped so the registry's `Default` can
/// guarantee at least one shard — a registry with zero shards would render
/// shard families with no samples, which the scrape checker rejects.
#[derive(Debug)]
struct Shards(Vec<ShardMetrics>);

impl Default for Shards {
    fn default() -> Self {
        Shards(vec![ShardMetrics::default()])
    }
}

/// The server's metric registry. One instance per [`crate::Server`], shared
/// by `Arc` with the cache, the job manager, and every connection thread.
/// See the crate docs of [`crate`] for the full exported-metric table.
#[derive(Debug, Default)]
pub struct Metrics {
    /// Per-shard job instruments (`shard` label); length = executor count.
    shards: Shards,
    /// `saturn_requests_total{route,status}`.
    requests: [[Counter; STATUS_CLASSES.len()]; ROUTES.len()],
    /// `saturn_queue_depth` — jobs waiting (not running).
    pub queue_depth: Gauge,
    /// `saturn_parse_seconds` — request read + parse (includes peer I/O).
    pub parse_seconds: Histogram,
    /// `saturn_handle_seconds` — routing + synchronous job wait.
    pub handle_seconds: Histogram,
    /// `saturn_serialize_seconds` — response write.
    pub serialize_seconds: Histogram,
    /// `saturn_request_seconds` — end-to-end request wall time.
    pub request_seconds: Histogram,
    /// `saturn_queue_wait_seconds` — job pop latency after submit.
    pub queue_wait_seconds: Histogram,
    /// `saturn_sweep_seconds` — job execution wall time on the pool.
    pub sweep_seconds: Histogram,
    /// `saturn_tile_seconds` — one `(scale, tile)` DP wall time.
    pub tile_seconds: Histogram,
    /// `saturn_cache_hits_total`.
    pub cache_hits: Counter,
    /// `saturn_cache_misses_total`.
    pub cache_misses: Counter,
    /// `saturn_cache_evictions_total`.
    pub cache_evictions: Counter,
    /// `saturn_cache_bytes` — resident report bytes.
    pub cache_bytes: Gauge,
    /// `saturn_cache_entries` — resident reports.
    pub cache_entries: Gauge,
    /// `saturn_cache_disk_hits_total` — disk lookups that served a body.
    pub cache_disk_hits: Counter,
    /// `saturn_cache_disk_misses_total` — disk lookups that found nothing.
    pub cache_disk_misses: Counter,
    /// `saturn_cache_disk_writes_total` — entries durably spilled to disk.
    pub cache_disk_writes: Counter,
    /// `saturn_cache_disk_evictions_total` — disk entries evicted for space.
    pub cache_disk_evictions: Counter,
    /// `saturn_cache_disk_corrupt_total` — entries quarantined as torn,
    /// corrupt, or oversize (checksum/length mismatch ⇒ delete, never serve).
    pub cache_disk_corrupt: Counter,
    /// `saturn_cache_disk_errors_total` — disk I/O failures (each trips the
    /// circuit breaker toward memory-only mode).
    pub cache_disk_errors: Counter,
    /// `saturn_cache_disk_bytes` — bytes resident in the disk tier.
    pub cache_disk_bytes: Gauge,
    /// `saturn_jobs_executed_total` — jobs run to any outcome.
    pub jobs_executed: Counter,
    /// `saturn_jobs_completed_total` — jobs with their own 2xx/4xx outcome.
    pub jobs_completed: Counter,
    /// `saturn_jobs_cancelled_total` — deadline / drain / fault 504s.
    pub jobs_cancelled: Counter,
    /// `saturn_jobs_panicked_total` — jobs whose work panicked (500s).
    pub jobs_panicked: Counter,
    /// `saturn_jobs_coalesced_total` — submissions attached to in-flight
    /// duplicates.
    pub jobs_coalesced: Counter,
    /// `saturn_jobs_rejected_total` — submissions refused with any 503.
    pub jobs_rejected: Counter,
    /// `saturn_jobs_deadline_rejected_total` — admission-control refusals.
    pub jobs_deadline_rejected: Counter,
    /// `saturn_sweep_tiles_total` — `(scale, tile)` items completed.
    pub sweep_tiles: Counter,
    /// `saturn_sweep_scales_total` — scales fully analyzed.
    pub sweep_scales: Counter,
    /// `saturn_dp_trips_total` — minimal trips reported by the engines.
    pub dp_trips: Counter,
    /// `saturn_dp_traversals_total` — edge traversals processed.
    pub dp_traversals: Counter,
    /// `saturn_dp_chain_offers_total` — chain offers after delta filtering.
    pub dp_chain_offers: Counter,
    /// `saturn_dp_snap_entries_total` — snapshot entries after filtering.
    pub dp_snap_entries: Counter,
    /// `saturn_dp_degree1_steps_total` — degree-1 fast-path steps.
    pub dp_degree1_steps: Counter,
    /// `saturn_stream_sessions_open` — live streaming ingest sessions.
    pub stream_sessions_open: Gauge,
    /// `saturn_stream_sessions_opened_total` — sessions ever created.
    pub stream_sessions_opened: Counter,
    /// `saturn_stream_sessions_expired_total` — sessions evicted by TTL.
    pub stream_sessions_expired: Counter,
    /// `saturn_stream_events_appended_total` — events accepted into
    /// session builders (create bodies and `/events` batches).
    pub stream_events_appended: Counter,
    /// `saturn_stream_refreshes_total` — incremental re-analyses completed.
    pub stream_refreshes: Counter,
    /// `saturn_stream_scales_reused_total` — scales served verbatim from a
    /// session's sweep cache (histogram reused, DP skipped).
    pub stream_scales_reused: Counter,
    /// `saturn_stream_tiles_skipped_total` — DP tiles avoided by reuse.
    pub stream_tiles_skipped: Counter,
    /// `saturn_stream_suffix_windows_rebuilt_total` — timeline windows
    /// rebuilt by suffix splices (the incremental work actually done).
    pub stream_suffix_windows_rebuilt: Counter,
    /// `saturn_stream_stale_refreshes_total` — refreshes whose snapshot
    /// was outrun by a newer refresh of the same session and therefore ran
    /// from scratch, leaving the session cache alone.
    pub stream_stale_refreshes: Counter,
}

impl Metrics {
    /// A registry with every instrument at zero and one shard.
    pub fn new() -> Self {
        Self::default()
    }

    /// A registry with `executors.max(1)` shard instrument sets — the
    /// server wiring, where the shard count is a config knob.
    pub fn with_shards(executors: usize) -> Self {
        Self {
            shards: Shards((0..executors.max(1)).map(|_| ShardMetrics::default()).collect()),
            ..Self::default()
        }
    }

    /// The per-shard instrument sets, indexed by shard.
    pub fn shards(&self) -> &[ShardMetrics] {
        &self.shards.0
    }

    /// Shard `i`'s instruments.
    pub fn shard(&self, i: usize) -> &ShardMetrics {
        &self.shards.0[i]
    }

    /// Counts one finished request and records its stage timings.
    pub fn observe_request(&self, route: &str, status: u16, timings: &RequestTimings) {
        self.requests[route_index(route)][status_index(status)].inc();
        self.parse_seconds.observe(timings.parse);
        self.handle_seconds.observe(timings.handle);
        self.serialize_seconds.observe(timings.serialize);
        self.request_seconds.observe(timings.total());
    }

    /// Requests counted for `route` across all status classes.
    pub fn requests_for_route(&self, route: &str) -> u64 {
        self.requests[route_index(route)].iter().map(Counter::get).sum()
    }

    /// Folds one completed sweep tile into the aggregates.
    pub fn observe_tile(&self, span: &TileSpan) {
        self.sweep_tiles.inc();
        if span.last_tile_of_scale {
            self.sweep_scales.inc();
        }
        self.tile_seconds.observe(Duration::from_secs_f64(span.seconds.max(0.0)));
        self.dp_trips.add(span.trips);
        self.dp_traversals.add(span.traversals);
        self.dp_chain_offers.add(span.chain_offers);
        self.dp_snap_entries.add(span.snap_entries);
        self.dp_degree1_steps.add(span.degree1_steps);
    }

    /// Renders the whole registry as Prometheus text exposition
    /// (`text/plain; version=0.0.4`). Every label combination is emitted,
    /// zeros included, so scrapes are shape-stable from the first request.
    pub fn render_prometheus(&self) -> String {
        let mut out = String::with_capacity(8 * 1024);
        writeln!(out, "# HELP saturn_requests_total HTTP requests by route and status class.")
            .unwrap();
        writeln!(out, "# TYPE saturn_requests_total counter").unwrap();
        for (ri, route) in ROUTES.iter().enumerate() {
            for (si, class) in STATUS_CLASSES.iter().enumerate() {
                writeln!(
                    out,
                    "saturn_requests_total{{route=\"{route}\",status=\"{class}\"}} {}",
                    self.requests[ri][si].get()
                )
                .unwrap();
            }
        }
        for (name, help, gauge) in [
            ("saturn_queue_depth", "Jobs waiting in the queue.", &self.queue_depth),
            ("saturn_cache_bytes", "Resident report-cache bytes.", &self.cache_bytes),
            ("saturn_cache_entries", "Resident report-cache entries.", &self.cache_entries),
            (
                "saturn_cache_disk_bytes",
                "Bytes resident in the disk tier.",
                &self.cache_disk_bytes,
            ),
            (
                "saturn_stream_sessions_open",
                "Live streaming ingest sessions.",
                &self.stream_sessions_open,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} gauge").unwrap();
            writeln!(out, "{name} {}", gauge.get()).unwrap();
        }
        for (name, help, counter) in [
            (
                "saturn_cache_hits_total",
                "Cache lookups that returned a body.",
                &self.cache_hits,
            ),
            (
                "saturn_cache_misses_total",
                "Cache lookups that found nothing.",
                &self.cache_misses,
            ),
            ("saturn_cache_evictions_total", "Cache entries evicted.", &self.cache_evictions),
            (
                "saturn_cache_disk_hits_total",
                "Disk-tier lookups that served a body.",
                &self.cache_disk_hits,
            ),
            (
                "saturn_cache_disk_misses_total",
                "Disk-tier lookups that found nothing.",
                &self.cache_disk_misses,
            ),
            (
                "saturn_cache_disk_writes_total",
                "Entries durably spilled to disk.",
                &self.cache_disk_writes,
            ),
            (
                "saturn_cache_disk_evictions_total",
                "Disk-tier entries evicted for space.",
                &self.cache_disk_evictions,
            ),
            (
                "saturn_cache_disk_corrupt_total",
                "Disk entries quarantined as torn or corrupt.",
                &self.cache_disk_corrupt,
            ),
            (
                "saturn_cache_disk_errors_total",
                "Disk I/O failures (trip the circuit breaker).",
                &self.cache_disk_errors,
            ),
            (
                "saturn_jobs_executed_total",
                "Jobs executed to any outcome.",
                &self.jobs_executed,
            ),
            (
                "saturn_jobs_completed_total",
                "Jobs with their own outcome.",
                &self.jobs_completed,
            ),
            ("saturn_jobs_cancelled_total", "Jobs cancelled (504).", &self.jobs_cancelled),
            (
                "saturn_jobs_panicked_total",
                "Jobs whose work panicked (500).",
                &self.jobs_panicked,
            ),
            (
                "saturn_jobs_coalesced_total",
                "Submissions attached to in-flight duplicates.",
                &self.jobs_coalesced,
            ),
            ("saturn_jobs_rejected_total", "Submissions refused (503).", &self.jobs_rejected),
            (
                "saturn_jobs_deadline_rejected_total",
                "Admission-control refusals.",
                &self.jobs_deadline_rejected,
            ),
            (
                "saturn_sweep_tiles_total",
                "Sweep (scale, tile) items completed.",
                &self.sweep_tiles,
            ),
            ("saturn_sweep_scales_total", "Sweep scales fully analyzed.", &self.sweep_scales),
            ("saturn_dp_trips_total", "Minimal trips reported.", &self.dp_trips),
            ("saturn_dp_traversals_total", "Edge traversals processed.", &self.dp_traversals),
            (
                "saturn_dp_chain_offers_total",
                "Chain offers after delta filtering.",
                &self.dp_chain_offers,
            ),
            (
                "saturn_dp_snap_entries_total",
                "Snapshot entries after delta filtering.",
                &self.dp_snap_entries,
            ),
            (
                "saturn_dp_degree1_steps_total",
                "Degree-1 fast-path steps.",
                &self.dp_degree1_steps,
            ),
            (
                "saturn_stream_sessions_opened_total",
                "Streaming sessions ever created.",
                &self.stream_sessions_opened,
            ),
            (
                "saturn_stream_sessions_expired_total",
                "Streaming sessions evicted by TTL.",
                &self.stream_sessions_expired,
            ),
            (
                "saturn_stream_events_appended_total",
                "Events accepted into session builders.",
                &self.stream_events_appended,
            ),
            (
                "saturn_stream_refreshes_total",
                "Incremental re-analyses completed.",
                &self.stream_refreshes,
            ),
            (
                "saturn_stream_scales_reused_total",
                "Scales served verbatim from a session sweep cache.",
                &self.stream_scales_reused,
            ),
            (
                "saturn_stream_tiles_skipped_total",
                "DP tiles avoided by sweep-cache scale reuse.",
                &self.stream_tiles_skipped,
            ),
            (
                "saturn_stream_suffix_windows_rebuilt_total",
                "Timeline windows rebuilt by suffix splices.",
                &self.stream_suffix_windows_rebuilt,
            ),
            (
                "saturn_stream_stale_refreshes_total",
                "Refreshes outrun by a newer refresh of the session (ran from scratch).",
                &self.stream_stale_refreshes,
            ),
        ] {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            writeln!(out, "{name} {}", counter.get()).unwrap();
        }
        self.render_shard_families(&mut out);
        for (name, help, histogram) in [
            (
                "saturn_parse_seconds",
                "Request read + parse wall time (includes peer I/O).",
                &self.parse_seconds,
            ),
            ("saturn_handle_seconds", "Routing + synchronous job wait.", &self.handle_seconds),
            ("saturn_serialize_seconds", "Response write wall time.", &self.serialize_seconds),
            ("saturn_request_seconds", "End-to-end request wall time.", &self.request_seconds),
            (
                "saturn_queue_wait_seconds",
                "Job queue wait before execution.",
                &self.queue_wait_seconds,
            ),
            ("saturn_sweep_seconds", "Job execution wall time.", &self.sweep_seconds),
            ("saturn_tile_seconds", "One (scale, tile) DP wall time.", &self.tile_seconds),
        ] {
            render_histogram(&mut out, name, help, histogram);
        }
        out
    }

    /// Emits the `shard`-labeled families, one sample per executor shard.
    fn render_shard_families(&self, out: &mut String) {
        let shards = self.shards();
        writeln!(out, "# HELP saturn_shard_queue_depth Jobs waiting in one executor shard.")
            .unwrap();
        writeln!(out, "# TYPE saturn_shard_queue_depth gauge").unwrap();
        for (i, s) in shards.iter().enumerate() {
            writeln!(out, "saturn_shard_queue_depth{{shard=\"{i}\"}} {}", s.queue_depth.get())
                .unwrap();
        }
        writeln!(
            out,
            "# HELP saturn_shard_ewma_job_seconds EWMA of job service seconds per shard."
        )
        .unwrap();
        writeln!(out, "# TYPE saturn_shard_ewma_job_seconds gauge").unwrap();
        for (i, s) in shards.iter().enumerate() {
            writeln!(
                out,
                "saturn_shard_ewma_job_seconds{{shard=\"{i}\"}} {}",
                s.ewma_job_seconds.get()
            )
            .unwrap();
        }
        type ShardCounter = fn(&ShardMetrics) -> &Counter;
        let counters: [(&str, &str, ShardCounter); 8] = [
            (
                "saturn_shard_jobs_executed_total",
                "Jobs executed to any outcome, per shard.",
                |s| &s.executed,
            ),
            (
                "saturn_shard_jobs_completed_total",
                "Jobs with their own outcome, per shard.",
                |s| &s.completed,
            ),
            ("saturn_shard_jobs_cancelled_total", "Jobs cancelled (504), per shard.", |s| {
                &s.cancelled
            }),
            (
                "saturn_shard_jobs_panicked_total",
                "Jobs whose work panicked or whose executor died (500), per shard.",
                |s| &s.panicked,
            ),
            (
                "saturn_shard_jobs_coalesced_total",
                "Submissions attached to in-flight duplicates, per shard.",
                |s| &s.coalesced,
            ),
            (
                "saturn_shard_jobs_rejected_total",
                "Submissions refused (503), per shard.",
                |s| &s.rejected,
            ),
            (
                "saturn_shard_jobs_deadline_rejected_total",
                "Admission-control refusals, per shard.",
                |s| &s.deadline_rejected,
            ),
            (
                "saturn_executor_restarts_total",
                "Supervisor restarts of a shard executor (death or stall).",
                |s| &s.restarts,
            ),
        ];
        for (name, help, get) in counters {
            writeln!(out, "# HELP {name} {help}").unwrap();
            writeln!(out, "# TYPE {name} counter").unwrap();
            for (i, s) in shards.iter().enumerate() {
                writeln!(out, "{name}{{shard=\"{i}\"}} {}", get(s).get()).unwrap();
            }
        }
    }
}

/// Emits one histogram family: cumulative buckets with `le` in seconds,
/// then `_sum` (seconds) and `_count`.
fn render_histogram(out: &mut String, name: &str, help: &str, histogram: &Histogram) {
    writeln!(out, "# HELP {name} {help}").unwrap();
    writeln!(out, "# TYPE {name} histogram").unwrap();
    let counts = histogram.bucket_counts();
    let mut cumulative: u64 = 0;
    for (i, &c) in counts.iter().take(FINITE_BUCKETS).enumerate() {
        cumulative = cumulative.saturating_add(c);
        let le = bucket_bound_micros(i) as f64 / 1e6;
        writeln!(out, "{name}_bucket{{le=\"{le}\"}} {cumulative}").unwrap();
    }
    writeln!(out, "{name}_bucket{{le=\"+Inf\"}} {}", histogram.count()).unwrap();
    writeln!(out, "{name}_sum {}", histogram.sum_micros() as f64 / 1e6).unwrap();
    writeln!(out, "{name}_count {}", histogram.count()).unwrap();
}

/// The [`SweepObserver`] the job manager threads into every sweep: folds
/// tile spans into the registry, optionally mirroring each span as a JSON
/// line to stderr when `SATURN_TRACE=json` was set at server start.
#[derive(Debug)]
pub struct MetricsSweepObserver {
    metrics: Arc<Metrics>,
    trace_json: bool,
}

impl MetricsSweepObserver {
    /// An observer over `metrics`; `trace_json` mirrors spans to stderr.
    pub fn new(metrics: Arc<Metrics>, trace_json: bool) -> Self {
        MetricsSweepObserver { metrics, trace_json }
    }
}

impl SweepObserver for MetricsSweepObserver {
    fn tile_done(&self, span: &TileSpan) {
        self.metrics.observe_tile(span);
        if self.trace_json {
            use std::io::Write;
            let mut line = span.to_json_line();
            line.push('\n');
            let _ = std::io::stderr().write_all(line.as_bytes());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_are_powers_of_two() {
        // 0 and 1 µs share the first bucket (le = 1 µs)
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        // exact powers land in their own bucket, one past goes up, and the
        // first value above the previous bound opens the bucket
        for i in 1..FINITE_BUCKETS {
            let bound = bucket_bound_micros(i);
            assert_eq!(bucket_index(bound), i, "bound {bound}");
            assert_eq!(bucket_index(bound / 2 + 1), i, "bound {bound}");
            assert_eq!(bucket_index(bound + 1), (i + 1).min(FINITE_BUCKETS), "bound {bound}");
        }
        // far past the largest finite bound: overflow bucket
        assert_eq!(bucket_index(u64::MAX), FINITE_BUCKETS);
    }

    #[test]
    fn empty_histogram_has_no_quantiles() {
        let h = Histogram::new();
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.percentiles(), None);
        assert_eq!(h.count(), 0);
    }

    #[test]
    fn single_sample_dominates_every_quantile() {
        let h = Histogram::new();
        h.observe_micros(300); // bucket le = 512
        for q in [0.01, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(512), "q={q}");
        }
        assert_eq!(h.count(), 1);
        assert_eq!(h.sum_micros(), 300);
    }

    #[test]
    fn quantiles_split_a_bimodal_distribution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.observe_micros(100); // le = 128
        }
        for _ in 0..10 {
            h.observe_micros(1_000_000); // le = 2^20 = 1048576
        }
        assert_eq!(h.quantile(0.50), Some(128));
        assert_eq!(h.quantile(0.90), Some(128));
        assert_eq!(h.quantile(0.99), Some(1 << 20));
    }

    #[test]
    fn overflow_bucket_reports_the_largest_finite_bound() {
        let h = Histogram::new();
        h.observe_micros(u64::MAX);
        assert_eq!(h.quantile(0.5), Some(bucket_bound_micros(FINITE_BUCKETS - 1)));
    }

    #[test]
    fn merge_is_bucketwise_exact() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.observe_micros(10);
        a.observe_micros(10_000);
        b.observe_micros(10);
        b.observe_micros(u64::MAX);
        a.merge(&b);
        assert_eq!(a.count(), 4);
        let counts = a.bucket_counts();
        assert_eq!(counts[bucket_index(10)], 2);
        assert_eq!(counts[bucket_index(10_000)], 1);
        assert_eq!(counts[FINITE_BUCKETS], 1);
        assert_eq!(
            a.sum_micros(),
            10u64.wrapping_add(10_000).wrapping_add(10).wrapping_add(u64::MAX)
        );
    }

    #[test]
    fn saturating_cumulative_counts_stay_ordered() {
        let h = Histogram::new();
        // force near-overflow bucket counts directly through the public API
        // is impractical; exercise the saturating path via quantile on a
        // handful of samples plus a manual merge storm
        for _ in 0..1000 {
            h.observe_micros(5);
        }
        let q = h.quantile(1.0).unwrap();
        assert_eq!(q, 8);
    }

    #[test]
    fn prometheus_rendering_is_wellformed() {
        let m = Metrics::new();
        m.observe_request(
            "analyze",
            200,
            &RequestTimings {
                parse: Duration::from_micros(40),
                handle: Duration::from_millis(3),
                serialize: Duration::from_micros(90),
            },
        );
        m.cache_hits.inc();
        m.queue_depth.set(2);
        m.stream_sessions_open.set(1);
        m.stream_scales_reused.add(7);
        let text = m.render_prometheus();
        assert!(text.contains("# TYPE saturn_requests_total counter"));
        assert!(text.contains("saturn_stream_sessions_open 1"));
        assert!(text.contains("saturn_stream_scales_reused_total 7"));
        assert!(text.contains("saturn_requests_total{route=\"streams\",status=\"2xx\"} 0"));
        assert!(text.contains("saturn_requests_total{route=\"analyze\",status=\"2xx\"} 1"));
        assert!(text.contains("saturn_requests_total{route=\"other\",status=\"other\"} 0"));
        assert!(text.contains("saturn_queue_depth 2"));
        assert!(text.contains("saturn_cache_hits_total 1"));
        assert!(text.contains("# TYPE saturn_request_seconds histogram"));
        assert!(text.contains("saturn_request_seconds_bucket{le=\"+Inf\"} 1"));
        assert!(text.contains("saturn_request_seconds_count 1"));
        // every line is a comment or `name[{labels}] value`
        for line in text.lines() {
            assert!(!line.is_empty());
            if line.starts_with('#') {
                continue;
            }
            let (_name, value) = line.rsplit_once(' ').expect("sample line");
            assert!(value.parse::<f64>().is_ok(), "unparsable value in `{line}`");
        }
    }

    #[test]
    fn shard_families_render_per_shard_samples() {
        let m = Metrics::with_shards(3);
        m.shard(2).executed.inc();
        m.shard(1).queue_depth.set(4);
        m.shard(0).ewma_job_seconds.set(0.25);
        m.shard(2).restarts.inc();
        let text = m.render_prometheus();
        assert!(text.contains("saturn_shard_queue_depth{shard=\"1\"} 4"));
        assert!(text.contains("saturn_shard_ewma_job_seconds{shard=\"0\"} 0.25"));
        assert!(text.contains("saturn_shard_jobs_executed_total{shard=\"2\"} 1"));
        assert!(text.contains("saturn_executor_restarts_total{shard=\"2\"} 1"));
        assert!(text.contains("saturn_executor_restarts_total{shard=\"0\"} 0"));
        // a default registry still exposes exactly one shard
        let text = Metrics::new().render_prometheus();
        assert!(text.contains("saturn_shard_queue_depth{shard=\"0\"} 0"));
        assert!(!text.contains("shard=\"1\""));
    }

    #[test]
    fn route_labels_cover_the_service_surface() {
        assert_eq!(route_label("/v1/analyze"), "analyze");
        assert_eq!(route_label("/v1/jobs/17"), "jobs");
        assert_eq!(route_label("/v1/metrics"), "metrics");
        assert_eq!(route_label("/v1/streams"), "streams");
        assert_eq!(route_label("/v1/streams/3/events"), "streams");
        assert_eq!(route_label("/v1/streams/3/analyze"), "streams");
        assert_eq!(route_label("/nope"), "other");
    }

    #[test]
    fn observe_tile_aggregates_spans() {
        let m = Metrics::new();
        let span = TileSpan {
            k: 12,
            col_start: 0,
            col_len: 8,
            seconds: 0.002,
            trips: 5,
            traversals: 100,
            chain_offers: 40,
            snap_entries: 30,
            degree1_steps: 7,
            last_tile_of_scale: true,
        };
        m.observe_tile(&span);
        m.observe_tile(&TileSpan { last_tile_of_scale: false, ..span });
        assert_eq!(m.sweep_tiles.get(), 2);
        assert_eq!(m.sweep_scales.get(), 1);
        assert_eq!(m.dp_trips.get(), 10);
        assert_eq!(m.dp_degree1_steps.get(), 14);
        assert_eq!(m.tile_seconds.count(), 2);
    }
}
