//! Minimal HTTP/1.1 framing over `std::net` — request parsing with hard
//! size limits, query-string decoding, keep-alive negotiation, and response
//! emission.
//!
//! The container has no async runtime and no HTTP crates, so this module
//! implements exactly the subset the analysis service needs: `GET`/`POST`
//! with `Content-Length` bodies (chunked transfer encoding is rejected with
//! 501), `Connection: close` / keep-alive, and `Expect: 100-continue` (curl
//! sends it for trace uploads above 1 KiB and would otherwise stall for a
//! second per request).

use std::io::{BufRead, Read, Write};

/// Hard limit on the request line + headers, bytes.
pub const MAX_HEAD_BYTES: usize = 16 * 1024;

/// A parsed request.
#[derive(Debug)]
pub struct Request {
    /// Uppercase method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded path, query string stripped.
    pub path: String,
    /// Decoded `key=value` pairs of the query string, in order.
    pub query: Vec<(String, String)>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
    /// The request body (empty when no `Content-Length` was sent).
    pub body: Vec<u8>,
}

impl Request {
    /// Last value of query parameter `key`, if present.
    pub fn param(&self, key: &str) -> Option<&str> {
        self.query.iter().rev().find(|(k, _)| k == key).map(|(_, v)| v.as_str())
    }

    /// Whether a flag-like parameter is set truthy (`1`, `true`, `yes`, or
    /// bare `?flag`).
    pub fn flag(&self, key: &str) -> bool {
        matches!(self.param(key), Some("" | "1" | "true" | "yes"))
    }
}

/// A request that could not be read; carries the HTTP status to answer with.
#[derive(Debug)]
pub enum ReadError {
    /// The peer closed (or went idle) *between* requests — not an error,
    /// the connection is silently dropped. A stall in the middle of a
    /// request is *not* this: it surfaces as `Bad(408, …)` so the client
    /// learns why the connection died.
    Closed,
    /// A malformed, oversized, or mid-request-stalled request; respond with
    /// `(status, message)` and close.
    Bad(u16, String),
}

impl From<std::io::Error> for ReadError {
    fn from(_: std::io::Error) -> Self {
        ReadError::Closed
    }
}

/// Whether an I/O error is the read-timeout firing (`SO_RCVTIMEO` surfaces
/// as `WouldBlock` on Unix, `TimedOut` elsewhere).
fn is_timeout(e: &std::io::Error) -> bool {
    matches!(e.kind(), std::io::ErrorKind::WouldBlock | std::io::ErrorKind::TimedOut)
}

fn bad(status: u16, msg: impl Into<String>) -> ReadError {
    ReadError::Bad(status, msg.into())
}

/// Reads one request from `reader`. `writer` is only touched to acknowledge
/// `Expect: 100-continue`. `max_body_bytes` bounds the declared
/// `Content-Length` (413 beyond it).
pub fn read_request<R: BufRead, W: Write>(
    reader: &mut R,
    writer: &mut W,
    max_body_bytes: usize,
) -> Result<Request, ReadError> {
    let mut head_bytes = 0usize;
    let request_line = read_line(reader, &mut head_bytes)?.ok_or(ReadError::Closed)?;
    let mut parts = request_line.split_whitespace();
    let (Some(method), Some(target), Some(version)) =
        (parts.next(), parts.next(), parts.next())
    else {
        return Err(bad(400, format!("malformed request line `{request_line}`")));
    };
    if !version.starts_with("HTTP/1.") {
        return Err(bad(505, format!("unsupported protocol `{version}`")));
    }
    // HTTP/1.0 defaults to close, 1.1 to keep-alive
    let mut keep_alive = version != "HTTP/1.0";

    let mut content_length = 0usize;
    let mut expects_continue = false;
    loop {
        let Some(line) = read_line(reader, &mut head_bytes)? else {
            return Err(bad(400, "connection closed inside headers"));
        };
        if line.is_empty() {
            break;
        }
        let Some((name, value)) = line.split_once(':') else {
            return Err(bad(400, format!("malformed header `{line}`")));
        };
        let name = name.trim().to_ascii_lowercase();
        let value = value.trim();
        match name.as_str() {
            "content-length" => {
                content_length = value
                    .parse()
                    .map_err(|_| bad(400, format!("bad Content-Length `{value}`")))?;
            }
            "transfer-encoding" if !value.eq_ignore_ascii_case("identity") => {
                return Err(bad(501, "chunked transfer encoding is not supported"));
            }
            "connection" => {
                if value.eq_ignore_ascii_case("close") {
                    keep_alive = false;
                } else if value.eq_ignore_ascii_case("keep-alive") {
                    keep_alive = true;
                }
            }
            "expect" => {
                if value.eq_ignore_ascii_case("100-continue") {
                    expects_continue = true;
                } else {
                    return Err(bad(417, format!("cannot satisfy Expect `{value}`")));
                }
            }
            _ => {}
        }
    }

    if content_length > max_body_bytes {
        return Err(bad(
            413,
            format!("body of {content_length} bytes exceeds the {max_body_bytes}-byte limit"),
        ));
    }
    if expects_continue && content_length > 0 {
        writer.write_all(b"HTTP/1.1 100 Continue\r\n\r\n")?;
        writer.flush()?;
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).map_err(|e| {
        if is_timeout(&e) {
            // mid-request stall: the head arrived but the body did not
            // within the read timeout — tell the client before closing
            bad(408, "timed out waiting for the request body")
        } else {
            bad(400, "body shorter than Content-Length")
        }
    })?;

    let (path, query) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    Ok(Request {
        method: method.to_string(),
        path: percent_decode(path),
        query: parse_query(query),
        keep_alive,
        body,
    })
}

/// Reads one CRLF-terminated line, enforcing the head-size limit across
/// calls. `Ok(None)` signals EOF before any byte. A read timeout before the
/// first byte of a request is an idle keep-alive connection
/// ([`ReadError::Closed`], dropped silently); once any byte of the head has
/// arrived the same timeout is a mid-request stall and becomes a 408.
fn read_line<R: BufRead>(
    reader: &mut R,
    head_bytes: &mut usize,
) -> Result<Option<String>, ReadError> {
    let mut raw = Vec::new();
    let budget = MAX_HEAD_BYTES.saturating_sub(*head_bytes) as u64 + 1;
    let n = match reader.by_ref().take(budget).read_until(b'\n', &mut raw) {
        Ok(n) => n,
        Err(e) => {
            let mid_request = *head_bytes > 0 || !raw.is_empty();
            return Err(if is_timeout(&e) && mid_request {
                bad(408, "timed out mid-request")
            } else {
                ReadError::Closed
            });
        }
    };
    if n == 0 {
        return Ok(None);
    }
    *head_bytes += n;
    if *head_bytes > MAX_HEAD_BYTES {
        return Err(bad(431, "request head too large"));
    }
    while matches!(raw.last(), Some(b'\n' | b'\r')) {
        raw.pop();
    }
    String::from_utf8(raw).map(Some).map_err(|_| bad(400, "request head is not UTF-8"))
}

/// Splits and percent-decodes a query string.
fn parse_query(query: &str) -> Vec<(String, String)> {
    query
        .split('&')
        .filter(|part| !part.is_empty())
        .map(|part| match part.split_once('=') {
            Some((k, v)) => (percent_decode(k), percent_decode(v)),
            None => (percent_decode(part), String::new()),
        })
        .collect()
}

/// Decodes `%XX` escapes and `+` (space); invalid escapes pass through.
fn percent_decode(s: &str) -> String {
    let bytes = s.as_bytes();
    let mut out = Vec::with_capacity(bytes.len());
    let mut i = 0;
    while i < bytes.len() {
        match bytes[i] {
            b'+' => {
                out.push(b' ');
                i += 1;
            }
            // decode on raw bytes: slicing `s` here could split a
            // multi-byte char after an invalid escape and panic
            b'%' if i + 3 <= bytes.len()
                && bytes[i + 1].is_ascii_hexdigit()
                && bytes[i + 2].is_ascii_hexdigit() =>
            {
                let hi = (bytes[i + 1] as char).to_digit(16).expect("hexdigit");
                let lo = (bytes[i + 2] as char).to_digit(16).expect("hexdigit");
                out.push((hi * 16 + lo) as u8);
                i += 3;
            }
            b => {
                out.push(b);
                i += 1;
            }
        }
    }
    String::from_utf8_lossy(&out).into_owned()
}

/// Reason phrases for the statuses this service emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        201 => "Created",
        202 => "Accepted",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        410 => "Gone",
        413 => "Payload Too Large",
        417 => "Expectation Failed",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        501 => "Not Implemented",
        503 => "Service Unavailable",
        504 => "Gateway Timeout",
        505 => "HTTP Version Not Supported",
        _ => "Unknown",
    }
}

/// `Content-Type` of every JSON endpoint.
pub const CONTENT_TYPE_JSON: &str = "application/json";

/// `Content-Type` of the Prometheus text exposition (`GET /v1/metrics`).
pub const CONTENT_TYPE_PROMETHEUS: &str = "text/plain; version=0.0.4; charset=utf-8";

/// Writes a complete JSON response.
pub fn write_response<W: Write>(
    writer: &mut W,
    status: u16,
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_with(writer, status, &[], body, keep_alive)
}

/// [`write_response`] with extra headers (e.g. `Retry-After` on 503s)
/// inserted between the fixed block and `Content-Length`.
pub fn write_response_with<W: Write>(
    writer: &mut W,
    status: u16,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write_response_typed(writer, status, CONTENT_TYPE_JSON, extra_headers, body, keep_alive)
}

/// [`write_response_with`] with an explicit `Content-Type` — the metrics
/// endpoint speaks Prometheus text, everything else JSON.
pub fn write_response_typed<W: Write>(
    writer: &mut W,
    status: u16,
    content_type: &str,
    extra_headers: &[(&str, String)],
    body: &[u8],
    keep_alive: bool,
) -> std::io::Result<()> {
    write!(
        writer,
        "HTTP/1.1 {status} {}\r\nServer: saturn\r\nContent-Type: {content_type}\r\n",
        reason(status),
    )?;
    for (name, value) in extra_headers {
        write!(writer, "{name}: {value}\r\n")?;
    }
    write!(
        writer,
        "Content-Length: {}\r\nConnection: {}\r\n\r\n",
        body.len(),
        if keep_alive { "keep-alive" } else { "close" },
    )?;
    writer.write_all(body)?;
    writer.flush()
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::io::BufReader;

    fn parse(raw: &str) -> Result<Request, ReadError> {
        parse_with_limit(raw, 1 << 20)
    }

    fn parse_with_limit(raw: &str, limit: usize) -> Result<Request, ReadError> {
        let mut reader = BufReader::new(raw.as_bytes());
        let mut sink = Vec::new();
        read_request(&mut reader, &mut sink, limit)
    }

    #[test]
    fn parses_post_with_body_and_query() {
        let req = parse(
            "POST /v1/analyze?directed=1&points=12&name=a%20b HTTP/1.1\r\n\
             Host: x\r\nContent-Length: 5\r\n\r\nhello",
        )
        .unwrap();
        assert_eq!(req.method, "POST");
        assert_eq!(req.path, "/v1/analyze");
        assert_eq!(req.param("points"), Some("12"));
        assert_eq!(req.param("name"), Some("a b"));
        assert!(req.flag("directed"));
        assert!(!req.flag("absent"));
        assert!(req.keep_alive);
        assert_eq!(req.body, b"hello");
    }

    #[test]
    fn connection_close_and_http10_disable_keep_alive() {
        let req = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
        let req = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!req.keep_alive);
    }

    #[test]
    fn oversized_body_is_413() {
        let err =
            parse_with_limit("POST / HTTP/1.1\r\nContent-Length: 100\r\n\r\n", 10).unwrap_err();
        assert!(matches!(err, ReadError::Bad(413, _)));
    }

    #[test]
    fn oversized_head_is_431() {
        let raw = format!("GET / HTTP/1.1\r\nX-Pad: {}\r\n\r\n", "y".repeat(MAX_HEAD_BYTES));
        let err = parse(&raw).unwrap_err();
        assert!(matches!(err, ReadError::Bad(431, _)));
    }

    #[test]
    fn chunked_is_rejected() {
        let err = parse("POST / HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n").unwrap_err();
        assert!(matches!(err, ReadError::Bad(501, _)));
    }

    #[test]
    fn expect_continue_is_acknowledged() {
        let raw = "POST / HTTP/1.1\r\nExpect: 100-continue\r\nContent-Length: 2\r\n\r\nok";
        let mut reader = BufReader::new(raw.as_bytes());
        let mut interim = Vec::new();
        let req = read_request(&mut reader, &mut interim, 1 << 20).unwrap();
        assert_eq!(req.body, b"ok");
        assert!(String::from_utf8_lossy(&interim).contains("100 Continue"));
    }

    #[test]
    fn eof_is_clean_close() {
        assert!(matches!(parse("").unwrap_err(), ReadError::Closed));
    }

    #[test]
    fn truncated_body_is_400() {
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, ReadError::Bad(400, _)));
    }

    #[test]
    fn percent_decoding_survives_invalid_escapes_and_multibyte_input() {
        assert_eq!(percent_decode("a%20b+c"), "a b c");
        assert_eq!(percent_decode("100%"), "100%");
        // '%' followed by a non-hex multi-byte char must not panic
        assert_eq!(percent_decode("x=%aé"), "x=%aé");
        assert_eq!(percent_decode("%é0"), "%é0");
        assert_eq!(percent_decode("%C3%A9"), "é");
    }

    #[test]
    fn response_has_content_length_and_connection() {
        let mut out = Vec::new();
        write_response(&mut out, 200, b"{}", true).unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 200 OK\r\n"));
        assert!(text.contains("Content-Length: 2\r\n"));
        assert!(text.contains("Connection: keep-alive\r\n"));
        assert!(text.ends_with("\r\n\r\n{}"));
    }

    #[test]
    fn extra_headers_are_emitted_before_content_length() {
        let mut out = Vec::new();
        write_response_with(&mut out, 503, &[("Retry-After", "7".to_string())], b"{}", false)
            .unwrap();
        let text = String::from_utf8(out).unwrap();
        assert!(text.starts_with("HTTP/1.1 503 Service Unavailable\r\n"));
        assert!(text.contains("Retry-After: 7\r\n"));
        assert!(text.contains("Connection: close\r\n"));
    }

    /// Serves `head` then fails every further read with a timeout error —
    /// the shape of a stalled peer under `SO_RCVTIMEO`.
    struct Stall<'a> {
        head: &'a [u8],
        served: usize,
    }

    impl Read for Stall<'_> {
        fn read(&mut self, buf: &mut [u8]) -> std::io::Result<usize> {
            if self.served < self.head.len() {
                let n = buf.len().min(self.head.len() - self.served);
                buf[..n].copy_from_slice(&self.head[self.served..self.served + n]);
                self.served += n;
                return Ok(n);
            }
            Err(std::io::Error::new(std::io::ErrorKind::WouldBlock, "timed out"))
        }
    }

    fn parse_stalled(head: &[u8]) -> Result<Request, ReadError> {
        let mut reader = BufReader::new(Stall { head, served: 0 });
        let mut sink = Vec::new();
        read_request(&mut reader, &mut sink, 1 << 20)
    }

    #[test]
    fn idle_timeout_before_any_byte_is_a_silent_close() {
        // keep-alive connection with no next request: not an error
        assert!(matches!(parse_stalled(b"").unwrap_err(), ReadError::Closed));
    }

    #[test]
    fn stall_inside_the_request_line_is_408() {
        let err = parse_stalled(b"POST /v1/ana").unwrap_err();
        assert!(matches!(err, ReadError::Bad(408, _)), "got {err:?}");
    }

    #[test]
    fn stall_inside_headers_is_408() {
        let err = parse_stalled(b"POST / HTTP/1.1\r\nContent-Le").unwrap_err();
        assert!(matches!(err, ReadError::Bad(408, _)), "got {err:?}");
    }

    #[test]
    fn stall_inside_the_body_is_408() {
        let err =
            parse_stalled(b"POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, ReadError::Bad(408, _)), "got {err:?}");
        // a clean disconnect mid-body stays a 400 (peer is gone anyway)
        let err = parse("POST / HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc").unwrap_err();
        assert!(matches!(err, ReadError::Bad(400, _)), "got {err:?}");
    }
}
