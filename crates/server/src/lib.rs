//! `saturn-server` — the analysis surface of this workspace as a long-lived
//! concurrent HTTP service.
//!
//! The paper closes on the method being "fully automatic and does not
//! require any parameter as input. Therefore, it can easily been
//! incorporated into any automatic tool for analyzing dynamic networks"
//! (Léo, Crespelle & Fleury, CoNEXT 2015). This crate is that incorporation
//! point: instead of a one-shot CLI re-running the sweep from scratch per
//! invocation, a daemon that parses traces out of request bodies, serves
//! repeated analyses from a content-addressed report cache, and dispatches
//! cold sweeps onto one process-wide [`WorkerPool`](saturn_core::parallel::WorkerPool).
//!
//! ```text
//! POST /v1/analyze?directed=1&points=48&sample=64&seed=1&tile=0&no_delta=0&no_incremental=0[&async=1]   trace body → occupancy report
//! POST /v1/validate?points=32&weighted=1&delta_min=1[&async=1]       trace body → loss curves
//! POST /v1/stats?directed=1                                          trace body → stream statistics
//! GET  /v1/jobs/<id>[?wait=1]                                        async job status / result
//! GET  /v1/health                                                    cache + queue counters
//! ```
//!
//! Bodies are plain or KONECT-layout traces — exactly what
//! [`saturn_linkstream::io`] accepts from files. Responses are JSON; an
//! analyze response is byte-for-byte [`OccupancyReport::to_json`], so the
//! CLI's `--json` output and the service speak one shape.
//!
//! Built on `std::net::TcpListener` only: the deployment container is
//! offline and the workspace policy is zero external dependencies.

pub mod cache;
pub mod http;
pub mod jobs;

pub use cache::{CacheStats, ReportCache};
pub use jobs::{JobManager, JobOutcome, JobPhase, JobStats};

use http::{error_body, read_request, write_response, ReadError, Request};
use saturn_core::fingerprint::{self, Digest};
use saturn_core::{
    validation_sweep_on, OccupancyMethod, SweepGrid, TargetSpec, ValidationOptions,
};
use saturn_linkstream::{io as stream_io, Directedness, LinkStream};
use serde_json::Value;
use std::io::BufReader;
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Sweep worker pool parallelism (0 = all available cores).
    pub threads: usize,
    /// Target-tile width for analyze sweeps, in columns (0 = automatic).
    /// Splits each scale's DP across the pool; purely an execution knob —
    /// reports are bit-identical for every width, so it never enters cache
    /// fingerprints. Overridable per request with `?tile=N`.
    pub tile: usize,
    /// Disable the DP engine's delta propagation for analyze sweeps. Like
    /// `tile`, an execution knob for ablation scripting: results are
    /// bit-identical either way, so it never enters cache fingerprints.
    /// Overridable per request with `?no_delta=1`.
    pub no_delta: bool,
    /// Disable incremental (adjacent-window merge) timeline construction
    /// for analyze sweeps. Like `tile` and `no_delta`, an execution knob
    /// for ablation scripting: merged timelines are field-for-field
    /// identical to scratch-built ones, so results match byte for byte and
    /// the knob never enters cache fingerprints. Overridable per request
    /// with `?no_incremental=1`.
    pub no_incremental: bool,
    /// Report cache budget in bytes (0 disables caching).
    pub cache_bytes: usize,
    /// Maximum jobs waiting in the queue before submissions get 503.
    pub queue_depth: usize,
    /// Maximum accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Maximum concurrently served connections before new ones get 503.
    pub max_connections: usize,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 0,
            tile: 0,
            no_delta: false,
            no_incremental: false,
            cache_bytes: 64 << 20,
            queue_depth: 64,
            max_body_bytes: 64 << 20,
            max_connections: 256,
        }
    }
}

/// State shared by every connection thread.
struct ServerContext {
    /// Behind its own `Arc` so job closures (which outlive the request)
    /// can own a handle and populate it on completion.
    cache: Arc<ReportCache>,
    jobs: JobManager,
    tile: usize,
    no_delta: bool,
    no_incremental: bool,
    max_body_bytes: usize,
    max_connections: usize,
    active_connections: AtomicUsize,
    stopping: AtomicBool,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerContext>,
}

impl Server {
    /// Binds the listener and starts the job executor (which spawns the
    /// shared worker pool).
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        Ok(Server {
            listener,
            ctx: Arc::new(ServerContext {
                cache: Arc::new(ReportCache::new(config.cache_bytes)),
                jobs: JobManager::new(config.threads, config.queue_depth),
                tile: config.tile,
                no_delta: config.no_delta,
                no_incremental: config.no_incremental,
                max_body_bytes: config.max_body_bytes,
                max_connections: config.max_connections,
                active_connections: AtomicUsize::new(0),
                stopping: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `saturn serve` entry
    /// point).
    pub fn run(self) -> std::io::Result<()> {
        accept_loop(self.listener, self.ctx);
        Ok(())
    }

    /// Serves on a background thread; the handle stops the accept loop on
    /// demand (tests, benches).
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let ctx = Arc::clone(&self.ctx);
        let accept = std::thread::Builder::new()
            .name("saturn-accept".into())
            .spawn(move || accept_loop(self.listener, self.ctx))?;
        Ok(ServerHandle { addr, ctx, accept: Some(accept) })
    }
}

/// Controls a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served drain on their own threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.ctx.stopping.store(true, Ordering::SeqCst);
            // wake the blocking accept with a no-op connection
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerContext>) {
    for stream in listener.incoming() {
        if ctx.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        let active = ctx.active_connections.fetch_add(1, Ordering::SeqCst) + 1;
        if active > ctx.max_connections {
            let mut stream = stream;
            let _ = write_response(
                &mut stream,
                503,
                &error_body("connection limit reached"),
                false,
            );
            ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new().name("saturn-conn".into()).spawn(move || {
            // decrement via a drop guard: a panicking handler must not leak
            // its connection slot (leaked slots would eventually turn every
            // accept into a 503)
            struct Slot<'a>(&'a ServerContext);
            impl Drop for Slot<'_> {
                fn drop(&mut self) {
                    self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _slot = Slot(&ctx);
            serve_connection(stream, &ctx);
        });
    }
}

/// Idle keep-alive connections are dropped after this long without a
/// request.
const KEEP_ALIVE_TIMEOUT: Duration = Duration::from_secs(10);

fn serve_connection(stream: TcpStream, ctx: &ServerContext) {
    let _ = stream.set_read_timeout(Some(KEEP_ALIVE_TIMEOUT));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        let request = match read_request(&mut reader, &mut writer, ctx.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::Bad(status, msg)) => {
                let _ = write_response(&mut writer, status, &error_body(&msg), false);
                return;
            }
        };
        let keep_alive = request.keep_alive;
        let (status, body) = route(&request, ctx);
        if write_response(&mut writer, status, body.as_bytes(), keep_alive).is_err()
            || !keep_alive
        {
            return;
        }
    }
}

/// A response body: bytes built for this request, or a shared allocation
/// straight out of the report cache / job table — cache hits go to the
/// socket without copying the report.
enum Body {
    Built(Vec<u8>),
    Shared(Arc<str>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Built(bytes) => bytes,
            Body::Shared(body) => body.as_bytes(),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Self {
        Body::Built(bytes)
    }
}

impl From<Arc<str>> for Body {
    fn from(body: Arc<str>) -> Self {
        Body::Shared(body)
    }
}

/// Dispatches one request; returns `(status, body)`.
fn route(request: &Request, ctx: &ServerContext) -> (u16, Body) {
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/analyze") => endpoint_analyze(request, ctx),
        ("POST", "/v1/validate") => endpoint_validate(request, ctx),
        ("POST", "/v1/stats") => endpoint_stats(request, ctx),
        ("GET", "/v1/health") => Ok(endpoint_health(ctx)),
        ("GET", path) if path.starts_with("/v1/jobs/") => endpoint_job(request, ctx),
        ("GET", "/v1/analyze" | "/v1/validate" | "/v1/stats") | ("POST", "/v1/health") => {
            Err((405, "wrong method for this endpoint (analysis endpoints take POST)".into()))
        }
        _ => Err((404, format!("no route for {} {}", request.method, request.path))),
    };
    match outcome {
        Ok((status, body)) => (status, body),
        Err((status, msg)) => (status, error_body(&msg).into()),
    }
}

type Handled = Result<(u16, Body), (u16, String)>;

/// Parses a numeric query parameter, defaulting when absent.
fn numeric<T: std::str::FromStr>(
    request: &Request,
    key: &str,
    default: T,
) -> Result<T, (u16, String)>
where
    T::Err: std::fmt::Display,
{
    match request.param(key) {
        None => Ok(default),
        Some(raw) => {
            raw.parse().map_err(|e| (400, format!("query parameter {key}={raw}: {e}")))
        }
    }
}

/// Parses the trace body under the request's directedness.
fn parse_stream(request: &Request) -> Result<LinkStream, (u16, String)> {
    let directedness = if request.flag("directed") {
        Directedness::Directed
    } else {
        Directedness::Undirected
    };
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| (400, "trace body is not UTF-8".to_string()))?;
    stream_io::read_str(text, directedness).map_err(|e| (400, format!("trace body: {e}")))
}

/// Target spec from `sample` / `seed` parameters (absent `sample` = exact).
fn parse_targets(request: &Request) -> Result<TargetSpec, (u16, String)> {
    Ok(match request.param("sample") {
        None => TargetSpec::All,
        Some(_) => TargetSpec::Sample {
            size: numeric(request, "sample", 0u32)?,
            seed: numeric(request, "seed", 1u64)?,
        },
    })
}

/// Serves from cache, or submits `make_work` as a job and (unless
/// `async=1`) waits for it. The shared plumbing of the two sweep endpoints.
fn cached_or_submitted(
    request: &Request,
    ctx: &ServerContext,
    key: u128,
    work: jobs::JobWork,
) -> Handled {
    if let Some(body) = ctx.cache.get(key) {
        return Ok((200, body.into()));
    }
    let id = ctx
        .jobs
        .submit(Some(key), work)
        .map_err(|jobs::Busy| (503, "job queue is full, retry later".to_string()))?;
    if request.flag("async") {
        return Ok((
            202,
            job_status_body(id, ctx.jobs.phase(id).unwrap_or(JobPhase::Queued)).into(),
        ));
    }
    let outcome = ctx
        .jobs
        .wait(id)
        .ok_or_else(|| (500, "job expired before its outcome was read".to_string()))?;
    Ok((outcome.status, outcome.body.into()))
}

fn endpoint_analyze(request: &Request, ctx: &ServerContext) -> Handled {
    let stream = parse_stream(request)?;
    let points = numeric(request, "points", 48usize)?;
    let targets = parse_targets(request)?;
    // execution knobs only: tiled, delta-filtered, and incrementally built
    // reports are bit-identical to untiled / unfiltered / scratch-built
    // ones, so `tile`, `no_delta`, and `no_incremental` stay OUT of the
    // fingerprint — a request served from an entry computed under different
    // execution settings returns the same bytes the cold run would have
    // produced
    let tile = numeric(request, "tile", ctx.tile)?;
    let no_delta = numeric::<u8>(request, "no_delta", ctx.no_delta as u8)? != 0;
    let no_incremental =
        numeric::<u8>(request, "no_incremental", ctx.no_incremental as u8)? != 0;
    let grid = SweepGrid::Geometric { points };

    let mut digest = Digest::new("saturn.analyze.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    fingerprint::write_grid(&mut digest, &grid);
    fingerprint::write_targets(&mut digest, &targets);
    let key = digest.finish();

    let cache_insert = cache_filler(Arc::clone(&ctx.cache), key);
    let work: jobs::JobWork = Box::new(move |pool| {
        let report = OccupancyMethod::new()
            .grid(grid)
            .targets(targets)
            .tile(tile)
            .no_delta_propagation(no_delta)
            .no_incremental_timeline(no_incremental)
            .run_on(&stream, pool);
        cache_insert(report.to_json())
    });
    cached_or_submitted(request, ctx, key, work)
}

fn endpoint_validate(request: &Request, ctx: &ServerContext) -> Handled {
    let stream = parse_stream(request)?;
    let points = numeric(request, "points", 48usize)?;
    let targets = parse_targets(request)?;
    let grid = SweepGrid::Geometric { points };
    let options = ValidationOptions {
        threads: 0, // ignored on the shared pool
        delta_min: numeric(request, "delta_min", 1i64)?,
        weighted_transitions: request.param("weighted").is_none_or(|v| v != "0"),
    };

    let mut digest = Digest::new("saturn.validate.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    fingerprint::write_grid(&mut digest, &grid);
    fingerprint::write_targets(&mut digest, &targets);
    digest.write_i64(options.delta_min);
    digest.write_u64(options.weighted_transitions as u64);
    let key = digest.finish();

    let cache_insert = cache_filler(Arc::clone(&ctx.cache), key);
    let work: jobs::JobWork = Box::new(move |pool| {
        let report = validation_sweep_on(&stream, &grid, targets, &options, pool);
        let json = serde_json::to_string_pretty(&report).expect("report serializes");
        cache_insert(json)
    });
    cached_or_submitted(request, ctx, key, work)
}

fn endpoint_stats(request: &Request, ctx: &ServerContext) -> Handled {
    let stream = parse_stream(request)?;
    let mut digest = Digest::new("saturn.stats.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    let key = digest.finish();
    if let Some(body) = ctx.cache.get(key) {
        return Ok((200, body.into()));
    }
    // stats are a single pass over the events — computed inline on the
    // connection thread, never queued behind sweeps
    let body: Arc<str> =
        Arc::from(serde_json::to_string_pretty(&stream.stats()).expect("stats serialize"));
    ctx.cache.insert(key, Arc::clone(&body));
    Ok((200, body.into()))
}

fn endpoint_job(request: &Request, ctx: &ServerContext) -> Handled {
    let raw_id = request.path.strip_prefix("/v1/jobs/").expect("routed by prefix");
    let id: u64 = raw_id.parse().map_err(|_| (404, format!("malformed job id `{raw_id}`")))?;
    if request.flag("wait") {
        let outcome =
            ctx.jobs.wait(id).ok_or_else(|| (404, format!("unknown or expired job {id}")))?;
        return Ok((outcome.status, outcome.body.into()));
    }
    let phase =
        ctx.jobs.phase(id).ok_or_else(|| (404, format!("unknown or expired job {id}")))?;
    match ctx.jobs.outcome(id) {
        Some(outcome) => Ok((outcome.status, outcome.body.into())),
        None => Ok((200, job_status_body(id, phase).into())),
    }
}

fn endpoint_health(ctx: &ServerContext) -> (u16, Body) {
    let body = Value::Object(vec![
        ("status".to_string(), Value::String("ok".to_string())),
        (
            "cache".to_string(),
            serde_json::to_value(&ctx.cache.stats()).expect("stats serialize"),
        ),
        ("jobs".to_string(), serde_json::to_value(&ctx.jobs.stats()).expect("stats serialize")),
        (
            "active_connections".to_string(),
            Value::Int(ctx.active_connections.load(Ordering::SeqCst) as i128),
        ),
    ]);
    (200, body.to_string_pretty().into_bytes().into())
}

fn job_status_body(id: u64, phase: JobPhase) -> Vec<u8> {
    let phase = match phase {
        JobPhase::Queued => "queued",
        JobPhase::Running => "running",
        JobPhase::Done => "done",
    };
    Value::Object(vec![
        ("job".to_string(), Value::Int(id as i128)),
        ("status".to_string(), Value::String(phase.to_string())),
    ])
    .to_string_pretty()
    .into_bytes()
}

/// A closure for job bodies: takes the serialized report, populates the
/// cache, and builds the outcome from the *cached* allocation — cold and
/// hit responses are therefore the same bytes by construction.
fn cache_filler(
    cache: Arc<ReportCache>,
    key: u128,
) -> impl FnOnce(String) -> JobOutcome + Send {
    move |json: String| {
        let body: Arc<str> = Arc::from(json);
        cache.insert(key, Arc::clone(&body));
        JobOutcome { status: 200, body }
    }
}
