//! `saturn-server` — the analysis surface of this workspace as a long-lived
//! concurrent HTTP service.
//!
//! The paper closes on the method being "fully automatic and does not
//! require any parameter as input. Therefore, it can easily been
//! incorporated into any automatic tool for analyzing dynamic networks"
//! (Léo, Crespelle & Fleury, CoNEXT 2015). This crate is that incorporation
//! point: instead of a one-shot CLI re-running the sweep from scratch per
//! invocation, a daemon that parses traces out of request bodies, serves
//! repeated analyses from a content-addressed report cache, and dispatches
//! cold sweeps onto one process-wide [`WorkerPool`](saturn_core::parallel::WorkerPool).
//!
//! ```text
//! POST /v1/analyze?directed=1&points=48&sample=64&seed=1&tile=0&no_delta=0&no_incremental=0&deadline_ms=0[&async=1]   trace body → occupancy report
//! POST /v1/validate?points=32&weighted=1&delta_min=1&deadline_ms=0[&async=1]   trace body → loss curves
//! POST /v1/stats?directed=1                                          trace body → stream statistics
//! POST /v1/streams?t_begin=A&t_end=B[&directed=1]                    open a streaming ingest session (body may seed events)
//! POST /v1/streams/<id>/events                                       append a batch of events (all-or-nothing)
//! POST /v1/streams/<id>/analyze?points=48…[&async=1]                 incremental re-analysis of the session's stream
//! GET  /v1/jobs/<id>[?wait=1]                                        async job status / result
//! GET  /v1/health                                                    cache + queue + lifecycle counters
//! GET  /v1/metrics                                                   Prometheus text exposition
//! ```
//!
//! Bodies are plain or KONECT-layout traces — exactly what
//! [`saturn_linkstream::io`] accepts from files. Responses are JSON; an
//! analyze response is byte-for-byte [`OccupancyReport::to_json`], so the
//! CLI's `--json` output and the service speak one shape.
//!
//! Built on `std::net::TcpListener` only: the deployment container is
//! offline and the workspace policy is zero external dependencies.
//!
//! # Request lifecycle & failure semantics
//!
//! Every request moves through admission → queue → sweep → response, and
//! each stage can refuse or abort it with a structured status:
//!
//! | status | meaning | body / headers |
//! |--------|---------|----------------|
//! | `408 Request Timeout` | the peer stalled *mid-request* (head or body arrived partially, then nothing within the read timeout); an *idle* keep-alive connection is closed silently instead | `{"error": …}`, connection closed |
//! | `503 Service Unavailable` | backpressure: job queue full, connection limit reached, admission control predicts the deadline cannot be met, or the server is draining | `Retry-After: <secs>` derived from the EWMA backlog estimate |
//! | `504 Gateway Timeout` | the request's deadline expired while its job was queued or running; the sweep was cancelled cooperatively | `{"error", "scales_done", "scales_total"}` partial-progress counters |
//! | `500 Internal Server Error` | the sweep panicked (caught; the executor survives), or the supervisor finalized the job after its executor died or stalled past the liveness budget | `{"error": …}` — supervisor-finalized bodies carry `scales_done` / `scales_total` partial progress |
//!
//! **Error envelope.** Every error body on every route, from every layer,
//! is the one shape built by [`error_envelope`]:
//!
//! ```json
//! {"error": {"code": "…", "message": "…", "retryable": bool,
//!            "scales_done"?: int, "scales_total"?: int}}
//! ```
//!
//! `code` is the machine-readable contract (`message` is human detail,
//! free to change). The registry:
//!
//! | code | status | raised when |
//! |------|--------|-------------|
//! | `bad_request` | 400 | malformed query parameter, trace body, or stream-session request |
//! | `not_found` | 404 | unknown route, unknown job id, or unknown stream-session id |
//! | `method_not_allowed` | 405 | wrong verb on a known route |
//! | `request_timeout` | 408 | peer stalled mid-request |
//! | `gone` | 410 | stream session evicted past its idle TTL (id was valid once, is gone now) |
//! | `payload_too_large` | 413 | body over the configured byte cap |
//! | `expectation_failed` | 417 | unsupported `Expect:` header |
//! | `headers_too_large` | 431 | request head over the line/size caps |
//! | `internal` | 500 | any other unexpected server failure (the default 500 code) |
//! | `panicked` | 500 | the sweep panicked; the executor caught it and survives |
//! | `executor_failed` | 500 | the supervisor finalized the job after its executor died or stalled past the liveness budget (body carries partial progress) |
//! | `job_expired` | 500 | job outcome evicted before this waiter read it |
//! | `not_implemented` | 501 | unsupported transfer encoding |
//! | `queue_full` | 503 | the routed shard's bounded queue is full |
//! | `would_expire` | 503 | admission control: estimated queue wait alone exceeds the deadline |
//! | `connection_limit` | 503 | concurrent-connection cap reached |
//! | `stream_limit` | 503 | `--max-streams` open ingest sessions already exist |
//! | `draining` | 503, 504 | 503: lame-duck refusal of new work after SIGTERM/SIGINT; 504: a running job cancelled because the drain budget expired |
//! | `deadline_exceeded` | 504 | deadline fired while the job was queued or running |
//! | `fault_injected` | 504 | an armed fault-injection directive cancelled the job |
//! | `stalled` | 504 | stall supervision cancelled a job making no sweep progress |
//! | `cancelled` | 504 | the job's cancel token fired without a recorded cause (fallback) |
//! | `http_version_unsupported` | 505 | non-HTTP/1.x request line |
//!
//! Every 503 carries `Retry-After`; `retryable` is `true` exactly for
//! statuses 408, 500, 503 and 504. [`params`] centralizes query parsing so
//! a typo'd knob is a structured `bad_request` naming the parameter, never
//! a silent default.
//!
//! **Deadlines.** `?deadline_ms=N` (or the `--default-deadline-ms` serve
//! flag; `0` = none) bounds a request end to end. A watchdog finalizes
//! queued jobs whose deadline passes without executing them, and fires the
//! [`CancelToken`](saturn_core::CancelToken) of a running job past its
//! deadline — the sweep stops at its next tile / DP-stride poll. Admission
//! control multiplies the EWMA of recent job service times by the backlog
//! length and refuses up front (`503`, not `504`) when the wait alone
//! already exceeds the deadline. Cancellation is an execution knob like
//! tiling: a token that never fires leaves report bytes and cache
//! fingerprints untouched, and cancelled jobs never populate the cache.
//!
//! **Sharding & supervision.** `--executors N` partitions the job system
//! into N shards — each with its own bounded queue, executor thread,
//! worker pool, EWMA wait estimate, and deadline watchdog — routed by
//! `fingerprint % N`, so in-flight coalescing still holds per shard. A
//! supervisor thread restarts dead executors with capped exponential
//! backoff (in-flight job finalized as a structured `500`, queued jobs
//! preserved) and escalates stalled shards from token-cancel to restart.
//! Admission control and `Retry-After` compute from the routed shard's own
//! backlog × its own EWMA. Shard count is an execution knob: report bytes
//! and cache fingerprints are byte-identical for every `--executors`
//! value. See [`jobs`] for the full design.
//!
//! **Streaming ingest sessions.** `POST /v1/streams?t_begin=A&t_end=B`
//! opens a session that *pins* the analysis period and directedness up
//! front (a growing trace must not let the observed span drift between
//! refreshes, or scales would be incomparable). `POST
//! /v1/streams/<id>/events` appends a parsed batch all-or-nothing — a
//! malformed line or an out-of-period timestamp rejects the whole batch
//! with `bad_request` and the session is untouched. `POST
//! /v1/streams/<id>/analyze` re-analyzes the grown stream *incrementally*:
//! the session owns a [`SweepCache`](saturn_core::SweepCache) and the
//! refresh ([`OccupancyMethod::try_refresh_on`](saturn_core::OccupancyMethod::try_refresh_on))
//! splices only the dirty suffix of each scale's window timeline, reuses
//! every scale whose timeline is provably unchanged by the appends, and
//! recomputes the rest — with the hard invariant (held by a CI byte-compare
//! and the bench's `streaming` section) that the report is byte-identical
//! to a scratch `POST /v1/analyze` of the same events. Refresh results
//! enter the same content-addressed response cache as `/v1/analyze`
//! (same fingerprint: stream digest + grid + targets), so either surface
//! can serve the other's artifact. Sessions idle past `--stream-ttl-secs`
//! are evicted (`410 gone`); more than `--max-streams` concurrent sessions
//! refuse creation with `503 stream_limit` + `Retry-After`. Concurrent
//! refreshes of one session are ordered by a snapshot watermark on its
//! sweep state: a refresh outrun by a newer one (possible across executor
//! shards) recomputes from scratch without touching session state — and
//! the [`SweepCache`](saturn_core::SweepCache) is itself stamped with the
//! stream identity it was built from, so the core layer independently
//! rejects inconsistent snapshots. See [`streams`] for the session table
//! and locking design.
//!
//! **Graceful drain.** On `SIGTERM`/`SIGINT`, `saturn serve` flips into
//! lame-duck mode: new connections get `503 + Retry-After`, queued and
//! running jobs on every shard get up to `--drain-secs` to finish,
//! stragglers are then cancelled via the same token path, and the process
//! exits `0`.
//!
//! **Durable cache & the disk degradation ladder.** `--cache-dir` (with a
//! `--cache-disk-mb` budget) attaches a crash-safe disk spill tier under
//! the in-memory report LRU: completed and evicted reports persist as
//! content-addressed, checksummed files written via temp-file + fsync +
//! atomic rename, a memory miss falls through to a verified disk read, and
//! graceful drain flushes pending spills before exit. The tier degrades
//! down a fixed ladder — **disk-ok → memory-only → recovery**:
//!
//! * *disk-ok* — spills persist asynchronously; memory misses are served
//!   byte-identically from disk and promoted back into memory.
//! * *memory-only* — any real I/O error (ENOSPC, EIO, permission) trips a
//!   circuit breaker: lookups miss and spills drop without touching the
//!   disk, and **no request ever fails** because of the tier. A probe is
//!   re-admitted on a capped exponential backoff (100ms → 5s); one success
//!   closes the breaker.
//! * *recovery* — at startup (including after SIGKILL) a scan rebuilds the
//!   disk index, deleting torn temp files and quarantining any entry whose
//!   checksum, length, magic, or name disagrees with its contents — counted
//!   in `saturn_cache_disk_corrupt_total`, never served, never a crash.
//!
//! Either tier disables cleanly: `--cache-mb 0` and `--cache-disk-mb 0`
//! allocate no structure at all for their tier. An unwritable `--cache-dir`
//! is a *startup* error (`serve` fails fast); see [`persist`] for the
//! format and [`cache`] for the tier composition.
//!
//! **Fault injection.** The `SATURN_FAULTS` environment variable (or
//! [`ServerConfig::faults`]) arms a [`FaultPlan`] — e.g.
//! `panic:analyze:0.1,slow:sweep:250ms,cancel_race:1` — that injects
//! panics, delays, and cancellation races at the job-execution,
//! HTTP-parse, and disk-persistence seams (`disk_write_err`, `disk_full`,
//! `disk_corrupt`, `disk_slow`). See [`faults`] for the grammar. Unset,
//! every hook is a no-op.
//!
//! # Telemetry
//!
//! One [`Metrics`] registry per server, shared by the cache, the job
//! manager, and every connection thread; `GET /v1/metrics` renders it as
//! Prometheus text (`text/plain; version=0.0.4`). The `/v1/health` cache
//! and job counters are *views over the same atomics*, so the two surfaces
//! can never disagree. Telemetry is observation only: nothing here enters
//! cache fingerprints or report bytes (the knob-matrix CI gate holds with
//! it active). Setting `SATURN_TRACE=json` at server start additionally
//! mirrors every completed sweep tile as a JSON line on stderr.
//!
//! Every exported metric:
//!
//! | metric | type | labels | meaning |
//! |--------|------|--------|---------|
//! | `saturn_requests_total` | counter | `route` ∈ analyze, validate, stats, health, jobs, metrics, other; `status` ∈ 2xx, 4xx, 5xx, other | finished HTTP requests |
//! | `saturn_queue_depth` | gauge | — | jobs waiting (not running) |
//! | `saturn_cache_bytes` | gauge | — | resident report-cache bytes |
//! | `saturn_cache_entries` | gauge | — | resident report-cache entries |
//! | `saturn_cache_hits_total` | counter | — | cache lookups that returned a body |
//! | `saturn_cache_misses_total` | counter | — | cache lookups that found nothing |
//! | `saturn_cache_evictions_total` | counter | — | entries evicted for the byte budget |
//! | `saturn_cache_disk_bytes` | gauge | — | bytes resident in the disk tier |
//! | `saturn_cache_disk_hits_total` | counter | — | disk lookups that served a verified body |
//! | `saturn_cache_disk_misses_total` | counter | — | disk lookups that found nothing |
//! | `saturn_cache_disk_writes_total` | counter | — | entries durably spilled to disk |
//! | `saturn_cache_disk_evictions_total` | counter | — | disk entries evicted for the byte budget |
//! | `saturn_cache_disk_corrupt_total` | counter | — | entries quarantined as torn/corrupt/oversize |
//! | `saturn_cache_disk_errors_total` | counter | — | disk I/O failures (each trips the breaker) |
//! | `saturn_jobs_executed_total` | counter | — | jobs run to any outcome |
//! | `saturn_jobs_completed_total` | counter | — | jobs finishing with their own outcome |
//! | `saturn_jobs_cancelled_total` | counter | — | deadline / drain / fault 504s |
//! | `saturn_jobs_panicked_total` | counter | — | jobs whose work panicked (500) |
//! | `saturn_jobs_coalesced_total` | counter | — | submissions attached to in-flight duplicates |
//! | `saturn_jobs_rejected_total` | counter | — | submissions refused with any 503 |
//! | `saturn_jobs_deadline_rejected_total` | counter | — | admission-control refusals |
//! | `saturn_shard_queue_depth` | gauge | `shard` | jobs waiting on one shard |
//! | `saturn_shard_ewma_job_seconds` | gauge | `shard` | one shard's EWMA of job service seconds |
//! | `saturn_shard_jobs_executed_total` | counter | `shard` | per-shard slice of `saturn_jobs_executed_total` |
//! | `saturn_shard_jobs_completed_total` | counter | `shard` | per-shard slice of `saturn_jobs_completed_total` |
//! | `saturn_shard_jobs_cancelled_total` | counter | `shard` | per-shard slice of `saturn_jobs_cancelled_total` |
//! | `saturn_shard_jobs_panicked_total` | counter | `shard` | per-shard slice of `saturn_jobs_panicked_total` |
//! | `saturn_shard_jobs_coalesced_total` | counter | `shard` | per-shard slice of `saturn_jobs_coalesced_total` |
//! | `saturn_shard_jobs_rejected_total` | counter | `shard` | per-shard slice of `saturn_jobs_rejected_total` |
//! | `saturn_shard_jobs_deadline_rejected_total` | counter | `shard` | per-shard slice of `saturn_jobs_deadline_rejected_total` |
//! | `saturn_executor_restarts_total` | counter | `shard` | supervisor restarts of one shard's executor |
//! | `saturn_stream_sessions_open` | gauge | — | streaming ingest sessions currently open |
//! | `saturn_stream_sessions_opened_total` | counter | — | sessions ever created |
//! | `saturn_stream_sessions_expired_total` | counter | — | sessions evicted past the idle TTL |
//! | `saturn_stream_events_appended_total` | counter | — | events accepted by append batches |
//! | `saturn_stream_refreshes_total` | counter | — | incremental re-analyses executed |
//! | `saturn_stream_scales_reused_total` | counter | — | scales served from the session cache without DP |
//! | `saturn_stream_tiles_skipped_total` | counter | — | DP tiles skipped by refresh reuse |
//! | `saturn_stream_suffix_windows_rebuilt_total` | counter | — | timeline windows respliced by refreshes |
//! | `saturn_stream_stale_refreshes_total` | counter | — | refreshes outrun by a newer refresh of their session, recomputed from scratch |
//! | `saturn_sweep_tiles_total` | counter | — | `(scale, tile)` DP items completed |
//! | `saturn_sweep_scales_total` | counter | — | scales fully analyzed |
//! | `saturn_dp_trips_total` | counter | — | minimal trips reported by the engines |
//! | `saturn_dp_traversals_total` | counter | — | edge traversals processed |
//! | `saturn_dp_chain_offers_total` | counter | — | chain offers after delta filtering |
//! | `saturn_dp_snap_entries_total` | counter | — | snapshot entries after delta filtering |
//! | `saturn_dp_degree1_steps_total` | counter | — | degree-1 fast-path steps |
//! | `saturn_parse_seconds` | histogram | — | request read + parse (includes peer I/O) |
//! | `saturn_handle_seconds` | histogram | — | routing + synchronous job wait |
//! | `saturn_serialize_seconds` | histogram | — | response write to the socket |
//! | `saturn_request_seconds` | histogram | — | end-to-end request wall time |
//! | `saturn_queue_wait_seconds` | histogram | — | submit → executor pop latency |
//! | `saturn_sweep_seconds` | histogram | — | job execution wall time on the pool |
//! | `saturn_tile_seconds` | histogram | — | one `(scale, tile)` DP wall time |
//!
//! Histogram buckets are powers of two over microseconds (`le` rendered in
//! seconds), so p50/p90/p99 extracted from a scrape are upper bounds within
//! 2× — see [`metrics::Histogram`].

pub mod cache;
pub mod faults;
pub mod http;
pub mod jobs;
pub mod metrics;
pub mod params;
pub mod persist;
pub mod signals;
pub mod streams;

pub use cache::{CacheStats, ReportCache};
pub use faults::{FaultPlan, FaultSite};
pub use jobs::{
    auto_executors, JobCtx, JobKind, JobManager, JobOutcome, JobPhase, JobStats, JobsConfig,
    Reject, ShardStats, WaitOutcome,
};
pub use metrics::{
    Counter, FloatGauge, Gauge, Histogram, Metrics, RequestTimings, ShardMetrics,
};
pub use params::{ParamDefaults, RequestParams};
pub use persist::{DiskStats, DiskTier};

use http::{
    read_request, write_response, write_response_typed, write_response_with, ReadError,
    Request, CONTENT_TYPE_JSON, CONTENT_TYPE_PROMETHEUS,
};
use metrics::route_label;
use saturn_core::fingerprint::{self, Digest};
use saturn_core::{try_validation_sweep_on, OccupancyMethod, SweepGrid, ValidationOptions};
use saturn_linkstream::{io as stream_io, Directedness, LinkStream};
use serde_json::Value;
use std::io::{BufReader, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::path::PathBuf;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Builds the one error-body shape this service emits, on every route and
/// at every layer (parse errors, routing, backpressure, job outcomes):
///
/// ```json
/// {"error": {"code": "…", "message": "…", "retryable": bool,
///            "scales_done"?: int, "scales_total"?: int}}
/// ```
///
/// `code` is a stable machine-readable identifier from the registry in the
/// crate-docs status table; `message` is human-readable detail (not an API
/// contract); `retryable` says whether the identical request may succeed if
/// simply retried later; `progress` attaches the partial-sweep counters
/// that 504s and supervisor-finalized 500s carry.
pub fn error_envelope(
    code: &str,
    message: &str,
    retryable: bool,
    progress: Option<(u64, u64)>,
) -> String {
    let mut fields = vec![
        ("code".to_string(), Value::String(code.to_string())),
        ("message".to_string(), Value::String(message.to_string())),
        ("retryable".to_string(), Value::Bool(retryable)),
    ];
    if let Some((done, total)) = progress {
        fields.push(("scales_done".to_string(), Value::Int(done as i128)));
        fields.push(("scales_total".to_string(), Value::Int(total as i128)));
    }
    Value::Object(vec![("error".to_string(), Value::Object(fields))]).to_string_pretty()
}

/// One routed failure: an HTTP status plus its envelope fields. Every
/// error a handler can produce flows through this type (or through
/// [`jobs::timeout_body`] for outcomes carrying progress counters), so
/// every error body in the service is built by [`error_envelope`].
#[derive(Clone, Debug)]
pub struct ApiError {
    /// HTTP status code.
    pub status: u16,
    /// Stable code from the registry in the crate-docs status table.
    pub code: &'static str,
    /// Human-readable detail.
    pub message: String,
    /// Whether the identical request may succeed if retried later.
    pub retryable: bool,
}

impl ApiError {
    /// An error carrying the default code and retryability of its status.
    pub fn new(status: u16, message: impl Into<String>) -> ApiError {
        ApiError {
            status,
            code: default_code(status),
            message: message.into(),
            retryable: status_is_retryable(status),
        }
    }

    /// An error with an explicit registry code (e.g. the three distinct
    /// 503 causes).
    pub fn with_code(status: u16, code: &'static str, message: impl Into<String>) -> ApiError {
        ApiError { code, ..ApiError::new(status, message) }
    }

    /// The envelope body for this error.
    pub fn body(&self) -> Vec<u8> {
        error_envelope(self.code, &self.message, self.retryable, None).into_bytes()
    }
}

/// The default registry code of a status; statuses with several causes
/// (503) get explicit codes at their call sites via [`ApiError::with_code`].
fn default_code(status: u16) -> &'static str {
    match status {
        400 => "bad_request",
        404 => "not_found",
        405 => "method_not_allowed",
        408 => "request_timeout",
        410 => "gone",
        413 => "payload_too_large",
        417 => "expectation_failed",
        431 => "headers_too_large",
        500 => "internal",
        501 => "not_implemented",
        503 => "unavailable",
        504 => "deadline_exceeded",
        505 => "http_version_unsupported",
        _ => "error",
    }
}

/// Server-side (5xx) failures and timeouts are retryable; client errors
/// are not — resending the same malformed request cannot succeed.
fn status_is_retryable(status: u16) -> bool {
    matches!(status, 408 | 500 | 503 | 504)
}

/// Tunables of one server instance.
#[derive(Clone, Debug)]
pub struct ServerConfig {
    /// Bind address, e.g. `127.0.0.1:7878` (port 0 picks an ephemeral one).
    pub addr: String,
    /// Sweep worker pool parallelism (0 = all available cores), split
    /// evenly across the executor shards.
    pub threads: usize,
    /// Executor shard count (0 = [`jobs::auto_executors`]): independent
    /// bounded queues + pools + watchdogs, routed by `fingerprint %
    /// executors`, supervised for panic/stall recovery. Purely an execution
    /// knob — report bytes and cache keys are identical for every count.
    pub executors: usize,
    /// Liveness budget for stall supervision: a running job making no
    /// sweep progress for this long is token-cancelled, for twice this
    /// long its executor is replaced ([`jobs::DEFAULT_STALL_BUDGET`];
    /// `Duration::ZERO` disables stall supervision).
    pub stall_budget: Duration,
    /// Target-tile width for analyze sweeps, in columns (0 = automatic).
    /// Splits each scale's DP across the pool; purely an execution knob —
    /// reports are bit-identical for every width, so it never enters cache
    /// fingerprints. Overridable per request with `?tile=N`.
    pub tile: usize,
    /// Disable the DP engine's delta propagation for analyze sweeps. Like
    /// `tile`, an execution knob for ablation scripting: results are
    /// bit-identical either way, so it never enters cache fingerprints.
    /// Overridable per request with `?no_delta=1`.
    pub no_delta: bool,
    /// Disable incremental (adjacent-window merge) timeline construction
    /// for analyze sweeps. Like `tile` and `no_delta`, an execution knob
    /// for ablation scripting: merged timelines are field-for-field
    /// identical to scratch-built ones, so results match byte for byte and
    /// the knob never enters cache fingerprints. Overridable per request
    /// with `?no_incremental=1`.
    pub no_incremental: bool,
    /// Report cache budget in bytes (0 disables the memory tier — no LRU
    /// is allocated).
    pub cache_bytes: usize,
    /// Directory for the durable disk spill tier (`None` disables it).
    /// Created if missing; an unwritable directory fails [`Server::bind`].
    pub cache_dir: Option<PathBuf>,
    /// Disk spill tier budget in bytes (0 disables the tier even when
    /// [`ServerConfig::cache_dir`] is set).
    pub cache_disk_bytes: usize,
    /// Maximum jobs waiting in the queue before submissions get 503.
    pub queue_depth: usize,
    /// Maximum accepted request body, bytes.
    pub max_body_bytes: usize,
    /// Maximum concurrently served connections before new ones get 503.
    pub max_connections: usize,
    /// Default request deadline in milliseconds (0 = none). Overridable
    /// per request with `?deadline_ms=N`.
    pub default_deadline_ms: u64,
    /// Graceful-drain budget in seconds: how long a shutdown signal lets
    /// queued and running jobs finish before cancelling stragglers.
    pub drain_secs: u64,
    /// Socket read timeout: idle keep-alive connections are dropped after
    /// this long, a mid-request stall this long is answered with 408.
    pub read_timeout: Duration,
    /// Idle time-to-live of a streaming ingest session: a session untouched
    /// this long is evicted (subsequent requests get `410 Gone`).
    pub stream_ttl: Duration,
    /// Maximum concurrently open streaming sessions; creation beyond this
    /// gets `503` with code `stream_limit`.
    pub max_streams: usize,
    /// Fault-injection plan for chaos testing (see [`faults`]); `None` in
    /// production.
    pub faults: Option<Arc<FaultPlan>>,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            addr: "127.0.0.1:7878".into(),
            threads: 0,
            executors: 1,
            stall_budget: jobs::DEFAULT_STALL_BUDGET,
            tile: 0,
            no_delta: false,
            no_incremental: false,
            cache_bytes: 64 << 20,
            cache_dir: None,
            cache_disk_bytes: 64 << 20,
            queue_depth: 64,
            max_body_bytes: 64 << 20,
            max_connections: 256,
            default_deadline_ms: 0,
            drain_secs: 10,
            read_timeout: Duration::from_secs(10),
            stream_ttl: Duration::from_secs(300),
            max_streams: 64,
            faults: None,
        }
    }
}

/// State shared by every connection thread.
struct ServerContext {
    /// Behind its own `Arc` so job closures (which outlive the request)
    /// can own a handle and populate it on completion.
    cache: Arc<ReportCache>,
    jobs: JobManager,
    /// The one registry `/v1/metrics` renders. The cache and job manager
    /// hold clones of this `Arc` and count into it directly.
    metrics: Arc<Metrics>,
    tile: usize,
    no_delta: bool,
    no_incremental: bool,
    max_body_bytes: usize,
    max_connections: usize,
    default_deadline_ms: u64,
    drain_secs: u64,
    read_timeout: Duration,
    faults: Option<Arc<FaultPlan>>,
    /// Streaming ingest sessions (`/v1/streams`): in-memory only, TTL-
    /// evicted, gone on restart by design.
    streams: streams::StreamSessions,
    active_connections: AtomicUsize,
    stopping: AtomicBool,
    /// Lame-duck mode: still serving in-flight work, refusing new
    /// connections with `503 + Retry-After` while the backlog drains.
    lame_duck: AtomicBool,
}

/// A bound (but not yet running) server.
pub struct Server {
    listener: TcpListener,
    ctx: Arc<ServerContext>,
}

impl Server {
    /// Binds the listener and starts the job executor (which spawns the
    /// shared worker pool).
    pub fn bind(config: &ServerConfig) -> std::io::Result<Server> {
        let listener = TcpListener::bind(&config.addr)?;
        let executors =
            if config.executors == 0 { jobs::auto_executors() } else { config.executors };
        let shared_metrics = Arc::new(Metrics::with_shards(executors));
        let mut jobs_config = JobsConfig::new(config.threads, config.queue_depth);
        jobs_config.executors = executors;
        jobs_config.stall_budget = config.stall_budget;
        jobs_config.faults = config.faults.clone();
        // The disk tier opens (probe write + recovery scan) before any
        // request is accepted: an unwritable --cache-dir is a bind error,
        // not a degraded runtime state.
        let disk = match &config.cache_dir {
            Some(dir) if config.cache_disk_bytes > 0 => Some(persist::DiskTier::open(
                dir,
                config.cache_disk_bytes,
                Arc::clone(&shared_metrics),
                config.faults.clone(),
            )?),
            _ => None,
        };
        Ok(Server {
            listener,
            ctx: Arc::new(ServerContext {
                cache: Arc::new(ReportCache::with_tiers(
                    config.cache_bytes,
                    disk,
                    Arc::clone(&shared_metrics),
                )),
                jobs: JobManager::with_config(jobs_config, Some(Arc::clone(&shared_metrics))),
                metrics: shared_metrics,
                tile: config.tile,
                no_delta: config.no_delta,
                no_incremental: config.no_incremental,
                max_body_bytes: config.max_body_bytes,
                max_connections: config.max_connections,
                default_deadline_ms: config.default_deadline_ms,
                drain_secs: config.drain_secs,
                read_timeout: config.read_timeout,
                faults: config.faults.clone(),
                streams: streams::StreamSessions::new(config.stream_ttl, config.max_streams),
                active_connections: AtomicUsize::new(0),
                stopping: AtomicBool::new(false),
                lame_duck: AtomicBool::new(false),
            }),
        })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> std::io::Result<SocketAddr> {
        self.listener.local_addr()
    }

    /// Serves forever on the calling thread (the `saturn serve` entry
    /// point). Installs SIGTERM/SIGINT handlers: a shutdown signal flips
    /// the server into lame-duck mode, drains the job backlog within the
    /// configured budget, and exits 0.
    pub fn run(self) -> std::io::Result<()> {
        if let Some(fd) = signals::install() {
            let ctx = Arc::clone(&self.ctx);
            std::thread::Builder::new().name("saturn-signals".into()).spawn(move || {
                signals::wait(fd);
                // best-effort print: eprintln! panics if stderr is closed,
                // which would kill this thread before it can drain and exit
                let _ = writeln!(
                    std::io::stderr(),
                    "saturn-server: shutdown signal; draining ({}s budget)",
                    ctx.drain_secs
                );
                drain_and_exit(&ctx);
            })?;
        }
        accept_loop(self.listener, self.ctx);
        Ok(())
    }

    /// Serves on a background thread; the handle stops the accept loop on
    /// demand (tests, benches). No signal handlers are installed — tests
    /// drive the same drain path through [`ServerHandle::drain`].
    pub fn spawn(self) -> std::io::Result<ServerHandle> {
        let addr = self.local_addr()?;
        let ctx = Arc::clone(&self.ctx);
        let accept = std::thread::Builder::new()
            .name("saturn-accept".into())
            .spawn(move || accept_loop(self.listener, self.ctx))?;
        Ok(ServerHandle { addr, ctx, accept: Some(accept) })
    }
}

/// The SIGTERM/SIGINT path: refuse new connections, drain the backlog,
/// give connection threads a moment to flush final responses, exit 0.
fn drain_and_exit(ctx: &ServerContext) -> ! {
    ctx.lame_duck.store(true, Ordering::SeqCst);
    let stats = ctx.jobs.drain(Duration::from_secs(ctx.drain_secs));
    // make accepted work durable: pending disk spills land before exit
    ctx.cache.flush(Duration::from_secs(2));
    let flush_by = Instant::now() + Duration::from_secs(2);
    while ctx.active_connections.load(Ordering::SeqCst) > 0 && Instant::now() < flush_by {
        std::thread::sleep(Duration::from_millis(20));
    }
    let _ = writeln!(
        std::io::stderr(),
        "saturn-server: drained (completed {}, cancelled {}); exiting",
        stats.completed,
        stats.cancelled
    );
    std::process::exit(0);
}

/// Controls a spawned server.
pub struct ServerHandle {
    addr: SocketAddr,
    ctx: Arc<ServerContext>,
    accept: Option<JoinHandle<()>>,
}

impl ServerHandle {
    /// The bound address.
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// The graceful-drain path, minus the process exit (for tests): flips
    /// lame-duck mode (new connections get `503 + Retry-After`), waits up
    /// to `budget` for queued and running jobs, cancels stragglers, and
    /// returns the final job stats. The accept loop stays up serving 503s
    /// until [`ServerHandle::stop`] or drop.
    pub fn drain(&self, budget: Duration) -> JobStats {
        self.ctx.lame_duck.store(true, Ordering::SeqCst);
        let stats = self.ctx.jobs.drain(budget);
        // same durability guarantee as the signal path: completed reports
        // reach the disk tier before the caller tears the server down
        self.ctx.cache.flush(Duration::from_secs(2));
        stats
    }

    /// Stops accepting and joins the accept thread. Connections already
    /// being served drain on their own threads.
    pub fn stop(mut self) {
        self.shutdown();
    }

    fn shutdown(&mut self) {
        if let Some(accept) = self.accept.take() {
            self.ctx.stopping.store(true, Ordering::SeqCst);
            // wake the blocking accept with a no-op connection
            let _ = TcpStream::connect(self.addr);
            let _ = accept.join();
        }
    }
}

impl Drop for ServerHandle {
    fn drop(&mut self) {
        self.shutdown();
    }
}

fn accept_loop(listener: TcpListener, ctx: Arc<ServerContext>) {
    for stream in listener.incoming() {
        if ctx.stopping.load(Ordering::SeqCst) {
            break;
        }
        let Ok(stream) = stream else { continue };
        if ctx.lame_duck.load(Ordering::SeqCst) {
            let mut stream = stream;
            let retry = ctx.drain_secs.max(1).to_string();
            let _ = write_response_with(
                &mut stream,
                503,
                &[("Retry-After", retry)],
                &ApiError::with_code(503, "draining", "server is draining").body(),
                false,
            );
            continue;
        }
        let active = ctx.active_connections.fetch_add(1, Ordering::SeqCst) + 1;
        if active > ctx.max_connections {
            let mut stream = stream;
            let _ = write_response_with(
                &mut stream,
                503,
                &[("Retry-After", "1".to_string())],
                &ApiError::with_code(503, "connection_limit", "connection limit reached")
                    .body(),
                false,
            );
            ctx.active_connections.fetch_sub(1, Ordering::SeqCst);
            continue;
        }
        let ctx = Arc::clone(&ctx);
        let _ = std::thread::Builder::new().name("saturn-conn".into()).spawn(move || {
            // decrement via a drop guard: a panicking handler must not leak
            // its connection slot (leaked slots would eventually turn every
            // accept into a 503)
            struct Slot<'a>(&'a ServerContext);
            impl Drop for Slot<'_> {
                fn drop(&mut self) {
                    self.0.active_connections.fetch_sub(1, Ordering::SeqCst);
                }
            }
            let _slot = Slot(&ctx);
            serve_connection(stream, &ctx);
        });
    }
}

fn serve_connection(stream: TcpStream, ctx: &ServerContext) {
    let _ = stream.set_read_timeout(Some(ctx.read_timeout));
    let _ = stream.set_nodelay(true);
    let Ok(reader_stream) = stream.try_clone() else { return };
    let mut reader = BufReader::new(reader_stream);
    let mut writer = stream;
    loop {
        let parse_started = Instant::now();
        let request = match read_request(&mut reader, &mut writer, ctx.max_body_bytes) {
            Ok(request) => request,
            Err(ReadError::Closed) => return,
            Err(ReadError::Bad(status, msg)) => {
                // includes the 408 mid-request stall: the client is told
                // why the connection is going away instead of a silent drop
                let timings =
                    RequestTimings { parse: parse_started.elapsed(), ..Default::default() };
                let _ = write_response(
                    &mut writer,
                    status,
                    &ApiError::new(status, msg).body(),
                    false,
                );
                ctx.metrics.observe_request("other", status, &timings);
                return;
            }
        };
        if let Some(plan) = &ctx.faults {
            plan.maybe_slow(FaultSite::Parse);
            plan.maybe_panic(FaultSite::Parse);
        }
        let mut timings =
            RequestTimings { parse: parse_started.elapsed(), ..Default::default() };
        // during a drain, finish this response but do not hold the
        // connection open for more requests
        let keep_alive = request.keep_alive && !ctx.lame_duck.load(Ordering::SeqCst);
        let handle_started = Instant::now();
        let reply = route(&request, ctx);
        timings.handle = handle_started.elapsed();
        let mut extra_headers: Vec<(&str, String)> = Vec::new();
        if let Some(secs) = reply.retry_after {
            extra_headers.push(("Retry-After", secs.to_string()));
        }
        let serialize_started = Instant::now();
        let sent = write_response_typed(
            &mut writer,
            reply.status,
            reply.content_type,
            &extra_headers,
            reply.body.as_bytes(),
            keep_alive,
        );
        timings.serialize = serialize_started.elapsed();
        ctx.metrics.observe_request(route_label(&request.path), reply.status, &timings);
        if sent.is_err() || !keep_alive {
            return;
        }
    }
}

/// A response body: bytes built for this request, or a shared allocation
/// straight out of the report cache / job table — cache hits go to the
/// socket without copying the report.
enum Body {
    Built(Vec<u8>),
    Shared(Arc<str>),
}

impl Body {
    fn as_bytes(&self) -> &[u8] {
        match self {
            Body::Built(bytes) => bytes,
            Body::Shared(body) => body.as_bytes(),
        }
    }
}

impl From<Vec<u8>> for Body {
    fn from(bytes: Vec<u8>) -> Self {
        Body::Built(bytes)
    }
}

impl From<Arc<str>> for Body {
    fn from(body: Arc<str>) -> Self {
        Body::Shared(body)
    }
}

/// A routed response: status, body, content type (JSON everywhere except
/// the Prometheus exposition), and optionally a `Retry-After` hint (every
/// 503 carries one).
struct Reply {
    status: u16,
    body: Body,
    content_type: &'static str,
    retry_after: Option<u32>,
}

impl Reply {
    fn new(status: u16, body: impl Into<Body>) -> Reply {
        Reply { status, body: body.into(), content_type: CONTENT_TYPE_JSON, retry_after: None }
    }

    /// A Prometheus-text response (`GET /v1/metrics`).
    fn prometheus(body: impl Into<Body>) -> Reply {
        Reply {
            status: 200,
            body: body.into(),
            content_type: CONTENT_TYPE_PROMETHEUS,
            retry_after: None,
        }
    }

    fn retry(status: u16, body: impl Into<Body>, secs: u32) -> Reply {
        Reply {
            status,
            body: body.into(),
            content_type: CONTENT_TYPE_JSON,
            retry_after: Some(secs),
        }
    }
}

/// Dispatches one request.
fn route(request: &Request, ctx: &ServerContext) -> Reply {
    let outcome = match (request.method.as_str(), request.path.as_str()) {
        ("POST", "/v1/analyze") => endpoint_analyze(request, ctx),
        ("POST", "/v1/validate") => endpoint_validate(request, ctx),
        ("POST", "/v1/stats") => endpoint_stats(request, ctx),
        ("POST", "/v1/streams") => streams::endpoint_create(request, ctx),
        ("POST", path) if path.starts_with("/v1/streams/") => {
            streams::endpoint_session(request, ctx)
        }
        ("GET", "/v1/health") => Ok(endpoint_health(ctx)),
        ("GET", "/v1/metrics") => Ok(endpoint_metrics(ctx)),
        ("GET", path) if path.starts_with("/v1/jobs/") => endpoint_job(request, ctx),
        ("GET", path) if path.starts_with("/v1/streams") => Err(ApiError::new(
            405,
            "wrong method for this endpoint (analysis endpoints take POST)",
        )),
        ("GET", "/v1/analyze" | "/v1/validate" | "/v1/stats")
        | ("POST", "/v1/health" | "/v1/metrics") => Err(ApiError::new(
            405,
            "wrong method for this endpoint (analysis endpoints take POST)",
        )),
        _ => {
            Err(ApiError::new(404, format!("no route for {} {}", request.method, request.path)))
        }
    };
    match outcome {
        Ok(reply) => reply,
        Err(e) => Reply::new(e.status, e.body()),
    }
}

/// The return type of every endpoint handler: a reply, or a structured
/// error the dispatcher renders through [`error_envelope`].
type Handled = Result<Reply, ApiError>;

/// Parses the trace body under the request's directedness.
fn parse_stream(request: &Request) -> Result<LinkStream, ApiError> {
    let directedness = if request.flag("directed") {
        Directedness::Directed
    } else {
        Directedness::Undirected
    };
    let text = std::str::from_utf8(&request.body)
        .map_err(|_| ApiError::new(400, "trace body is not UTF-8"))?;
    stream_io::read_str(text, directedness)
        .map_err(|e| ApiError::new(400, format!("trace body: {e}")))
}

/// Everything that addresses one sweep submission: where its result lives
/// in the response cache, how in-flight duplicates coalesce, and the
/// deadline/size hints the job system schedules by.
pub(crate) struct SweepJobSpec {
    /// Response-cache fingerprint the finished body is stored under.
    pub cache_key: u128,
    /// Coalescing key — identical in-flight submissions share one job.
    pub job_key: u128,
    /// Which executor-side work class this is.
    pub kind: JobKind,
    /// The request's end-to-end budget, if it has one.
    pub deadline: Option<Duration>,
    /// Expected scale count, for admission control's progress estimates.
    pub scales_hint: u64,
}

/// Serves from cache, or submits `work` as a job and (unless `async=1`)
/// waits for it — within the request's deadline, when it has one. The
/// shared plumbing of every sweep endpoint (analyze, validate, stream
/// refresh).
fn cached_or_submitted(
    request: &Request,
    ctx: &ServerContext,
    spec: SweepJobSpec,
    work: jobs::JobWork,
) -> Handled {
    let SweepJobSpec { cache_key, job_key, kind, deadline, scales_hint } = spec;
    if let Some(body) = ctx.cache.get(cache_key) {
        return Ok(Reply::new(200, body));
    }
    // fix the client's own wall-clock budget before queueing
    let wait_until = deadline.map(|budget| Instant::now() + budget);
    let id = match ctx.jobs.submit_with(Some(job_key), deadline, kind, scales_hint, work) {
        Ok(id) => id,
        Err(Reject::QueueFull { retry_after_secs }) => {
            return Ok(Reply::retry(
                503,
                ApiError::with_code(503, "queue_full", "job queue is full, retry later").body(),
                retry_after_secs,
            ));
        }
        Err(Reject::WouldExpire { estimated_wait_ms, retry_after_secs }) => {
            return Ok(Reply::retry(
                503,
                ApiError::with_code(
                    503,
                    "would_expire",
                    format!(
                        "estimated queue wait of {estimated_wait_ms} ms exceeds the deadline"
                    ),
                )
                .body(),
                retry_after_secs,
            ));
        }
        Err(Reject::Draining) => {
            return Ok(Reply::retry(
                503,
                ApiError::with_code(503, "draining", "server is draining").body(),
                1,
            ));
        }
    };
    if request.flag("async") {
        return Ok(Reply::new(
            202,
            job_status_body(id, ctx.jobs.phase(id).unwrap_or(JobPhase::Queued)),
        ));
    }
    match ctx.jobs.wait_until(id, wait_until) {
        WaitOutcome::Done(outcome) => Ok(Reply::new(outcome.status, outcome.body)),
        // this waiter's deadline fired while the (possibly coalesced,
        // possibly about-to-be-cancelled) job kept running: answer 504 with
        // the progress so far, without waiting for the job to notice
        WaitOutcome::DeadlineExpired { scales_done, scales_total } => Ok(Reply::new(
            504,
            jobs::timeout_body(
                "deadline_exceeded",
                "deadline exceeded",
                scales_done,
                scales_total,
            )
            .into_bytes(),
        )),
        WaitOutcome::Unknown => Err(ApiError::with_code(
            500,
            "job_expired",
            "job expired before its outcome was read",
        )),
    }
}

/// The server-level knob defaults a request's typed parameters fall back
/// to (see [`params::RequestParams::parse`]).
fn param_defaults(ctx: &ServerContext) -> ParamDefaults {
    ParamDefaults {
        deadline_ms: ctx.default_deadline_ms,
        tile: ctx.tile,
        no_delta: ctx.no_delta,
        no_incremental: ctx.no_incremental,
    }
}

fn endpoint_analyze(request: &Request, ctx: &ServerContext) -> Handled {
    let p = RequestParams::parse(request, &param_defaults(ctx))?;
    let stream = parse_stream(request)?;
    // execution knobs only: tiled, delta-filtered, and incrementally built
    // reports are bit-identical to untiled / unfiltered / scratch-built
    // ones, so `tile`, `no_delta`, and `no_incremental` stay OUT of the
    // fingerprint — a request served from an entry computed under different
    // execution settings returns the same bytes the cold run would have
    // produced. `deadline_ms` stays out too: a deadline either leaves the
    // result untouched or prevents there being one.
    let grid = SweepGrid::Geometric { points: p.points };
    let scales_hint = grid.k_values(&stream, 1).len() as u64;

    let mut digest = Digest::new("saturn.analyze.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    fingerprint::write_grid(&mut digest, &grid);
    fingerprint::write_targets(&mut digest, &p.targets);
    let key = digest.finish();

    let cache_insert = cache_filler(Arc::clone(&ctx.cache), key);
    let targets = p.targets;
    let (tile, no_delta, no_incremental) = (p.tile, p.no_delta, p.no_incremental);
    let work: jobs::JobWork = Box::new(move |pool, jctx| {
        let method = OccupancyMethod::new()
            .grid(grid)
            .targets(targets)
            .tile(tile)
            .no_delta_propagation(no_delta)
            .no_incremental_timeline(no_incremental);
        match method.try_run_on(&stream, pool, &jctx.control) {
            // cancelled sweeps never reach the cache: only complete reports
            // are content-addressed
            Ok(report) => cache_insert(report.to_json()),
            Err(_cancelled) => jctx.cancelled_outcome(),
        }
    });
    let spec = SweepJobSpec {
        cache_key: key,
        job_key: key,
        kind: JobKind::Analyze,
        deadline: p.deadline,
        scales_hint,
    };
    cached_or_submitted(request, ctx, spec, work)
}

fn endpoint_validate(request: &Request, ctx: &ServerContext) -> Handled {
    let p = RequestParams::parse(request, &param_defaults(ctx))?;
    let stream = parse_stream(request)?;
    let grid = SweepGrid::Geometric { points: p.points };
    let options = ValidationOptions {
        threads: 0, // ignored on the shared pool
        delta_min: p.delta_min,
        weighted_transitions: p.weighted,
    };
    let scales_hint = grid.k_values(&stream, options.delta_min).len() as u64;

    let mut digest = Digest::new("saturn.validate.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    fingerprint::write_grid(&mut digest, &grid);
    fingerprint::write_targets(&mut digest, &p.targets);
    digest.write_i64(options.delta_min);
    digest.write_u64(options.weighted_transitions as u64);
    let key = digest.finish();

    let cache_insert = cache_filler(Arc::clone(&ctx.cache), key);
    let targets = p.targets;
    let work: jobs::JobWork = Box::new(move |pool, jctx| {
        match try_validation_sweep_on(&stream, &grid, targets, &options, pool, &jctx.control) {
            Ok(report) => {
                let json = serde_json::to_string_pretty(&report).expect("report serializes");
                cache_insert(json)
            }
            Err(_cancelled) => jctx.cancelled_outcome(),
        }
    });
    let spec = SweepJobSpec {
        cache_key: key,
        job_key: key,
        kind: JobKind::Validate,
        deadline: p.deadline,
        scales_hint,
    };
    cached_or_submitted(request, ctx, spec, work)
}

fn endpoint_stats(request: &Request, ctx: &ServerContext) -> Handled {
    let stream = parse_stream(request)?;
    let mut digest = Digest::new("saturn.stats.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    let key = digest.finish();
    if let Some(body) = ctx.cache.get(key) {
        return Ok(Reply::new(200, body));
    }
    // stats are a single pass over the events — computed inline on the
    // connection thread, never queued behind sweeps
    let body: Arc<str> =
        Arc::from(serde_json::to_string_pretty(&stream.stats()).expect("stats serialize"));
    ctx.cache.insert(key, Arc::clone(&body));
    Ok(Reply::new(200, body))
}

fn endpoint_job(request: &Request, ctx: &ServerContext) -> Handled {
    let raw_id = request.path.strip_prefix("/v1/jobs/").expect("routed by prefix");
    let id: u64 = raw_id
        .parse()
        .map_err(|_| ApiError::new(404, format!("malformed job id `{raw_id}`")))?;
    if request.flag("wait") {
        let outcome = ctx
            .jobs
            .wait(id)
            .ok_or_else(|| ApiError::new(404, format!("unknown or expired job {id}")))?;
        return Ok(Reply::new(outcome.status, outcome.body));
    }
    let phase = ctx
        .jobs
        .phase(id)
        .ok_or_else(|| ApiError::new(404, format!("unknown or expired job {id}")))?;
    match ctx.jobs.outcome(id) {
        Some(outcome) => Ok(Reply::new(outcome.status, outcome.body)),
        None => Ok(Reply::new(200, job_status_body(id, phase))),
    }
}

fn endpoint_health(ctx: &ServerContext) -> Reply {
    let mut fields = vec![
        ("status".to_string(), Value::String("ok".to_string())),
        ("draining".to_string(), Value::Bool(ctx.lame_duck.load(Ordering::SeqCst))),
        (
            "cache".to_string(),
            serde_json::to_value(&ctx.cache.stats()).expect("stats serialize"),
        ),
    ];
    if let Some(disk) = ctx.cache.disk_stats() {
        fields.push((
            "cache_disk".to_string(),
            serde_json::to_value(&disk).expect("stats serialize"),
        ));
    }
    fields.push((
        "jobs".to_string(),
        serde_json::to_value(&ctx.jobs.stats()).expect("stats serialize"),
    ));
    fields.push((
        "streams".to_string(),
        Value::Object(vec![
            ("open".to_string(), Value::Int(ctx.streams.open() as i128)),
            ("ttl_secs".to_string(), Value::Int(ctx.streams.ttl().as_secs() as i128)),
        ]),
    ));
    fields.push((
        "active_connections".to_string(),
        Value::Int(ctx.active_connections.load(Ordering::SeqCst) as i128),
    ));
    let body = Value::Object(fields);
    Reply::new(200, body.to_string_pretty().into_bytes())
}

fn endpoint_metrics(ctx: &ServerContext) -> Reply {
    Reply::prometheus(ctx.metrics.render_prometheus().into_bytes())
}

fn job_status_body(id: u64, phase: JobPhase) -> Vec<u8> {
    let phase = match phase {
        JobPhase::Queued => "queued",
        JobPhase::Running => "running",
        JobPhase::Done => "done",
    };
    Value::Object(vec![
        ("job".to_string(), Value::Int(id as i128)),
        ("status".to_string(), Value::String(phase.to_string())),
    ])
    .to_string_pretty()
    .into_bytes()
}

/// A closure for job bodies: takes the serialized report, populates the
/// cache, and builds the outcome from the *cached* allocation — cold and
/// hit responses are therefore the same bytes by construction.
fn cache_filler(
    cache: Arc<ReportCache>,
    key: u128,
) -> impl FnOnce(String) -> JobOutcome + Send {
    move |json: String| {
        let body: Arc<str> = Arc::from(json);
        cache.insert(key, Arc::clone(&body));
        JobOutcome { status: 200, body }
    }
}
