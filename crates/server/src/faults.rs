//! Deliberate fault injection for exercising the failure paths of the
//! service — the harness behind the chaos integration test.
//!
//! A [`FaultPlan`] is parsed from a spec string (the `SATURN_FAULTS`
//! environment variable for `saturn serve`, or [`ServerConfig::faults`] for
//! in-process tests) and consulted at two seams: job execution on the
//! executor thread, and HTTP request parsing on connection threads. With no
//! plan configured every hook is a no-op behind an `Option` check, so
//! production behavior is untouched.
//!
//! # Spec grammar
//!
//! Comma-separated directives:
//!
//! ```text
//! panic:<site>:<probability>     panic at the site (caught like real ones)
//! slow:<site>:<millis>[ms]       sleep before the site's work
//! cancel_race:<probability>      fire a job's own cancel token as it starts
//! executor_die:<probability>     panic OUTSIDE catch_unwind as a job is
//!                                popped — kills the executor thread itself,
//!                                exercising supervisor restart
//! executor_stall:<site>:<millis>[ms]  wedge the executor before the site's
//!                                work: an uncancellable sleep that ignores
//!                                tokens, exercising stall supervision
//! disk_write_err:<probability>   fail a disk-tier spill write with an I/O
//!                                error (trips the circuit breaker)
//! disk_full:<probability>        fail a spill write as if the disk were
//!                                full (ENOSPC-alike; trips the breaker)
//! disk_corrupt:<probability>     flip one byte of a spill file as it is
//!                                written — the write "succeeds", the next
//!                                read detects and quarantines it
//! disk_slow:<millis>[ms]         sleep before each disk read or write
//! seed:<u64>                     reseed the deterministic RNG
//! ```
//!
//! Sites: `analyze`, `validate` (specific job kinds), `job` / `sweep` (any
//! job), `parse` (HTTP request parsing). Example:
//! `panic:analyze:0.1,slow:sweep:250ms,cancel_race:1,executor_die:0.05`.
//!
//! Probabilities are evaluated on a deterministic splitmix64 sequence so a
//! given plan misbehaves the same way on every run.
//!
//! [`ServerConfig::faults`]: crate::ServerConfig::faults

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

/// Where a fault directive applies.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FaultSite {
    /// Analyze sweep jobs.
    Analyze,
    /// Validation sweep jobs.
    Validate,
    /// Any job on the executor (matches `Analyze` and `Validate` too).
    Job,
    /// HTTP request parsing on a connection thread.
    Parse,
}

impl FaultSite {
    /// Whether a directive written for `self` fires at `actual`.
    fn covers(self, actual: FaultSite) -> bool {
        self == actual
            || (self == FaultSite::Job
                && matches!(actual, FaultSite::Analyze | FaultSite::Validate))
    }
}

fn parse_site(raw: &str) -> Result<FaultSite, String> {
    match raw {
        "analyze" => Ok(FaultSite::Analyze),
        "validate" => Ok(FaultSite::Validate),
        "job" | "sweep" => Ok(FaultSite::Job),
        "parse" => Ok(FaultSite::Parse),
        other => Err(format!(
            "unknown fault site `{other}` (expected analyze|validate|job|sweep|parse)"
        )),
    }
}

/// A parsed fault plan. All hooks are safe to call from any thread; the
/// probability stream is shared (and deterministic for a given seed).
#[derive(Debug)]
pub struct FaultPlan {
    panics: Vec<(FaultSite, f64)>,
    slows: Vec<(FaultSite, Duration)>,
    cancel_race: f64,
    executor_die: f64,
    stalls: Vec<(FaultSite, Duration)>,
    disk_write_err: f64,
    disk_full: f64,
    disk_corrupt: f64,
    disk_slow: Duration,
    rng: AtomicU64,
}

impl FaultPlan {
    /// Parses a spec string (see the module docs for the grammar).
    pub fn parse(spec: &str) -> Result<FaultPlan, String> {
        let mut plan = FaultPlan {
            panics: Vec::new(),
            slows: Vec::new(),
            cancel_race: 0.0,
            executor_die: 0.0,
            stalls: Vec::new(),
            disk_write_err: 0.0,
            disk_full: 0.0,
            disk_corrupt: 0.0,
            disk_slow: Duration::ZERO,
            rng: AtomicU64::new(0x5eed_1e55_c0ff_ee00),
        };
        for directive in spec.split(',').map(str::trim).filter(|d| !d.is_empty()) {
            let mut parts = directive.split(':');
            let kind = parts.next().unwrap_or_default();
            match kind {
                "panic" => {
                    let site = parse_site(parts.next().unwrap_or_default())?;
                    let prob = parse_probability(parts.next(), directive)?;
                    plan.panics.push((site, prob));
                }
                "slow" => {
                    let site = parse_site(parts.next().unwrap_or_default())?;
                    let pause = parse_millis(parts.next(), directive)?;
                    plan.slows.push((site, pause));
                }
                "cancel_race" => {
                    plan.cancel_race = parse_probability(parts.next(), directive)?;
                }
                "executor_die" => {
                    plan.executor_die = parse_probability(parts.next(), directive)?;
                }
                "executor_stall" => {
                    let site = parse_site(parts.next().unwrap_or_default())?;
                    let pause = parse_millis(parts.next(), directive)?;
                    plan.stalls.push((site, pause));
                }
                "disk_write_err" => {
                    plan.disk_write_err = parse_probability(parts.next(), directive)?;
                }
                "disk_full" => {
                    plan.disk_full = parse_probability(parts.next(), directive)?;
                }
                "disk_corrupt" => {
                    plan.disk_corrupt = parse_probability(parts.next(), directive)?;
                }
                "disk_slow" => {
                    plan.disk_slow = parse_millis(parts.next(), directive)?;
                }
                "seed" => {
                    let seed: u64 = parts
                        .next()
                        .unwrap_or_default()
                        .parse()
                        .map_err(|_| format!("bad seed in `{directive}`"))?;
                    plan.rng = AtomicU64::new(seed);
                }
                other => {
                    return Err(format!(
                        "unknown fault directive `{other}` (expected \
                         panic|slow|cancel_race|executor_die|executor_stall|\
                         disk_write_err|disk_full|disk_corrupt|disk_slow|seed)"
                    ));
                }
            }
            if parts.next().is_some() {
                return Err(format!("trailing fields in `{directive}`"));
            }
        }
        Ok(plan)
    }

    /// The plan named by `SATURN_FAULTS`, if the variable is set and
    /// non-empty.
    pub fn from_env() -> Option<Result<FaultPlan, String>> {
        std::env::var("SATURN_FAULTS")
            .ok()
            .filter(|spec| !spec.trim().is_empty())
            .map(|spec| Self::parse(&spec))
    }

    /// Whether the plan injects anything at all.
    pub fn is_empty(&self) -> bool {
        self.panics.is_empty()
            && self.slows.is_empty()
            && self.stalls.is_empty()
            && self.cancel_race <= 0.0
            && self.executor_die <= 0.0
            && self.disk_write_err <= 0.0
            && self.disk_full <= 0.0
            && self.disk_corrupt <= 0.0
            && self.disk_slow == Duration::ZERO
    }

    /// Draws the next deterministic uniform in `[0, 1)` and compares.
    fn chance(&self, p: f64) -> bool {
        if p <= 0.0 {
            return false;
        }
        if p >= 1.0 {
            return true;
        }
        // splitmix64 over a shared Weyl sequence
        let mut z = self
            .rng
            .fetch_add(0x9E37_79B9_7F4A_7C15, Ordering::Relaxed)
            .wrapping_add(0x9E37_79B9_7F4A_7C15);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^= z >> 31;
        ((z >> 11) as f64 / (1u64 << 53) as f64) < p
    }

    /// Sleeps if any `slow` directive covers `site`.
    pub fn maybe_slow(&self, site: FaultSite) {
        for &(s, pause) in &self.slows {
            if s.covers(site) {
                std::thread::sleep(pause);
            }
        }
    }

    /// Panics (to be caught exactly like an organic panic) if a `panic`
    /// directive covers `site` and its probability fires.
    pub fn maybe_panic(&self, site: FaultSite) {
        for &(s, p) in &self.panics {
            if s.covers(site) && self.chance(p) {
                panic!("injected fault at {site:?}");
            }
        }
    }

    /// Whether this job's own cancel token should fire as it starts.
    pub fn cancel_race(&self) -> bool {
        self.chance(self.cancel_race)
    }

    /// Whether the executor thread itself should die (panic outside its
    /// `catch_unwind`) while popping the current job. The supervisor then
    /// finalizes the in-flight job as a `500` and respawns the shard.
    pub fn executor_die(&self) -> bool {
        self.chance(self.executor_die)
    }

    /// How long the executor should wedge (an uncancellable sleep that
    /// ignores tokens) before running a job at `site`, if any
    /// `executor_stall` directive covers it. Stalls sum when several cover
    /// the same site, mirroring [`FaultPlan::maybe_slow`].
    pub fn executor_stall(&self, site: FaultSite) -> Option<Duration> {
        let total: Duration =
            self.stalls.iter().filter(|(s, _)| s.covers(site)).map(|&(_, pause)| pause).sum();
        (total > Duration::ZERO).then_some(total)
    }

    /// Whether a disk-tier spill write should fail with a generic I/O error.
    pub fn disk_write_err(&self) -> bool {
        self.chance(self.disk_write_err)
    }

    /// Whether a disk-tier spill write should fail as if the disk were full.
    pub fn disk_full(&self) -> bool {
        self.chance(self.disk_full)
    }

    /// Whether one byte of the spill file being written should be flipped.
    /// The write itself succeeds; the corruption is caught (and the entry
    /// quarantined) by checksum verification on the next read.
    pub fn disk_corrupt(&self) -> bool {
        self.chance(self.disk_corrupt)
    }

    /// Sleeps for the configured `disk_slow` pause, if any, before a disk
    /// read or write.
    pub fn maybe_disk_slow(&self) {
        if self.disk_slow > Duration::ZERO {
            std::thread::sleep(self.disk_slow);
        }
    }
}

fn parse_millis(raw: Option<&str>, directive: &str) -> Result<Duration, String> {
    let raw = raw.unwrap_or_default();
    let millis: u64 = raw
        .strip_suffix("ms")
        .unwrap_or(raw)
        .parse()
        .map_err(|_| format!("bad duration in `{directive}`"))?;
    Ok(Duration::from_millis(millis))
}

fn parse_probability(raw: Option<&str>, directive: &str) -> Result<f64, String> {
    let p: f64 = raw
        .unwrap_or_default()
        .parse()
        .map_err(|_| format!("bad probability in `{directive}`"))?;
    if !(0.0..=1.0).contains(&p) {
        return Err(format!("probability out of [0, 1] in `{directive}`"));
    }
    Ok(p)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_the_issue_example() {
        let plan =
            FaultPlan::parse("panic:analyze:0.1,slow:sweep:250ms,cancel_race:1").unwrap();
        assert_eq!(plan.panics, vec![(FaultSite::Analyze, 0.1)]);
        assert_eq!(plan.slows, vec![(FaultSite::Job, Duration::from_millis(250))]);
        assert!(plan.cancel_race());
        assert!(!plan.is_empty());
    }

    #[test]
    fn empty_spec_is_a_noop_plan() {
        let plan = FaultPlan::parse("").unwrap();
        assert!(plan.is_empty());
        assert!(!plan.cancel_race());
        plan.maybe_panic(FaultSite::Analyze); // must not panic
        plan.maybe_slow(FaultSite::Parse); // must not sleep
    }

    #[test]
    fn job_site_covers_specific_kinds_but_not_parse() {
        assert!(FaultSite::Job.covers(FaultSite::Analyze));
        assert!(FaultSite::Job.covers(FaultSite::Validate));
        assert!(FaultSite::Job.covers(FaultSite::Job));
        assert!(!FaultSite::Job.covers(FaultSite::Parse));
        assert!(!FaultSite::Analyze.covers(FaultSite::Validate));
    }

    #[test]
    fn malformed_specs_are_rejected() {
        assert!(FaultPlan::parse("panic:nowhere:0.1").is_err());
        assert!(FaultPlan::parse("warp:analyze:1").is_err());
        assert!(FaultPlan::parse("slow:job:fast").is_err());
        assert!(FaultPlan::parse("panic:job:1.5").is_err());
        assert!(FaultPlan::parse("panic:job:0.5:extra").is_err());
        assert!(FaultPlan::parse("executor_die:2").is_err());
        assert!(FaultPlan::parse("executor_stall:job").is_err());
        assert!(FaultPlan::parse("executor_stall:parse:10ms:extra").is_err());
        assert!(FaultPlan::parse("disk_write_err:1.5").is_err());
        assert!(FaultPlan::parse("disk_slow:soon").is_err());
        assert!(FaultPlan::parse("disk_corrupt:0.5:extra").is_err());
    }

    #[test]
    fn disk_directives_parse_and_fire() {
        let plan =
            FaultPlan::parse("disk_write_err:1,disk_full:1,disk_corrupt:1,disk_slow:1ms")
                .unwrap();
        assert!(!plan.is_empty());
        assert!(plan.disk_write_err());
        assert!(plan.disk_full());
        assert!(plan.disk_corrupt());
        plan.maybe_disk_slow(); // sleeps 1ms; must return
        let quiet = FaultPlan::parse("").unwrap();
        assert!(!quiet.disk_write_err());
        assert!(!quiet.disk_full());
        assert!(!quiet.disk_corrupt());
        quiet.maybe_disk_slow(); // no-op
        let slow_only = FaultPlan::parse("disk_slow:5ms").unwrap();
        assert!(!slow_only.is_empty());
    }

    #[test]
    fn executor_directives_parse_and_fire() {
        let plan = FaultPlan::parse("executor_die:1,executor_stall:job:75ms").unwrap();
        assert!(!plan.is_empty());
        assert!(plan.executor_die());
        assert_eq!(plan.executor_stall(FaultSite::Analyze), Some(Duration::from_millis(75)));
        assert_eq!(plan.executor_stall(FaultSite::Parse), None);
        let quiet = FaultPlan::parse("panic:parse:0.5").unwrap();
        assert!(!quiet.executor_die());
        assert_eq!(quiet.executor_stall(FaultSite::Job), None);
    }

    #[test]
    fn probabilities_are_deterministic_per_seed() {
        let draw = |seed: &str| -> Vec<bool> {
            let plan = FaultPlan::parse(&format!("seed:{seed},panic:job:0.5")).unwrap();
            (0..32).map(|_| plan.chance(0.5)).collect()
        };
        assert_eq!(draw("7"), draw("7"));
        assert_ne!(draw("7"), draw("8"));
    }

    #[test]
    fn probability_extremes_short_circuit() {
        let plan = FaultPlan::parse("cancel_race:0").unwrap();
        assert!(!plan.cancel_race());
        let always = FaultPlan::parse("cancel_race:1").unwrap();
        for _ in 0..16 {
            assert!(always.cancel_race());
        }
    }
}
