//! The content-addressed report cache: an in-memory LRU tier over an
//! optional durable disk spill tier.
//!
//! Keys are the 128-bit fingerprints of [`saturn_core::fingerprint`]:
//! canonical stream content plus every request parameter that influences the
//! result. Values are the fully serialized JSON response bodies, shared as
//! `Arc<str>` so a hit costs one pointer clone — a cached analysis is served
//! without touching the sweep engine or re-serializing the report, and two
//! clients of the same key observe byte-identical responses by construction.
//!
//! Eviction is least-recently-used, bounded by **total body bytes** rather
//! than entry count (reports range from a few KiB to MiB depending on grid
//! size and `KeepPolicy`). Recency is an intrusive doubly-linked list over
//! slab indices: every touch unlinks the entry and pushes it to the head,
//! eviction pops the tail — all O(1), no allocation past the slab itself.
//! (The previous design scanned all entries for the minimum touch stamp,
//! linear per eviction; fine for thousands of multi-kilobyte reports,
//! wrong once small per-tile fragments multiply the population.)
//!
//! When a [`DiskTier`] is attached, inserts are written through to disk
//! asynchronously (completed reports spill even if they later fall out of
//! memory) and a memory miss falls through to a disk lookup, promoting the
//! verified body back into the memory LRU. Either tier can be disabled
//! independently: capacity 0 means **no structure is allocated at all** —
//! a `None` tier, not a degenerate LRU — and the cache becomes pass-through
//! for that tier. Disk I/O never happens under the memory lock, and a disk
//! tier failure can only lose durability, never a request (see
//! [`crate::persist`] for the degradation ladder).

use crate::metrics::Metrics;
use crate::persist::{DiskStats, DiskTier};
use rustc_hash::FxHashMap;
use serde::Serialize;
use std::sync::{Arc, Mutex};
use std::time::Duration;

/// "No slot" sentinel for slab links.
const NIL: usize = usize::MAX;

/// One slab slot: a resident entry's body plus its recency-list links, or a
/// vacancy in the free list (`body == None`, `next` = next free slot).
struct Slot {
    key: u128,
    body: Option<Arc<str>>,
    prev: usize,
    next: usize,
}

struct Inner {
    /// key → slab index of the resident entry.
    map: FxHashMap<u128, usize>,
    /// Slab of entries; vacancies are threaded through `free_head`.
    slab: Vec<Slot>,
    free_head: usize,
    /// Most-recently-used entry (NIL when empty).
    head: usize,
    /// Least-recently-used entry (NIL when empty) — the eviction end.
    tail: usize,
    bytes: usize,
}

impl Inner {
    /// Unlinks slot `i` from the recency list (it must be linked).
    fn unlink(&mut self, i: usize) {
        let (prev, next) = (self.slab[i].prev, self.slab[i].next);
        match prev {
            NIL => self.head = next,
            p => self.slab[p].next = next,
        }
        match next {
            NIL => self.tail = prev,
            n => self.slab[n].prev = prev,
        }
    }

    /// Links slot `i` at the head (most recently used).
    fn push_front(&mut self, i: usize) {
        self.slab[i].prev = NIL;
        self.slab[i].next = self.head;
        match self.head {
            NIL => self.tail = i,
            h => self.slab[h].prev = i,
        }
        self.head = i;
    }

    /// Moves a linked slot to the head.
    fn touch(&mut self, i: usize) {
        if self.head != i {
            self.unlink(i);
            self.push_front(i);
        }
    }

    /// Takes a vacant slot off the free list, or grows the slab.
    fn alloc(&mut self, key: u128, body: Arc<str>) -> usize {
        match self.free_head {
            NIL => {
                self.slab.push(Slot { key, body: Some(body), prev: NIL, next: NIL });
                self.slab.len() - 1
            }
            i => {
                self.free_head = self.slab[i].next;
                self.slab[i] = Slot { key, body: Some(body), prev: NIL, next: NIL };
                i
            }
        }
    }

    /// Unlinks slot `i`, returns its body to the caller, and threads the
    /// slot onto the free list.
    fn release(&mut self, i: usize) -> Arc<str> {
        self.unlink(i);
        let body = self.slab[i].body.take().expect("resident slot has a body");
        self.slab[i].next = self.free_head;
        self.free_head = i;
        body
    }
}

/// The in-memory LRU tier: the slab behind its lock plus its byte budget.
/// `None` in [`ReportCache`] when the memory tier is disabled.
struct MemTier {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

impl MemTier {
    fn new(capacity_bytes: usize) -> Self {
        MemTier {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                slab: Vec::new(),
                free_head: NIL,
                head: NIL,
                tail: NIL,
                bytes: 0,
            }),
            capacity_bytes,
        }
    }
}

/// Byte-bounded LRU of serialized reports, keyed by content fingerprint,
/// optionally backed by a durable disk spill tier. All methods take `&self`;
/// the cache is shared freely across connection threads.
pub struct ReportCache {
    /// The memory tier, or `None` when `--cache-mb 0` disabled it.
    mem: Option<MemTier>,
    /// The disk spill tier, or `None` when no `--cache-dir` is configured
    /// (or `--cache-disk-mb 0` disabled it).
    disk: Option<Arc<DiskTier>>,
    /// Hit/miss/eviction counters and occupancy gauges live in the shared
    /// registry, not in `Inner`: `/v1/health` and `/v1/metrics` both read
    /// these same atomics, so the two surfaces cannot disagree. Counter
    /// bumps and gauge syncs happen while `inner`'s lock is held, keeping
    /// them exact with respect to the structural accounting.
    metrics: Arc<Metrics>,
}

/// A point-in-time snapshot of cache occupancy and effectiveness, serialized
/// into `/v1/health`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Total resident body bytes.
    pub bytes: usize,
    /// Configured byte budget.
    pub capacity_bytes: usize,
    /// Lookups that returned a body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl ReportCache {
    /// Creates a memory-only cache bounded by `capacity_bytes` of report
    /// bodies (0 disables caching: every `get` misses, every `insert` is
    /// dropped, and no LRU structure is allocated), counting into a private
    /// registry.
    pub fn new(capacity_bytes: usize) -> Self {
        Self::with_metrics(capacity_bytes, Arc::new(Metrics::new()))
    }

    /// [`ReportCache::new`] counting into a shared registry — the server
    /// wiring, where `/v1/metrics` and `/v1/health` must agree.
    pub fn with_metrics(capacity_bytes: usize, metrics: Arc<Metrics>) -> Self {
        Self::with_tiers(capacity_bytes, None, metrics)
    }

    /// The full two-tier constructor: a memory budget (0 ⇒ no memory tier)
    /// over an optional disk spill tier.
    pub fn with_tiers(
        capacity_bytes: usize,
        disk: Option<Arc<DiskTier>>,
        metrics: Arc<Metrics>,
    ) -> Self {
        ReportCache {
            mem: (capacity_bytes > 0).then(|| MemTier::new(capacity_bytes)),
            disk,
            metrics,
        }
    }

    /// Looks up `key`: memory first (refreshing recency on a hit, O(1)),
    /// then the disk tier, promoting a verified disk body into the memory
    /// LRU. Disk I/O happens outside the memory lock.
    pub fn get(&self, key: u128) -> Option<Arc<str>> {
        if let Some(mem) = &self.mem {
            let mut inner = mem.inner.lock().expect("cache poisoned");
            if let Some(i) = inner.map.get(&key).copied() {
                inner.touch(i);
                self.metrics.cache_hits.inc();
                return Some(Arc::clone(inner.slab[i].body.as_ref().expect("resident")));
            }
        }
        self.metrics.cache_misses.inc();
        let disk = self.disk.as_ref()?;
        let body = disk.lookup(key)?;
        // Promote into memory; victims displaced by the promotion are
        // re-spilled (a dedupe no-op when already on disk).
        for (victim_key, victim_body) in self.mem_insert(key, Arc::clone(&body)) {
            disk.enqueue(victim_key, victim_body);
        }
        Some(body)
    }

    /// Inserts a body under `key`: written through to the disk tier (spill
    /// on complete — asynchronously, never blocking on I/O) and into the
    /// memory LRU, evicting from the recency list's tail until the byte
    /// budget holds — O(1) per eviction. Bodies larger than the memory
    /// budget still reach the disk tier; re-inserting an existing key
    /// refreshes body and recency.
    pub fn insert(&self, key: u128, body: Arc<str>) {
        if let Some(disk) = &self.disk {
            disk.enqueue(key, Arc::clone(&body));
        }
        for (victim_key, victim_body) in self.mem_insert(key, body) {
            // Spill on evict: with write-through this dedupes to a no-op,
            // but it keeps eviction safe even for entries whose original
            // spill was dropped (queue overflow, memory-only mode).
            if let Some(disk) = &self.disk {
                disk.enqueue(victim_key, victim_body);
            }
        }
    }

    /// Inserts into the memory tier only, returning the evicted victims
    /// (collected under the lock, handed back so disk spills happen after
    /// the lock is released). No-op when the tier is disabled or the body
    /// exceeds the whole budget.
    fn mem_insert(&self, key: u128, body: Arc<str>) -> Vec<(u128, Arc<str>)> {
        let Some(mem) = &self.mem else { return Vec::new() };
        if body.len() > mem.capacity_bytes {
            return Vec::new();
        }
        let mut inner = mem.inner.lock().expect("cache poisoned");
        if let Some(i) = inner.map.get(&key).copied() {
            let old = inner.slab[i]
                .body
                .replace(Arc::clone(&body))
                .expect("resident slot has a body");
            inner.bytes -= old.len();
            inner.bytes += body.len();
            inner.touch(i);
        } else {
            let i = inner.alloc(key, Arc::clone(&body));
            inner.push_front(i);
            inner.map.insert(key, i);
            inner.bytes += body.len();
        }
        let mut victims = Vec::new();
        while inner.bytes > mem.capacity_bytes {
            let victim = inner.tail;
            debug_assert_ne!(victim, NIL, "over budget implies a resident entry");
            let victim_key = inner.slab[victim].key;
            let evicted = inner.release(victim);
            inner.map.remove(&victim_key);
            inner.bytes -= evicted.len();
            self.metrics.cache_evictions.inc();
            victims.push((victim_key, evicted));
        }
        self.metrics.cache_bytes.set(inner.bytes as u64);
        self.metrics.cache_entries.set(inner.map.len() as u64);
        victims
    }

    /// Blocks until pending disk spills are durable or `budget` elapses;
    /// trivially `true` without a disk tier. Called on the drain paths so
    /// accepted work survives a graceful exit.
    pub fn flush(&self, budget: Duration) -> bool {
        match &self.disk {
            Some(disk) => disk.flush(budget),
            None => true,
        }
    }

    /// Occupancy and hit/miss counters — the same atomics `/v1/metrics`
    /// exports, snapshotted under the cache lock.
    pub fn stats(&self) -> CacheStats {
        let (entries, bytes, capacity_bytes) = match &self.mem {
            Some(mem) => {
                let inner = mem.inner.lock().expect("cache poisoned");
                (inner.map.len(), inner.bytes, mem.capacity_bytes)
            }
            None => (0, 0, 0),
        };
        CacheStats {
            entries,
            bytes,
            capacity_bytes,
            hits: self.metrics.cache_hits.get(),
            misses: self.metrics.cache_misses.get(),
            evictions: self.metrics.cache_evictions.get(),
        }
    }

    /// The disk tier's snapshot, when one is attached.
    pub fn disk_stats(&self) -> Option<DiskStats> {
        self.disk.as_ref().map(|disk| disk.stats())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::persist::HEADER_LEN;
    use std::path::{Path, PathBuf};

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("saturn-cache-test-{}-{name}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn with_disk(mem_bytes: usize, disk_bytes: usize, dir: &Path) -> ReportCache {
        let metrics = Arc::new(Metrics::new());
        let disk =
            DiskTier::open(dir, disk_bytes, Arc::clone(&metrics), None).expect("open tier");
        ReportCache::with_tiers(mem_bytes, Some(disk), metrics)
    }

    #[test]
    fn hit_returns_the_same_bytes() {
        let cache = ReportCache::new(1024);
        cache.insert(1, body("{\"report\":1}"));
        let a = cache.get(1).unwrap();
        let b = cache.get(1).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        assert!(cache.get(2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn lru_eviction_is_by_bytes_and_recency() {
        let cache = ReportCache::new(30);
        cache.insert(1, body("aaaaaaaaaa")); // 10 bytes
        cache.insert(2, body("bbbbbbbbbb"));
        cache.insert(3, body("cccccccccc"));
        assert_eq!(cache.stats().bytes, 30);
        cache.get(1); // 1 is now most recent; 2 is LRU
        cache.insert(4, body("dddddddddd"));
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some() && cache.get(4).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= 30);
    }

    #[test]
    fn oversized_bodies_and_zero_capacity_are_not_cached() {
        let cache = ReportCache::new(5);
        cache.insert(1, body("too big to fit"));
        assert!(cache.get(1).is_none());
        let disabled = ReportCache::new(0);
        disabled.insert(1, body("x"));
        assert!(disabled.get(1).is_none());
    }

    #[test]
    fn zero_capacity_allocates_no_tier() {
        let disabled = ReportCache::new(0);
        assert!(disabled.mem.is_none(), "capacity 0 must not allocate an LRU");
        assert!(disabled.disk.is_none());
        let stats = disabled.stats();
        assert_eq!((stats.entries, stats.bytes, stats.capacity_bytes), (0, 0, 0));
        assert!(disabled.flush(Duration::from_millis(1)), "no tier ⇒ flush is trivial");
        assert!(disabled.disk_stats().is_none());
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting_exact() {
        let cache = ReportCache::new(100);
        cache.insert(1, body("short"));
        cache.insert(1, body("a longer replacement body"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, "a longer replacement body".len());
        assert_eq!(&*cache.get(1).unwrap(), "a longer replacement body");
    }

    #[test]
    fn memory_miss_falls_through_to_disk_and_promotes() {
        let dir = temp_dir("fallthrough");
        let cache = with_disk(1024, 1 << 20, &dir);
        cache.insert(7, body("durable report"));
        assert!(cache.flush(Duration::from_secs(5)));
        // Rebuild over the same dir with a cold memory tier.
        drop(cache);
        let cache = with_disk(1024, 1 << 20, &dir);
        let served = cache.get(7).expect("served from disk");
        assert_eq!(&*served, "durable report");
        let disk = cache.disk_stats().unwrap();
        assert_eq!(disk.hits, 1);
        // Promotion: the next get is a pure memory hit.
        assert_eq!(&*cache.get(7).unwrap(), "durable report");
        assert_eq!(cache.disk_stats().unwrap().hits, 1, "second get never touched disk");
        assert_eq!(cache.stats().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_only_mode_serves_without_a_memory_tier() {
        let dir = temp_dir("disk-only");
        let cache = with_disk(0, 1 << 20, &dir);
        cache.insert(3, body("mem tier is off"));
        assert!(cache.flush(Duration::from_secs(5)));
        assert_eq!(cache.get(3).as_deref(), Some("mem tier is off"));
        let disk = cache.disk_stats().unwrap();
        assert_eq!(disk.writes, 1);
        assert!(disk.hits >= 1);
        assert_eq!(cache.stats().entries, 0, "no memory tier to populate");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn bodies_too_big_for_memory_still_spill_to_disk() {
        let dir = temp_dir("mem-oversize");
        let big = "z".repeat(200);
        let cache = with_disk(50, 1 << 20, &dir);
        cache.insert(8, body(&big));
        assert!(cache.flush(Duration::from_secs(5)));
        assert_eq!(cache.stats().entries, 0, "too big for the memory budget");
        assert_eq!(cache.get(8).as_deref(), Some(big.as_str()));
        assert_eq!(cache.disk_stats().unwrap().hits, 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicted_victims_remain_durable_on_disk() {
        let dir = temp_dir("evict-spill");
        let cache = with_disk(20, 1 << 20, &dir);
        cache.insert(1, body("aaaaaaaaaa")); // 10 bytes
        cache.insert(2, body("bbbbbbbbbb"));
        cache.insert(3, body("cccccccccc")); // evicts 1 from memory
        assert!(cache.flush(Duration::from_secs(5)));
        assert_eq!(cache.stats().evictions, 1);
        assert_eq!(cache.get(1).as_deref(), Some("aaaaaaaaaa"), "evictee served from disk");
        assert!(cache.disk_stats().unwrap().hits >= 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn disk_byte_budget_counts_headers() {
        let dir = temp_dir("budget-headers");
        let cache = with_disk(1024, HEADER_LEN + 10, &dir);
        cache.insert(1, body("0123456789"));
        assert!(cache.flush(Duration::from_secs(5)));
        let disk = cache.disk_stats().unwrap();
        assert_eq!(disk.entries, 1);
        assert_eq!(disk.bytes, HEADER_LEN + 10);
        let _ = std::fs::remove_dir_all(&dir);
    }

    /// Differential stress of the intrusive list against a naive model:
    /// thousands of interleaved inserts/gets/evictions (the per-tile-
    /// fragment population the list exists for) must match a reference LRU
    /// exactly — residency, byte accounting, and eviction count.
    #[test]
    fn linked_list_matches_reference_lru_under_stress() {
        use std::collections::VecDeque;
        let capacity = 64usize;
        let cache = ReportCache::new(capacity);
        // reference: recency-ordered deque of (key, len), most recent front
        let mut model: VecDeque<(u128, usize)> = VecDeque::new();
        let mut model_evictions = 0u64;
        let mut state = 0x2545_f491_4f6c_dd1du64;
        let mut rng = move || {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            state
        };
        for _ in 0..4000 {
            let key = (rng() % 48) as u128;
            if rng() % 3 == 0 {
                // get
                let hit = cache.get(key).is_some();
                let model_hit = model.iter().position(|&(k, _)| k == key);
                assert_eq!(hit, model_hit.is_some(), "residency diverged for {key}");
                if let Some(pos) = model_hit {
                    let entry = model.remove(pos).unwrap();
                    model.push_front(entry);
                }
            } else {
                // insert a body of 1..=9 bytes
                let len = 1 + (rng() % 9) as usize;
                cache.insert(key, Arc::from("x".repeat(len)));
                if let Some(pos) = model.iter().position(|&(k, _)| k == key) {
                    model.remove(pos);
                }
                model.push_front((key, len));
                while model.iter().map(|&(_, l)| l).sum::<usize>() > capacity {
                    model.pop_back();
                    model_evictions += 1;
                }
            }
            let stats = cache.stats();
            assert_eq!(stats.entries, model.len());
            assert_eq!(stats.bytes, model.iter().map(|&(_, l)| l).sum::<usize>());
            assert_eq!(stats.evictions, model_evictions);
        }
        // final residency set matches exactly
        for &(key, _) in &model {
            assert!(cache.get(key).is_some());
        }
    }
}
