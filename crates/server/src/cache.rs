//! The content-addressed report cache.
//!
//! Keys are the 128-bit fingerprints of [`saturn_core::fingerprint`]:
//! canonical stream content plus every request parameter that influences the
//! result. Values are the fully serialized JSON response bodies, shared as
//! `Arc<str>` so a hit costs one pointer clone — a cached analysis is served
//! without touching the sweep engine or re-serializing the report, and two
//! clients of the same key observe byte-identical responses by construction.
//!
//! Eviction is least-recently-used, bounded by **total body bytes** rather
//! than entry count (reports range from a few KiB to MiB depending on grid
//! size and `KeepPolicy`). Recency is a monotone touch stamp; eviction scans
//! for the minimum, which is linear in the entry count — entries are
//! multi-kilobyte reports, so populations stay in the thousands and the scan
//! is noise next to the sweep the miss just paid for.

use rustc_hash::FxHashMap;
use serde::Serialize;
use std::sync::{Arc, Mutex};

struct Entry {
    body: Arc<str>,
    touched: u64,
}

struct Inner {
    map: FxHashMap<u128, Entry>,
    bytes: usize,
    clock: u64,
    hits: u64,
    misses: u64,
    evictions: u64,
}

/// Byte-bounded LRU of serialized reports, keyed by content fingerprint.
/// All methods take `&self`; the cache is shared freely across connection
/// threads.
pub struct ReportCache {
    inner: Mutex<Inner>,
    capacity_bytes: usize,
}

/// A point-in-time snapshot of cache occupancy and effectiveness, serialized
/// into `/v1/health`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CacheStats {
    /// Resident entries.
    pub entries: usize,
    /// Total resident body bytes.
    pub bytes: usize,
    /// Configured byte budget.
    pub capacity_bytes: usize,
    /// Lookups that returned a body.
    pub hits: u64,
    /// Lookups that found nothing.
    pub misses: u64,
    /// Entries evicted to make room.
    pub evictions: u64,
}

impl ReportCache {
    /// Creates a cache bounded by `capacity_bytes` of report bodies
    /// (0 disables caching: every `get` misses, every `insert` is dropped).
    pub fn new(capacity_bytes: usize) -> Self {
        ReportCache {
            inner: Mutex::new(Inner {
                map: FxHashMap::default(),
                bytes: 0,
                clock: 0,
                hits: 0,
                misses: 0,
                evictions: 0,
            }),
            capacity_bytes,
        }
    }

    /// Looks up `key`, refreshing its recency on a hit.
    pub fn get(&self, key: u128) -> Option<Arc<str>> {
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        match inner.map.get_mut(&key) {
            Some(entry) => {
                entry.touched = stamp;
                let body = Arc::clone(&entry.body);
                inner.hits += 1;
                Some(body)
            }
            None => {
                inner.misses += 1;
                None
            }
        }
    }

    /// Inserts a body under `key`, evicting least-recently-used entries
    /// until the byte budget holds. Bodies larger than the whole budget are
    /// not cached; re-inserting an existing key refreshes body and recency.
    pub fn insert(&self, key: u128, body: Arc<str>) {
        if body.len() > self.capacity_bytes {
            return;
        }
        let mut inner = self.inner.lock().expect("cache poisoned");
        inner.clock += 1;
        let stamp = inner.clock;
        if let Some(old) = inner.map.insert(key, Entry { body: Arc::clone(&body), touched: stamp })
        {
            inner.bytes -= old.body.len();
        }
        inner.bytes += body.len();
        while inner.bytes > self.capacity_bytes {
            let Some((&victim, _)) =
                inner.map.iter().min_by_key(|(_, entry)| entry.touched)
            else {
                break;
            };
            let evicted = inner.map.remove(&victim).expect("victim present");
            inner.bytes -= evicted.body.len();
            inner.evictions += 1;
        }
    }

    /// Occupancy and hit/miss counters.
    pub fn stats(&self) -> CacheStats {
        let inner = self.inner.lock().expect("cache poisoned");
        CacheStats {
            entries: inner.map.len(),
            bytes: inner.bytes,
            capacity_bytes: self.capacity_bytes,
            hits: inner.hits,
            misses: inner.misses,
            evictions: inner.evictions,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn body(text: &str) -> Arc<str> {
        Arc::from(text)
    }

    #[test]
    fn hit_returns_the_same_bytes() {
        let cache = ReportCache::new(1024);
        cache.insert(1, body("{\"report\":1}"));
        let a = cache.get(1).unwrap();
        let b = cache.get(1).unwrap();
        assert_eq!(a.as_bytes(), b.as_bytes());
        assert!(Arc::ptr_eq(&a, &b), "hits share one allocation");
        assert!(cache.get(2).is_none());
        let stats = cache.stats();
        assert_eq!((stats.hits, stats.misses, stats.entries), (2, 1, 1));
    }

    #[test]
    fn lru_eviction_is_by_bytes_and_recency() {
        let cache = ReportCache::new(30);
        cache.insert(1, body("aaaaaaaaaa")); // 10 bytes
        cache.insert(2, body("bbbbbbbbbb"));
        cache.insert(3, body("cccccccccc"));
        assert_eq!(cache.stats().bytes, 30);
        cache.get(1); // 1 is now most recent; 2 is LRU
        cache.insert(4, body("dddddddddd"));
        assert!(cache.get(2).is_none(), "LRU entry evicted");
        assert!(cache.get(1).is_some() && cache.get(3).is_some() && cache.get(4).is_some());
        assert_eq!(cache.stats().evictions, 1);
        assert!(cache.stats().bytes <= 30);
    }

    #[test]
    fn oversized_bodies_and_zero_capacity_are_not_cached() {
        let cache = ReportCache::new(5);
        cache.insert(1, body("too big to fit"));
        assert!(cache.get(1).is_none());
        let disabled = ReportCache::new(0);
        disabled.insert(1, body("x"));
        assert!(disabled.get(1).is_none());
    }

    #[test]
    fn reinsert_replaces_and_keeps_accounting_exact() {
        let cache = ReportCache::new(100);
        cache.insert(1, body("short"));
        cache.insert(1, body("a longer replacement body"));
        let stats = cache.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.bytes, "a longer replacement body".len());
        assert_eq!(&*cache.get(1).unwrap(), "a longer replacement body");
    }
}
