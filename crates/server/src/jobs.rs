//! The deadline-aware job manager: a bounded queue of analysis jobs drained
//! by one executor thread that owns the process-wide [`WorkerPool`], with a
//! watchdog thread enforcing per-request deadlines.
//!
//! Design points:
//!
//! * **One pool, many connections.** `WorkerPool::map` takes `&mut self`
//!   (one round in flight per pool), so sweeps are serialized through a
//!   single executor thread that owns the pool — each sweep then fans out
//!   across all pool workers. Connection threads never spawn workers; they
//!   enqueue and wait. This is the "shared across connections rather than
//!   per-request" layout the pool was built for: worker threads and their
//!   per-worker DP arenas are spawned once per process.
//! * **Bounded queue, 503 backpressure.** [`JobManager::submit_with`]
//!   refuses work beyond the configured depth, while the server is
//!   draining, and — admission control — when the EWMA-based estimate of
//!   the queue wait already exceeds the request's deadline, so doomed work
//!   never occupies the pool. Every [`Reject`] maps to `503` with a
//!   `Retry-After` hint derived from the same estimate.
//! * **Deadlines are enforced, not advisory.** A watchdog thread finalizes
//!   queued jobs whose deadline passes as structured `504`s without
//!   executing them, and fires the [`CancelToken`] of a running job past
//!   its deadline; the sweep stops cooperatively at its next tile / DP
//!   stride poll and reports partial progress (`scales_done` /
//!   `scales_total`). Cancelled jobs never populate the response cache.
//! * **In-flight coalescing.** Jobs carry the request's content fingerprint;
//!   a submission whose fingerprint matches a queued or running job attaches
//!   to it instead of recomputing, so N concurrent clients posting the same
//!   trace cost one sweep and observe byte-identical bodies (they share the
//!   completed job's `Arc<str>`). An impatient coalesced waiter times out
//!   alone via [`JobManager::wait_until`]; the shared job keeps running.
//! * **Async retrieval.** Every submission gets a job id; `POST …?async=1`
//!   returns it immediately and `GET /v1/jobs/<id>` polls (or blocks with
//!   `?wait=1`) for the outcome. Finished jobs are retained up to
//!   [`RETAINED_JOBS`] before the oldest are dropped.
//!
//! [`CancelToken`]: saturn_core::CancelToken

use crate::faults::FaultPlan;
use crate::metrics::{Metrics, MetricsSweepObserver};
use saturn_core::parallel::WorkerPool;
use saturn_core::{json_trace_from_env, SweepControl, SweepObserver};
use serde::Serialize;
use serde_json::Value;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completed jobs kept for `GET /v1/jobs/<id>` before the oldest are
/// forgotten.
pub const RETAINED_JOBS: usize = 512;

/// Smoothing factor for the EWMA of job service seconds (weight of the
/// newest sample).
const EWMA_ALPHA: f64 = 0.3;

/// How long a drain waits for a cancelled straggler to observe its token
/// after the drain budget itself is spent.
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// The work of one job: runs on the executor thread against the shared
/// pool and its own [`JobCtx`], returns the HTTP status and serialized
/// body of the outcome.
pub type JobWork = Box<dyn FnOnce(&mut WorkerPool, &JobCtx) -> JobOutcome + Send>;

/// Terminal result of a job, served verbatim to every attached client.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// HTTP status of the response (200, or a 4xx/5xx the job produced).
    pub status: u16,
    /// Serialized JSON body.
    pub body: Arc<str>,
}

/// Why a job's cancel token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// The request's deadline expired while queued or running.
    Deadline,
    /// The server is draining for shutdown.
    Drain,
    /// A fault-injection directive fired the token.
    Injected,
}

/// Per-job cancellation and progress context, shared between the executor,
/// the watchdog, and waiting request handlers.
#[derive(Debug)]
pub struct JobCtx {
    /// Cancel token + progress counters threaded into the sweep.
    pub control: SweepControl,
    /// First cause to fire the token (0 = none); later causes lose the race.
    cause: AtomicU8,
}

impl JobCtx {
    fn new(observer: Arc<dyn SweepObserver>) -> Arc<JobCtx> {
        Arc::new(JobCtx {
            control: SweepControl::with_observer(observer),
            cause: AtomicU8::new(0),
        })
    }

    /// True once any cancel cause has been recorded.
    pub fn is_cancelled(&self) -> bool {
        self.cause.load(Ordering::Acquire) != 0
    }

    /// Fires the job's token, recording `cause` if none was recorded yet.
    pub fn cancel(&self, cause: CancelCause) {
        let code = match cause {
            CancelCause::Deadline => 1,
            CancelCause::Drain => 2,
            CancelCause::Injected => 3,
        };
        let _ = self.cause.compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire);
        self.control.cancel.cancel();
    }

    fn cause_text(&self) -> &'static str {
        match self.cause.load(Ordering::Acquire) {
            1 => "deadline exceeded",
            2 => "cancelled: server draining",
            3 => "cancelled: injected fault",
            _ => "cancelled",
        }
    }

    /// The structured 504 outcome of a cancelled job, carrying how far the
    /// sweep got.
    pub fn cancelled_outcome(&self) -> JobOutcome {
        let (done, total) = self.control.progress.snapshot();
        JobOutcome {
            status: 504,
            body: Arc::from(timeout_body(self.cause_text(), done, total)),
        }
    }
}

/// The JSON body of a `504` (or of a client-side deadline expiry): the
/// error text plus partial progress in whole scales.
pub fn timeout_body(error: &str, scales_done: u64, scales_total: u64) -> String {
    Value::Object(vec![
        ("error".to_string(), Value::String(error.to_string())),
        ("scales_done".to_string(), Value::Int(scales_done as i128)),
        ("scales_total".to_string(), Value::Int(scales_total as i128)),
    ])
    .to_string_pretty()
}

/// What kind of sweep a job runs — selects the fault-injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Occupancy sweep (`POST /v1/analyze`).
    Analyze,
    /// Validation sweep (`POST /v1/validate`).
    Validate,
    /// Anything else (tests).
    Other,
}

impl JobKind {
    fn site(self) -> crate::faults::FaultSite {
        match self {
            JobKind::Analyze => crate::faults::FaultSite::Analyze,
            JobKind::Validate => crate::faults::FaultSite::Validate,
            JobKind::Other => crate::faults::FaultSite::Job,
        }
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// Executing on the pool.
    Running,
    /// Finished; the outcome is available.
    Done,
}

/// `submit` refusal. Every variant maps to `503` with a `Retry-After`
/// hint.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The bounded queue is at capacity.
    QueueFull {
        /// Suggested client backoff, from the EWMA backlog estimate.
        retry_after_secs: u32,
    },
    /// Admission control: the estimated queue wait already exceeds the
    /// request's deadline, so executing it would only waste the pool.
    WouldExpire {
        /// The wait estimate that exceeded the deadline.
        estimated_wait_ms: u64,
        /// Suggested client backoff.
        retry_after_secs: u32,
    },
    /// The server is draining for shutdown and admits no new work.
    Draining,
}

struct JobRecord {
    phase: JobPhase,
    outcome: Option<JobOutcome>,
    fingerprint: Option<u128>,
    ctx: Arc<JobCtx>,
    deadline: Option<Instant>,
    kind: JobKind,
    /// When the job entered the queue — the executor turns this into the
    /// `saturn_queue_wait_seconds` sample when it pops the job.
    queued_at: Instant,
}

struct State {
    queue: VecDeque<(u64, JobWork)>,
    jobs: HashMap<u64, JobRecord>,
    /// fingerprint → id of the queued/running job computing it.
    inflight: HashMap<u128, u64>,
    /// Completion order, for bounding retention.
    finished: VecDeque<u64>,
    next_id: u64,
    running: Option<u64>,
    /// EWMA of job service seconds (0 until the first job finishes).
    ewma_secs: f64,
    draining: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_available: Condvar,
    job_done: Condvar,
    /// Pokes the watchdog whenever the set of armed deadlines changes.
    deadlines_changed: Condvar,
    /// Lifecycle counters (executed / completed / cancelled / panicked /
    /// coalesced / rejected / deadline_rejected), the queue-depth gauge,
    /// and the queue-wait and sweep histograms. `/v1/health`'s [`JobStats`]
    /// is a view over these same atomics, mutated only while `state`'s
    /// lock is held.
    metrics: Arc<Metrics>,
}

/// Mirrors the queue length into the registry gauge; call after every
/// queue mutation, while the state lock is held.
fn sync_queue_gauge(state: &State, metrics: &Metrics) {
    metrics.queue_depth.set(state.queue.len() as u64);
}

/// Queue counters, serialized into `/v1/health`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct JobStats {
    /// Jobs currently queued (not yet running).
    pub queued: usize,
    /// Configured queue bound.
    pub queue_depth: usize,
    /// Jobs currently executing on the pool (0 or 1).
    pub running: usize,
    /// Jobs executed to completion (any outcome).
    pub executed: u64,
    /// Jobs that finished with their own outcome (not cancelled, did not
    /// panic).
    pub completed: u64,
    /// Jobs cancelled by deadline, drain, or injected fault (`504`s).
    pub cancelled: u64,
    /// Jobs whose work panicked (`500`s).
    pub panicked: u64,
    /// Submissions attached to an in-flight duplicate.
    pub coalesced: u64,
    /// Submissions refused with any [`Reject`].
    pub rejected: u64,
    /// Refusals by deadline admission control specifically.
    pub deadline_rejected: u64,
    /// EWMA of job service seconds (0 until the first job finishes).
    pub ewma_job_secs: f64,
}

/// Outcome of [`JobManager::wait_until`].
#[derive(Clone, Debug)]
pub enum WaitOutcome {
    /// The job finished; here is its outcome.
    Done(JobOutcome),
    /// The caller's own deadline expired first; the job keeps running for
    /// any more patient (coalesced) waiters. Carries the job's progress at
    /// expiry.
    DeadlineExpired {
        /// Scales finished when the wait gave up.
        scales_done: u64,
        /// Scales planned in total.
        scales_total: u64,
    },
    /// No such job (expired from retention or never existed).
    Unknown,
}

/// Owner of the executor and watchdog threads and the job table.
pub struct JobManager {
    shared: Arc<Shared>,
    queue_depth: usize,
    /// Threaded into every job's [`SweepControl`]: folds tile spans into
    /// the registry and mirrors them to stderr under `SATURN_TRACE=json`.
    observer: Arc<dyn SweepObserver>,
    executor: Option<JoinHandle<()>>,
    watchdog: Option<JoinHandle<()>>,
}

impl JobManager {
    /// Starts the executor with a pool of `threads` total parallelism
    /// (0 = all cores) and a queue bounded at `queue_depth` waiting jobs.
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        Self::with_faults(threads, queue_depth, None)
    }

    /// [`JobManager::new`] with a fault-injection plan consulted at the
    /// job-execution seam. Counts into a private registry.
    pub fn with_faults(
        threads: usize,
        queue_depth: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        Self::with_metrics(threads, queue_depth, faults, Arc::new(Metrics::new()))
    }

    /// [`JobManager::with_faults`] counting into a shared registry — the
    /// server wiring, where `/v1/metrics` and `/v1/health` must agree.
    pub fn with_metrics(
        threads: usize,
        queue_depth: usize,
        faults: Option<Arc<FaultPlan>>,
        metrics: Arc<Metrics>,
    ) -> Self {
        let observer: Arc<dyn SweepObserver> =
            Arc::new(MetricsSweepObserver::new(Arc::clone(&metrics), json_trace_from_env()));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                finished: VecDeque::new(),
                next_id: 1,
                running: None,
                ewma_secs: 0.0,
                draining: false,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            job_done: Condvar::new(),
            deadlines_changed: Condvar::new(),
            metrics,
        });
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("saturn-executor".into())
                .spawn(move || executor_loop(&shared, threads, faults))
                .expect("cannot spawn job executor")
        };
        let watchdog = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("saturn-watchdog".into())
                .spawn(move || watchdog_loop(&shared))
                .expect("cannot spawn deadline watchdog")
        };
        JobManager {
            shared,
            queue_depth,
            observer,
            executor: Some(executor),
            watchdog: Some(watchdog),
        }
    }

    /// Enqueues `work` with no deadline; see [`JobManager::submit_with`].
    pub fn submit(&self, fingerprint: Option<u128>, work: JobWork) -> Result<u64, Reject> {
        self.submit_with(fingerprint, None, JobKind::Other, 0, work)
    }

    /// Enqueues `work`, or attaches to an in-flight job computing the same
    /// `fingerprint`. Returns the job id to wait on, or a [`Reject`] when
    /// the server is draining, the queue is full, or — with a `deadline` —
    /// the EWMA wait estimate already exceeds it. A deadline also arms the
    /// watchdog for the job itself; `scales_hint` pre-seeds the progress
    /// total so even a job cancelled before its sweep starts reports a
    /// meaningful `scales_total`.
    pub fn submit_with(
        &self,
        fingerprint: Option<u128>,
        deadline: Option<Duration>,
        kind: JobKind,
        scales_hint: u64,
        work: JobWork,
    ) -> Result<u64, Reject> {
        let metrics = &self.shared.metrics;
        let mut state = self.shared.state.lock().expect("job state poisoned");
        if state.draining || state.shutdown {
            metrics.jobs_rejected.inc();
            return Err(Reject::Draining);
        }
        if let Some(key) = fingerprint {
            if let Some(&id) = state.inflight.get(&key) {
                // a cancelled job is doomed to a 504 and will never fill the
                // cache; queue a fresh run instead of chaining new waiters
                // onto it (the insert below repoints `inflight` at the new
                // job, so the doomed one retires without touching the map)
                let doomed = state.jobs.get(&id).map(|r| r.ctx.is_cancelled()).unwrap_or(false);
                if !doomed {
                    metrics.jobs_coalesced.inc();
                    return Ok(id);
                }
            }
        }
        if state.queue.len() >= self.queue_depth {
            metrics.jobs_rejected.inc();
            return Err(Reject::QueueFull { retry_after_secs: retry_secs(&state) });
        }
        if let Some(budget) = deadline {
            let estimated = estimated_wait(&state);
            if estimated > budget {
                metrics.jobs_rejected.inc();
                metrics.jobs_deadline_rejected.inc();
                return Err(Reject::WouldExpire {
                    estimated_wait_ms: estimated.as_millis() as u64,
                    retry_after_secs: retry_secs(&state),
                });
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        let ctx = JobCtx::new(Arc::clone(&self.observer));
        ctx.control.progress.set_total(scales_hint);
        let deadline_at = deadline.map(|budget| Instant::now() + budget);
        state.jobs.insert(
            id,
            JobRecord {
                phase: JobPhase::Queued,
                outcome: None,
                fingerprint,
                ctx,
                deadline: deadline_at,
                kind,
                queued_at: Instant::now(),
            },
        );
        if let Some(key) = fingerprint {
            state.inflight.insert(key, id);
        }
        state.queue.push_back((id, work));
        sync_queue_gauge(&state, metrics);
        drop(state);
        self.shared.work_available.notify_one();
        if deadline_at.is_some() {
            self.shared.deadlines_changed.notify_all();
        }
        Ok(id)
    }

    /// Current phase of a job (`None` for unknown/expired ids).
    pub fn phase(&self, id: u64) -> Option<JobPhase> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).map(|j| j.phase)
    }

    /// The outcome of a finished job, without blocking.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Blocks until job `id` finishes and returns its outcome (`None` for
    /// unknown/expired ids).
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        match self.wait_until(id, None) {
            WaitOutcome::Done(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// Blocks until job `id` finishes or `deadline` passes, whichever
    /// comes first. A caller whose deadline fires while the job continues
    /// (the job may be shared with more patient coalesced waiters, or
    /// about to be cancelled by the watchdog) gets the job's progress
    /// snapshot back instead of an outcome.
    pub fn wait_until(&self, id: u64, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        loop {
            let Some(job) = state.jobs.get(&id) else { return WaitOutcome::Unknown };
            if let Some(outcome) = &job.outcome {
                return WaitOutcome::Done(outcome.clone());
            }
            match deadline {
                None => state = self.shared.job_done.wait(state).expect("job state poisoned"),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        let (scales_done, scales_total) = job.ctx.control.progress.snapshot();
                        return WaitOutcome::DeadlineExpired { scales_done, scales_total };
                    }
                    state = self
                        .shared
                        .job_done
                        .wait_timeout(state, at - now)
                        .expect("job state poisoned")
                        .0;
                }
            }
        }
    }

    /// Stops admitting work and waits up to `budget` for the backlog to
    /// finish. Whatever is still queued when the budget runs out is
    /// finalized as a drain `504` without executing; a still-running job
    /// has its token fired and gets a short grace period to stop at its
    /// next cancellation poll. Returns the final stats.
    pub fn drain(&self, budget: Duration) -> JobStats {
        let give_up = Instant::now() + budget;
        let mut state = self.shared.state.lock().expect("job state poisoned");
        state.draining = true;
        while !(state.queue.is_empty() && state.running.is_none()) {
            let now = Instant::now();
            if now >= give_up {
                break;
            }
            state = self
                .shared
                .job_done
                .wait_timeout(state, give_up - now)
                .expect("job state poisoned")
                .0;
        }
        if !state.queue.is_empty() || state.running.is_some() {
            let cut: Vec<u64> = state.queue.iter().map(|(id, _)| *id).collect();
            state.queue.clear();
            sync_queue_gauge(&state, &self.shared.metrics);
            for id in cut {
                finalize_cancelled(&mut state, &self.shared.metrics, id, CancelCause::Drain);
            }
            if let Some(id) = state.running {
                if let Some(job) = state.jobs.get(&id) {
                    job.ctx.cancel(CancelCause::Drain);
                }
            }
            self.shared.job_done.notify_all();
            let grace = Instant::now() + DRAIN_GRACE;
            while state.running.is_some() && Instant::now() < grace {
                state = self
                    .shared
                    .job_done
                    .wait_timeout(state, Duration::from_millis(50))
                    .expect("job state poisoned")
                    .0;
            }
        }
        stats_of(&state, &self.shared.metrics, self.queue_depth)
    }

    /// Queue counters.
    pub fn stats(&self) -> JobStats {
        let state = self.shared.state.lock().expect("job state poisoned");
        stats_of(&state, &self.shared.metrics, self.queue_depth)
    }
}

/// [`JobStats`] as a view over the registry counters — the `/v1/health`
/// numbers ARE the `/v1/metrics` numbers, snapshotted under the state lock.
fn stats_of(state: &State, metrics: &Metrics, queue_depth: usize) -> JobStats {
    JobStats {
        queued: state.queue.len(),
        queue_depth,
        running: usize::from(state.running.is_some()),
        executed: metrics.jobs_executed.get(),
        completed: metrics.jobs_completed.get(),
        cancelled: metrics.jobs_cancelled.get(),
        panicked: metrics.jobs_panicked.get(),
        coalesced: metrics.jobs_coalesced.get(),
        rejected: metrics.jobs_rejected.get(),
        deadline_rejected: metrics.jobs_deadline_rejected.get(),
        ewma_job_secs: state.ewma_secs,
    }
}

/// EWMA estimate of how long a newly queued job waits before it starts:
/// one full service time per job ahead of it (queued + running). Zero
/// until the first job finishes — an idle new server admits everything.
fn estimated_wait(state: &State) -> Duration {
    let backlog = state.queue.len() + usize::from(state.running.is_some());
    Duration::from_secs_f64(state.ewma_secs * backlog as f64)
}

/// `Retry-After` hint: the backlog estimate plus one service time (the
/// retry joins behind the current backlog), clamped to [1s, 1h].
fn retry_secs(state: &State) -> u32 {
    let secs = (estimated_wait(state).as_secs_f64() + state.ewma_secs).ceil();
    secs.clamp(1.0, 3600.0) as u32
}

/// Finalizes a job that will never execute (deadline expired in queue, or
/// drain cut the queue) as a cancelled `504`.
fn finalize_cancelled(state: &mut State, metrics: &Metrics, id: u64, cause: CancelCause) {
    let Some(job) = state.jobs.get_mut(&id) else { return };
    if job.outcome.is_some() {
        return;
    }
    job.ctx.cancel(cause);
    job.phase = JobPhase::Done;
    job.outcome = Some(job.ctx.cancelled_outcome());
    let fingerprint = job.fingerprint;
    metrics.jobs_cancelled.inc();
    retire(state, id, fingerprint);
}

/// Moves a finished job into the retention window and unregisters its
/// fingerprint (only while the coalescing map still points at this job).
fn retire(state: &mut State, id: u64, fingerprint: Option<u128>) {
    if let Some(key) = fingerprint {
        if state.inflight.get(&key) == Some(&id) {
            state.inflight.remove(&key);
        }
    }
    state.finished.push_back(id);
    while state.finished.len() > RETAINED_JOBS {
        let expired = state.finished.pop_front().expect("nonempty");
        state.jobs.remove(&expired);
    }
}

fn executor_loop(shared: &Shared, threads: usize, faults: Option<Arc<FaultPlan>>) {
    // The pool (and its per-worker DP arenas) lives for the process: spawned
    // here once, reused by every job.
    let mut pool = WorkerPool::new(threads);
    loop {
        let (id, work, ctx, kind) = {
            let mut state = shared.state.lock().expect("job state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some((id, work)) = state.queue.pop_front() {
                    let job = state.jobs.get_mut(&id).expect("queued job recorded");
                    job.phase = JobPhase::Running;
                    let ctx = Arc::clone(&job.ctx);
                    let kind = job.kind;
                    shared.metrics.queue_wait_seconds.observe(job.queued_at.elapsed());
                    state.running = Some(id);
                    sync_queue_gauge(&state, &shared.metrics);
                    break (id, work, ctx, kind);
                }
                state = shared.work_available.wait(state).expect("job state poisoned");
            }
        };
        // the running job's deadline is now the watchdog's to track
        shared.deadlines_changed.notify_all();
        if let Some(plan) = &faults {
            if plan.cancel_race() {
                // adversarial schedule: the token fires before the sweep
                // even starts; the job must still finalize cleanly
                ctx.cancel(CancelCause::Injected);
            }
        }
        let started = Instant::now();
        // Worker panics propagate out of `pool.map`; catch them so one
        // poisoned trace cannot take the service down.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &faults {
                plan.maybe_slow(kind.site());
                plan.maybe_panic(kind.site());
            }
            work(&mut pool, &ctx)
        }));
        let elapsed = started.elapsed().as_secs_f64();
        let panicked = caught.is_err();
        let outcome = caught.unwrap_or_else(|_| JobOutcome {
            status: 500,
            body: Arc::from(r#"{"error": "analysis panicked"}"#),
        });
        shared.metrics.sweep_seconds.observe(Duration::from_secs_f64(elapsed));
        let mut state = shared.state.lock().expect("job state poisoned");
        state.ewma_secs = if shared.metrics.jobs_executed.get() == 0 {
            elapsed
        } else {
            EWMA_ALPHA * elapsed + (1.0 - EWMA_ALPHA) * state.ewma_secs
        };
        state.running = None;
        shared.metrics.jobs_executed.inc();
        if panicked {
            shared.metrics.jobs_panicked.inc();
        } else if outcome.status == 504 {
            shared.metrics.jobs_cancelled.inc();
        } else {
            shared.metrics.jobs_completed.inc();
        }
        let job = state.jobs.get_mut(&id).expect("running job recorded");
        job.phase = JobPhase::Done;
        job.outcome = Some(outcome);
        let fingerprint = job.fingerprint;
        retire(&mut state, id, fingerprint);
        drop(state);
        shared.job_done.notify_all();
        shared.deadlines_changed.notify_all();
    }
}

/// Enforces deadlines: queued jobs past theirs are finalized as `504`s
/// without executing; a running job past its own has its token fired (the
/// executor then finalizes the cancelled outcome). Sleeps until the
/// nearest armed deadline, re-checking whenever the set changes.
fn watchdog_loop(shared: &Shared) {
    let mut state = shared.state.lock().expect("job state poisoned");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let expired: Vec<u64> = state
            .queue
            .iter()
            .filter(|(id, _)| {
                state.jobs.get(id).and_then(|job| job.deadline).is_some_and(|at| at <= now)
            })
            .map(|(id, _)| *id)
            .collect();
        if !expired.is_empty() {
            state.queue.retain(|(id, _)| !expired.contains(id));
            sync_queue_gauge(&state, &shared.metrics);
            for id in expired {
                finalize_cancelled(&mut state, &shared.metrics, id, CancelCause::Deadline);
            }
            shared.job_done.notify_all();
        }
        if let Some(id) = state.running {
            if let Some(job) = state.jobs.get(&id) {
                if job.deadline.is_some_and(|at| at <= now) {
                    job.ctx.cancel(CancelCause::Deadline);
                }
            }
        }
        let next_deadline = state
            .queue
            .iter()
            .filter_map(|(id, _)| state.jobs.get(id).and_then(|job| job.deadline))
            .chain(state.running.and_then(|id| {
                state.jobs.get(&id).and_then(|job| {
                    // a running job whose token already fired needs no
                    // further watchdog attention
                    if job.ctx.control.cancel.is_cancelled() {
                        None
                    } else {
                        job.deadline
                    }
                })
            }))
            .min();
        state = match next_deadline {
            None => shared.deadlines_changed.wait(state).expect("job state poisoned"),
            Some(at) => {
                let pause =
                    at.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
                shared
                    .deadlines_changed
                    .wait_timeout(state, pause)
                    .expect("job state poisoned")
                    .0
            }
        };
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("job state poisoned");
            state.shutdown = true;
            self.shared.work_available.notify_all();
            self.shared.deadlines_changed.notify_all();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
        if let Some(watchdog) = self.watchdog.take() {
            let _ = watchdog.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    fn ok(body: &str) -> JobOutcome {
        JobOutcome { status: 200, body: Arc::from(body) }
    }

    /// A reusable gate: jobs block in `hold` until the test `release`s.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
        entered: AtomicUsize,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
                entered: AtomicUsize::new(0),
            })
        }

        fn hold(&self) {
            self.entered.fetch_add(1, AtomicOrdering::SeqCst);
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn wait_entered(&self) {
            while self.entered.load(AtomicOrdering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_pool, _ctx| ok("{\"x\":1}"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(&*outcome.body, "{\"x\":1}");
        assert_eq!(jobs.phase(id), Some(JobPhase::Done));
        let stats = jobs.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.completed, 1);
        assert!(stats.ewma_job_secs >= 0.0);
    }

    #[test]
    fn coalescing_shares_one_execution() {
        let jobs = JobManager::new(1, 8);
        // a blocker job keeps the executor busy so both submissions queue
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        jobs.submit(
            None,
            Box::new(move |_pool, _ctx| {
                g.hold();
                ok("gate")
            }),
        )
        .unwrap();
        let a = jobs.submit(Some(42), Box::new(|_pool, _ctx| ok("first"))).unwrap();
        let b = jobs.submit(Some(42), Box::new(|_pool, _ctx| ok("second"))).unwrap();
        assert_eq!(a, b, "identical fingerprints coalesce");
        gate.release();
        let out_a = jobs.wait(a).unwrap();
        let out_b = jobs.wait(b).unwrap();
        assert!(Arc::ptr_eq(&out_a.body, &out_b.body), "one body serves both");
        assert_eq!(&*out_a.body, "first");
        assert_eq!(jobs.stats().coalesced, 1);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let jobs = JobManager::new(1, 1);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        jobs.submit(
            None,
            Box::new(move |_pool, _ctx| {
                g.hold();
                ok("gate")
            }),
        )
        .unwrap();
        // wait until the gate job leaves the queue and occupies the executor
        gate.wait_entered();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("fits"))).unwrap();
        let refused = jobs.submit(None, Box::new(|_pool, _ctx| ok("rejected")));
        assert!(
            matches!(refused, Err(Reject::QueueFull { retry_after_secs }) if retry_after_secs >= 1)
        );
        assert_eq!(jobs.stats().rejected, 1);
        gate.release();
        assert_eq!(&*jobs.wait(queued).unwrap().body, "fits");
    }

    #[test]
    fn panicking_job_becomes_500_and_executor_survives() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_pool, _ctx| panic!("boom"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 500);
        assert!(outcome.body.contains("panicked"));
        let next = jobs.submit(None, Box::new(|_pool, _ctx| ok("alive"))).unwrap();
        assert_eq!(&*jobs.wait(next).unwrap().body, "alive");
        let stats = jobs.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 1);
    }

    #[test]
    fn unknown_ids_are_none() {
        let jobs = JobManager::new(1, 2);
        assert!(jobs.phase(999).is_none());
        assert!(jobs.wait(999).is_none());
        assert!(jobs.outcome(999).is_none());
        assert!(matches!(jobs.wait_until(999, None), WaitOutcome::Unknown));
    }

    #[test]
    fn jobs_actually_use_the_pool() {
        let jobs = JobManager::new(3, 4);
        let id = jobs
            .submit(
                None,
                Box::new(|pool, _ctx| {
                    let items: Vec<u64> = (0..100).collect();
                    let sum: u64 = pool.map(&items, |_wid, &x| x * 2).into_iter().sum();
                    JobOutcome { status: 200, body: Arc::from(format!("{{\"sum\":{sum}}}")) }
                }),
            )
            .unwrap();
        assert_eq!(&*jobs.wait(id).unwrap().body, "{\"sum\":9900}");
    }

    #[test]
    fn queued_job_past_deadline_expires_without_executing() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let blocker = jobs
            .submit(
                None,
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("gate")
                }),
            )
            .unwrap();
        gate.wait_entered();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let doomed = jobs
            .submit_with(
                None,
                Some(Duration::from_millis(30)),
                JobKind::Other,
                7,
                Box::new(move |_pool, _ctx| {
                    r.fetch_add(1, AtomicOrdering::SeqCst);
                    ok("never")
                }),
            )
            .unwrap();
        // the watchdog must 504 the queued job while the blocker still runs
        let outcome = jobs.wait(doomed).expect("expired job still reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("deadline exceeded"), "body: {}", outcome.body);
        assert!(outcome.body.contains("\"scales_done\": 0"), "body: {}", outcome.body);
        assert!(outcome.body.contains("\"scales_total\": 7"), "body: {}", outcome.body);
        assert_eq!(ran.load(AtomicOrdering::SeqCst), 0, "expired job must never execute");
        gate.release();
        assert_eq!(jobs.wait(blocker).unwrap().status, 200);
        assert_eq!(jobs.stats().cancelled, 1);
    }

    #[test]
    fn running_job_past_deadline_gets_its_token_fired() {
        let jobs = JobManager::new(1, 8);
        let id = jobs
            .submit_with(
                None,
                Some(Duration::from_millis(40)),
                JobKind::Other,
                3,
                Box::new(|_pool, ctx| {
                    // a cooperative sweep: spin until the token fires, as
                    // try_run_on would at its next poll point
                    while !ctx.control.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.cancelled_outcome()
                }),
            )
            .unwrap();
        let outcome = jobs.wait(id).expect("cancelled job still reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("deadline exceeded"), "body: {}", outcome.body);
        let stats = jobs.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn admission_control_rejects_wait_that_exceeds_deadline() {
        let jobs = JobManager::new(1, 8);
        // seed the EWMA with a measured ~50ms job
        let seed = jobs
            .submit(
                None,
                Box::new(|_pool, _ctx| {
                    std::thread::sleep(Duration::from_millis(50));
                    ok("seed")
                }),
            )
            .unwrap();
        jobs.wait(seed).unwrap();
        assert!(jobs.stats().ewma_job_secs >= 0.045);
        // occupy the executor and put one job in the queue
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let blocker = jobs
            .submit(
                None,
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("gate")
                }),
            )
            .unwrap();
        gate.wait_entered();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("queued"))).unwrap();
        // estimated wait is ~2 service times (~100ms) >> a 1ms deadline
        let refused = jobs.submit_with(
            None,
            Some(Duration::from_millis(1)),
            JobKind::Other,
            0,
            Box::new(|_pool, _ctx| ok("doomed")),
        );
        match refused {
            Err(Reject::WouldExpire { estimated_wait_ms, retry_after_secs }) => {
                assert!(estimated_wait_ms >= 50, "estimate {estimated_wait_ms}ms");
                assert!(retry_after_secs >= 1);
            }
            other => panic!("expected WouldExpire, got {other:?}"),
        }
        // a generous deadline sails through the same backlog
        let admitted = jobs
            .submit_with(
                None,
                Some(Duration::from_secs(60)),
                JobKind::Other,
                0,
                Box::new(|_pool, _ctx| ok("patient")),
            )
            .expect("generous deadline is admitted");
        gate.release();
        assert!(jobs.wait(blocker).is_some());
        assert!(jobs.wait(queued).is_some());
        assert!(jobs.wait(admitted).is_some());
        assert_eq!(jobs.stats().deadline_rejected, 1);
    }

    #[test]
    fn drain_finishes_backlog_then_refuses_new_work() {
        let jobs = JobManager::new(1, 8);
        let first = jobs
            .submit(
                None,
                Box::new(|_pool, _ctx| {
                    std::thread::sleep(Duration::from_millis(20));
                    ok("first")
                }),
            )
            .unwrap();
        let second = jobs.submit(None, Box::new(|_pool, _ctx| ok("second"))).unwrap();
        let stats = jobs.drain(Duration::from_secs(30));
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.running, 0);
        assert_eq!(stats.completed, 2);
        assert_eq!(jobs.wait(first).unwrap().status, 200);
        assert_eq!(jobs.wait(second).unwrap().status, 200);
        assert!(matches!(
            jobs.submit(None, Box::new(|_pool, _ctx| ok("late"))),
            Err(Reject::Draining)
        ));
    }

    #[test]
    fn drain_budget_cancels_stragglers() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let stubborn = jobs
            .submit(
                None,
                Box::new(move |_pool, ctx| {
                    g.entered.fetch_add(1, AtomicOrdering::SeqCst);
                    while !ctx.control.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.cancelled_outcome()
                }),
            )
            .unwrap();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("never runs"))).unwrap();
        gate.wait_entered();
        let stats = jobs.drain(Duration::from_millis(50));
        assert_eq!(stats.running, 0, "straggler must stop within the grace period");
        let running_outcome = jobs.wait(stubborn).expect("cancelled job reports");
        assert_eq!(running_outcome.status, 504);
        assert!(running_outcome.body.contains("draining"), "body: {}", running_outcome.body);
        let queued_outcome = jobs.wait(queued).expect("cut queued job reports");
        assert_eq!(queued_outcome.status, 504);
        assert!(queued_outcome.body.contains("draining"), "body: {}", queued_outcome.body);
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn coalesced_waiter_with_short_deadline_times_out_alone() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let id = jobs
            .submit(
                Some(0xc0a1),
                Box::new(move |_pool, ctx| {
                    ctx.control.progress.set_total(5);
                    ctx.control.progress.add_done(2);
                    g.hold();
                    ok("shared")
                }),
            )
            .unwrap();
        gate.wait_entered();
        // an impatient coalesced waiter gives up; the job itself continues
        let expired = jobs.wait_until(id, Some(Instant::now() + Duration::from_millis(20)));
        match expired {
            WaitOutcome::DeadlineExpired { scales_done, scales_total } => {
                assert_eq!(scales_done, 2);
                assert_eq!(scales_total, 5);
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        gate.release();
        assert_eq!(jobs.wait(id).unwrap().status, 200, "job outlives the impatient waiter");
    }

    #[test]
    fn injected_cancel_race_still_finalizes_cleanly() {
        let plan = Arc::new(FaultPlan::parse("cancel_race:1").unwrap());
        let jobs = JobManager::with_faults(1, 8, Some(plan));
        let id = jobs
            .submit(
                None,
                Box::new(|_pool, ctx| {
                    if ctx.control.cancel.is_cancelled() {
                        ctx.cancelled_outcome()
                    } else {
                        ok("unraced")
                    }
                }),
            )
            .unwrap();
        let outcome = jobs.wait(id).expect("raced job reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("injected"), "body: {}", outcome.body);
        assert_eq!(jobs.stats().cancelled, 1);
    }
}
