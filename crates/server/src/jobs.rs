//! The deadline-aware job system: fingerprint-partitioned shards — each a
//! bounded queue drained by its own executor thread owning its own
//! [`WorkerPool`], watched by its own deadline watchdog — under one
//! supervisor thread that restarts dead executors and unwedges stalled
//! ones.
//!
//! Design points:
//!
//! * **Sharded executors.** `--executors N` creates N shards; a submission
//!   routes by `fingerprint % N` (or `job_id % N` when no fingerprint),
//!   so coalescing still works — equal fingerprints always land on the
//!   same shard and attach to the same in-flight job. The executor count
//!   never enters fingerprints or report bytes: shard choice affects only
//!   *where* a sweep runs, never *what* it computes.
//! * **One pool per shard, many connections.** `WorkerPool::map` takes
//!   `&mut self` (one round in flight per pool), so sweeps are serialized
//!   through their shard's executor thread, which owns that shard's pool —
//!   each sweep then fans out across the shard's pool workers. Connection
//!   threads never spawn workers; they enqueue and wait. Total `--threads`
//!   parallelism is split evenly across shards.
//! * **Supervised recovery.** A supervisor thread watches every shard. An
//!   executor that dies (a panic escaping `catch_unwind`, e.g. a poisoned
//!   pool, or the `executor_die` fault) is restarted with capped
//!   exponential backoff; its in-flight job is finalized as a structured
//!   `500` carrying partial progress and its queued jobs are preserved for
//!   the replacement. A shard making no sweep progress past the stall
//!   budget first gets its running job token-cancelled
//!   ([`CancelCause::Stalled`]); if it ignores the token for another
//!   budget, the wedged thread is abandoned and the shard restarted — one
//!   hostile request cannot freeze unrelated traffic.
//! * **Bounded queues, 503 backpressure — per shard.**
//!   [`JobManager::submit_with`] refuses work beyond the configured depth
//!   *on the routed shard*, while the server is draining, and — admission
//!   control — when that shard's own EWMA-based wait estimate already
//!   exceeds the request's deadline. Every [`Reject`] maps to `503` with a
//!   `Retry-After` hint derived from the routed shard's backlog, so a busy
//!   shard cannot inflate (or mask) another shard's estimate.
//! * **Deadlines are enforced, not advisory.** Per-shard watchdog threads
//!   finalize queued jobs whose deadline passes as structured `504`s
//!   without executing them, and fire the [`CancelToken`] of a running job
//!   past its deadline; the sweep stops cooperatively at its next tile /
//!   DP stride poll and reports partial progress (`scales_done` /
//!   `scales_total`). Cancelled jobs never populate the response cache.
//! * **In-flight coalescing.** Jobs carry the request's content
//!   fingerprint; a submission whose fingerprint matches a queued or
//!   running job attaches to it instead of recomputing, so N concurrent
//!   clients posting the same trace cost one sweep and observe
//!   byte-identical bodies (they share the completed job's `Arc<str>`). An
//!   impatient coalesced waiter times out alone via
//!   [`JobManager::wait_until`]; the shared job keeps running.
//! * **Async retrieval.** Every submission gets a job id; `POST …?async=1`
//!   returns it immediately and `GET /v1/jobs/<id>` polls (or blocks with
//!   `?wait=1`) for the outcome. Finished jobs are retained up to
//!   [`RETAINED_JOBS`] before the oldest are dropped.
//! * **Drain joins every shard.** Lame-duck drain stops admission, waits
//!   for all shards to go idle within the shared budget, then cuts every
//!   shard's queue and cancels every shard's running job.
//! * **Spill-on-complete ordering.** A completing job populates the cache
//!   from inside its work closure on the executor thread, which *enqueues*
//!   the disk spill (see [`crate::persist`]) before the outcome publishes
//!   to waiters — a report is never observable without also being on its
//!   way to durability. The disk write itself is asynchronous; the
//!   server's drain paths call `cache.flush` after [`JobManager::drain`]
//!   so every accepted job's spill is durable before exit.
//!
//! [`CancelToken`]: saturn_core::CancelToken

use crate::faults::FaultPlan;
use crate::metrics::{Metrics, MetricsSweepObserver};
use saturn_core::parallel::WorkerPool;
use saturn_core::{json_trace_from_env, SweepControl, SweepObserver};
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

/// Completed jobs kept for `GET /v1/jobs/<id>` before the oldest are
/// forgotten.
pub const RETAINED_JOBS: usize = 512;

/// Default liveness budget: a running job making no sweep progress for
/// this long is token-cancelled; for twice this long, its executor is
/// abandoned and the shard restarted.
pub const DEFAULT_STALL_BUDGET: Duration = Duration::from_secs(300);

/// Smoothing factor for the per-shard EWMA of job service seconds (weight
/// of the newest sample).
const EWMA_ALPHA: f64 = 0.3;

/// How long a drain waits for a cancelled straggler to observe its token
/// after the drain budget itself is spent.
const DRAIN_GRACE: Duration = Duration::from_secs(30);

/// Supervisor polling cadence for shard liveness.
const SUPERVISOR_TICK: Duration = Duration::from_millis(10);

/// First restart delay after an executor death; doubles per consecutive
/// death up to [`RESTART_BACKOFF_CAP`].
const RESTART_BACKOFF_BASE: Duration = Duration::from_millis(100);

/// Ceiling on the exponential restart backoff.
const RESTART_BACKOFF_CAP: Duration = Duration::from_secs(5);

/// A shard healthy for this long after a restart has its backoff streak
/// forgiven.
const RESTART_STREAK_RESET: Duration = Duration::from_secs(30);

/// The work of one job: runs on its shard's executor thread against that
/// shard's pool and its own [`JobCtx`], returns the HTTP status and
/// serialized body of the outcome.
pub type JobWork = Box<dyn FnOnce(&mut WorkerPool, &JobCtx) -> JobOutcome + Send>;

/// Terminal result of a job, served verbatim to every attached client.
#[derive(Clone, Debug)]
pub struct JobOutcome {
    /// HTTP status of the response (200, or a 4xx/5xx the job produced).
    pub status: u16,
    /// Serialized JSON body.
    pub body: Arc<str>,
}

/// Why a job's cancel token fired.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum CancelCause {
    /// The request's deadline expired while queued or running.
    Deadline,
    /// The server is draining for shutdown.
    Drain,
    /// A fault-injection directive fired the token.
    Injected,
    /// The supervisor saw no sweep progress past the stall budget.
    Stalled,
}

/// Per-job cancellation and progress context, shared between the executor,
/// the watchdog, the supervisor, and waiting request handlers.
#[derive(Debug)]
pub struct JobCtx {
    /// Cancel token + progress counters threaded into the sweep.
    pub control: SweepControl,
    /// First cause to fire the token (0 = none); later causes lose the race.
    cause: AtomicU8,
}

impl JobCtx {
    fn new(observer: Arc<dyn SweepObserver>) -> Arc<JobCtx> {
        Arc::new(JobCtx {
            control: SweepControl::with_observer(observer),
            cause: AtomicU8::new(0),
        })
    }

    /// True once any cancel cause has been recorded.
    pub fn is_cancelled(&self) -> bool {
        self.cause.load(Ordering::Acquire) != 0
    }

    /// Fires the job's token, recording `cause` if none was recorded yet.
    pub fn cancel(&self, cause: CancelCause) {
        let code = match cause {
            CancelCause::Deadline => 1,
            CancelCause::Drain => 2,
            CancelCause::Injected => 3,
            CancelCause::Stalled => 4,
        };
        let _ = self.cause.compare_exchange(0, code, Ordering::AcqRel, Ordering::Acquire);
        self.control.cancel.cancel();
    }

    fn cause_text(&self) -> &'static str {
        match self.cause.load(Ordering::Acquire) {
            1 => "deadline exceeded",
            2 => "cancelled: server draining",
            3 => "cancelled: injected fault",
            4 => "cancelled: executor stalled",
            _ => "cancelled",
        }
    }

    fn cause_code(&self) -> &'static str {
        match self.cause.load(Ordering::Acquire) {
            1 => "deadline_exceeded",
            2 => "draining",
            3 => "fault_injected",
            4 => "stalled",
            _ => "cancelled",
        }
    }

    /// The structured 504 outcome of a cancelled job, carrying how far the
    /// sweep got.
    pub fn cancelled_outcome(&self) -> JobOutcome {
        let (done, total) = self.control.progress.snapshot();
        JobOutcome {
            status: 504,
            body: Arc::from(timeout_body(self.cause_code(), self.cause_text(), done, total)),
        }
    }
}

/// The JSON body of a `504` (or of a client-side deadline expiry, or of a
/// supervisor-finalized `500`): the standard [`crate::error_envelope`]
/// carrying partial progress in whole scales. Cancellations are retryable
/// by definition — the request itself was fine.
pub fn timeout_body(code: &str, error: &str, scales_done: u64, scales_total: u64) -> String {
    crate::error_envelope(code, error, true, Some((scales_done, scales_total)))
}

/// What kind of sweep a job runs — selects the fault-injection site.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum JobKind {
    /// Occupancy sweep (`POST /v1/analyze`).
    Analyze,
    /// Validation sweep (`POST /v1/validate`).
    Validate,
    /// Anything else (tests).
    Other,
}

impl JobKind {
    fn site(self) -> crate::faults::FaultSite {
        match self {
            JobKind::Analyze => crate::faults::FaultSite::Analyze,
            JobKind::Validate => crate::faults::FaultSite::Validate,
            JobKind::Other => crate::faults::FaultSite::Job,
        }
    }
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum JobPhase {
    /// Waiting in its shard's queue.
    Queued,
    /// Executing on its shard's pool.
    Running,
    /// Finished; the outcome is available.
    Done,
}

/// `submit` refusal. Every variant maps to `503` with a `Retry-After`
/// hint computed from the routed shard's own backlog.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Reject {
    /// The routed shard's bounded queue is at capacity.
    QueueFull {
        /// Suggested client backoff, from the shard's EWMA backlog
        /// estimate.
        retry_after_secs: u32,
    },
    /// Admission control: the routed shard's estimated queue wait already
    /// exceeds the request's deadline, so executing it would only waste
    /// the pool.
    WouldExpire {
        /// The wait estimate that exceeded the deadline.
        estimated_wait_ms: u64,
        /// Suggested client backoff.
        retry_after_secs: u32,
    },
    /// The server is draining for shutdown and admits no new work.
    Draining,
}

struct JobRecord {
    phase: JobPhase,
    outcome: Option<JobOutcome>,
    fingerprint: Option<u128>,
    ctx: Arc<JobCtx>,
    deadline: Option<Instant>,
    kind: JobKind,
    /// The shard this job routed to (fixed at submission).
    shard: usize,
    /// When the job entered the queue — the executor turns this into the
    /// `saturn_queue_wait_seconds` sample when it pops the job.
    queued_at: Instant,
}

/// Everything one shard owns: its queue, its running slot, its EWMA, and
/// the liveness bookkeeping the supervisor reads.
struct ShardState {
    queue: VecDeque<(u64, JobWork)>,
    running: Option<u64>,
    /// `(scales_done, observed_at)` of the running job the last time the
    /// supervisor saw its progress move — no movement past the stall
    /// budget means the shard is wedged.
    progress_mark: Option<(u64, Instant)>,
    /// Whether the stall escalation already fired the running job's token.
    stall_fired: bool,
    /// EWMA of this shard's job service seconds (0 until its first job
    /// finishes).
    ewma_secs: f64,
    /// Bumped by the supervisor on every restart; an executor whose spawn
    /// generation no longer matches is a zombie and must discard its work.
    generation: u64,
}

impl ShardState {
    fn new() -> ShardState {
        ShardState {
            queue: VecDeque::new(),
            running: None,
            progress_mark: None,
            stall_fired: false,
            ewma_secs: 0.0,
            generation: 0,
        }
    }
}

struct State {
    shards: Vec<ShardState>,
    jobs: HashMap<u64, JobRecord>,
    /// fingerprint → id of the queued/running job computing it.
    inflight: HashMap<u128, u64>,
    /// Completion order, for bounding retention.
    finished: VecDeque<u64>,
    next_id: u64,
    draining: bool,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    /// One per shard: pokes that shard's executor when its queue grows.
    work_available: Vec<Condvar>,
    job_done: Condvar,
    /// One per shard: pokes that shard's watchdog whenever its set of
    /// armed deadlines changes.
    deadlines_changed: Vec<Condvar>,
    /// Pokes the supervisor out of its tick sleep at shutdown.
    supervisor_wake: Condvar,
    /// Lifecycle counters (executed / completed / cancelled / panicked /
    /// coalesced / rejected / deadline_rejected — aggregate and per
    /// shard), the queue-depth gauges, and the queue-wait and sweep
    /// histograms. `/v1/health`'s [`JobStats`] is a view over these same
    /// atomics, mutated only while `state`'s lock is held.
    metrics: Arc<Metrics>,
    /// Fault-injection plan consulted at the executor seams.
    faults: Option<Arc<FaultPlan>>,
    /// Pool parallelism per shard (the `--threads` total split evenly).
    pool_threads: usize,
    /// Liveness budget for stall supervision (zero disables it).
    stall_budget: Duration,
}

/// Mirrors every shard queue length into the registry gauges (per-shard
/// and aggregate); call after any queue mutation, while the state lock is
/// held.
fn sync_queue_gauges(state: &State, metrics: &Metrics) {
    let mut total = 0;
    for (shard, s) in state.shards.iter().enumerate() {
        metrics.shard(shard).queue_depth.set(s.queue.len() as u64);
        total += s.queue.len();
    }
    metrics.queue_depth.set(total as u64);
}

/// One shard's slice of [`JobStats`], serialized into `/v1/health`'s
/// `shards` array. Summing any counter over shards yields the matching
/// aggregate counter.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ShardStats {
    /// Shard index (submissions route by `fingerprint % executors`).
    pub shard: usize,
    /// Jobs currently queued on this shard.
    pub queued: usize,
    /// Jobs currently executing on this shard's pool (0 or 1).
    pub running: usize,
    /// Jobs this shard executed to completion (any outcome).
    pub executed: u64,
    /// Jobs that finished with their own outcome.
    pub completed: u64,
    /// Jobs cancelled by deadline, drain, stall, or injected fault.
    pub cancelled: u64,
    /// Jobs whose work panicked — including executor deaths finalized by
    /// the supervisor (`500`s).
    pub panicked: u64,
    /// Submissions attached to an in-flight duplicate on this shard.
    pub coalesced: u64,
    /// Submissions refused with any [`Reject`] while routed here.
    pub rejected: u64,
    /// Refusals by deadline admission control specifically.
    pub deadline_rejected: u64,
    /// Times the supervisor restarted this shard's executor.
    pub restarts: u64,
    /// EWMA of this shard's job service seconds.
    pub ewma_job_secs: f64,
}

/// Queue counters, serialized into `/v1/health`. Aggregate counters equal
/// the sums of the corresponding [`ShardStats`] fields.
#[derive(Clone, Debug, Serialize)]
pub struct JobStats {
    /// Jobs currently queued (not yet running), over all shards.
    pub queued: usize,
    /// Configured queue bound (per shard).
    pub queue_depth: usize,
    /// Jobs currently executing (0 ..= executors).
    pub running: usize,
    /// Jobs executed to completion (any outcome).
    pub executed: u64,
    /// Jobs that finished with their own outcome (not cancelled, did not
    /// panic).
    pub completed: u64,
    /// Jobs cancelled by deadline, drain, stall, or injected fault
    /// (`504`s).
    pub cancelled: u64,
    /// Jobs whose work panicked, including executor deaths (`500`s).
    pub panicked: u64,
    /// Submissions attached to an in-flight duplicate.
    pub coalesced: u64,
    /// Submissions refused with any [`Reject`].
    pub rejected: u64,
    /// Refusals by deadline admission control specifically.
    pub deadline_rejected: u64,
    /// Mean of the nonzero per-shard EWMAs of job service seconds (0
    /// until the first job finishes anywhere).
    pub ewma_job_secs: f64,
    /// Number of shards / executor threads.
    pub executors: usize,
    /// Total supervisor restarts over all shards.
    pub executor_restarts: u64,
    /// Per-shard breakdown; sums equal the aggregates above.
    pub shards: Vec<ShardStats>,
}

/// Outcome of [`JobManager::wait_until`].
#[derive(Clone, Debug)]
pub enum WaitOutcome {
    /// The job finished; here is its outcome.
    Done(JobOutcome),
    /// The caller's own deadline expired first; the job keeps running for
    /// any more patient (coalesced) waiters. Carries the job's progress at
    /// expiry.
    DeadlineExpired {
        /// Scales finished when the wait gave up.
        scales_done: u64,
        /// Scales planned in total.
        scales_total: u64,
    },
    /// No such job (expired from retention or never existed).
    Unknown,
}

/// Everything [`JobManager::with_config`] needs to lay out the shards.
#[derive(Clone, Debug)]
pub struct JobsConfig {
    /// Total pool parallelism across all shards (0 = all cores), split
    /// evenly per shard.
    pub threads: usize,
    /// Queue bound per shard.
    pub queue_depth: usize,
    /// Shard / executor count (0 = [`auto_executors`]).
    pub executors: usize,
    /// Liveness budget for stall supervision
    /// ([`DEFAULT_STALL_BUDGET`]; zero disables stall supervision).
    pub stall_budget: Duration,
    /// Fault-injection plan consulted at the executor seams.
    pub faults: Option<Arc<FaultPlan>>,
}

impl JobsConfig {
    /// Defaults: one executor, the default stall budget, no faults.
    pub fn new(threads: usize, queue_depth: usize) -> JobsConfig {
        JobsConfig {
            threads,
            queue_depth,
            executors: 1,
            stall_budget: DEFAULT_STALL_BUDGET,
            faults: None,
        }
    }
}

/// The `--executors auto` policy: one executor per four cores, clamped to
/// [1, 4].
pub fn auto_executors() -> usize {
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    (cores / 4).clamp(1, 4)
}

/// Splits the `--threads` total evenly across shards: with one shard the
/// pool gets the whole budget verbatim (0 still means "all cores" inside
/// `WorkerPool`); with several, 0 is resolved to the core count first so
/// the shards cannot each claim every core.
fn pool_threads_per_shard(total: usize, executors: usize) -> usize {
    if executors <= 1 {
        return total;
    }
    let total = if total == 0 {
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
    } else {
        total
    };
    (total / executors).max(1)
}

/// Owner of the supervisor, executor, and watchdog threads and the job
/// table.
pub struct JobManager {
    shared: Arc<Shared>,
    queue_depth: usize,
    /// Threaded into every job's [`SweepControl`]: folds tile spans into
    /// the registry and mirrors them to stderr under `SATURN_TRACE=json`.
    observer: Arc<dyn SweepObserver>,
    supervisor: Option<JoinHandle<()>>,
    watchdogs: Vec<JoinHandle<()>>,
}

impl JobManager {
    /// One shard with a pool of `threads` total parallelism (0 = all
    /// cores) and a queue bounded at `queue_depth` waiting jobs.
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        Self::with_config(JobsConfig::new(threads, queue_depth), None)
    }

    /// [`JobManager::new`] with a fault-injection plan consulted at the
    /// executor seams. Counts into a private registry.
    pub fn with_faults(
        threads: usize,
        queue_depth: usize,
        faults: Option<Arc<FaultPlan>>,
    ) -> Self {
        let mut config = JobsConfig::new(threads, queue_depth);
        config.faults = faults;
        Self::with_config(config, None)
    }

    /// Lays out `config.executors` shards (0 = [`auto_executors`]) and
    /// starts the supervisor (which spawns the executors) plus one
    /// watchdog per shard. `metrics` is the shared registry where
    /// `/v1/metrics` and `/v1/health` must agree — it must have been built
    /// with [`Metrics::with_shards`] for the same executor count; `None`
    /// builds a private, correctly sized one.
    pub fn with_config(config: JobsConfig, metrics: Option<Arc<Metrics>>) -> Self {
        let executors = if config.executors == 0 { auto_executors() } else { config.executors };
        let metrics = metrics.unwrap_or_else(|| Arc::new(Metrics::with_shards(executors)));
        assert_eq!(
            metrics.shards().len(),
            executors,
            "metrics registry sized for a different executor count"
        );
        let observer: Arc<dyn SweepObserver> =
            Arc::new(MetricsSweepObserver::new(Arc::clone(&metrics), json_trace_from_env()));
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                shards: (0..executors).map(|_| ShardState::new()).collect(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                finished: VecDeque::new(),
                next_id: 1,
                draining: false,
                shutdown: false,
            }),
            work_available: (0..executors).map(|_| Condvar::new()).collect(),
            job_done: Condvar::new(),
            deadlines_changed: (0..executors).map(|_| Condvar::new()).collect(),
            supervisor_wake: Condvar::new(),
            metrics,
            faults: config.faults,
            pool_threads: pool_threads_per_shard(config.threads, executors),
            stall_budget: config.stall_budget,
        });
        let supervisor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("saturn-supervisor".into())
                .spawn(move || supervisor_loop(&shared))
                .expect("cannot spawn job supervisor")
        };
        let watchdogs = (0..executors)
            .map(|shard| {
                let shared = Arc::clone(&shared);
                std::thread::Builder::new()
                    .name(format!("saturn-watchdog-{shard}"))
                    .spawn(move || watchdog_loop(&shared, shard))
                    .expect("cannot spawn deadline watchdog")
            })
            .collect();
        JobManager {
            shared,
            queue_depth: config.queue_depth,
            observer,
            supervisor: Some(supervisor),
            watchdogs,
        }
    }

    /// Enqueues `work` with no deadline; see [`JobManager::submit_with`].
    pub fn submit(&self, fingerprint: Option<u128>, work: JobWork) -> Result<u64, Reject> {
        self.submit_with(fingerprint, None, JobKind::Other, 0, work)
    }

    /// Routes to a shard by `fingerprint % executors` (`job_id %
    /// executors` without one) and enqueues `work` there, or attaches to
    /// an in-flight job computing the same `fingerprint` (always on the
    /// same shard, by construction). Returns the job id to wait on, or a
    /// [`Reject`] when the server is draining, the shard's queue is full,
    /// or — with a `deadline` — the shard's EWMA wait estimate already
    /// exceeds it. A deadline also arms the shard's watchdog for the job
    /// itself; `scales_hint` pre-seeds the progress total so even a job
    /// cancelled before its sweep starts reports a meaningful
    /// `scales_total`.
    pub fn submit_with(
        &self,
        fingerprint: Option<u128>,
        deadline: Option<Duration>,
        kind: JobKind,
        scales_hint: u64,
        work: JobWork,
    ) -> Result<u64, Reject> {
        let metrics = &self.shared.metrics;
        let mut state = self.shared.state.lock().expect("job state poisoned");
        let executors = state.shards.len();
        let shard = match fingerprint {
            Some(key) => (key % executors as u128) as usize,
            None => (state.next_id % executors as u64) as usize,
        };
        if state.draining || state.shutdown {
            metrics.jobs_rejected.inc();
            metrics.shard(shard).rejected.inc();
            return Err(Reject::Draining);
        }
        if let Some(key) = fingerprint {
            if let Some(&id) = state.inflight.get(&key) {
                // a cancelled job is doomed to a 504 and will never fill the
                // cache; queue a fresh run instead of chaining new waiters
                // onto it (the insert below repoints `inflight` at the new
                // job, so the doomed one retires without touching the map)
                let doomed = state.jobs.get(&id).map(|r| r.ctx.is_cancelled()).unwrap_or(false);
                if !doomed {
                    metrics.jobs_coalesced.inc();
                    metrics.shard(shard).coalesced.inc();
                    return Ok(id);
                }
            }
        }
        if state.shards[shard].queue.len() >= self.queue_depth {
            metrics.jobs_rejected.inc();
            metrics.shard(shard).rejected.inc();
            return Err(Reject::QueueFull { retry_after_secs: retry_secs(&state, shard) });
        }
        if let Some(budget) = deadline {
            let estimated = estimated_wait(&state, shard);
            if estimated > budget {
                metrics.jobs_rejected.inc();
                metrics.shard(shard).rejected.inc();
                metrics.jobs_deadline_rejected.inc();
                metrics.shard(shard).deadline_rejected.inc();
                return Err(Reject::WouldExpire {
                    estimated_wait_ms: estimated.as_millis() as u64,
                    retry_after_secs: retry_secs(&state, shard),
                });
            }
        }
        let id = state.next_id;
        state.next_id += 1;
        let ctx = JobCtx::new(Arc::clone(&self.observer));
        ctx.control.progress.set_total(scales_hint);
        let deadline_at = deadline.map(|budget| Instant::now() + budget);
        state.jobs.insert(
            id,
            JobRecord {
                phase: JobPhase::Queued,
                outcome: None,
                fingerprint,
                ctx,
                deadline: deadline_at,
                kind,
                shard,
                queued_at: Instant::now(),
            },
        );
        if let Some(key) = fingerprint {
            state.inflight.insert(key, id);
        }
        state.shards[shard].queue.push_back((id, work));
        sync_queue_gauges(&state, metrics);
        drop(state);
        self.shared.work_available[shard].notify_one();
        if deadline_at.is_some() {
            self.shared.deadlines_changed[shard].notify_all();
        }
        Ok(id)
    }

    /// Current phase of a job (`None` for unknown/expired ids).
    pub fn phase(&self, id: u64) -> Option<JobPhase> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).map(|j| j.phase)
    }

    /// The outcome of a finished job, without blocking.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Blocks until job `id` finishes and returns its outcome (`None` for
    /// unknown/expired ids).
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        match self.wait_until(id, None) {
            WaitOutcome::Done(outcome) => Some(outcome),
            _ => None,
        }
    }

    /// Blocks until job `id` finishes or `deadline` passes, whichever
    /// comes first. A caller whose deadline fires while the job continues
    /// (the job may be shared with more patient coalesced waiters, or
    /// about to be cancelled by the watchdog) gets the job's progress
    /// snapshot back instead of an outcome.
    pub fn wait_until(&self, id: u64, deadline: Option<Instant>) -> WaitOutcome {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        loop {
            let Some(job) = state.jobs.get(&id) else { return WaitOutcome::Unknown };
            if let Some(outcome) = &job.outcome {
                return WaitOutcome::Done(outcome.clone());
            }
            match deadline {
                None => state = self.shared.job_done.wait(state).expect("job state poisoned"),
                Some(at) => {
                    let now = Instant::now();
                    if now >= at {
                        let (scales_done, scales_total) = job.ctx.control.progress.snapshot();
                        return WaitOutcome::DeadlineExpired { scales_done, scales_total };
                    }
                    state = self
                        .shared
                        .job_done
                        .wait_timeout(state, at - now)
                        .expect("job state poisoned")
                        .0;
                }
            }
        }
    }

    /// Stops admitting work and waits up to `budget` for every shard's
    /// backlog to finish (the supervisor keeps restarting dead executors
    /// during the drain, so queued work still makes progress). Whatever is
    /// still queued on any shard when the budget runs out is finalized as
    /// a drain `504` without executing; still-running jobs have their
    /// tokens fired and get a short grace period to stop at their next
    /// cancellation poll. Returns the final stats.
    pub fn drain(&self, budget: Duration) -> JobStats {
        let give_up = Instant::now() + budget;
        let mut state = self.shared.state.lock().expect("job state poisoned");
        state.draining = true;
        while !shards_idle(&state) {
            let now = Instant::now();
            if now >= give_up {
                break;
            }
            state = self
                .shared
                .job_done
                .wait_timeout(state, give_up - now)
                .expect("job state poisoned")
                .0;
        }
        if !shards_idle(&state) {
            for shard in 0..state.shards.len() {
                let cut: Vec<u64> =
                    state.shards[shard].queue.iter().map(|(id, _)| *id).collect();
                state.shards[shard].queue.clear();
                for id in cut {
                    finalize_cancelled(
                        &mut state,
                        &self.shared.metrics,
                        id,
                        CancelCause::Drain,
                    );
                }
                if let Some(id) = state.shards[shard].running {
                    if let Some(job) = state.jobs.get(&id) {
                        job.ctx.cancel(CancelCause::Drain);
                    }
                }
            }
            sync_queue_gauges(&state, &self.shared.metrics);
            self.shared.job_done.notify_all();
            let grace = Instant::now() + DRAIN_GRACE;
            while state.shards.iter().any(|s| s.running.is_some()) && Instant::now() < grace {
                state = self
                    .shared
                    .job_done
                    .wait_timeout(state, Duration::from_millis(50))
                    .expect("job state poisoned")
                    .0;
            }
        }
        stats_of(&state, &self.shared.metrics, self.queue_depth)
    }

    /// Queue counters.
    pub fn stats(&self) -> JobStats {
        let state = self.shared.state.lock().expect("job state poisoned");
        stats_of(&state, &self.shared.metrics, self.queue_depth)
    }
}

fn shards_idle(state: &State) -> bool {
    state.shards.iter().all(|s| s.queue.is_empty() && s.running.is_none())
}

/// [`JobStats`] as a view over the registry counters — the `/v1/health`
/// numbers ARE the `/v1/metrics` numbers, snapshotted under the state
/// lock. Per-shard rows sum to the aggregates.
fn stats_of(state: &State, metrics: &Metrics, queue_depth: usize) -> JobStats {
    let shards: Vec<ShardStats> = state
        .shards
        .iter()
        .enumerate()
        .map(|(shard, s)| {
            let m = metrics.shard(shard);
            ShardStats {
                shard,
                queued: s.queue.len(),
                running: usize::from(s.running.is_some()),
                executed: m.executed.get(),
                completed: m.completed.get(),
                cancelled: m.cancelled.get(),
                panicked: m.panicked.get(),
                coalesced: m.coalesced.get(),
                rejected: m.rejected.get(),
                deadline_rejected: m.deadline_rejected.get(),
                restarts: m.restarts.get(),
                ewma_job_secs: s.ewma_secs,
            }
        })
        .collect();
    let seeded: Vec<f64> =
        state.shards.iter().map(|s| s.ewma_secs).filter(|&e| e > 0.0).collect();
    let ewma_job_secs =
        if seeded.is_empty() { 0.0 } else { seeded.iter().sum::<f64>() / seeded.len() as f64 };
    JobStats {
        queued: shards.iter().map(|s| s.queued).sum(),
        queue_depth,
        running: shards.iter().map(|s| s.running).sum(),
        executed: metrics.jobs_executed.get(),
        completed: metrics.jobs_completed.get(),
        cancelled: metrics.jobs_cancelled.get(),
        panicked: metrics.jobs_panicked.get(),
        coalesced: metrics.jobs_coalesced.get(),
        rejected: metrics.jobs_rejected.get(),
        deadline_rejected: metrics.jobs_deadline_rejected.get(),
        ewma_job_secs,
        executors: state.shards.len(),
        executor_restarts: shards.iter().map(|s| s.restarts).sum(),
        shards,
    }
}

/// EWMA estimate of how long a job newly queued on `shard` waits before
/// it starts: one full service time per job ahead of it on that shard
/// (queued + running). Zero until the shard's first job finishes — an
/// idle new shard admits everything.
fn estimated_wait(state: &State, shard: usize) -> Duration {
    let s = &state.shards[shard];
    let backlog = s.queue.len() + usize::from(s.running.is_some());
    Duration::from_secs_f64(s.ewma_secs * backlog as f64)
}

/// `Retry-After` hint: the routed shard's backlog estimate plus one of
/// its service times (the retry joins behind the current backlog),
/// clamped to [1s, 1h].
fn retry_secs(state: &State, shard: usize) -> u32 {
    let secs =
        (estimated_wait(state, shard).as_secs_f64() + state.shards[shard].ewma_secs).ceil();
    secs.clamp(1.0, 3600.0) as u32
}

/// Finalizes a job that will never execute (deadline expired in queue, or
/// drain cut the queue) as a cancelled `504`.
fn finalize_cancelled(state: &mut State, metrics: &Metrics, id: u64, cause: CancelCause) {
    let Some(job) = state.jobs.get_mut(&id) else { return };
    if job.outcome.is_some() {
        return;
    }
    job.ctx.cancel(cause);
    job.phase = JobPhase::Done;
    job.outcome = Some(job.ctx.cancelled_outcome());
    let fingerprint = job.fingerprint;
    let shard = job.shard;
    metrics.jobs_cancelled.inc();
    metrics.shard(shard).cancelled.inc();
    retire(state, id, fingerprint);
}

/// Moves a finished job into the retention window and unregisters its
/// fingerprint (only while the coalescing map still points at this job).
fn retire(state: &mut State, id: u64, fingerprint: Option<u128>) {
    if let Some(key) = fingerprint {
        if state.inflight.get(&key) == Some(&id) {
            state.inflight.remove(&key);
        }
    }
    state.finished.push_back(id);
    while state.finished.len() > RETAINED_JOBS {
        let expired = state.finished.pop_front().expect("nonempty");
        state.jobs.remove(&expired);
    }
}

fn spawn_executor(shared: &Arc<Shared>, shard: usize, generation: u64) -> JoinHandle<()> {
    let shared = Arc::clone(shared);
    std::thread::Builder::new()
        .name(format!("saturn-executor-{shard}"))
        .spawn(move || executor_loop(&shared, shard, generation))
        .expect("cannot spawn shard executor")
}

fn executor_loop(shared: &Shared, shard: usize, generation: u64) {
    // This incarnation's pool (and its per-worker DP arenas): spawned
    // fresh per executor lifetime, so a restart never inherits a possibly
    // poisoned pool from its predecessor.
    let mut pool = WorkerPool::new(shared.pool_threads);
    loop {
        let (id, work, ctx, kind) = {
            let mut state = shared.state.lock().expect("job state poisoned");
            loop {
                if state.shutdown || state.shards[shard].generation != generation {
                    return;
                }
                if let Some((id, work)) = state.shards[shard].queue.pop_front() {
                    let job = state.jobs.get_mut(&id).expect("queued job recorded");
                    job.phase = JobPhase::Running;
                    let ctx = Arc::clone(&job.ctx);
                    let kind = job.kind;
                    shared.metrics.queue_wait_seconds.observe(job.queued_at.elapsed());
                    let done = ctx.control.progress.snapshot().0;
                    let s = &mut state.shards[shard];
                    s.running = Some(id);
                    s.progress_mark = Some((done, Instant::now()));
                    s.stall_fired = false;
                    sync_queue_gauges(&state, &shared.metrics);
                    break (id, work, ctx, kind);
                }
                state = shared.work_available[shard].wait(state).expect("job state poisoned");
            }
        };
        // the running job's deadline is now the watchdog's to track
        shared.deadlines_changed[shard].notify_all();
        if let Some(plan) = &shared.faults {
            if plan.executor_die() {
                // deliberately OUTSIDE catch_unwind: this kills the
                // executor thread itself, exercising supervisor restart
                panic!("injected executor death (shard {shard})");
            }
            if let Some(pause) = plan.executor_stall(kind.site()) {
                // an uncancellable wedge: ignores tokens entirely,
                // exercising stall supervision
                std::thread::sleep(pause);
                let state = shared.state.lock().expect("job state poisoned");
                if state.shards[shard].generation != generation {
                    // the supervisor gave up on us mid-stall and already
                    // finalized the job; a zombie must not touch it
                    return;
                }
            }
            if plan.cancel_race() {
                // adversarial schedule: the token fires before the sweep
                // even starts; the job must still finalize cleanly
                ctx.cancel(CancelCause::Injected);
            }
        }
        let started = Instant::now();
        // Worker panics propagate out of `pool.map`; catch them so one
        // poisoned trace cannot take the shard down.
        let caught = catch_unwind(AssertUnwindSafe(|| {
            if let Some(plan) = &shared.faults {
                plan.maybe_slow(kind.site());
                plan.maybe_panic(kind.site());
            }
            work(&mut pool, &ctx)
        }));
        let elapsed = started.elapsed().as_secs_f64();
        let panicked = caught.is_err();
        let outcome = caught.unwrap_or_else(|_| JobOutcome {
            status: 500,
            body: Arc::from(crate::error_envelope("panicked", "analysis panicked", true, None)),
        });
        shared.metrics.sweep_seconds.observe(Duration::from_secs_f64(elapsed));
        let mut state = shared.state.lock().expect("job state poisoned");
        if state.shards[shard].generation != generation {
            // abandoned as stalled while the work ran: the supervisor
            // already finalized this job as a 500 and a replacement
            // executor owns the shard — discard the late result and exit
            return;
        }
        {
            let s = &mut state.shards[shard];
            s.ewma_secs = if s.ewma_secs == 0.0 {
                elapsed
            } else {
                EWMA_ALPHA * elapsed + (1.0 - EWMA_ALPHA) * s.ewma_secs
            };
            shared.metrics.shard(shard).ewma_job_seconds.set(s.ewma_secs);
            s.running = None;
            s.progress_mark = None;
            s.stall_fired = false;
        }
        shared.metrics.jobs_executed.inc();
        shared.metrics.shard(shard).executed.inc();
        if panicked {
            shared.metrics.jobs_panicked.inc();
            shared.metrics.shard(shard).panicked.inc();
        } else if outcome.status == 504 {
            shared.metrics.jobs_cancelled.inc();
            shared.metrics.shard(shard).cancelled.inc();
        } else {
            shared.metrics.jobs_completed.inc();
            shared.metrics.shard(shard).completed.inc();
        }
        let job = state.jobs.get_mut(&id).expect("running job recorded");
        job.phase = JobPhase::Done;
        job.outcome = Some(outcome);
        let fingerprint = job.fingerprint;
        retire(&mut state, id, fingerprint);
        drop(state);
        shared.job_done.notify_all();
        shared.deadlines_changed[shard].notify_all();
    }
}

/// Supervisor bookkeeping for one shard's executor thread.
struct ExecutorSlot {
    /// Live (or just-finished) executor handle; `None` while waiting out
    /// a restart backoff, or after a wedged thread was abandoned.
    handle: Option<JoinHandle<()>>,
    /// Consecutive restarts without [`RESTART_STREAK_RESET`] of health.
    restart_streak: u32,
    last_restart: Option<Instant>,
    /// When the backoff expires and a replacement may spawn.
    respawn_at: Option<Instant>,
}

/// Capped exponential backoff: 100ms, 200ms, 400ms, … up to 5s.
fn backoff_for(streak: u32) -> Duration {
    let doublings = streak.saturating_sub(1).min(16);
    RESTART_BACKOFF_BASE.saturating_mul(1 << doublings).min(RESTART_BACKOFF_CAP)
}

/// Hands `shard` to a fresh executor generation: bumps the generation (so
/// the old incarnation, if still somehow alive, becomes a zombie and
/// discards its work), finalizes the in-flight job as a structured `500`
/// carrying partial progress, and counts the restart. Queued jobs are
/// untouched — the replacement executor inherits them. Returns whether a
/// job was finalized (the caller then notifies waiters).
fn restart_shard(state: &mut State, metrics: &Metrics, shard: usize, error: &str) -> bool {
    let s = &mut state.shards[shard];
    s.generation += 1;
    let running = s.running.take();
    s.progress_mark = None;
    s.stall_fired = false;
    metrics.shard(shard).restarts.inc();
    let Some(id) = running else { return false };
    let Some(job) = state.jobs.get_mut(&id) else { return false };
    if job.outcome.is_some() {
        return false;
    }
    // fire the token too: a wedged-but-alive zombie thread should stop at
    // its next poll instead of burning its abandoned pool forever
    job.ctx.cancel(CancelCause::Stalled);
    let (done, total) = job.ctx.control.progress.snapshot();
    job.phase = JobPhase::Done;
    job.outcome = Some(JobOutcome {
        status: 500,
        body: Arc::from(timeout_body("executor_failed", error, done, total)),
    });
    let fingerprint = job.fingerprint;
    metrics.jobs_executed.inc();
    metrics.shard(shard).executed.inc();
    metrics.jobs_panicked.inc();
    metrics.shard(shard).panicked.inc();
    retire(state, id, fingerprint);
    true
}

/// Spawns every shard's executor, then watches them: a dead executor
/// (panic escaped `catch_unwind`) is reaped and its shard restarted with
/// capped exponential backoff; a shard whose running job makes no sweep
/// progress for the stall budget has the job token-cancelled, and for
/// twice the budget has its wedged thread abandoned and the shard
/// restarted. Keeps supervising during drain so queued work still makes
/// progress behind a crash.
fn supervisor_loop(shared: &Arc<Shared>) {
    let executors = shared.work_available.len();
    let mut slots: Vec<ExecutorSlot> = (0..executors)
        .map(|shard| ExecutorSlot {
            handle: Some(spawn_executor(shared, shard, 0)),
            restart_streak: 0,
            last_restart: None,
            respawn_at: None,
        })
        .collect();
    let mut state = shared.state.lock().expect("job state poisoned");
    loop {
        if state.shutdown {
            break;
        }
        let now = Instant::now();
        let mut finalized = false;
        for (shard, slot) in slots.iter_mut().enumerate() {
            if slot
                .last_restart
                .is_some_and(|at| now.duration_since(at) >= RESTART_STREAK_RESET)
            {
                slot.restart_streak = 0;
                slot.last_restart = None;
            }
            if slot.handle.as_ref().is_some_and(|h| h.is_finished()) {
                // executor death: reap the corpse, salvage the shard
                let corpse = slot.handle.take().expect("checked above");
                let _ = corpse.join();
                finalized |= restart_shard(
                    &mut state,
                    &shared.metrics,
                    shard,
                    "executor died; restarting shard",
                );
                slot.restart_streak += 1;
                slot.last_restart = Some(now);
                slot.respawn_at = Some(now + backoff_for(slot.restart_streak));
            } else if slot.handle.is_some() && shared.stall_budget > Duration::ZERO {
                if let Some(id) = state.shards[shard].running {
                    if let Some(done) =
                        state.jobs.get(&id).map(|j| j.ctx.control.progress.snapshot().0)
                    {
                        let s = &mut state.shards[shard];
                        let idle = match s.progress_mark {
                            Some((mark, since)) if mark == done => now.duration_since(since),
                            _ => {
                                s.progress_mark = Some((done, now));
                                Duration::ZERO
                            }
                        };
                        if idle >= shared.stall_budget.saturating_mul(2) {
                            // the job ignored its token for a whole extra
                            // budget: abandon the wedged thread (never
                            // joined; it exits as a zombie on its own) and
                            // hand the shard to a fresh executor + pool
                            slot.handle = None;
                            finalized |= restart_shard(
                                &mut state,
                                &shared.metrics,
                                shard,
                                "executor stalled; restarting shard",
                            );
                            slot.restart_streak += 1;
                            slot.last_restart = Some(now);
                            slot.respawn_at = Some(now + backoff_for(slot.restart_streak));
                        } else if idle >= shared.stall_budget
                            && !state.shards[shard].stall_fired
                        {
                            if let Some(job) = state.jobs.get(&id) {
                                job.ctx.cancel(CancelCause::Stalled);
                            }
                            state.shards[shard].stall_fired = true;
                        }
                    }
                }
            }
            if slot.handle.is_none() {
                if let Some(at) = slot.respawn_at {
                    if now >= at {
                        let generation = state.shards[shard].generation;
                        slot.handle = Some(spawn_executor(shared, shard, generation));
                        slot.respawn_at = None;
                        shared.work_available[shard].notify_all();
                    }
                }
            }
        }
        if finalized {
            shared.job_done.notify_all();
        }
        state = shared
            .supervisor_wake
            .wait_timeout(state, SUPERVISOR_TICK)
            .expect("job state poisoned")
            .0;
    }
    drop(state);
    // shutdown: executors observe the flag at their next pop and return
    for slot in &mut slots {
        if let Some(handle) = slot.handle.take() {
            let _ = handle.join();
        }
    }
}

/// Enforces deadlines on one shard: queued jobs past theirs are finalized
/// as `504`s without executing; a running job past its own has its token
/// fired (the executor then finalizes the cancelled outcome). Sleeps
/// until the shard's nearest armed deadline, re-checking whenever the set
/// changes.
fn watchdog_loop(shared: &Shared, shard: usize) {
    let mut state = shared.state.lock().expect("job state poisoned");
    loop {
        if state.shutdown {
            return;
        }
        let now = Instant::now();
        let expired: Vec<u64> = state.shards[shard]
            .queue
            .iter()
            .filter(|(id, _)| {
                state.jobs.get(id).and_then(|job| job.deadline).is_some_and(|at| at <= now)
            })
            .map(|(id, _)| *id)
            .collect();
        if !expired.is_empty() {
            state.shards[shard].queue.retain(|(id, _)| !expired.contains(id));
            sync_queue_gauges(&state, &shared.metrics);
            for id in expired {
                finalize_cancelled(&mut state, &shared.metrics, id, CancelCause::Deadline);
            }
            shared.job_done.notify_all();
        }
        if let Some(id) = state.shards[shard].running {
            if let Some(job) = state.jobs.get(&id) {
                if job.deadline.is_some_and(|at| at <= now) {
                    job.ctx.cancel(CancelCause::Deadline);
                }
            }
        }
        let next_deadline = state.shards[shard]
            .queue
            .iter()
            .filter_map(|(id, _)| state.jobs.get(id).and_then(|job| job.deadline))
            .chain(state.shards[shard].running.and_then(|id| {
                state.jobs.get(&id).and_then(|job| {
                    // a running job whose token already fired needs no
                    // further watchdog attention
                    if job.ctx.control.cancel.is_cancelled() {
                        None
                    } else {
                        job.deadline
                    }
                })
            }))
            .min();
        state = match next_deadline {
            None => shared.deadlines_changed[shard].wait(state).expect("job state poisoned"),
            Some(at) => {
                let pause =
                    at.saturating_duration_since(Instant::now()).max(Duration::from_millis(1));
                shared.deadlines_changed[shard]
                    .wait_timeout(state, pause)
                    .expect("job state poisoned")
                    .0
            }
        };
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("job state poisoned");
            state.shutdown = true;
            for cv in &self.shared.work_available {
                cv.notify_all();
            }
            for cv in &self.shared.deadlines_changed {
                cv.notify_all();
            }
            self.shared.supervisor_wake.notify_all();
        }
        if let Some(supervisor) = self.supervisor.take() {
            let _ = supervisor.join();
        }
        for watchdog in self.watchdogs.drain(..) {
            let _ = watchdog.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering as AtomicOrdering};

    fn ok(body: &str) -> JobOutcome {
        JobOutcome { status: 200, body: Arc::from(body) }
    }

    /// A reusable gate: jobs block in `hold` until the test `release`s.
    struct Gate {
        open: Mutex<bool>,
        cv: Condvar,
        entered: AtomicUsize,
    }

    impl Gate {
        fn new() -> Arc<Gate> {
            Arc::new(Gate {
                open: Mutex::new(false),
                cv: Condvar::new(),
                entered: AtomicUsize::new(0),
            })
        }

        fn hold(&self) {
            self.entered.fetch_add(1, AtomicOrdering::SeqCst);
            let mut open = self.open.lock().unwrap();
            while !*open {
                open = self.cv.wait(open).unwrap();
            }
        }

        fn release(&self) {
            *self.open.lock().unwrap() = true;
            self.cv.notify_all();
        }

        fn wait_entered(&self) {
            while self.entered.load(AtomicOrdering::SeqCst) == 0 {
                std::thread::sleep(Duration::from_millis(1));
            }
        }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_pool, _ctx| ok("{\"x\":1}"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(&*outcome.body, "{\"x\":1}");
        assert_eq!(jobs.phase(id), Some(JobPhase::Done));
        let stats = jobs.stats();
        assert_eq!(stats.executed, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.executors, 1);
        assert_eq!(stats.executor_restarts, 0);
        assert!(stats.ewma_job_secs >= 0.0);
    }

    #[test]
    fn coalescing_shares_one_execution() {
        let jobs = JobManager::new(1, 8);
        // a blocker job keeps the executor busy so both submissions queue
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        jobs.submit(
            None,
            Box::new(move |_pool, _ctx| {
                g.hold();
                ok("gate")
            }),
        )
        .unwrap();
        let a = jobs.submit(Some(42), Box::new(|_pool, _ctx| ok("first"))).unwrap();
        let b = jobs.submit(Some(42), Box::new(|_pool, _ctx| ok("second"))).unwrap();
        assert_eq!(a, b, "identical fingerprints coalesce");
        gate.release();
        let out_a = jobs.wait(a).unwrap();
        let out_b = jobs.wait(b).unwrap();
        assert!(Arc::ptr_eq(&out_a.body, &out_b.body), "one body serves both");
        assert_eq!(&*out_a.body, "first");
        assert_eq!(jobs.stats().coalesced, 1);
    }

    #[test]
    fn bounded_queue_rejects_when_full() {
        let jobs = JobManager::new(1, 1);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        jobs.submit(
            None,
            Box::new(move |_pool, _ctx| {
                g.hold();
                ok("gate")
            }),
        )
        .unwrap();
        // wait until the gate job leaves the queue and occupies the executor
        gate.wait_entered();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("fits"))).unwrap();
        let refused = jobs.submit(None, Box::new(|_pool, _ctx| ok("rejected")));
        assert!(
            matches!(refused, Err(Reject::QueueFull { retry_after_secs }) if retry_after_secs >= 1)
        );
        assert_eq!(jobs.stats().rejected, 1);
        gate.release();
        assert_eq!(&*jobs.wait(queued).unwrap().body, "fits");
    }

    #[test]
    fn panicking_job_becomes_500_and_executor_survives() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_pool, _ctx| panic!("boom"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 500);
        assert!(outcome.body.contains("panicked"));
        let next = jobs.submit(None, Box::new(|_pool, _ctx| ok("alive"))).unwrap();
        assert_eq!(&*jobs.wait(next).unwrap().body, "alive");
        let stats = jobs.stats();
        assert_eq!(stats.panicked, 1);
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.executor_restarts, 0, "a caught panic needs no restart");
    }

    /// Clients key on `error.code`: every code the cancellation and
    /// supervisor paths emit must be exactly one from the crate-docs
    /// registry table, carried in the standard envelope with partial
    /// progress.
    #[test]
    fn emitted_error_codes_match_the_documented_registry() {
        for (cause, code) in [
            (Some(CancelCause::Deadline), "deadline_exceeded"),
            (Some(CancelCause::Drain), "draining"),
            (Some(CancelCause::Injected), "fault_injected"),
            (Some(CancelCause::Stalled), "stalled"),
            (None, "cancelled"),
        ] {
            let jctx = JobCtx { control: SweepControl::new(), cause: AtomicU8::new(0) };
            match cause {
                Some(cause) => jctx.cancel(cause),
                // the token fired without a recorded cause: the fallback
                None => jctx.control.cancel.cancel(),
            }
            let outcome = jctx.cancelled_outcome();
            assert_eq!(outcome.status, 504);
            let v: serde_json::Value = serde_json::from_str(&outcome.body).unwrap();
            assert_eq!(v["error"]["code"].as_str(), Some(code));
            assert_eq!(v["error"]["retryable"].as_bool(), Some(true));
            assert!(v["error"]["scales_done"].as_u64().is_some(), "body: {}", outcome.body);
            assert!(v["error"]["scales_total"].as_u64().is_some());
        }
        // a caught panic emits the registered `panicked` code
        let jobs = JobManager::new(1, 4);
        let id = jobs.submit(None, Box::new(|_pool, _ctx| panic!("boom"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        let v: serde_json::Value = serde_json::from_str(&outcome.body).unwrap();
        assert_eq!((outcome.status, v["error"]["code"].as_str()), (500, Some("panicked")));
    }

    #[test]
    fn unknown_ids_are_none() {
        let jobs = JobManager::new(1, 2);
        assert!(jobs.phase(999).is_none());
        assert!(jobs.wait(999).is_none());
        assert!(jobs.outcome(999).is_none());
        assert!(matches!(jobs.wait_until(999, None), WaitOutcome::Unknown));
    }

    #[test]
    fn jobs_actually_use_the_pool() {
        let jobs = JobManager::new(3, 4);
        let id = jobs
            .submit(
                None,
                Box::new(|pool, _ctx| {
                    let items: Vec<u64> = (0..100).collect();
                    let sum: u64 = pool.map(&items, |_wid, &x| x * 2).into_iter().sum();
                    JobOutcome { status: 200, body: Arc::from(format!("{{\"sum\":{sum}}}")) }
                }),
            )
            .unwrap();
        assert_eq!(&*jobs.wait(id).unwrap().body, "{\"sum\":9900}");
    }

    #[test]
    fn queued_job_past_deadline_expires_without_executing() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let blocker = jobs
            .submit(
                None,
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("gate")
                }),
            )
            .unwrap();
        gate.wait_entered();
        let ran = Arc::new(AtomicUsize::new(0));
        let r = Arc::clone(&ran);
        let doomed = jobs
            .submit_with(
                None,
                Some(Duration::from_millis(30)),
                JobKind::Other,
                7,
                Box::new(move |_pool, _ctx| {
                    r.fetch_add(1, AtomicOrdering::SeqCst);
                    ok("never")
                }),
            )
            .unwrap();
        // the watchdog must 504 the queued job while the blocker still runs
        let outcome = jobs.wait(doomed).expect("expired job still reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("deadline exceeded"), "body: {}", outcome.body);
        assert!(outcome.body.contains("\"scales_done\": 0"), "body: {}", outcome.body);
        assert!(outcome.body.contains("\"scales_total\": 7"), "body: {}", outcome.body);
        assert_eq!(ran.load(AtomicOrdering::SeqCst), 0, "expired job must never execute");
        gate.release();
        assert_eq!(jobs.wait(blocker).unwrap().status, 200);
        assert_eq!(jobs.stats().cancelled, 1);
    }

    #[test]
    fn running_job_past_deadline_gets_its_token_fired() {
        let jobs = JobManager::new(1, 8);
        let id = jobs
            .submit_with(
                None,
                Some(Duration::from_millis(40)),
                JobKind::Other,
                3,
                Box::new(|_pool, ctx| {
                    // a cooperative sweep: spin until the token fires, as
                    // try_run_on would at its next poll point
                    while !ctx.control.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.cancelled_outcome()
                }),
            )
            .unwrap();
        let outcome = jobs.wait(id).expect("cancelled job still reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("deadline exceeded"), "body: {}", outcome.body);
        let stats = jobs.stats();
        assert_eq!(stats.cancelled, 1);
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn admission_control_rejects_wait_that_exceeds_deadline() {
        let jobs = JobManager::new(1, 8);
        // seed the EWMA with a measured ~50ms job
        let seed = jobs
            .submit(
                None,
                Box::new(|_pool, _ctx| {
                    std::thread::sleep(Duration::from_millis(50));
                    ok("seed")
                }),
            )
            .unwrap();
        jobs.wait(seed).unwrap();
        assert!(jobs.stats().ewma_job_secs >= 0.045);
        // occupy the executor and put one job in the queue
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let blocker = jobs
            .submit(
                None,
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("gate")
                }),
            )
            .unwrap();
        gate.wait_entered();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("queued"))).unwrap();
        // estimated wait is ~2 service times (~100ms) >> a 1ms deadline
        let refused = jobs.submit_with(
            None,
            Some(Duration::from_millis(1)),
            JobKind::Other,
            0,
            Box::new(|_pool, _ctx| ok("doomed")),
        );
        match refused {
            Err(Reject::WouldExpire { estimated_wait_ms, retry_after_secs }) => {
                assert!(estimated_wait_ms >= 50, "estimate {estimated_wait_ms}ms");
                assert!(retry_after_secs >= 1);
            }
            other => panic!("expected WouldExpire, got {other:?}"),
        }
        // a generous deadline sails through the same backlog
        let admitted = jobs
            .submit_with(
                None,
                Some(Duration::from_secs(60)),
                JobKind::Other,
                0,
                Box::new(|_pool, _ctx| ok("patient")),
            )
            .expect("generous deadline is admitted");
        gate.release();
        assert!(jobs.wait(blocker).is_some());
        assert!(jobs.wait(queued).is_some());
        assert!(jobs.wait(admitted).is_some());
        assert_eq!(jobs.stats().deadline_rejected, 1);
    }

    #[test]
    fn drain_finishes_backlog_then_refuses_new_work() {
        let jobs = JobManager::new(1, 8);
        let first = jobs
            .submit(
                None,
                Box::new(|_pool, _ctx| {
                    std::thread::sleep(Duration::from_millis(20));
                    ok("first")
                }),
            )
            .unwrap();
        let second = jobs.submit(None, Box::new(|_pool, _ctx| ok("second"))).unwrap();
        let stats = jobs.drain(Duration::from_secs(30));
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.running, 0);
        assert_eq!(stats.completed, 2);
        assert_eq!(jobs.wait(first).unwrap().status, 200);
        assert_eq!(jobs.wait(second).unwrap().status, 200);
        assert!(matches!(
            jobs.submit(None, Box::new(|_pool, _ctx| ok("late"))),
            Err(Reject::Draining)
        ));
    }

    #[test]
    fn drain_budget_cancels_stragglers() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let stubborn = jobs
            .submit(
                None,
                Box::new(move |_pool, ctx| {
                    g.entered.fetch_add(1, AtomicOrdering::SeqCst);
                    while !ctx.control.cancel.is_cancelled() {
                        std::thread::sleep(Duration::from_millis(1));
                    }
                    ctx.cancelled_outcome()
                }),
            )
            .unwrap();
        let queued = jobs.submit(None, Box::new(|_pool, _ctx| ok("never runs"))).unwrap();
        gate.wait_entered();
        let stats = jobs.drain(Duration::from_millis(50));
        assert_eq!(stats.running, 0, "straggler must stop within the grace period");
        let running_outcome = jobs.wait(stubborn).expect("cancelled job reports");
        assert_eq!(running_outcome.status, 504);
        assert!(running_outcome.body.contains("draining"), "body: {}", running_outcome.body);
        let queued_outcome = jobs.wait(queued).expect("cut queued job reports");
        assert_eq!(queued_outcome.status, 504);
        assert!(queued_outcome.body.contains("draining"), "body: {}", queued_outcome.body);
        assert_eq!(stats.cancelled, 2);
    }

    #[test]
    fn coalesced_waiter_with_short_deadline_times_out_alone() {
        let jobs = JobManager::new(1, 8);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let id = jobs
            .submit(
                Some(0xc0a1),
                Box::new(move |_pool, ctx| {
                    ctx.control.progress.set_total(5);
                    ctx.control.progress.add_done(2);
                    g.hold();
                    ok("shared")
                }),
            )
            .unwrap();
        gate.wait_entered();
        // an impatient coalesced waiter gives up; the job itself continues
        let expired = jobs.wait_until(id, Some(Instant::now() + Duration::from_millis(20)));
        match expired {
            WaitOutcome::DeadlineExpired { scales_done, scales_total } => {
                assert_eq!(scales_done, 2);
                assert_eq!(scales_total, 5);
            }
            other => panic!("expected DeadlineExpired, got {other:?}"),
        }
        gate.release();
        assert_eq!(jobs.wait(id).unwrap().status, 200, "job outlives the impatient waiter");
    }

    #[test]
    fn injected_cancel_race_still_finalizes_cleanly() {
        let plan = Arc::new(FaultPlan::parse("cancel_race:1").unwrap());
        let jobs = JobManager::with_faults(1, 8, Some(plan));
        let id = jobs
            .submit(
                None,
                Box::new(|_pool, ctx| {
                    if ctx.control.cancel.is_cancelled() {
                        ctx.cancelled_outcome()
                    } else {
                        ok("unraced")
                    }
                }),
            )
            .unwrap();
        let outcome = jobs.wait(id).expect("raced job reports");
        assert_eq!(outcome.status, 504);
        assert!(outcome.body.contains("injected"), "body: {}", outcome.body);
        assert_eq!(jobs.stats().cancelled, 1);
    }

    #[test]
    fn executor_death_finalizes_inflight_as_500_and_preserves_queue() {
        let plan = Arc::new(FaultPlan::parse("executor_die:1").unwrap());
        let jobs = JobManager::with_faults(1, 8, Some(plan));
        let first = jobs.submit(None, Box::new(|_pool, _ctx| ok("first"))).unwrap();
        let second = jobs.submit(None, Box::new(|_pool, _ctx| ok("second"))).unwrap();
        // every pop kills the executor, so BOTH jobs are finalized by the
        // supervisor: the first as the in-flight casualty, the second after
        // surviving the restart in the preserved queue (then killing the
        // replacement too)
        let out_first = jobs.wait(first).expect("in-flight job is finalized by the supervisor");
        assert_eq!(out_first.status, 500);
        assert!(out_first.body.contains("executor died"), "body: {}", out_first.body);
        // supervisor finalizations carry the registered code + progress
        let v: serde_json::Value = serde_json::from_str(&out_first.body).unwrap();
        assert_eq!(v["error"]["code"].as_str(), Some("executor_failed"));
        assert!(v["error"]["scales_total"].as_u64().is_some());
        let out_second =
            jobs.wait(second).expect("queued job survives the restart and reports");
        assert_eq!(out_second.status, 500);
        assert!(out_second.body.contains("executor died"), "body: {}", out_second.body);
        let stats = jobs.stats();
        assert_eq!(stats.executor_restarts, 2);
        assert_eq!(stats.panicked, 2);
        assert_eq!(stats.executed, 2);
        assert_eq!(stats.shards[0].restarts, 2);
    }

    #[test]
    fn stalled_executor_is_cancelled_then_replaced() {
        let mut config = JobsConfig::new(1, 8);
        config.stall_budget = Duration::from_millis(40);
        let jobs = JobManager::with_config(config, None);
        let id = jobs
            .submit(
                None,
                Box::new(|_pool, _ctx| {
                    // hostile: ignores its token entirely and reports no
                    // progress — the supervisor must escalate past the
                    // cancel to a full shard restart
                    std::thread::sleep(Duration::from_millis(1500));
                    ok("ignored")
                }),
            )
            .unwrap();
        let outcome = jobs.wait(id).expect("stalled job is finalized by the supervisor");
        assert_eq!(outcome.status, 500);
        assert!(outcome.body.contains("stalled"), "body: {}", outcome.body);
        // the replacement executor serves fresh work while the zombie is
        // still wedged in its sleep
        let next = jobs.submit(None, Box::new(|_pool, _ctx| ok("alive"))).unwrap();
        assert_eq!(&*jobs.wait(next).unwrap().body, "alive");
        let stats = jobs.stats();
        assert!(stats.executor_restarts >= 1, "stats: {stats:?}");
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.panicked, 1);
    }

    #[test]
    fn admission_estimates_are_per_shard() {
        let mut config = JobsConfig::new(1, 8);
        config.executors = 2;
        let jobs = JobManager::with_config(config, None);
        // seed shard 0's EWMA with a measured ~50ms job (even fingerprints
        // route to shard 0 of 2)
        let seed = jobs
            .submit(
                Some(2),
                Box::new(|_pool, _ctx| {
                    std::thread::sleep(Duration::from_millis(50));
                    ok("seed")
                }),
            )
            .unwrap();
        jobs.wait(seed).unwrap();
        // occupy shard 0 and queue another job behind the blocker
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let blocker = jobs
            .submit(
                Some(4),
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("gate")
                }),
            )
            .unwrap();
        gate.wait_entered();
        let queued = jobs.submit(Some(6), Box::new(|_pool, _ctx| ok("queued"))).unwrap();
        // shard 0's backlog (~2 seeded service times) exceeds a 1ms deadline
        let refused = jobs.submit_with(
            Some(8),
            Some(Duration::from_millis(1)),
            JobKind::Other,
            0,
            Box::new(|_pool, _ctx| ok("doomed")),
        );
        assert!(matches!(refused, Err(Reject::WouldExpire { .. })), "got {refused:?}");
        // shard 1 is idle with an unseeded EWMA: the same deadline is
        // admitted there — shard 0's backlog cannot inflate its estimate
        let admitted = jobs
            .submit_with(
                Some(3),
                Some(Duration::from_millis(1)),
                JobKind::Other,
                0,
                Box::new(|_pool, _ctx| ok("other shard")),
            )
            .expect("idle shard admits what the busy shard refused");
        assert!(jobs.wait(admitted).is_some());
        gate.release();
        assert!(jobs.wait(blocker).is_some());
        assert!(jobs.wait(queued).is_some());
        let stats = jobs.stats();
        assert_eq!(stats.shards.len(), 2);
        assert_eq!(stats.deadline_rejected, 1);
        assert_eq!(stats.shards[0].deadline_rejected, 1);
        assert_eq!(stats.shards[1].deadline_rejected, 0);
    }

    #[test]
    fn coalescing_still_works_across_shards() {
        let mut config = JobsConfig::new(1, 8);
        config.executors = 4;
        let jobs = JobManager::with_config(config, None);
        let gate = Gate::new();
        let g = Arc::clone(&gate);
        let a = jobs
            .submit(
                Some(42),
                Box::new(move |_pool, _ctx| {
                    g.hold();
                    ok("first")
                }),
            )
            .unwrap();
        let b = jobs.submit(Some(42), Box::new(|_pool, _ctx| ok("second"))).unwrap();
        assert_eq!(a, b, "identical fingerprints land on one shard and coalesce");
        gate.release();
        let out_a = jobs.wait(a).unwrap();
        let out_b = jobs.wait(b).unwrap();
        assert!(Arc::ptr_eq(&out_a.body, &out_b.body), "one body serves both");
        assert_eq!(&*out_a.body, "first");
        let stats = jobs.stats();
        assert_eq!(stats.coalesced, 1);
        assert_eq!(stats.shards[42 % 4].coalesced, 1);
        assert_eq!(stats.executed, 1);
    }

    #[test]
    fn drain_joins_every_shard_within_the_shared_budget() {
        let mut config = JobsConfig::new(1, 8);
        config.executors = 3;
        let jobs = JobManager::with_config(config, None);
        // fingerprints 0, 1, 2 land one job on each of the three shards
        let ids: Vec<u64> = (0..3u128)
            .map(|fp| {
                jobs.submit(
                    Some(fp),
                    Box::new(|_pool, _ctx| {
                        std::thread::sleep(Duration::from_millis(20));
                        ok("swept")
                    }),
                )
                .unwrap()
            })
            .collect();
        let stats = jobs.drain(Duration::from_secs(30));
        assert_eq!(stats.queued, 0);
        assert_eq!(stats.running, 0);
        assert_eq!(stats.completed, 3);
        for shard in &stats.shards {
            assert_eq!(shard.completed, 1, "each shard drained its own job: {stats:?}");
        }
        for id in ids {
            assert_eq!(jobs.wait(id).unwrap().status, 200);
        }
        assert!(matches!(
            jobs.submit(None, Box::new(|_pool, _ctx| ok("late"))),
            Err(Reject::Draining)
        ));
    }
}
