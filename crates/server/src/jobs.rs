//! The batch job manager: a bounded queue of analysis jobs drained by one
//! executor thread that owns the process-wide [`WorkerPool`].
//!
//! Design points:
//!
//! * **One pool, many connections.** `WorkerPool::map` takes `&mut self`
//!   (one round in flight per pool), so sweeps are serialized through a
//!   single executor thread that owns the pool — each sweep then fans out
//!   across all pool workers. Connection threads never spawn workers; they
//!   enqueue and wait. This is the "shared across connections rather than
//!   per-request" layout the pool was built for: worker threads and their
//!   per-worker DP arenas are spawned once per process.
//! * **Bounded queue, 503 backpressure.** [`JobManager::submit`] refuses
//!   work beyond the configured depth; the connection layer turns that into
//!   `503 Service Unavailable` instead of letting latency grow without
//!   bound.
//! * **In-flight coalescing.** Jobs carry the request's content fingerprint;
//!   a submission whose fingerprint matches a queued or running job attaches
//!   to it instead of recomputing, so N concurrent clients posting the same
//!   trace cost one sweep and observe byte-identical bodies (they share the
//!   completed job's `Arc<str>`).
//! * **Async retrieval.** Every submission gets a job id; `POST …?async=1`
//!   returns it immediately and `GET /v1/jobs/<id>` polls (or blocks with
//!   `?wait=1`) for the outcome. Finished jobs are retained up to
//!   [`RETAINED_JOBS`] before the oldest are dropped.

use saturn_core::parallel::WorkerPool;
use serde::Serialize;
use std::collections::{HashMap, VecDeque};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;

/// Completed jobs kept for `GET /v1/jobs/<id>` before the oldest are
/// forgotten.
pub const RETAINED_JOBS: usize = 512;

/// The work of one job: runs on the executor thread against the shared
/// pool, returns the HTTP status and serialized body of the outcome.
pub type JobWork = Box<dyn FnOnce(&mut WorkerPool) -> JobOutcome + Send>;

/// Terminal result of a job, served verbatim to every attached client.
#[derive(Clone)]
pub struct JobOutcome {
    /// HTTP status of the response (200, or a 4xx the job produced).
    pub status: u16,
    /// Serialized JSON body.
    pub body: Arc<str>,
}

/// Lifecycle of a job.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub enum JobPhase {
    /// Waiting in the queue.
    Queued,
    /// Executing on the pool.
    Running,
    /// Finished; the outcome is available.
    Done,
}

/// `submit` refusal: the queue is at capacity.
#[derive(Debug)]
pub struct Busy;

struct JobRecord {
    phase: JobPhase,
    outcome: Option<JobOutcome>,
    fingerprint: Option<u128>,
}

struct State {
    queue: VecDeque<(u64, JobWork)>,
    jobs: HashMap<u64, JobRecord>,
    /// fingerprint → id of the queued/running job computing it.
    inflight: HashMap<u128, u64>,
    /// Completion order, for bounding retention.
    finished: VecDeque<u64>,
    next_id: u64,
    executed: u64,
    coalesced: u64,
    rejected: u64,
    shutdown: bool,
}

struct Shared {
    state: Mutex<State>,
    work_available: Condvar,
    job_done: Condvar,
}

/// Queue counters, serialized into `/v1/health`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct JobStats {
    /// Jobs currently queued (not yet running).
    pub queued: usize,
    /// Configured queue bound.
    pub queue_depth: usize,
    /// Jobs executed to completion.
    pub executed: u64,
    /// Submissions attached to an in-flight duplicate.
    pub coalesced: u64,
    /// Submissions refused with [`Busy`].
    pub rejected: u64,
}

/// Owner of the executor thread and the job table.
pub struct JobManager {
    shared: Arc<Shared>,
    queue_depth: usize,
    executor: Option<JoinHandle<()>>,
}

impl JobManager {
    /// Starts the executor with a pool of `threads` total parallelism
    /// (0 = all cores) and a queue bounded at `queue_depth` waiting jobs.
    pub fn new(threads: usize, queue_depth: usize) -> Self {
        let shared = Arc::new(Shared {
            state: Mutex::new(State {
                queue: VecDeque::new(),
                jobs: HashMap::new(),
                inflight: HashMap::new(),
                finished: VecDeque::new(),
                next_id: 1,
                executed: 0,
                coalesced: 0,
                rejected: 0,
                shutdown: false,
            }),
            work_available: Condvar::new(),
            job_done: Condvar::new(),
        });
        let executor = {
            let shared = Arc::clone(&shared);
            std::thread::Builder::new()
                .name("saturn-executor".into())
                .spawn(move || executor_loop(&shared, threads))
                .expect("cannot spawn job executor")
        };
        JobManager { shared, queue_depth, executor: Some(executor) }
    }

    /// Enqueues `work`, or attaches to an in-flight job computing the same
    /// `fingerprint`. Returns the job id to wait on, or [`Busy`] when the
    /// queue is full.
    pub fn submit(&self, fingerprint: Option<u128>, work: JobWork) -> Result<u64, Busy> {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        if let Some(key) = fingerprint {
            if let Some(&id) = state.inflight.get(&key) {
                state.coalesced += 1;
                return Ok(id);
            }
        }
        if state.queue.len() >= self.queue_depth {
            state.rejected += 1;
            return Err(Busy);
        }
        let id = state.next_id;
        state.next_id += 1;
        state
            .jobs
            .insert(id, JobRecord { phase: JobPhase::Queued, outcome: None, fingerprint });
        if let Some(key) = fingerprint {
            state.inflight.insert(key, id);
        }
        state.queue.push_back((id, work));
        self.shared.work_available.notify_one();
        Ok(id)
    }

    /// Current phase of a job (`None` for unknown/expired ids).
    pub fn phase(&self, id: u64) -> Option<JobPhase> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).map(|j| j.phase)
    }

    /// The outcome of a finished job, without blocking.
    pub fn outcome(&self, id: u64) -> Option<JobOutcome> {
        let state = self.shared.state.lock().expect("job state poisoned");
        state.jobs.get(&id).and_then(|j| j.outcome.clone())
    }

    /// Blocks until job `id` finishes and returns its outcome (`None` for
    /// unknown/expired ids).
    pub fn wait(&self, id: u64) -> Option<JobOutcome> {
        let mut state = self.shared.state.lock().expect("job state poisoned");
        loop {
            match state.jobs.get(&id) {
                None => return None,
                Some(job) => {
                    if let Some(outcome) = &job.outcome {
                        return Some(outcome.clone());
                    }
                }
            }
            state = self.shared.job_done.wait(state).expect("job state poisoned");
        }
    }

    /// Queue counters.
    pub fn stats(&self) -> JobStats {
        let state = self.shared.state.lock().expect("job state poisoned");
        JobStats {
            queued: state.queue.len(),
            queue_depth: self.queue_depth,
            executed: state.executed,
            coalesced: state.coalesced,
            rejected: state.rejected,
        }
    }
}

impl Drop for JobManager {
    fn drop(&mut self) {
        {
            let mut state = self.shared.state.lock().expect("job state poisoned");
            state.shutdown = true;
            self.shared.work_available.notify_all();
        }
        if let Some(executor) = self.executor.take() {
            let _ = executor.join();
        }
    }
}

fn executor_loop(shared: &Shared, threads: usize) {
    // The pool (and its per-worker DP arenas) lives for the process: spawned
    // here once, reused by every job.
    let mut pool = WorkerPool::new(threads);
    loop {
        let (id, work) = {
            let mut state = shared.state.lock().expect("job state poisoned");
            loop {
                if state.shutdown {
                    return;
                }
                if let Some(item) = state.queue.pop_front() {
                    state.jobs.get_mut(&item.0).expect("queued job recorded").phase =
                        JobPhase::Running;
                    break item;
                }
                state = shared.work_available.wait(state).expect("job state poisoned");
            }
        };
        // Worker panics propagate out of `pool.map`; catch them so one
        // poisoned trace cannot take the service down.
        let outcome =
            std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| work(&mut pool)))
                .unwrap_or_else(|_| JobOutcome {
                    status: 500,
                    body: Arc::from(r#"{"error": "analysis panicked"}"#),
                });
        let mut state = shared.state.lock().expect("job state poisoned");
        let job = state.jobs.get_mut(&id).expect("running job recorded");
        job.phase = JobPhase::Done;
        job.outcome = Some(outcome);
        let fingerprint = job.fingerprint;
        if let Some(key) = fingerprint {
            state.inflight.remove(&key);
        }
        state.executed += 1;
        state.finished.push_back(id);
        while state.finished.len() > RETAINED_JOBS {
            let expired = state.finished.pop_front().expect("nonempty");
            state.jobs.remove(&expired);
        }
        shared.job_done.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ok(body: &str) -> JobOutcome {
        JobOutcome { status: 200, body: Arc::from(body) }
    }

    #[test]
    fn submit_wait_roundtrip() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_pool| ok("{\"x\":1}"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 200);
        assert_eq!(&*outcome.body, "{\"x\":1}");
        assert_eq!(jobs.phase(id), Some(JobPhase::Done));
        assert_eq!(jobs.stats().executed, 1);
    }

    #[test]
    fn coalescing_shares_one_execution() {
        let jobs = JobManager::new(1, 8);
        // a blocker job keeps the executor busy so both submissions queue
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        jobs.submit(
            None,
            Box::new(move |_| {
                let (lock, cv) = &*g;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                ok("gate")
            }),
        )
        .unwrap();
        let a = jobs.submit(Some(42), Box::new(|_| ok("first"))).unwrap();
        let b = jobs.submit(Some(42), Box::new(|_| ok("second"))).unwrap();
        assert_eq!(a, b, "identical fingerprints coalesce");
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        let out_a = jobs.wait(a).unwrap();
        let out_b = jobs.wait(b).unwrap();
        assert!(Arc::ptr_eq(&out_a.body, &out_b.body), "one body serves both");
        assert_eq!(&*out_a.body, "first");
        assert_eq!(jobs.stats().coalesced, 1);
    }

    #[test]
    fn bounded_queue_rejects_with_busy() {
        let jobs = JobManager::new(1, 1);
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let g = Arc::clone(&gate);
        let running = jobs
            .submit(
                None,
                Box::new(move |_| {
                    let (lock, cv) = &*g;
                    let mut open = lock.lock().unwrap();
                    while !*open {
                        open = cv.wait(open).unwrap();
                    }
                    ok("gate")
                }),
            )
            .unwrap();
        // wait until the gate job leaves the queue and occupies the executor
        while jobs.phase(running) == Some(JobPhase::Queued) {
            std::thread::yield_now();
        }
        let queued = jobs.submit(None, Box::new(|_| ok("fits"))).unwrap();
        assert!(jobs.submit(None, Box::new(|_| ok("rejected"))).is_err());
        assert_eq!(jobs.stats().rejected, 1);
        let (lock, cv) = &*gate;
        *lock.lock().unwrap() = true;
        cv.notify_all();
        assert_eq!(&*jobs.wait(queued).unwrap().body, "fits");
    }

    #[test]
    fn panicking_job_becomes_500_and_executor_survives() {
        let jobs = JobManager::new(1, 8);
        let id = jobs.submit(None, Box::new(|_| panic!("boom"))).unwrap();
        let outcome = jobs.wait(id).unwrap();
        assert_eq!(outcome.status, 500);
        assert!(outcome.body.contains("panicked"));
        let next = jobs.submit(None, Box::new(|_| ok("alive"))).unwrap();
        assert_eq!(&*jobs.wait(next).unwrap().body, "alive");
    }

    #[test]
    fn unknown_ids_are_none() {
        let jobs = JobManager::new(1, 2);
        assert!(jobs.phase(999).is_none());
        assert!(jobs.wait(999).is_none());
        assert!(jobs.outcome(999).is_none());
    }

    #[test]
    fn jobs_actually_use_the_pool() {
        let jobs = JobManager::new(3, 4);
        let id = jobs
            .submit(
                None,
                Box::new(|pool| {
                    let items: Vec<u64> = (0..100).collect();
                    let sum: u64 = pool.map(&items, |_wid, &x| x * 2).into_iter().sum();
                    JobOutcome { status: 200, body: Arc::from(format!("{{\"sum\":{sum}}}")) }
                }),
            )
            .unwrap();
        assert_eq!(&*jobs.wait(id).unwrap().body, "{\"sum\":9900}");
    }
}
