//! Streaming ingest sessions: long-lived append targets with incremental
//! re-analysis.
//!
//! A session is a pinned-period [`LinkStreamBuilder`] plus a
//! [`SweepCache`] living server-side between requests:
//!
//! * `POST /v1/streams?t_begin=A&t_end=B[&directed=1]` — creates a session
//!   over the study period `[A, B]` (`201` with its id). The body, when
//!   present, is an initial trace batch in the same layouts `/v1/analyze`
//!   accepts (plain `u v t` or KONECT `u v w t`).
//! * `POST /v1/streams/<id>/events` — appends one batch. The whole batch
//!   is parsed and period-checked *before* any of it is committed, so a
//!   `400` never leaves a half-applied batch behind.
//! * `POST /v1/streams/<id>/analyze` — re-analyzes the stream-so-far
//!   through [`OccupancyMethod::try_refresh_on`], reusing the session's
//!   cached per-scale timelines and histograms: clean scales are served
//!   without running any DP, dirty ones rebuild only the suffix windows
//!   the appended events touched.
//!
//! **The report is the artifact, the session is the accelerator.** A
//! refresh produces byte-for-byte the same JSON `/v1/analyze` returns for
//! the concatenated trace — the response is cached under the *plain
//! analyze* key, so scratch and incremental requests fill and hit the same
//! entries. Only the job key is session-scoped (domain
//! `saturn.stream-session.v1`): a refresh must run against *this*
//! session's sweep cache rather than coalesce with an in-flight scratch
//! analyze of the same bytes, which would leave the session cold.
//!
//! The study period is pinned at creation because the sweep cache requires
//! it: window boundaries may not move between refreshes (see the splice
//! invariants in `saturn-trips`). Appends outside the period are `400`s.
//!
//! Sessions are in-memory only and TTL-evicted: every streams request
//! first sweeps expired sessions, so an idle server holds them at most
//! until its next streams request. Requests for an id that was once live
//! get `410 Gone`; ids never allocated get `404`. Creation past the
//! session limit gets `503` with code `stream_limit`.

use crate::http::Request;
use crate::jobs::{self, JobKind};
use crate::metrics::Metrics;
use crate::params::{self, RequestParams};
use crate::{
    cache_filler, cached_or_submitted, param_defaults, ApiError, Handled, Reply, ServerContext,
    SweepJobSpec,
};
use saturn_core::fingerprint::{self, Digest};
use saturn_core::parallel::WorkerPool;
use saturn_core::{
    Cancelled, OccupancyMethod, OccupancyReport, RefreshStats, SweepCache, SweepControl,
    SweepGrid,
};
use saturn_linkstream::io::{self as stream_io, ParsedEvent};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};
use serde_json::Value;
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};
use std::time::{Duration, Instant};

/// The session table: id allocation, TTL eviction, and the session limit.
/// One per server, owned by the context.
pub struct StreamSessions {
    /// Live sessions by id. The map lock is held only for table
    /// operations — never across a parse, a build, or a sweep.
    sessions: Mutex<HashMap<u64, Arc<Session>>>,
    /// Next id to allocate, starting at 1 (0 is never a valid id). Ids are
    /// never reused, which is what lets `410 Gone` be distinguished from
    /// `404`: an id below this watermark once existed.
    next_id: AtomicU64,
    /// Idle time-to-live; sessions untouched this long are evicted.
    ttl: Duration,
    /// Maximum concurrently open sessions.
    max_sessions: usize,
}

/// One live session. Ingest state and sweep state sit behind separate
/// locks — appends never wait on a running refresh — and the two are never
/// held together.
struct Session {
    id: u64,
    /// The pinned study period `[t_begin, t_end]`, inclusive.
    period: (i64, i64),
    ingest: Mutex<Ingest>,
    /// The refresh-side state. The lock serializes refreshes of one
    /// session: two concurrent analyzes run one after the other, ordered
    /// by the state's snapshot watermark (see [`run_refresh`]).
    sweep: Mutex<SweepState>,
    last_touch: Mutex<Instant>,
}

/// A session's append-side state.
struct Ingest {
    builder: LinkStreamBuilder,
    /// Earliest timestamp appended since the last successful refresh
    /// (`None` = clean). Conservative by construction: self-loops that the
    /// builder drops still lower it, which can only shrink the reused
    /// prefix, never corrupt it.
    dirty_min_t: Option<i64>,
    /// Monotone append counter, bumped on every committed batch. Refresh
    /// snapshots capture it to order themselves against [`SweepState`] and
    /// to detect appends racing a refresh (the dirty mark must survive
    /// those).
    version: u64,
}

/// A session's refresh-side state, behind `Session::sweep`.
struct SweepState {
    /// The per-scale timeline + histogram cache refreshes read and update.
    cache: SweepCache,
    /// [`Ingest::version`] of the snapshot whose *successful* refresh last
    /// advanced `cache` — the watermark [`run_refresh`] checks so that a
    /// snapshot outrun by a newer refresh never runs against the cache.
    version: u64,
}

impl Session {
    fn touch(&self) {
        *self.last_touch.lock().unwrap() = Instant::now();
    }
}

impl StreamSessions {
    /// An empty table with the given idle TTL and session limit.
    pub fn new(ttl: Duration, max_sessions: usize) -> StreamSessions {
        StreamSessions {
            sessions: Mutex::new(HashMap::new()),
            next_id: AtomicU64::new(1),
            ttl,
            max_sessions,
        }
    }

    /// Live session count (the `/v1/health` streams section).
    pub fn open(&self) -> usize {
        self.sessions.lock().unwrap().len()
    }

    /// The configured idle TTL.
    pub fn ttl(&self) -> Duration {
        self.ttl
    }

    /// Drops every session idle past the TTL, keeping the expiry counter
    /// and open-sessions gauge current. Called at the top of every streams
    /// request (lazy eviction — no background thread to supervise).
    fn evict_expired(&self, metrics: &Metrics) {
        let mut map = self.sessions.lock().unwrap();
        let before = map.len();
        map.retain(|_, s| s.last_touch.lock().unwrap().elapsed() <= self.ttl);
        let evicted = (before - map.len()) as u64;
        if evicted > 0 {
            metrics.stream_sessions_expired.add(evicted);
        }
        metrics.stream_sessions_open.set(map.len() as u64);
    }

    fn get(&self, id: u64) -> Option<Arc<Session>> {
        self.sessions.lock().unwrap().get(&id).cloned()
    }
}

/// A required integer query parameter (absence is a `400`, unlike the
/// defaulting [`params::numeric`]).
fn required_i64(request: &Request, key: &str) -> Result<i64, ApiError> {
    if request.param(key).is_none() {
        return Err(ApiError::new(400, format!("missing required query parameter `{key}`")));
    }
    params::numeric(request, key, 0i64)
}

/// Parses and period-checks one event batch without committing anything:
/// the all-or-nothing half of the append path.
fn parse_batch<'a>(
    body: &'a [u8],
    period: (i64, i64),
) -> Result<Vec<ParsedEvent<'a>>, ApiError> {
    let text =
        std::str::from_utf8(body).map_err(|_| ApiError::new(400, "event body is not UTF-8"))?;
    let events = stream_io::parse_events(text)
        .map_err(|e| ApiError::new(400, format!("event batch: {e}")))?;
    for event in &events {
        if event.t < period.0 || event.t > period.1 {
            return Err(ApiError::new(
                400,
                format!(
                    "event at t={} falls outside the pinned study period [{}, {}]",
                    event.t, period.0, period.1
                ),
            ));
        }
    }
    Ok(events)
}

fn json_body(fields: Vec<(String, Value)>) -> Vec<u8> {
    Value::Object(fields).to_string_pretty().into_bytes()
}

/// `POST /v1/streams` — opens a session over a pinned study period.
pub(crate) fn endpoint_create(request: &Request, ctx: &ServerContext) -> Handled {
    ctx.streams.evict_expired(&ctx.metrics);
    let t_begin = required_i64(request, "t_begin")?;
    let t_end = required_i64(request, "t_end")?;
    if t_begin >= t_end {
        return Err(ApiError::new(
            400,
            format!("empty study period: t_begin={t_begin} must be < t_end={t_end}"),
        ));
    }
    let directedness = if request.flag("directed") {
        Directedness::Directed
    } else {
        Directedness::Undirected
    };
    let mut builder = LinkStreamBuilder::new(directedness);
    builder.period(t_begin, t_end);
    let mut dirty_min_t = None;
    if !request.body.is_empty() {
        let events = parse_batch(&request.body, (t_begin, t_end))?;
        dirty_min_t = events.iter().map(|e| e.t).min();
        for event in &events {
            builder.add(event.u, event.v, event.t);
        }
    }
    let events = builder.len() as u64;
    // the limit check and the insert share one critical section, so the
    // limit holds under concurrent creations
    let id = {
        let mut map = ctx.streams.sessions.lock().unwrap();
        if map.len() >= ctx.streams.max_sessions {
            return Ok(Reply::retry(
                503,
                ApiError::with_code(
                    503,
                    "stream_limit",
                    format!(
                        "session limit of {} reached, retry after an idle session expires",
                        ctx.streams.max_sessions
                    ),
                )
                .body(),
                ctx.streams.ttl.as_secs().clamp(1, 60) as u32,
            ));
        }
        let id = ctx.streams.next_id.fetch_add(1, Ordering::Relaxed);
        map.insert(
            id,
            Arc::new(Session {
                id,
                period: (t_begin, t_end),
                ingest: Mutex::new(Ingest { builder, dirty_min_t, version: 0 }),
                sweep: Mutex::new(SweepState { cache: SweepCache::new(), version: 0 }),
                last_touch: Mutex::new(Instant::now()),
            }),
        );
        ctx.metrics.stream_sessions_open.set(map.len() as u64);
        id
    };
    ctx.metrics.stream_sessions_opened.inc();
    ctx.metrics.stream_events_appended.add(events);
    Ok(Reply::new(
        201,
        json_body(vec![
            ("stream".to_string(), Value::Int(id as i128)),
            ("ttl_secs".to_string(), Value::Int(ctx.streams.ttl.as_secs() as i128)),
            ("events".to_string(), Value::Int(events as i128)),
        ]),
    ))
}

/// `POST /v1/streams/<id>/{events,analyze}` — dispatches to a live session.
pub(crate) fn endpoint_session(request: &Request, ctx: &ServerContext) -> Handled {
    ctx.streams.evict_expired(&ctx.metrics);
    let rest = request.path.strip_prefix("/v1/streams/").expect("routed by prefix");
    let (raw_id, action) = rest.split_once('/').unwrap_or((rest, ""));
    let id: u64 = raw_id
        .parse()
        .map_err(|_| ApiError::new(404, format!("malformed stream id `{raw_id}`")))?;
    let session = match ctx.streams.get(id) {
        Some(session) => session,
        // below the allocation watermark: this id existed and was evicted
        None if id != 0 && id < ctx.streams.next_id.load(Ordering::Relaxed) => {
            return Err(ApiError::new(410, format!("stream {id} has expired")));
        }
        None => return Err(ApiError::new(404, format!("unknown stream {id}"))),
    };
    session.touch();
    match action {
        "events" => append_events(request, ctx, &session),
        "analyze" => refresh_analysis(request, ctx, &session),
        _ => Err(ApiError::new(
            404,
            format!("no route for POST /v1/streams/{id}/{action} (events, analyze)"),
        )),
    }
}

/// The append path: validate the whole batch, then commit it atomically.
fn append_events(request: &Request, ctx: &ServerContext, session: &Arc<Session>) -> Handled {
    let events = parse_batch(&request.body, session.period)?;
    if events.is_empty() {
        return Err(ApiError::new(400, "event batch contains no events"));
    }
    let batch_min = events.iter().map(|e| e.t).min().expect("non-empty batch");
    let (appended, total) = {
        let mut ingest = session.ingest.lock().unwrap();
        let before = ingest.builder.len();
        for event in &events {
            ingest.builder.add(event.u, event.v, event.t);
        }
        // `appended` counts retained events — the builder drops self-loops
        let appended = (ingest.builder.len() - before) as u64;
        ingest.version += 1;
        ingest.dirty_min_t = Some(match ingest.dirty_min_t {
            Some(t0) => t0.min(batch_min),
            None => batch_min,
        });
        (appended, ingest.builder.len() as u64)
    };
    ctx.metrics.stream_events_appended.add(appended);
    Ok(Reply::new(
        200,
        json_body(vec![
            ("stream".to_string(), Value::Int(session.id as i128)),
            ("appended".to_string(), Value::Int(appended as i128)),
            ("events".to_string(), Value::Int(total as i128)),
        ]),
    ))
}

/// Executes one refresh job against `session`'s sweep state, given a
/// snapshot `(stream, dirty_from, snapshot_version)` cut under the ingest
/// lock.
///
/// Concurrent refreshes of one session hash to *different* job keys when
/// an append lands between their snapshots, so with several executor
/// shards they can execute out of submission order. The sweep state
/// therefore carries the ingest version of the snapshot that last advanced
/// it: a snapshot older than that watermark must not run against the cache
/// — the cache was built from a strict superset of its events, and reusing
/// or splicing cached timelines would serve the newer stream's bytes under
/// the older stream's content key (the core's own stream stamp on
/// [`SweepCache`] would catch this too, but by discarding the newer
/// entries). Such an outrun refresh recomputes from scratch — still
/// exactly the right bytes for *its* snapshot — and leaves all session
/// state alone.
///
/// Returns the report plus the sweep-cache stats, `None` for the stale
/// scratch path (which bypasses the cache entirely). On success the
/// watermark advances and the dirty mark clears unless an append raced the
/// sweep; on cancellation both survive for the retry.
fn run_refresh(
    method: &OccupancyMethod,
    stream: &LinkStream,
    pool: &mut WorkerPool,
    ctl: &SweepControl,
    session: &Session,
    dirty_from: Option<i64>,
    snapshot_version: u64,
) -> Result<(OccupancyReport, Option<RefreshStats>), Cancelled> {
    let mut sweep = session.sweep.lock().unwrap();
    if snapshot_version < sweep.version {
        drop(sweep);
        return Ok((method.try_run_on(stream, pool, ctl)?, None));
    }
    let report = method.try_refresh_on(stream, pool, ctl, &mut sweep.cache, dirty_from)?;
    sweep.version = snapshot_version;
    let stats = sweep.cache.stats;
    drop(sweep);
    // the dirty mark clears only if no append raced the sweep; a racing
    // append keeps its (conservative, still correct) mark for the next
    // refresh
    let mut ingest = session.ingest.lock().unwrap();
    if ingest.version == snapshot_version {
        ingest.dirty_min_t = None;
    }
    Ok((report, Some(stats)))
}

/// The refresh path: snapshot the stream-so-far, then run the sweep
/// incrementally against the session's cache. Produces (and caches) the
/// exact bytes `/v1/analyze` would for the same trace.
fn refresh_analysis(request: &Request, ctx: &ServerContext, session: &Arc<Session>) -> Handled {
    let p = RequestParams::parse(request, &param_defaults(ctx))?;
    if !request.body.is_empty() {
        return Err(ApiError::new(
            400,
            "analyze takes no body on a stream session (append via /events first)",
        ));
    }
    // snapshot under the ingest lock: the events, the dirty mark and the
    // version must be one consistent cut, or a racing append could be
    // marked clean
    let (stream, dirty_from, version_at_snapshot) = {
        let ingest = session.ingest.lock().unwrap();
        let stream = ingest
            .builder
            .snapshot()
            .map_err(|e| ApiError::new(400, format!("stream {}: {e}", session.id)))?;
        (stream, ingest.dirty_min_t, ingest.version)
    };
    let grid = SweepGrid::Geometric { points: p.points };
    let scales_hint = grid.k_values(&stream, 1).len() as u64;

    // response cache key: the plain analyze fingerprint, shared with
    // `/v1/analyze` — a refresh and a scratch run of the concatenated
    // trace are the same artifact. Session state (dirty mark, cache
    // contents) is an accelerator and MUST stay out: it never changes the
    // bytes, only how much work producing them takes.
    let mut digest = Digest::new("saturn.analyze.v1");
    digest.write_u128(fingerprint::stream_digest(&stream));
    fingerprint::write_grid(&mut digest, &grid);
    fingerprint::write_targets(&mut digest, &p.targets);
    let cache_key = digest.finish();
    // job key: session-scoped, so a refresh coalesces with an identical
    // refresh of the same session but never with a plain analyze (which
    // would skip the sweep-cache update and leave the session cold)
    let mut job_digest = Digest::new("saturn.stream-session.v1");
    job_digest.write_u64(session.id);
    job_digest.write_u128(cache_key);
    let job_key = job_digest.finish();

    let cache_insert = cache_filler(Arc::clone(&ctx.cache), cache_key);
    let metrics = Arc::clone(&ctx.metrics);
    let session = Arc::clone(session);
    let targets = p.targets;
    let (tile, no_delta, no_incremental) = (p.tile, p.no_delta, p.no_incremental);
    let work: jobs::JobWork = Box::new(move |pool, jctx| {
        let method = OccupancyMethod::new()
            .grid(grid)
            .targets(targets)
            .tile(tile)
            .no_delta_propagation(no_delta)
            .no_incremental_timeline(no_incremental);
        let run = run_refresh(
            &method,
            &stream,
            pool,
            &jctx.control,
            &session,
            dirty_from,
            version_at_snapshot,
        );
        match run {
            Ok((report, Some(stats))) => {
                metrics.stream_refreshes.inc();
                metrics.stream_scales_reused.add(stats.scales_reused);
                metrics.stream_tiles_skipped.add(stats.tiles_skipped);
                metrics.stream_suffix_windows_rebuilt.add(stats.suffix_windows_rebuilt);
                cache_insert(report.to_json())
            }
            // outrun by a newer refresh: correct bytes for this snapshot,
            // computed from scratch, session state untouched
            Ok((report, None)) => {
                metrics.stream_stale_refreshes.inc();
                cache_insert(report.to_json())
            }
            // a cancelled refresh may leave entries from its completed
            // refine rounds in the sweep cache — safe, because each entry
            // pairs a timeline with its own histogram and the surviving
            // dirty mark keeps the next refresh's splices conservative;
            // the version watermark only advances on success
            Err(_cancelled) => jctx.cancelled_outcome(),
        }
    });
    let spec = SweepJobSpec {
        cache_key,
        job_key,
        kind: JobKind::Analyze,
        deadline: p.deadline,
        scales_hint,
    };
    cached_or_submitted(request, ctx, spec, work)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn session(id: u64) -> Arc<Session> {
        let mut builder = LinkStreamBuilder::new(Directedness::Undirected);
        builder.period(0, 100);
        Arc::new(Session {
            id,
            period: (0, 100),
            ingest: Mutex::new(Ingest { builder, dirty_min_t: None, version: 0 }),
            sweep: Mutex::new(SweepState { cache: SweepCache::new(), version: 0 }),
            last_touch: Mutex::new(Instant::now()),
        })
    }

    /// A consistent `(stream, dirty mark, version)` cut, exactly as
    /// `refresh_analysis` takes it.
    fn snapshot(session: &Session) -> (LinkStream, Option<i64>, u64) {
        let ingest = session.ingest.lock().unwrap();
        (ingest.builder.snapshot().unwrap(), ingest.dirty_min_t, ingest.version)
    }

    /// Commits a batch the way `append_events` does: builder, version,
    /// dirty mark.
    fn append(session: &Session, batch: &[(&str, &str, i64)]) {
        let mut ingest = session.ingest.lock().unwrap();
        let batch_min = batch.iter().map(|&(.., t)| t).min().expect("non-empty");
        for &(u, v, t) in batch {
            ingest.builder.add(u, v, t);
        }
        ingest.version += 1;
        ingest.dirty_min_t = Some(match ingest.dirty_min_t {
            Some(t0) => t0.min(batch_min),
            None => batch_min,
        });
    }

    /// The executor race the job keys allow: two refreshes of one session
    /// separated by an append hash to different job keys, land on
    /// different shards, and the OLDER snapshot executes last. It must
    /// neither serve the newer stream's bytes under its own key nor
    /// regress the session state the newer refresh built.
    #[test]
    fn an_outrun_snapshot_refreshes_from_scratch_and_touches_no_session_state() {
        let session = session(1);
        let method = OccupancyMethod::new().grid(SweepGrid::Geometric { points: 8 });
        let mut pool = WorkerPool::new(1);
        let ctl = SweepControl::new();
        let batch: Vec<(String, String, i64)> = (0..40i64)
            .map(|i| (format!("n{}", i % 5), format!("n{}", (i + 1) % 5), (i * 2) % 80))
            .collect();
        let seed: Vec<(&str, &str, i64)> =
            batch.iter().map(|(u, v, t)| (u.as_str(), v.as_str(), *t)).collect();
        append(&session, &seed);
        let (stream_a, dirty_a, v_a) = snapshot(&session);
        // the racing append, then the newer snapshot
        append(&session, &[("m0", "n1", 80), ("m1", "n2", 85), ("m2", "n3", 97)]);
        let (stream_b, dirty_b, v_b) = snapshot(&session);
        assert!(v_a < v_b);

        // the newer refresh executes first and advances the session
        let (report_b, stats_b) =
            run_refresh(&method, &stream_b, &mut pool, &ctl, &session, dirty_b, v_b).unwrap();
        assert_eq!(report_b.to_json(), method.run_on(&stream_b, &mut pool).to_json());
        assert!(stats_b.is_some());
        assert_eq!(session.sweep.lock().unwrap().version, v_b);
        assert!(session.ingest.lock().unwrap().dirty_min_t.is_none(), "no append raced");

        // the stale snapshot still produces the right bytes for ITS
        // stream, from scratch, without the session cache
        let (report_a, stats_a) =
            run_refresh(&method, &stream_a, &mut pool, &ctl, &session, dirty_a, v_a).unwrap();
        assert_eq!(report_a.to_json(), method.run_on(&stream_a, &mut pool).to_json());
        assert!(stats_a.is_none(), "an outrun refresh must bypass the session cache");
        assert_ne!(report_a.to_json(), report_b.to_json());

        // the session state still belongs to the newer refresh: an
        // identical clean re-refresh of B reuses every scale
        assert_eq!(session.sweep.lock().unwrap().version, v_b);
        let (report_b2, stats_b2) =
            run_refresh(&method, &stream_b, &mut pool, &ctl, &session, None, v_b).unwrap();
        assert_eq!(report_b2.to_json(), report_b.to_json());
        let stats = stats_b2.expect("in-order refresh uses the cache");
        assert_eq!(stats.scales_reused, stats.scales_total, "{stats:?}");
    }

    #[test]
    fn batch_validation_is_all_or_nothing() {
        // both layouts parse; the KONECT weight column is ignored
        let ok = parse_batch(b"a b 10\nc d 1 99\n", (0, 100)).unwrap();
        assert_eq!(ok.len(), 2);
        assert_eq!(ok[1], ParsedEvent { u: "c", v: "d", t: 99 });
        // the period check is inclusive on both ends
        assert!(parse_batch(b"a b 0\na b 100\n", (0, 100)).is_ok());
        // one bad line fails the whole batch with a 400
        for body in [&b"a b 10\na b 101\n"[..], b"a b 10\nnot a line\n", b"a b -1\n"] {
            let err = parse_batch(body, (0, 100)).unwrap_err();
            assert_eq!(err.status, 400, "body {:?}", String::from_utf8_lossy(body));
            assert!(!err.retryable);
        }
    }

    #[test]
    fn ttl_eviction_counts_sessions_and_updates_the_gauge() {
        let sessions = StreamSessions::new(Duration::ZERO, 4);
        let metrics = Metrics::new();
        sessions.sessions.lock().unwrap().insert(1, session(1));
        sessions.sessions.lock().unwrap().insert(2, session(2));
        std::thread::sleep(Duration::from_millis(2));
        sessions.evict_expired(&metrics);
        assert_eq!(sessions.open(), 0);
        assert_eq!(metrics.stream_sessions_expired.get(), 2);
        assert_eq!(metrics.stream_sessions_open.get(), 0);
        // a second sweep evicts (and counts) nothing
        sessions.evict_expired(&metrics);
        assert_eq!(metrics.stream_sessions_expired.get(), 2);
    }

    #[test]
    fn a_long_ttl_keeps_sessions_alive() {
        let sessions = StreamSessions::new(Duration::from_secs(3600), 4);
        let metrics = Metrics::new();
        sessions.sessions.lock().unwrap().insert(1, session(1));
        sessions.evict_expired(&metrics);
        assert_eq!(sessions.open(), 1);
        assert_eq!(metrics.stream_sessions_open.get(), 1);
        assert!(sessions.get(1).is_some());
        assert!(sessions.get(7).is_none());
    }
}
