//! Durable disk spill tier under the in-memory report LRU: crash-safe,
//! content-addressed report persistence with corruption recovery.
//!
//! Each cached report body is spilled to `<cache-dir>/<key:032x>.rpt`, where
//! `key` is the same 128-bit request fingerprint that addresses the memory
//! tier — the hierarchy stays content-addressed end to end, so a disk entry
//! can never serve the wrong body for a fingerprint (a mismatched name is
//! treated as corruption and quarantined). The on-disk format is a fixed
//! 44-byte header (magic, key, body length, checksum) followed by the raw
//! body bytes; the checksum is the crate's dual-lane Fx digest over the key,
//! the length, and the body, so any single-byte flip anywhere in the file is
//! detected (each Fx absorb step is a bijection of hasher state, so one
//! differing word always yields a differing digest).
//!
//! # Durability
//!
//! Writes are crash-safe: body bytes are encoded into a `.tmp-*` file in the
//! cache directory, `fsync`ed, then atomically renamed into place (followed
//! by a best-effort directory fsync). A crash at any point leaves either the
//! complete old state or the complete new state, plus possibly a `.tmp-*`
//! file that the startup recovery scan deletes as torn.
//!
//! Spills are asynchronous: [`DiskTier::enqueue`] pushes onto a bounded
//! queue drained by one `saturn-spill` writer thread, so request and
//! executor threads never wait on disk I/O. The writer holds only a `Weak`
//! reference and exits on its own when the tier is dropped;
//! [`DiskTier::flush`] waits (bounded) for the queue to drain, which the
//! server's drain path calls so accepted work is durable before exit.
//!
//! # Degradation ladder
//!
//! *disk-ok → memory-only → recovery.* Any real I/O failure (ENOSPC, EIO,
//! permission) increments `saturn_cache_disk_errors_total` and trips a
//! circuit breaker: the tier goes **memory-only** — lookups miss and writes
//! drop, both without touching the disk — and a single probe is re-admitted
//! after a capped exponential backoff (100ms doubling to 5s). One probe
//! success closes the breaker. No request ever fails because of the disk
//! tier; it only loses durability until the disk recovers.
//!
//! Corruption is *not* an I/O error: a checksum, length, magic, or key
//! mismatch on read (or during the startup [recovery scan](DiskTier::open))
//! quarantines the entry — the file is deleted,
//! `saturn_cache_disk_corrupt_total` is incremented, and the lookup reports
//! a miss. Torn `.tmp-*` files found at startup count as corrupt too.

use crate::faults::FaultPlan;
use crate::metrics::Metrics;
use saturn_core::fingerprint::Digest;
use serde::Serialize;
use std::collections::{BTreeMap, VecDeque};
use std::fs;
use std::io::{self, Write as _};
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, Mutex, Weak};
use std::time::{Duration, Instant};

use rustc_hash::FxHashMap;

/// File magic for spill entries ("Saturn Spill Persist v1").
const MAGIC: [u8; 4] = *b"SSP1";

/// Fixed header: 4 magic + 16 key + 8 body length + 16 checksum, all
/// little-endian.
pub const HEADER_LEN: usize = 44;

/// Domain string separating the spill checksum from every other fingerprint
/// use in the workspace.
const CHECKSUM_DOMAIN: &str = "saturn.spill.v1";

/// Extension of committed entries; anything else in the dir is foreign.
const ENTRY_EXT: &str = "rpt";

/// Bounded spill queue: beyond this, new spills are dropped (the entry
/// simply stays memory-only — losing a spill is always safe).
const MAX_QUEUE: usize = 1024;

/// Circuit-breaker backoff bounds.
const BREAKER_BASE: Duration = Duration::from_millis(100);
const BREAKER_MAX: Duration = Duration::from_secs(5);

/// Why a spill file failed to decode. Every variant is detected before any
/// byte of the body can be served.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// Shorter than the fixed header.
    TooShort,
    /// Magic bytes are not [`MAGIC`].
    BadMagic,
    /// Header body length disagrees with the actual byte count.
    LengthMismatch,
    /// Stored checksum disagrees with the recomputed digest.
    ChecksumMismatch,
}

/// Digest over the logical entry content (key, length, body). The body is
/// absorbed in zero-padded 8-byte little-endian words so the padding cannot
/// alias across length boundaries (length is absorbed first).
fn checksum(key: u128, body: &[u8]) -> u128 {
    let mut digest = Digest::new(CHECKSUM_DOMAIN);
    digest.write_u128(key);
    digest.write_u64(body.len() as u64);
    for chunk in body.chunks(8) {
        let mut word = [0u8; 8];
        word[..chunk.len()].copy_from_slice(chunk);
        digest.write_u64(u64::from_le_bytes(word));
    }
    digest.finish()
}

/// Encodes one entry as header + body bytes.
pub fn encode_entry(key: u128, body: &[u8]) -> Vec<u8> {
    let mut blob = Vec::with_capacity(HEADER_LEN + body.len());
    blob.extend_from_slice(&MAGIC);
    blob.extend_from_slice(&key.to_le_bytes());
    blob.extend_from_slice(&(body.len() as u64).to_le_bytes());
    blob.extend_from_slice(&checksum(key, body).to_le_bytes());
    blob.extend_from_slice(body);
    blob
}

/// Decodes and verifies one entry, returning the key and a view of the body.
pub fn decode_entry(blob: &[u8]) -> Result<(u128, &[u8]), DecodeError> {
    if blob.len() < HEADER_LEN {
        return Err(DecodeError::TooShort);
    }
    if blob[..4] != MAGIC {
        return Err(DecodeError::BadMagic);
    }
    let key = u128::from_le_bytes(blob[4..20].try_into().unwrap());
    let body_len = u64::from_le_bytes(blob[20..28].try_into().unwrap());
    let stored = u128::from_le_bytes(blob[28..44].try_into().unwrap());
    let body = &blob[HEADER_LEN..];
    if body_len != body.len() as u64 {
        return Err(DecodeError::LengthMismatch);
    }
    if checksum(key, body) != stored {
        return Err(DecodeError::ChecksumMismatch);
    }
    Ok((key, body))
}

/// Snapshot of the disk tier for `/v1/health`, read from the same atomics
/// `/v1/metrics` exports.
#[derive(Debug, Clone, Copy, Serialize)]
pub struct DiskStats {
    /// Entries currently indexed on disk.
    pub entries: usize,
    /// Bytes resident on disk (headers included).
    pub bytes: usize,
    /// Configured disk budget in bytes.
    pub capacity_bytes: usize,
    /// Lookups served from disk.
    pub hits: u64,
    /// Lookups that found nothing on disk.
    pub misses: u64,
    /// Entries durably written.
    pub writes: u64,
    /// Entries evicted for space.
    pub evictions: u64,
    /// Entries quarantined as torn/corrupt/oversize.
    pub corrupt: u64,
    /// I/O failures (each trips the breaker).
    pub errors: u64,
    /// Whether the breaker is currently open (memory-only mode).
    pub degraded: bool,
}

/// One indexed entry: its on-disk size and its LRU recency stamp.
#[derive(Debug, Clone, Copy)]
struct IndexEntry {
    file_len: usize,
    seq: u64,
}

/// The in-memory index over the spill directory: key → entry plus a
/// recency map whose first (smallest-seq) element is the LRU victim.
#[derive(Debug, Default)]
struct DiskIndex {
    entries: FxHashMap<u128, IndexEntry>,
    recency: BTreeMap<u64, u128>,
    next_seq: u64,
    bytes: usize,
}

impl DiskIndex {
    fn touch(&mut self, key: u128) {
        if let Some(entry) = self.entries.get_mut(&key) {
            self.recency.remove(&entry.seq);
            entry.seq = self.next_seq;
            self.recency.insert(self.next_seq, key);
            self.next_seq += 1;
        }
    }

    fn insert(&mut self, key: u128, file_len: usize) {
        self.remove(key);
        let seq = self.next_seq;
        self.next_seq += 1;
        self.entries.insert(key, IndexEntry { file_len, seq });
        self.recency.insert(seq, key);
        self.bytes += file_len;
    }

    fn remove(&mut self, key: u128) -> bool {
        if let Some(entry) = self.entries.remove(&key) {
            self.recency.remove(&entry.seq);
            self.bytes -= entry.file_len;
            true
        } else {
            false
        }
    }

    /// The least-recently-used key, if any.
    fn victim(&self) -> Option<u128> {
        self.recency.iter().next().map(|(_, &key)| key)
    }
}

/// Circuit breaker guarding all disk I/O. `degraded` is the lock-free fast
/// path; the mutex holds the backoff schedule.
#[derive(Debug)]
struct Breaker {
    degraded: AtomicBool,
    state: Mutex<BreakerState>,
}

#[derive(Debug)]
struct BreakerState {
    retry_at: Option<Instant>,
    backoff: Duration,
}

impl Breaker {
    fn new() -> Self {
        Breaker {
            degraded: AtomicBool::new(false),
            state: Mutex::new(BreakerState { retry_at: None, backoff: BREAKER_BASE }),
        }
    }

    /// Whether this operation may touch the disk. While degraded, admits a
    /// single probe once the backoff deadline passes (and pushes the
    /// deadline forward so concurrent callers don't stampede).
    fn admit(&self) -> bool {
        if !self.degraded.load(Ordering::Relaxed) {
            return true;
        }
        let mut state = self.state.lock().unwrap();
        match state.retry_at {
            Some(at) if Instant::now() >= at => {
                // Admit one probe; the next is gated behind a fresh window.
                state.retry_at = Some(Instant::now() + state.backoff);
                true
            }
            _ => false,
        }
    }

    /// A disk operation succeeded: close the breaker and reset the backoff.
    fn success(&self) {
        if self.degraded.swap(false, Ordering::Relaxed) {
            let mut state = self.state.lock().unwrap();
            state.retry_at = None;
            state.backoff = BREAKER_BASE;
        }
    }

    /// A disk operation failed: open (or keep open) the breaker and double
    /// the capped backoff.
    fn failure(&self) {
        self.degraded.store(true, Ordering::Relaxed);
        let mut state = self.state.lock().unwrap();
        state.retry_at = Some(Instant::now() + state.backoff);
        state.backoff = (state.backoff * 2).min(BREAKER_MAX);
    }

    fn is_open(&self) -> bool {
        self.degraded.load(Ordering::Relaxed)
    }
}

/// State shared between the tier and its writer thread: the pending spill
/// queue plus an in-flight flag so `flush` can wait for the entry the
/// writer has already popped.
#[derive(Debug, Default)]
struct SpillQueue {
    pending: VecDeque<(u128, Arc<str>)>,
    in_flight: bool,
}

/// The disk spill tier. Owned by [`crate::cache::ReportCache`] behind an
/// `Arc`; the writer thread holds only a `Weak` and exits when the cache
/// drops the tier.
#[derive(Debug)]
pub struct DiskTier {
    dir: PathBuf,
    capacity_bytes: usize,
    index: Mutex<DiskIndex>,
    breaker: Breaker,
    queue: Mutex<SpillQueue>,
    queue_cv: Condvar,
    metrics: Arc<Metrics>,
    faults: Option<Arc<FaultPlan>>,
    nonce: AtomicU64,
}

impl DiskTier {
    /// Opens (creating if needed) the spill directory, verifies it is
    /// writable, replays the recovery scan, and starts the writer thread.
    ///
    /// Unwritable directories are a *startup* error (`serve` fails fast);
    /// I/O errors after this point only degrade the tier.
    pub fn open(
        dir: &Path,
        capacity_bytes: usize,
        metrics: Arc<Metrics>,
        faults: Option<Arc<FaultPlan>>,
    ) -> io::Result<Arc<DiskTier>> {
        fs::create_dir_all(dir).map_err(|e| {
            io::Error::new(e.kind(), format!("create cache dir {}: {e}", dir.display()))
        })?;
        let probe = dir.join(format!(".probe-{}", std::process::id()));
        fs::write(&probe, b"saturn").map_err(|e| {
            io::Error::new(e.kind(), format!("cache dir {} not writable: {e}", dir.display()))
        })?;
        let _ = fs::remove_file(&probe);
        let tier = Arc::new(DiskTier {
            dir: dir.to_path_buf(),
            capacity_bytes,
            index: Mutex::new(DiskIndex::default()),
            breaker: Breaker::new(),
            queue: Mutex::new(SpillQueue::default()),
            queue_cv: Condvar::new(),
            metrics,
            faults,
            nonce: AtomicU64::new(0),
        });
        tier.recover();
        let weak: Weak<DiskTier> = Arc::downgrade(&tier);
        std::thread::Builder::new()
            .name("saturn-spill".into())
            .spawn(move || writer_loop(weak))
            .map_err(|e| io::Error::other(format!("spawn spill writer: {e}")))?;
        Ok(tier)
    }

    /// The committed path of `key`'s entry. Exposed for tests and tooling.
    pub fn entry_path(&self, key: u128) -> PathBuf {
        self.dir.join(format!("{key:032x}.{ENTRY_EXT}"))
    }

    /// Rebuilds the index from the directory: deletes torn `.tmp-*` files,
    /// verifies every `.rpt` entry end to end, quarantines anything
    /// corrupt/oversize/misnamed, then evicts down to budget. Never fails —
    /// unreadable state is counted and skipped.
    fn recover(&self) {
        let entries = match fs::read_dir(&self.dir) {
            Ok(iter) => iter,
            Err(_) => {
                self.metrics.cache_disk_errors.inc();
                self.breaker.failure();
                return;
            }
        };
        let mut index = self.index.lock().unwrap();
        for entry in entries.flatten() {
            let path = entry.path();
            let name = match path.file_name().and_then(|n| n.to_str()) {
                Some(name) => name.to_owned(),
                None => continue,
            };
            if name.starts_with(".tmp-") {
                // A torn write from a previous crash: quarantine.
                let _ = fs::remove_file(&path);
                self.metrics.cache_disk_corrupt.inc();
                continue;
            }
            if name.starts_with(".probe-") {
                let _ = fs::remove_file(&path);
                continue;
            }
            let key = match name
                .strip_suffix(&format!(".{ENTRY_EXT}"))
                .filter(|stem| stem.len() == 32)
                .and_then(|stem| u128::from_str_radix(stem, 16).ok())
            {
                Some(key) => key,
                None => continue, // foreign file; leave it alone
            };
            let blob = match fs::read(&path) {
                Ok(blob) => blob,
                Err(_) => {
                    self.metrics.cache_disk_errors.inc();
                    continue;
                }
            };
            let valid = blob.len() <= self.capacity_bytes
                && matches!(decode_entry(&blob), Ok((k, body))
                    if k == key && std::str::from_utf8(body).is_ok());
            if valid {
                index.insert(key, blob.len());
            } else {
                let _ = fs::remove_file(&path);
                self.metrics.cache_disk_corrupt.inc();
            }
        }
        while index.bytes > self.capacity_bytes {
            let Some(victim) = index.victim() else { break };
            index.remove(victim);
            let _ = fs::remove_file(self.entry_path(victim));
            self.metrics.cache_disk_evictions.inc();
        }
        self.metrics.cache_disk_bytes.set(index.bytes as u64);
    }

    /// Queues `body` for asynchronous spill under `key`. Never blocks on
    /// disk I/O; oversize bodies and overflow beyond [`MAX_QUEUE`] are
    /// silently skipped (the entry stays memory-only).
    pub fn enqueue(&self, key: u128, body: Arc<str>) {
        if HEADER_LEN + body.len() > self.capacity_bytes {
            return;
        }
        let mut queue = self.queue.lock().unwrap();
        if queue.pending.len() >= MAX_QUEUE {
            return;
        }
        queue.pending.push_back((key, body));
        self.queue_cv.notify_all();
    }

    /// Blocks until every queued spill has been written (or dropped by the
    /// breaker), or `budget` elapses. Returns whether the queue drained.
    pub fn flush(&self, budget: Duration) -> bool {
        let deadline = Instant::now() + budget;
        let mut queue = self.queue.lock().unwrap();
        while !queue.pending.is_empty() || queue.in_flight {
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let (next, _) = self.queue_cv.wait_timeout(queue, deadline - now).unwrap();
            queue = next;
        }
        true
    }

    /// Looks `key` up on disk: verifies the checksum, refreshes recency,
    /// and returns the byte-identical body. Corrupt entries are quarantined
    /// (deleted + counted) and report a miss; I/O errors trip the breaker
    /// and report a miss. Never fails the caller.
    pub fn lookup(&self, key: u128) -> Option<Arc<str>> {
        if !self.index.lock().unwrap().entries.contains_key(&key) {
            self.metrics.cache_disk_misses.inc();
            return None;
        }
        if !self.breaker.admit() {
            self.metrics.cache_disk_misses.inc();
            return None;
        }
        if let Some(faults) = &self.faults {
            faults.maybe_disk_slow();
        }
        let path = self.entry_path(key);
        let blob = match fs::read(&path) {
            Ok(blob) => blob,
            Err(e) if e.kind() == io::ErrorKind::NotFound => {
                // Index raced a concurrent eviction; not a disk fault.
                self.drop_index_entry(key);
                self.metrics.cache_disk_misses.inc();
                return None;
            }
            Err(_) => {
                self.metrics.cache_disk_errors.inc();
                self.breaker.failure();
                self.metrics.cache_disk_misses.inc();
                return None;
            }
        };
        self.breaker.success();
        let body = match decode_entry(&blob) {
            Ok((k, body)) if k == key => match std::str::from_utf8(body) {
                Ok(text) => text,
                Err(_) => {
                    self.quarantine(key, &path);
                    return None;
                }
            },
            _ => {
                self.quarantine(key, &path);
                return None;
            }
        };
        let result: Arc<str> = Arc::from(body);
        self.index.lock().unwrap().touch(key);
        self.metrics.cache_disk_hits.inc();
        Some(result)
    }

    /// Deletes a corrupt entry and counts it; the lookup reports a miss.
    fn quarantine(&self, key: u128, path: &Path) {
        let _ = fs::remove_file(path);
        self.drop_index_entry(key);
        self.metrics.cache_disk_corrupt.inc();
        self.metrics.cache_disk_misses.inc();
    }

    /// Removes `key` from the index (without touching eviction counters)
    /// and refreshes the bytes gauge.
    fn drop_index_entry(&self, key: u128) {
        let mut index = self.index.lock().unwrap();
        index.remove(key);
        self.metrics.cache_disk_bytes.set(index.bytes as u64);
    }

    /// Writes one queued entry durably: encode, temp file, fsync, atomic
    /// rename, directory fsync; then index it and evict down to budget.
    /// Called only from the writer thread.
    fn write_entry(&self, key: u128, body: &str) {
        if self.index.lock().unwrap().entries.contains_key(&key) {
            // Content-addressed: same key ⇒ same bytes already on disk.
            return;
        }
        if !self.breaker.admit() {
            return; // memory-only mode: drop the spill silently
        }
        if let Some(faults) = &self.faults {
            faults.maybe_disk_slow();
        }
        match self.try_write(key, body) {
            Ok(file_len) => {
                self.breaker.success();
                self.metrics.cache_disk_writes.inc();
                let mut index = self.index.lock().unwrap();
                index.insert(key, file_len);
                while index.bytes > self.capacity_bytes {
                    let Some(victim) = index.victim() else { break };
                    index.remove(victim);
                    let _ = fs::remove_file(self.entry_path(victim));
                    self.metrics.cache_disk_evictions.inc();
                }
                self.metrics.cache_disk_bytes.set(index.bytes as u64);
            }
            Err(_) => {
                self.metrics.cache_disk_errors.inc();
                self.breaker.failure();
            }
        }
    }

    /// The fallible part of a spill write. Returns the committed file
    /// length.
    fn try_write(&self, key: u128, body: &str) -> io::Result<usize> {
        let mut blob = encode_entry(key, body.as_bytes());
        if let Some(faults) = &self.faults {
            if faults.disk_full() {
                return Err(io::Error::new(
                    io::ErrorKind::StorageFull,
                    "injected disk_full fault",
                ));
            }
            if faults.disk_write_err() {
                return Err(io::Error::other("injected disk_write_err fault"));
            }
            if faults.disk_corrupt() {
                // The write "succeeds"; read-side verification catches it.
                let at = (key as usize) % blob.len();
                blob[at] ^= 0xff;
            }
        }
        let nonce = self.nonce.fetch_add(1, Ordering::Relaxed);
        let tmp = self.dir.join(format!(".tmp-{key:032x}-{nonce}"));
        let commit = (|| {
            let mut file = fs::File::create(&tmp)?;
            file.write_all(&blob)?;
            file.sync_all()?;
            drop(file);
            fs::rename(&tmp, self.entry_path(key))
        })();
        if let Err(e) = commit {
            let _ = fs::remove_file(&tmp);
            return Err(e);
        }
        // Best-effort directory fsync so the rename itself is durable.
        if let Ok(dir) = fs::File::open(&self.dir) {
            let _ = dir.sync_all();
        }
        Ok(blob.len())
    }

    /// Health/stats snapshot over the shared metric atomics.
    pub fn stats(&self) -> DiskStats {
        let (entries, bytes) = {
            let index = self.index.lock().unwrap();
            (index.entries.len(), index.bytes)
        };
        DiskStats {
            entries,
            bytes,
            capacity_bytes: self.capacity_bytes,
            hits: self.metrics.cache_disk_hits.get(),
            misses: self.metrics.cache_disk_misses.get(),
            writes: self.metrics.cache_disk_writes.get(),
            evictions: self.metrics.cache_disk_evictions.get(),
            corrupt: self.metrics.cache_disk_corrupt.get(),
            errors: self.metrics.cache_disk_errors.get(),
            degraded: self.breaker.is_open(),
        }
    }
}

/// The writer thread body: pops queued spills and writes them durably.
/// Holds only a `Weak` so dropping the tier (cache teardown) ends the
/// thread within one wait timeout.
fn writer_loop(weak: Weak<DiskTier>) {
    loop {
        let Some(tier) = weak.upgrade() else { return };
        let popped = {
            let mut queue = tier.queue.lock().unwrap();
            match queue.pending.pop_front() {
                Some(item) => {
                    queue.in_flight = true;
                    Some(item)
                }
                None => {
                    // Bounded wait so the loop re-checks the Weak.
                    let _ =
                        tier.queue_cv.wait_timeout(queue, Duration::from_millis(100)).unwrap();
                    None
                }
            }
        };
        if let Some((key, body)) = popped {
            tier.write_entry(key, &body);
            let mut queue = tier.queue.lock().unwrap();
            queue.in_flight = false;
            drop(queue);
            tier.queue_cv.notify_all();
        }
        drop(tier); // release the Arc so teardown isn't held up
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir()
            .join(format!("saturn-persist-test-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn open_tier(dir: &Path, capacity: usize) -> (Arc<DiskTier>, Arc<Metrics>) {
        let metrics = Arc::new(Metrics::new());
        let tier = DiskTier::open(dir, capacity, Arc::clone(&metrics), None).unwrap();
        (tier, metrics)
    }

    fn spill_sync(tier: &DiskTier, key: u128, body: &str) {
        tier.enqueue(key, Arc::from(body));
        assert!(tier.flush(Duration::from_secs(5)));
    }

    #[test]
    fn codec_round_trips() {
        for body in [&b""[..], b"x", b"hello world", &[0u8; 1000][..]] {
            let blob = encode_entry(42, body);
            assert_eq!(blob.len(), HEADER_LEN + body.len());
            let (key, decoded) = decode_entry(&blob).unwrap();
            assert_eq!(key, 42);
            assert_eq!(decoded, body);
        }
    }

    #[test]
    fn decode_rejects_each_error_class() {
        let blob = encode_entry(7, b"report body");
        assert_eq!(decode_entry(&blob[..10]), Err(DecodeError::TooShort));
        let mut bad_magic = blob.clone();
        bad_magic[0] ^= 0xff;
        assert_eq!(decode_entry(&bad_magic), Err(DecodeError::BadMagic));
        let mut bad_len = blob.clone();
        bad_len[20] ^= 0xff;
        assert_eq!(decode_entry(&bad_len), Err(DecodeError::LengthMismatch));
        let mut bad_sum = blob.clone();
        bad_sum[30] ^= 0x01;
        assert_eq!(decode_entry(&bad_sum), Err(DecodeError::ChecksumMismatch));
        let mut bad_body = blob.clone();
        *bad_body.last_mut().unwrap() ^= 0x01;
        assert_eq!(decode_entry(&bad_body), Err(DecodeError::ChecksumMismatch));
        let truncated = &blob[..blob.len() - 1];
        assert_eq!(decode_entry(truncated), Err(DecodeError::LengthMismatch));
    }

    #[test]
    fn spill_then_lookup_is_byte_identical() {
        let dir = temp_dir("roundtrip");
        let (tier, _metrics) = open_tier(&dir, 1 << 20);
        spill_sync(&tier, 0xabcd, "the report body");
        assert_eq!(tier.lookup(0xabcd).as_deref(), Some("the report body"));
        assert_eq!(tier.lookup(0xffff), None);
        let stats = tier.stats();
        assert_eq!(stats.writes, 1);
        assert_eq!(stats.hits, 1);
        assert_eq!(stats.misses, 1);
        assert_eq!(stats.entries, 1);
        assert!(!stats.degraded);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn duplicate_spills_write_once() {
        let dir = temp_dir("dedupe");
        let (tier, _metrics) = open_tier(&dir, 1 << 20);
        spill_sync(&tier, 5, "same body");
        spill_sync(&tier, 5, "same body");
        assert_eq!(tier.stats().writes, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn evicts_least_recent_when_over_budget() {
        let dir = temp_dir("evict");
        let body = "b".repeat(100);
        // Budget fits two entries but not three.
        let (tier, _metrics) = open_tier(&dir, 2 * (HEADER_LEN + 100) + 10);
        spill_sync(&tier, 1, &body);
        spill_sync(&tier, 2, &body);
        assert!(tier.lookup(1).is_some()); // refresh 1 so 2 is the victim
        spill_sync(&tier, 3, &body);
        let stats = tier.stats();
        assert_eq!(stats.evictions, 1);
        assert_eq!(stats.entries, 2);
        assert!(tier.lookup(2).is_none());
        assert!(tier.lookup(1).is_some());
        assert!(tier.lookup(3).is_some());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn oversize_bodies_are_skipped() {
        let dir = temp_dir("oversize");
        let (tier, _metrics) = open_tier(&dir, 64);
        spill_sync(&tier, 9, &"x".repeat(1000));
        assert_eq!(tier.stats().writes, 0);
        assert!(tier.lookup(9).is_none());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn corrupt_entry_is_quarantined_on_lookup() {
        let dir = temp_dir("quarantine");
        let (tier, _metrics) = open_tier(&dir, 1 << 20);
        spill_sync(&tier, 11, "pristine body");
        let path = tier.entry_path(11);
        let mut blob = fs::read(&path).unwrap();
        let at = blob.len() - 3;
        blob[at] ^= 0x40;
        fs::write(&path, &blob).unwrap();
        assert_eq!(tier.lookup(11), None);
        assert_eq!(tier.stats().corrupt, 1);
        assert!(!path.exists());
        // A second lookup is a plain miss, not another quarantine.
        assert_eq!(tier.lookup(11), None);
        assert_eq!(tier.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_scan_indexes_valid_and_quarantines_torn() {
        let dir = temp_dir("recover");
        {
            let (tier, _metrics) = open_tier(&dir, 1 << 20);
            spill_sync(&tier, 21, "survives restart");
            spill_sync(&tier, 22, "also survives");
        }
        // Simulate a torn temp file and a corrupt committed entry.
        fs::write(dir.join(".tmp-deadbeef-0"), b"torn").unwrap();
        let victim = dir.join(format!("{:032x}.rpt", 22u128));
        let mut blob = fs::read(&victim).unwrap();
        blob[HEADER_LEN] ^= 0x01;
        fs::write(&victim, &blob).unwrap();
        // Entry under a name that doesn't match its header key.
        let mismatched = encode_entry(99, b"wrong address");
        fs::write(dir.join(format!("{:032x}.rpt", 23u128)), &mismatched).unwrap();

        let (tier, _metrics) = open_tier(&dir, 1 << 20);
        let stats = tier.stats();
        assert_eq!(stats.entries, 1);
        assert_eq!(stats.corrupt, 3); // torn tmp + corrupt body + key mismatch
        assert_eq!(tier.lookup(21).as_deref(), Some("survives restart"));
        assert_eq!(tier.lookup(22), None);
        assert_eq!(tier.lookup(23), None);
        assert!(!dir.join(".tmp-deadbeef-0").exists());
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn recovery_evicts_down_to_budget() {
        let dir = temp_dir("recover-budget");
        let body = "r".repeat(200);
        {
            let (tier, _metrics) = open_tier(&dir, 1 << 20);
            for key in 0..4u128 {
                spill_sync(&tier, key, &body);
            }
        }
        let (tier, _metrics) = open_tier(&dir, 2 * (HEADER_LEN + 200) + 10);
        let stats = tier.stats();
        assert_eq!(stats.entries, 2);
        assert_eq!(stats.evictions, 2);
        assert!(stats.bytes <= 2 * (HEADER_LEN + 200) + 10);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_write_errors_trip_and_recover_the_breaker() {
        let dir = temp_dir("breaker");
        let metrics = Arc::new(Metrics::new());
        let faults = Arc::new(FaultPlan::parse("disk_write_err:1").unwrap());
        let tier = DiskTier::open(&dir, 1 << 20, Arc::clone(&metrics), Some(faults)).unwrap();
        tier.enqueue(31, Arc::from("doomed"));
        assert!(tier.flush(Duration::from_secs(5)));
        let stats = tier.stats();
        assert_eq!(stats.errors, 1);
        assert!(stats.degraded);
        assert_eq!(stats.writes, 0);
        drop(tier);

        // A clean tier over the same dir recovers after the backoff window.
        let healthy = DiskTier::open(&dir, 1 << 20, Arc::new(Metrics::new()), None).unwrap();
        healthy.breaker.failure();
        assert!(healthy.stats().degraded);
        std::thread::sleep(BREAKER_BASE + Duration::from_millis(150));
        spill_sync(&healthy, 32, "probe body");
        assert!(!healthy.stats().degraded);
        assert_eq!(healthy.lookup(32).as_deref(), Some("probe body"));
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn injected_corruption_is_detected_on_read_not_write() {
        let dir = temp_dir("inject-corrupt");
        let metrics = Arc::new(Metrics::new());
        let faults = Arc::new(FaultPlan::parse("disk_corrupt:1").unwrap());
        let tier = DiskTier::open(&dir, 1 << 20, Arc::clone(&metrics), Some(faults)).unwrap();
        tier.enqueue(41, Arc::from("will be mangled"));
        assert!(tier.flush(Duration::from_secs(5)));
        let stats = tier.stats();
        assert_eq!(stats.writes, 1); // the write itself "succeeded"
        assert!(!stats.degraded); // corruption must not trip the breaker
        assert_eq!(tier.lookup(41), None);
        assert_eq!(tier.stats().corrupt, 1);
        let _ = fs::remove_dir_all(&dir);
    }

    #[test]
    fn open_fails_on_unwritable_dir() {
        // A path under a regular *file* can never be a writable directory.
        let blocker = std::env::temp_dir()
            .join(format!("saturn-persist-test-{}-blocker", std::process::id()));
        fs::write(&blocker, b"not a dir").unwrap();
        let result =
            DiskTier::open(&blocker.join("cache"), 1 << 20, Arc::new(Metrics::new()), None);
        assert!(result.is_err());
        let _ = fs::remove_file(&blocker);
    }
}
