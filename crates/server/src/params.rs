//! Typed request parameters: one parser for every query knob the v1 API
//! accepts, replacing the per-endpoint hand-rolled `request.param` reads.
//!
//! Every endpoint taking query parameters funnels through
//! [`RequestParams::parse`], so a knob parses (and fails) identically on
//! `/v1/analyze`, `/v1/validate`, and the `/v1/streams` session routes.
//! Unknown parameters are ignored (clients may probe newer servers);
//! recognized parameters that fail to parse are a `400` with code
//! `bad_request` and a message naming the parameter and the raw value.
//!
//! | parameter | type | default | meaning |
//! |-----------|------|---------|---------|
//! | `points` | usize | 48 | geometric sweep grid size |
//! | `sample` | u32 | absent = exact | target-set sample size |
//! | `seed` | u64 | 1 | sampling seed (with `sample`) |
//! | `deadline_ms` | u64 | server default | end-to-end deadline, 0 = none |
//! | `tile` | usize | server default | sweep tile width, 0 = auto |
//! | `no_delta` | 0/1 | server default | disable delta propagation |
//! | `no_incremental` | 0/1 | server default | disable merge-built timelines |
//! | `delta_min` | i64 | 1 | validation minimum delta |
//! | `weighted` | 0/1 | 1 | validation weighted transitions |
//! | `directed` | flag | off | parse the trace body as directed |
//! | `async` | flag | off | return `202` + job id instead of waiting |

use crate::http::Request;
use crate::ApiError;
use saturn_core::TargetSpec;
use saturn_linkstream::Directedness;
use std::time::Duration;

/// Server-level fallbacks for the per-request execution knobs (from the
/// serve flags). Decoupled from the server context so the parser is unit-
/// testable without binding a socket.
#[derive(Clone, Copy, Debug, Default)]
pub struct ParamDefaults {
    /// Default request deadline in milliseconds (0 = none).
    pub deadline_ms: u64,
    /// Default sweep tile width (0 = automatic).
    pub tile: usize,
    /// Default delta-propagation disable switch.
    pub no_delta: bool,
    /// Default incremental-timeline disable switch.
    pub no_incremental: bool,
}

/// Every query parameter of the v1 API, parsed and defaulted.
#[derive(Clone, Debug)]
pub struct RequestParams {
    /// `points`: geometric sweep grid size.
    pub points: usize,
    /// `sample`/`seed`: target spec (absent `sample` = exact).
    pub targets: TargetSpec,
    /// `deadline_ms` over the server default; `None` = unbounded.
    pub deadline: Option<Duration>,
    /// `tile` over the server default (0 = automatic).
    pub tile: usize,
    /// `no_delta` over the server default.
    pub no_delta: bool,
    /// `no_incremental` over the server default.
    pub no_incremental: bool,
    /// `delta_min` (validation sweeps).
    pub delta_min: i64,
    /// `weighted` (validation sweeps; default on).
    pub weighted: bool,
    /// `directed`: directedness of the trace body.
    pub directedness: Directedness,
    /// `async`: detach and answer `202` with a job id.
    pub async_job: bool,
}

impl RequestParams {
    /// Parses every recognized parameter of `request`, falling back to
    /// `defaults` for the server-level knobs. Any unparsable value is a
    /// `400` naming the parameter.
    pub fn parse(
        request: &Request,
        defaults: &ParamDefaults,
    ) -> Result<RequestParams, ApiError> {
        let deadline_ms = numeric(request, "deadline_ms", defaults.deadline_ms)?;
        // validated even when `sample` is absent: a garbled `seed` is a 400
        // like every other unparsable value, never silently ignored
        let seed = numeric(request, "seed", 1u64)?;
        Ok(RequestParams {
            points: numeric(request, "points", 48usize)?,
            targets: match request.param("sample") {
                None => TargetSpec::All,
                Some(_) => TargetSpec::Sample { size: numeric(request, "sample", 0u32)?, seed },
            },
            deadline: (deadline_ms > 0).then(|| Duration::from_millis(deadline_ms)),
            tile: numeric(request, "tile", defaults.tile)?,
            no_delta: numeric::<u8>(request, "no_delta", defaults.no_delta as u8)? != 0,
            no_incremental: numeric::<u8>(
                request,
                "no_incremental",
                defaults.no_incremental as u8,
            )? != 0,
            delta_min: numeric(request, "delta_min", 1i64)?,
            weighted: request.param("weighted").is_none_or(|v| v != "0"),
            directedness: if request.flag("directed") {
                Directedness::Directed
            } else {
                Directedness::Undirected
            },
            async_job: request.flag("async"),
        })
    }
}

/// Parses a numeric query parameter, defaulting when absent.
pub fn numeric<T: std::str::FromStr>(
    request: &Request,
    key: &str,
    default: T,
) -> Result<T, ApiError>
where
    T::Err: std::fmt::Display,
{
    match request.param(key) {
        None => Ok(default),
        Some(raw) => raw
            .parse()
            .map_err(|e| ApiError::new(400, format!("query parameter {key}={raw}: {e}"))),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A synthetic request carrying only a query string.
    fn req(query: &[(&str, &str)]) -> Request {
        Request {
            method: "POST".into(),
            path: "/v1/analyze".into(),
            query: query.iter().map(|(k, v)| (k.to_string(), v.to_string())).collect(),
            keep_alive: false,
            body: Vec::new(),
        }
    }

    fn parse(query: &[(&str, &str)]) -> Result<RequestParams, ApiError> {
        RequestParams::parse(&req(query), &ParamDefaults::default())
    }

    #[test]
    fn defaults_cover_an_empty_query() {
        let p = parse(&[]).unwrap();
        assert_eq!(p.points, 48);
        assert_eq!(p.targets, TargetSpec::All);
        assert_eq!(p.deadline, None);
        assert_eq!(p.tile, 0);
        assert!(!p.no_delta);
        assert!(!p.no_incremental);
        assert_eq!(p.delta_min, 1);
        assert!(p.weighted);
        assert_eq!(p.directedness, Directedness::Undirected);
        assert!(!p.async_job);
    }

    #[test]
    fn server_defaults_flow_through() {
        let defaults =
            ParamDefaults { deadline_ms: 1500, tile: 8, no_delta: true, no_incremental: true };
        let p = RequestParams::parse(&req(&[]), &defaults).unwrap();
        assert_eq!(p.deadline, Some(Duration::from_millis(1500)));
        assert_eq!(p.tile, 8);
        assert!(p.no_delta);
        assert!(p.no_incremental);
        // per-request values override every server default
        let p = RequestParams::parse(
            &req(&[
                ("deadline_ms", "0"),
                ("tile", "2"),
                ("no_delta", "0"),
                ("no_incremental", "0"),
            ]),
            &defaults,
        )
        .unwrap();
        assert_eq!(p.deadline, None);
        assert_eq!(p.tile, 2);
        assert!(!p.no_delta);
        assert!(!p.no_incremental);
    }

    #[test]
    fn explicit_values_parse() {
        let p = parse(&[
            ("points", "12"),
            ("sample", "64"),
            ("seed", "9"),
            ("deadline_ms", "250"),
            ("tile", "4"),
            ("no_delta", "1"),
            ("no_incremental", "1"),
            ("delta_min", "5"),
            ("weighted", "0"),
            ("directed", "1"),
            ("async", "1"),
        ])
        .unwrap();
        assert_eq!(p.points, 12);
        assert_eq!(p.targets, TargetSpec::Sample { size: 64, seed: 9 });
        assert_eq!(p.deadline, Some(Duration::from_millis(250)));
        assert_eq!(p.tile, 4);
        assert!(p.no_delta && p.no_incremental);
        assert_eq!(p.delta_min, 5);
        assert!(!p.weighted);
        assert_eq!(p.directedness, Directedness::Directed);
        assert!(p.async_job);
    }

    #[test]
    fn empty_sample_value_is_a_400() {
        // `?sample=` selects sampling but an empty value fails u32
        // parsing — a 400 naming the parameter, not a silent Sample{0}
        let e = parse(&[("sample", "")]).unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.contains("sample="));
    }

    #[test]
    fn every_numeric_parameter_rejects_garbage_with_400() {
        for key in [
            "points",
            "sample",
            "seed",
            "deadline_ms",
            "tile",
            "no_delta",
            "no_incremental",
            "delta_min",
        ] {
            let e = parse(&[(key, "abc")]).unwrap_err();
            assert_eq!(e.status, 400, "{key}");
            assert_eq!(e.code, "bad_request", "{key}");
            assert!(!e.retryable, "{key}");
            assert!(
                e.message.contains(&format!("query parameter {key}=abc")),
                "{key}: {}",
                e.message
            );
        }
    }

    #[test]
    fn negative_and_overflow_values_are_400s() {
        assert_eq!(parse(&[("points", "-1")]).unwrap_err().status, 400);
        assert_eq!(parse(&[("deadline_ms", "-5")]).unwrap_err().status, 400);
        assert_eq!(parse(&[("no_delta", "256")]).unwrap_err().status, 400);
        assert_eq!(parse(&[("seed", "99999999999999999999999")]).unwrap_err().status, 400);
        // i64 accepts negatives: delta_min=-3 parses (the sweep clamps it)
        assert_eq!(parse(&[("delta_min", "-3")]).unwrap().delta_min, -3);
    }

    #[test]
    fn flags_accept_their_historical_spellings() {
        for truthy in ["", "1", "true", "yes"] {
            assert!(parse(&[("async", truthy)]).unwrap().async_job, "async={truthy}");
            assert_eq!(
                parse(&[("directed", truthy)]).unwrap().directedness,
                Directedness::Directed,
                "directed={truthy}"
            );
        }
        assert!(!parse(&[("async", "0")]).unwrap().async_job);
        assert_eq!(parse(&[("directed", "0")]).unwrap().directedness, Directedness::Undirected);
    }

    #[test]
    fn weighted_only_disables_on_literal_zero() {
        assert!(parse(&[]).unwrap().weighted);
        assert!(parse(&[("weighted", "1")]).unwrap().weighted);
        assert!(parse(&[("weighted", "banana")]).unwrap().weighted);
        assert!(!parse(&[("weighted", "0")]).unwrap().weighted);
    }

    #[test]
    fn last_value_wins_on_duplicates() {
        let p = parse(&[("points", "8"), ("points", "16")]).unwrap();
        assert_eq!(p.points, 16);
    }

    #[test]
    fn numeric_error_names_parameter_and_raw_value() {
        let e = numeric::<u64>(&req(&[("deadline_ms", "12x")]), "deadline_ms", 0).unwrap_err();
        assert_eq!(e.status, 400);
        assert!(e.message.starts_with("query parameter deadline_ms=12x:"), "{}", e.message);
    }
}
