//! Minimal self-pipe shutdown-signal plumbing for `saturn serve`.
//!
//! The workspace is dependency-free, so this talks to the C runtime
//! directly: `signal(2)` to install an async-signal-safe handler for
//! `SIGTERM`/`SIGINT`, and a `pipe(2)` the handler writes one byte into
//! (the classic self-pipe trick — the only async-signal-safe way to hand
//! the event to a normal thread). [`wait`] blocks a watcher thread on the
//! read end; the server uses it to enter lame-duck mode and drain.
//!
//! On non-unix targets [`install`] reports no support and the server simply
//! runs without graceful drain.

#[cfg(unix)]
mod imp {
    use std::sync::atomic::{AtomicI32, Ordering};

    extern "C" {
        fn signal(signum: i32, handler: extern "C" fn(i32)) -> usize;
        fn pipe(fds: *mut i32) -> i32;
        fn write(fd: i32, buf: *const u8, count: usize) -> isize;
        fn read(fd: i32, buf: *mut u8, count: usize) -> isize;
    }

    const SIGINT: i32 = 2;
    const SIGTERM: i32 = 15;

    /// Write end of the self-pipe; -1 until [`install`] runs.
    static PIPE_WR: AtomicI32 = AtomicI32::new(-1);

    extern "C" fn on_signal(_signum: i32) {
        let fd = PIPE_WR.load(Ordering::Acquire);
        if fd >= 0 {
            let byte = 1u8;
            // best effort: a full pipe already means a pending wakeup
            unsafe { write(fd, &byte, 1) };
        }
    }

    /// Installs SIGTERM/SIGINT handlers; returns the read end of the
    /// self-pipe, or `None` if the pipe could not be created.
    pub fn install() -> Option<i32> {
        let mut fds = [-1i32; 2];
        if unsafe { pipe(fds.as_mut_ptr()) } != 0 {
            return None;
        }
        PIPE_WR.store(fds[1], Ordering::Release);
        unsafe {
            signal(SIGTERM, on_signal);
            signal(SIGINT, on_signal);
        }
        Some(fds[0])
    }

    /// Blocks until a handled signal arrives (one byte on the self-pipe).
    pub fn wait(fd: i32) {
        let mut byte = 0u8;
        loop {
            let n = unsafe { read(fd, &mut byte, 1) };
            if n >= 0 {
                // 1 byte = a signal fired; 0 = pipe gone — shut down either way
                return;
            }
            // EINTR or a transient error: retry, without spinning hot
            std::thread::sleep(std::time::Duration::from_millis(10));
        }
    }
}

#[cfg(not(unix))]
mod imp {
    /// No signal support on this target.
    pub fn install() -> Option<i32> {
        None
    }

    /// Never called (install returns `None`), present for symmetry.
    pub fn wait(_fd: i32) {}
}

pub use imp::{install, wait};
