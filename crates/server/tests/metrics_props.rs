//! Property-based validation of the telemetry histogram: every recorded
//! value lands in exactly the bucket its magnitude dictates, quantiles are
//! conservative upper bounds, and merge is sample-exact.

use proptest::prelude::*;
use saturn_server::metrics::{bucket_bound_micros, Histogram, BUCKETS, FINITE_BUCKETS};

/// The bucket a value of `micros` must land in: the smallest `2^i` µs bound
/// that is ≥ the value, or the `+Inf` bucket past the largest finite bound.
/// Computed here by linear scan — independently of the `leading_zeros`
/// arithmetic the implementation uses.
fn expected_bucket(micros: u64) -> usize {
    (0..FINITE_BUCKETS).find(|&i| micros <= bucket_bound_micros(i)).unwrap_or(FINITE_BUCKETS)
}

/// Latencies spanning every bucket: tiny, mid-range, and past the largest
/// finite bound (~35.8 min in µs), plus u64 extremes via the shifts.
fn arb_latencies() -> impl Strategy<Value = Vec<(u64, u32)>> {
    proptest::collection::vec((0u64..=u64::MAX, 0u32..=63), 1..120)
        .prop_map(|raw| raw.into_iter().map(|(v, shift)| (v >> shift, shift)).collect())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Each observed value increments exactly the bucket covering it.
    #[test]
    fn recorded_values_land_in_their_bucket(samples in arb_latencies()) {
        let h = Histogram::new();
        let mut expected = [0u64; BUCKETS];
        let mut expected_sum = 0u64;
        for &(micros, _) in &samples {
            h.observe_micros(micros);
            expected[expected_bucket(micros)] += 1;
            expected_sum = expected_sum.wrapping_add(micros);
        }
        prop_assert_eq!(h.bucket_counts(), expected);
        prop_assert_eq!(h.count(), samples.len() as u64);
        prop_assert_eq!(h.sum_micros(), expected_sum);
    }

    /// Quantiles are conservative: the reported bound is ≥ at least
    /// `ceil(q·n)` of the recorded samples (clipped samples — those past the
    /// largest finite bound — are the only ones a bound can undercount).
    #[test]
    fn quantiles_cover_their_rank(samples in arb_latencies(), q in 1u32..=100) {
        let h = Histogram::new();
        for &(micros, _) in &samples {
            h.observe_micros(micros);
        }
        let q = q as f64 / 100.0;
        let bound = h.quantile(q).unwrap();
        let rank = ((q * samples.len() as f64).ceil() as u64).clamp(1, samples.len() as u64);
        let covered = samples
            .iter()
            .filter(|&&(micros, _)| {
                micros <= bound || micros > bucket_bound_micros(FINITE_BUCKETS - 1)
            })
            .count() as u64;
        prop_assert!(
            covered >= rank,
            "q={} bound={} covers {} of rank {}", q, bound, covered, rank
        );
    }

    /// Splitting a sample set across two histograms and merging equals
    /// recording everything into one.
    #[test]
    fn merge_equals_single_histogram(samples in arb_latencies(), split in 0u32..=100) {
        let whole = Histogram::new();
        let left = Histogram::new();
        let right = Histogram::new();
        let pivot = samples.len() * split as usize / 100;
        for (i, &(micros, _)) in samples.iter().enumerate() {
            whole.observe_micros(micros);
            if i < pivot { left.observe_micros(micros) } else { right.observe_micros(micros) }
        }
        left.merge(&right);
        prop_assert_eq!(left.bucket_counts(), whole.bucket_counts());
        prop_assert_eq!(left.count(), whole.count());
        prop_assert_eq!(left.sum_micros(), whole.sum_micros());
        prop_assert_eq!(left.quantile(0.5), whole.quantile(0.5));
        prop_assert_eq!(left.quantile(0.99), whole.quantile(0.99));
    }
}
