//! End-to-end tests of the analysis service over real sockets.

use saturn_server::{Server, ServerConfig};
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Starts a server with `tweak` applied to a small test-friendly config.
fn start(tweak: impl FnOnce(&mut ServerConfig)) -> saturn_server::ServerHandle {
    let mut config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        tile: 0,
        no_delta: false,
        no_incremental: false,
        cache_bytes: 8 << 20,
        queue_depth: 16,
        max_body_bytes: 1 << 20,
        max_connections: 64,
        ..ServerConfig::default()
    };
    tweak(&mut config);
    Server::bind(&config).expect("bind").spawn().expect("spawn")
}

/// A deterministic trace with enough structure for a non-degenerate sweep.
fn trace(nodes: u32, events: i64, gap: i64) -> String {
    let mut text = String::new();
    for i in 0..events {
        text.push_str(&format!(
            "n{} n{} {}\n",
            i % nodes as i64,
            (i + 1) % nodes as i64,
            i * gap + (i % 3)
        ));
    }
    text
}

struct Response {
    status: u16,
    body: Vec<u8>,
    retry_after: Option<u32>,
    content_type: Option<String>,
}

/// Writes `count` requests over one connection, reading each response before
/// sending the next (keep-alive path when `count > 1`).
fn requests_on(
    stream: &mut TcpStream,
    method: &str,
    target: &str,
    body: &[u8],
    count: usize,
) -> Vec<Response> {
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut responses = Vec::new();
    for _ in 0..count {
        write!(
            stream,
            "{method} {target} HTTP/1.1\r\nHost: saturn\r\nContent-Length: {}\r\n\r\n",
            body.len()
        )
        .expect("write head");
        stream.write_all(body).expect("write body");
        responses.push(read_response(&mut reader));
    }
    responses
}

fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> Response {
    let mut stream = TcpStream::connect(addr).expect("connect");
    requests_on(&mut stream, method, target, body, 1).pop().expect("one response")
}

fn read_response<R: BufRead>(reader: &mut R) -> Response {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    let mut retry_after = None;
    let mut content_type = None;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        let line = line.trim_end();
        if line.is_empty() {
            break;
        }
        let lowered = line.to_ascii_lowercase();
        if let Some(v) = lowered.strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
        if let Some(v) = lowered.strip_prefix("retry-after:") {
            retry_after = Some(v.trim().parse().expect("retry-after"));
        }
        if let Some(v) = lowered.strip_prefix("content-type:") {
            content_type = Some(v.trim().to_string());
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("body");
    Response { status, body, retry_after, content_type }
}

fn json(response: &Response) -> serde_json::Value {
    serde_json::from_slice(&response.body).unwrap_or_else(|e| {
        panic!("invalid JSON ({e}): {}", String::from_utf8_lossy(&response.body))
    })
}

#[test]
fn stats_endpoint_shares_the_cli_shape() {
    let server = start(|_| {});
    let body = trace(6, 200, 40);
    let response = request(server.addr(), "POST", "/v1/stats?directed=1", body.as_bytes());
    assert_eq!(response.status, 200);
    let v = json(&response);
    assert_eq!(v["nodes"].as_u64(), Some(6));
    assert_eq!(v["links"].as_u64(), Some(200));
    assert_eq!(v["dropped_duplicates"].as_u64(), Some(0));
    assert!(v["mean_inter_contact"].as_f64().unwrap() > 0.0);
    server.stop();
}

#[test]
fn tile_widths_return_byte_identical_reports() {
    // caching disabled: every request is a genuinely cold sweep, so the
    // byte equality below is tiling determinism, not a cache hit
    let server = start(|config| {
        config.cache_bytes = 0;
        config.tile = 3;
        config.threads = 4;
    });
    let body = trace(8, 200, 30);
    let reference = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(reference.status, 200);
    assert!(!json(&reference)["results"].as_array().unwrap().is_empty());
    for target in [
        "/v1/analyze?points=8&tile=1",
        "/v1/analyze?points=8&tile=100",
        "/v1/analyze?points=8&tile=0",
    ] {
        let tiled = request(server.addr(), "POST", target, body.as_bytes());
        assert_eq!(tiled.status, 200, "{target}");
        assert_eq!(reference.body, tiled.body, "{target}: tiling must not change report bytes");
    }
    let bad = request(server.addr(), "POST", "/v1/analyze?points=8&tile=x", body.as_bytes());
    assert_eq!(bad.status, 400);
    server.stop();
}

#[test]
fn delta_settings_return_byte_identical_reports() {
    // caching disabled: every request is a genuinely cold sweep, so the
    // byte equality below is engine determinism (delta on vs off), not a
    // cache hit
    let server = start(|config| {
        config.cache_bytes = 0;
        config.threads = 3;
    });
    let body = trace(8, 220, 30);
    let reference = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(reference.status, 200);
    assert!(!json(&reference)["results"].as_array().unwrap().is_empty());
    for target in ["/v1/analyze?points=8&no_delta=1", "/v1/analyze?points=8&no_delta=0"] {
        let toggled = request(server.addr(), "POST", target, body.as_bytes());
        assert_eq!(toggled.status, 200, "{target}");
        assert_eq!(
            reference.body, toggled.body,
            "{target}: delta propagation must not change report bytes"
        );
    }
    // malformed values are rejected like ?tile's, not silently coerced
    let bad =
        request(server.addr(), "POST", "/v1/analyze?points=8&no_delta=x", body.as_bytes());
    assert_eq!(bad.status, 400);
    server.stop();
}

/// The delta-propagation rework must not move cache fingerprints: a report
/// computed by the delta engine is served, byte-identical, to a request
/// that asks for the pre-delta engine (`?no_delta=1`) — the knob, like
/// `?tile=`, is not part of the content address.
#[test]
fn no_delta_requests_hit_the_same_cache_entry() {
    let server = start(|_| {});
    let body = trace(6, 200, 45);
    let cold = request(server.addr(), "POST", "/v1/analyze?points=9", body.as_bytes());
    assert_eq!(cold.status, 200);

    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    let hits_before = health["cache"]["hits"].as_u64().unwrap();

    let ablated =
        request(server.addr(), "POST", "/v1/analyze?points=9&no_delta=1", body.as_bytes());
    assert_eq!(ablated.status, 200);
    assert_eq!(cold.body, ablated.body, "cached hit must be byte-identical");

    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    assert_eq!(
        health["cache"]["hits"].as_u64().unwrap(),
        hits_before + 1,
        "?no_delta must address the same cache entry"
    );
    server.stop();
}

/// Incremental timeline construction must be invisible end to end: with
/// caching disabled, scratch-built (`?no_incremental=1`) and merge-built
/// reports are byte-identical cold sweeps; with caching on, the knob — like
/// `?tile=` and `?no_delta=` — is not part of the content address, so an
/// ablated request is served from the incremental run's cache entry.
#[test]
fn no_incremental_requests_are_identical_and_share_the_cache_entry() {
    let cold_server = start(|config| {
        config.cache_bytes = 0;
        config.threads = 3;
    });
    let body = trace(8, 220, 30);
    let reference =
        request(cold_server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(reference.status, 200);
    for target in
        ["/v1/analyze?points=8&no_incremental=1", "/v1/analyze?points=8&no_incremental=0"]
    {
        let toggled = request(cold_server.addr(), "POST", target, body.as_bytes());
        assert_eq!(toggled.status, 200, "{target}");
        assert_eq!(
            reference.body, toggled.body,
            "{target}: incremental timeline construction must not change report bytes"
        );
    }
    let bad = request(
        cold_server.addr(),
        "POST",
        "/v1/analyze?points=8&no_incremental=x",
        body.as_bytes(),
    );
    assert_eq!(bad.status, 400);
    cold_server.stop();

    let server = start(|_| {});
    let cold = request(server.addr(), "POST", "/v1/analyze?points=9", body.as_bytes());
    assert_eq!(cold.status, 200);
    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    let hits_before = health["cache"]["hits"].as_u64().unwrap();
    let ablated = request(
        server.addr(),
        "POST",
        "/v1/analyze?points=9&no_incremental=1",
        body.as_bytes(),
    );
    assert_eq!(ablated.status, 200);
    assert_eq!(cold.body, ablated.body, "cached hit must be byte-identical");
    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    assert_eq!(
        health["cache"]["hits"].as_u64().unwrap(),
        hits_before + 1,
        "?no_incremental must address the same cache entry"
    );
    server.stop();
}

#[test]
fn analyze_cold_then_cached_is_byte_identical() {
    let server = start(|_| {});
    let body = trace(6, 240, 40);
    let target = "/v1/analyze?points=10";
    let cold = request(server.addr(), "POST", target, body.as_bytes());
    assert_eq!(cold.status, 200);
    assert!(json(&cold)["results"].as_array().unwrap().len() >= 5);

    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    let misses_before = health["cache"]["misses"].as_u64().unwrap();
    let hits_before = health["cache"]["hits"].as_u64().unwrap();

    let cached = request(server.addr(), "POST", target, body.as_bytes());
    assert_eq!(cached.status, 200);
    assert_eq!(cold.body, cached.body, "cache hit must be byte-identical");

    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    assert_eq!(health["cache"]["misses"].as_u64().unwrap(), misses_before);
    assert_eq!(health["cache"]["hits"].as_u64().unwrap(), hits_before + 1);
    // content addressing: same triplets in a different line order also hit
    let reversed: String = body.lines().rev().map(|l| format!("{l}\n")).collect();
    let reordered = request(server.addr(), "POST", target, reversed.as_bytes());
    assert_eq!(cold.body, reordered.body, "content-addressed, not byte-addressed");
    server.stop();
}

#[test]
fn concurrent_clients_get_byte_identical_reports_cold_and_cached() {
    const CLIENTS: usize = 6;
    let server = start(|_| {});
    let addr = server.addr();
    let body: Arc<String> = Arc::new(trace(7, 280, 35));
    let target = "/v1/analyze?points=12";

    let round = || -> Vec<Vec<u8>> {
        let workers: Vec<_> = (0..CLIENTS)
            .map(|_| {
                let body = Arc::clone(&body);
                std::thread::spawn(move || {
                    let response = request(addr, "POST", target, body.as_bytes());
                    assert_eq!(response.status, 200);
                    response.body
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client thread")).collect()
    };

    // cold: every client races the empty cache; in-flight coalescing must
    // still hand all of them one identical report
    let cold = round();
    for other in &cold[1..] {
        assert_eq!(&cold[0], other, "cold concurrent responses diverged");
    }
    // cached: the same fan-out served from the report cache
    let cached = round();
    for other in &cached {
        assert_eq!(&cold[0], other, "cached responses diverged from cold");
    }

    let health = json(&request(addr, "GET", "/v1/health", b""));
    let executed = health["jobs"]["executed"].as_u64().unwrap();
    assert_eq!(executed, 1, "one sweep must have served all {CLIENTS} cold clients");
    server.stop();
}

#[test]
fn async_jobs_roundtrip_matches_sync() {
    let server = start(|_| {});
    let body = trace(5, 150, 50);
    let sync = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(sync.status, 200);

    // different points so the async submission is a genuinely new job
    let submitted =
        request(server.addr(), "POST", "/v1/analyze?points=9&async=1", body.as_bytes());
    assert_eq!(submitted.status, 202);
    let id = json(&submitted)["job"].as_u64().expect("job id");

    let result = request(server.addr(), "GET", &format!("/v1/jobs/{id}?wait=1"), b"");
    assert_eq!(result.status, 200);
    assert!(json(&result)["results"].as_array().unwrap().len() >= 4);

    // polled again after completion: the same outcome body
    let again = request(server.addr(), "GET", &format!("/v1/jobs/{id}"), b"");
    assert_eq!(again.body, result.body);

    let missing = request(server.addr(), "GET", "/v1/jobs/99999", b"");
    assert_eq!(missing.status, 404);
    server.stop();
}

#[test]
fn validate_endpoint_returns_loss_curves() {
    let server = start(|_| {});
    let body = trace(8, 160, 7);
    let response =
        request(server.addr(), "POST", "/v1/validate?points=8&weighted=1", body.as_bytes());
    assert_eq!(response.status, 200);
    let v = json(&response);
    assert!(v["reference_trips"].as_u64().unwrap() > 0);
    let points = v["points"].as_array().unwrap();
    assert!(points.len() >= 8);
    let last = &points[points.len() - 1];
    assert_eq!(last["k"].as_u64(), Some(1));
    assert!((last["lost_transitions"].as_f64().unwrap() - 1.0).abs() < 1e-9);
    server.stop();
}

#[test]
fn keep_alive_serves_multiple_requests_on_one_connection() {
    let server = start(|_| {});
    let body = trace(5, 100, 20);
    let mut stream = TcpStream::connect(server.addr()).expect("connect");
    let responses = requests_on(&mut stream, "POST", "/v1/stats", body.as_bytes(), 3);
    assert_eq!(responses.len(), 3);
    for response in &responses {
        assert_eq!(response.status, 200);
        assert_eq!(response.body, responses[0].body);
    }
    server.stop();
}

#[test]
fn error_paths_have_proper_statuses() {
    let server = start(|c| c.max_body_bytes = 512);
    let addr = server.addr();
    assert_eq!(request(addr, "GET", "/nope", b"").status, 404);
    assert_eq!(request(addr, "GET", "/v1/analyze", b"").status, 405);
    assert_eq!(request(addr, "POST", "/v1/analyze", b"not a trace").status, 400);
    assert_eq!(request(addr, "POST", "/v1/analyze?points=x", b"a b 1\na c 2\n").status, 400);
    let big = trace(10, 200, 10);
    assert!(big.len() > 512);
    assert_eq!(request(addr, "POST", "/v1/analyze", big.as_bytes()).status, 413);
    let error = request(addr, "POST", "/v1/stats", b"a b nine\n");
    assert_eq!(error.status, 400);
    assert!(json(&error)["error"]["message"].as_str().unwrap().contains("not an integer"));
    server.stop();
}

#[test]
fn zero_queue_depth_yields_backpressure_503() {
    let server = start(|c| c.queue_depth = 0);
    let response =
        request(server.addr(), "POST", "/v1/analyze?points=8", trace(5, 100, 20).as_bytes());
    assert_eq!(response.status, 503);
    let error = json(&response);
    assert_eq!(error["error"]["code"].as_str(), Some("queue_full"));
    assert_eq!(error["error"]["retryable"].as_bool(), Some(true));
    assert!(error["error"]["message"].as_str().unwrap().contains("queue"));
    assert!(
        response.retry_after.unwrap_or(0) >= 1,
        "backpressure 503 must carry a Retry-After hint"
    );
    // non-queued endpoints still work
    let stats = request(server.addr(), "POST", "/v1/stats", trace(5, 100, 20).as_bytes());
    assert_eq!(stats.status, 200);
    server.stop();
}

/// A request that stalls mid-transmission gets `408 Request Timeout`; a
/// connection that goes idle *between* requests is closed silently (no
/// status), since nothing was half-sent.
#[test]
fn stalls_get_408_but_idle_keep_alive_closes_silently() {
    let server = start(|c| c.read_timeout = Duration::from_millis(200));
    let addr = server.addr();

    // stall inside the head: the request line never finishes
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream.write_all(b"POST /v1/stats HTTP/1.1\r\nContent-Le").expect("partial head");
    let response = read_response(&mut BufReader::new(stream.try_clone().expect("clone")));
    assert_eq!(response.status, 408);

    // stall inside the body: head complete, body short of Content-Length
    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .write_all(b"POST /v1/stats HTTP/1.1\r\nContent-Length: 50\r\n\r\na b 1\n")
        .expect("partial body");
    let response = read_response(&mut BufReader::new(stream.try_clone().expect("clone")));
    assert_eq!(response.status, 408);

    // idle before any byte: silent close, not a status line
    let stream = TcpStream::connect(addr).expect("connect");
    let mut reader = BufReader::new(stream.try_clone().expect("clone"));
    let mut leftovers = Vec::new();
    reader.read_to_end(&mut leftovers).expect("read to close");
    assert!(leftovers.is_empty(), "idle close must not write a response");
    server.stop();
}

/// `?deadline_ms=` turns an over-budget sweep into a structured `504`
/// reporting partial progress, while a generous per-request deadline
/// overrides a tight server-wide default.
#[test]
fn deadlines_yield_structured_504s_and_per_request_override() {
    let server = start(|c| c.default_deadline_ms = 1);
    let body = trace(10, 400, 30);

    // server-wide 1ms default: the sweep cannot finish in time
    let expired = request(server.addr(), "POST", "/v1/analyze?points=12", body.as_bytes());
    assert_eq!(expired.status, 504);
    let v = json(&expired);
    assert_eq!(v["error"]["code"].as_str(), Some("deadline_exceeded"));
    assert_eq!(v["error"]["retryable"].as_bool(), Some(true));
    assert!(v["error"]["message"].as_str().unwrap().contains("deadline"));
    let done = v["error"]["scales_done"].as_u64().expect("scales_done");
    let total = v["error"]["scales_total"].as_u64().expect("scales_total");
    assert!(total >= 1 && done <= total, "progress {done}/{total} must be coherent");

    // per-request override beats the default; the result is a normal report
    let relaxed = request(
        server.addr(),
        "POST",
        "/v1/analyze?points=12&deadline_ms=60000",
        body.as_bytes(),
    );
    assert_eq!(relaxed.status, 200);
    assert!(!json(&relaxed)["results"].as_array().unwrap().is_empty());

    // a timed-out sweep must not have poisoned the cache: the same content
    // served fresh equals a repeat (cache-hit) request byte for byte
    let repeat = request(
        server.addr(),
        "POST",
        "/v1/analyze?points=12&deadline_ms=60000",
        body.as_bytes(),
    );
    assert_eq!(repeat.status, 200);
    assert_eq!(relaxed.body, repeat.body, "cache hit must be byte-identical");

    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    assert!(health["jobs"]["cancelled"].as_u64().unwrap() >= 1);
    server.stop();
}

#[test]
fn deadline_ms_zero_and_malformed_values() {
    let server = start(|c| c.default_deadline_ms = 1);
    let body = trace(6, 150, 40);
    // deadline_ms=0 disables the server-wide default entirely
    let unlimited =
        request(server.addr(), "POST", "/v1/analyze?points=8&deadline_ms=0", body.as_bytes());
    assert_eq!(unlimited.status, 200);
    let bad = request(
        server.addr(),
        "POST",
        "/v1/analyze?points=8&deadline_ms=soon",
        body.as_bytes(),
    );
    assert_eq!(bad.status, 400);
    server.stop();
}

#[test]
fn health_reports_lifecycle_counters() {
    let server = start(|_| {});
    let body = trace(5, 120, 30);
    assert_eq!(
        request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes()).status,
        200
    );
    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    let jobs = &health["jobs"];
    assert_eq!(jobs["executed"].as_u64(), Some(1));
    assert_eq!(jobs["completed"].as_u64(), Some(1));
    assert_eq!(jobs["cancelled"].as_u64(), Some(0));
    assert_eq!(jobs["panicked"].as_u64(), Some(0));
    assert_eq!(jobs["deadline_rejected"].as_u64(), Some(0));
    assert!(jobs["ewma_job_secs"].as_f64().unwrap() > 0.0);
    assert_eq!(health["draining"].as_bool(), Some(false));
    server.stop();
}

/// After `drain`, in-flight results were allowed to finish and new
/// connections are refused with `503 + Retry-After` (lame-duck mode).
#[test]
fn drain_completes_work_then_goes_lame_duck() {
    let server = start(|_| {});
    let body = trace(6, 150, 40);
    assert_eq!(
        request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes()).status,
        200
    );
    let stats = server.drain(Duration::from_secs(30));
    assert_eq!(stats.queued, 0);
    assert_eq!(stats.running, 0);
    assert_eq!(stats.completed, 1);

    // the lame-duck 503 is written as soon as the connection is accepted,
    // possibly before our request bytes land -- write best-effort, then read
    let stream = TcpStream::connect(server.addr()).expect("connect");
    let mut writer = stream.try_clone().expect("clone");
    let _ = writer.write_all(b"GET /v1/health HTTP/1.1\r\nContent-Length: 0\r\n\r\n");
    let refused = read_response(&mut BufReader::new(stream));
    assert_eq!(refused.status, 503);
    assert!(refused.retry_after.unwrap_or(0) >= 1, "lame-duck 503 must carry Retry-After");
    server.stop();
}

/// The value of a sample line in a Prometheus scrape. `name` includes the
/// label set for labelled families (`foo{a="b"}`).
fn metric_sample(text: &str, name: &str) -> f64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not in scrape"))
        .parse()
        .expect("numeric sample")
}

fn scrape_metrics(addr: SocketAddr) -> String {
    let response = request(addr, "GET", "/v1/metrics", b"");
    assert_eq!(response.status, 200);
    assert_eq!(
        response.content_type.as_deref(),
        Some("text/plain; version=0.0.4; charset=utf-8"),
        "metrics must be Prometheus text, not JSON"
    );
    String::from_utf8(response.body).expect("metrics utf8")
}

/// Polls the scrape until `name` reaches at least `want` — request counters
/// are bumped on the connection thread just *after* the response bytes go
/// out, so an immediate re-scrape can race the previous request's count.
fn await_metric_at_least(addr: SocketAddr, name: &str, want: f64) -> f64 {
    for _ in 0..200 {
        let got = metric_sample(&scrape_metrics(addr), name);
        if got >= want {
            return got;
        }
        std::thread::sleep(Duration::from_millis(5));
    }
    panic!("metric {name} never reached {want}");
}

#[test]
fn metrics_exposition_is_wellformed() {
    let server = start(|_| {});
    let body = trace(5, 120, 30);
    assert_eq!(
        request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes()).status,
        200
    );
    let text = scrape_metrics(server.addr());
    // every family the crate documents is present from the first scrape
    for family in [
        "saturn_requests_total",
        "saturn_queue_depth",
        "saturn_cache_bytes",
        "saturn_cache_entries",
        "saturn_cache_hits_total",
        "saturn_cache_misses_total",
        "saturn_cache_evictions_total",
        "saturn_jobs_executed_total",
        "saturn_jobs_completed_total",
        "saturn_jobs_cancelled_total",
        "saturn_jobs_panicked_total",
        "saturn_jobs_coalesced_total",
        "saturn_jobs_rejected_total",
        "saturn_jobs_deadline_rejected_total",
        "saturn_shard_queue_depth",
        "saturn_shard_ewma_job_seconds",
        "saturn_shard_jobs_executed_total",
        "saturn_shard_jobs_completed_total",
        "saturn_shard_jobs_cancelled_total",
        "saturn_shard_jobs_panicked_total",
        "saturn_shard_jobs_coalesced_total",
        "saturn_shard_jobs_rejected_total",
        "saturn_shard_jobs_deadline_rejected_total",
        "saturn_executor_restarts_total",
        "saturn_sweep_tiles_total",
        "saturn_sweep_scales_total",
        "saturn_dp_trips_total",
        "saturn_dp_traversals_total",
        "saturn_dp_chain_offers_total",
        "saturn_dp_snap_entries_total",
        "saturn_dp_degree1_steps_total",
        "saturn_stream_sessions_open",
        "saturn_stream_sessions_opened_total",
        "saturn_stream_sessions_expired_total",
        "saturn_stream_events_appended_total",
        "saturn_stream_refreshes_total",
        "saturn_stream_scales_reused_total",
        "saturn_stream_tiles_skipped_total",
        "saturn_stream_suffix_windows_rebuilt_total",
        "saturn_stream_stale_refreshes_total",
        "saturn_parse_seconds",
        "saturn_handle_seconds",
        "saturn_serialize_seconds",
        "saturn_request_seconds",
        "saturn_queue_wait_seconds",
        "saturn_sweep_seconds",
        "saturn_tile_seconds",
    ] {
        assert!(text.contains(&format!("# TYPE {family} ")), "missing family {family}");
    }
    // exposition shape: every line is `# HELP`, `# TYPE`, or `name[{labels}] value`
    for line in text.lines() {
        assert!(!line.is_empty(), "blank line in exposition");
        if line.starts_with("# HELP ") || line.starts_with("# TYPE ") {
            continue;
        }
        let (name, value) = line.rsplit_once(' ').expect("sample line");
        assert!(!name.is_empty());
        assert!(value.parse::<f64>().is_ok(), "unparsable value in `{line}`");
    }
    server.stop();
}

/// One cold analyze + one cache hit: request counters move, the sweep
/// aggregates fill in, and every number `/v1/health` reports matches the
/// scrape exactly — they are the same atomics.
#[test]
fn metrics_count_requests_and_agree_with_health() {
    let server = start(|_| {});
    let addr = server.addr();
    let body = trace(6, 150, 40);
    assert_eq!(request(addr, "POST", "/v1/analyze?points=8", body.as_bytes()).status, 200);
    assert_eq!(request(addr, "POST", "/v1/analyze?points=8", body.as_bytes()).status, 200);
    let analyze = await_metric_at_least(
        addr,
        "saturn_requests_total{route=\"analyze\",status=\"2xx\"}",
        2.0,
    );
    assert_eq!(analyze, 2.0, "exactly two analyze requests");

    let text = scrape_metrics(addr);
    // one executed job (the second request hit the cache), sealed end to end
    assert_eq!(metric_sample(&text, "saturn_jobs_executed_total"), 1.0);
    assert_eq!(metric_sample(&text, "saturn_queue_wait_seconds_count"), 1.0);
    assert_eq!(metric_sample(&text, "saturn_sweep_seconds_count"), 1.0);
    // the sweep decomposed into at least one tile per scale, and the DP
    // aggregates flowed up from the engines
    let scales = metric_sample(&text, "saturn_sweep_scales_total");
    let tiles = metric_sample(&text, "saturn_sweep_tiles_total");
    assert!(scales >= 1.0, "at least one scale analyzed");
    assert!(tiles >= scales, "tiles cover scales");
    assert_eq!(metric_sample(&text, "saturn_tile_seconds_count"), tiles);
    assert!(metric_sample(&text, "saturn_dp_trips_total") > 0.0);
    assert!(metric_sample(&text, "saturn_dp_traversals_total") > 0.0);

    // health and metrics can never disagree: same atomics, read twice
    let health = json(&request(addr, "GET", "/v1/health", b""));
    let text = scrape_metrics(addr);
    let cache = &health["cache"];
    assert_eq!(
        cache["hits"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_cache_hits_total")
    );
    assert_eq!(
        cache["misses"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_cache_misses_total")
    );
    assert_eq!(
        cache["bytes"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_cache_bytes")
    );
    assert_eq!(
        cache["entries"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_cache_entries")
    );
    let jobs = &health["jobs"];
    assert_eq!(
        jobs["executed"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_jobs_executed_total")
    );
    assert_eq!(
        jobs["completed"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_jobs_completed_total")
    );
    assert_eq!(
        jobs["queued"].as_u64().unwrap() as f64,
        metric_sample(&text, "saturn_queue_depth")
    );
    server.stop();
}

/// With `--executors 3`, `/v1/health` grows a per-shard array whose
/// counters sum exactly to the aggregates (same atomics, partitioned),
/// and the scrape's shard-labeled families tell the same story.
#[test]
fn sharded_health_sums_to_the_aggregate_counters() {
    let server = start(|c| c.executors = 3);
    let addr = server.addr();
    let body = trace(6, 150, 40);
    // distinct points → distinct fingerprints → a spread over the shards,
    // plus one cache hit that touches no shard at all
    for points in [6, 7, 8, 9] {
        let target = format!("/v1/analyze?points={points}");
        assert_eq!(request(addr, "POST", &target, body.as_bytes()).status, 200);
    }
    assert_eq!(request(addr, "POST", "/v1/analyze?points=6", body.as_bytes()).status, 200);

    let health = json(&request(addr, "GET", "/v1/health", b""));
    let jobs = &health["jobs"];
    assert_eq!(jobs["executors"].as_u64(), Some(3));
    assert_eq!(jobs["executed"].as_u64(), Some(4));
    let shards = jobs["shards"].as_array().expect("per-shard array");
    assert_eq!(shards.len(), 3);
    for key in [
        "queued",
        "running",
        "executed",
        "completed",
        "cancelled",
        "panicked",
        "coalesced",
        "rejected",
        "deadline_rejected",
    ] {
        let sum: u64 = shards.iter().map(|s| s[key].as_u64().unwrap()).sum();
        assert_eq!(
            sum,
            jobs[key].as_u64().unwrap(),
            "per-shard `{key}` must sum to the aggregate"
        );
    }
    let restarts: u64 = shards.iter().map(|s| s["restarts"].as_u64().unwrap()).sum();
    assert_eq!(restarts, jobs["executor_restarts"].as_u64().unwrap());

    // the scrape partitions identically: shard-labeled samples sum to the
    // aggregate family
    let text = scrape_metrics(addr);
    let scraped: f64 = (0..3)
        .map(|shard| {
            metric_sample(
                &text,
                &format!("saturn_shard_jobs_executed_total{{shard=\"{shard}\"}}"),
            )
        })
        .sum();
    assert_eq!(scraped, metric_sample(&text, "saturn_jobs_executed_total"));
    server.stop();
}

/// The acceptance invariant: the executor count is an execution knob, so
/// a cold sweep returns byte-identical reports at `--executors 1`, `2`,
/// and `4` (caching disabled — every run is genuinely cold).
#[test]
fn executor_count_never_changes_report_bytes() {
    let body = trace(8, 220, 30);
    let run = |executors: usize| -> Vec<u8> {
        let server = start(|c| {
            c.executors = executors;
            c.cache_bytes = 0;
            c.threads = 4;
        });
        let response = request(server.addr(), "POST", "/v1/analyze?points=10", body.as_bytes());
        assert_eq!(response.status, 200, "--executors {executors}");
        server.stop();
        response.body
    };
    let reference = run(1);
    for executors in [2, 4] {
        assert_eq!(
            reference,
            run(executors),
            "--executors {executors} must not change report bytes"
        );
    }
}

#[test]
fn metrics_rejects_wrong_method_and_counts_errors() {
    let server = start(|_| {});
    let addr = server.addr();
    assert_eq!(request(addr, "POST", "/v1/metrics", b"").status, 405);
    assert_eq!(request(addr, "GET", "/nope", b"").status, 404);
    await_metric_at_least(addr, "saturn_requests_total{route=\"metrics\",status=\"4xx\"}", 1.0);
    await_metric_at_least(addr, "saturn_requests_total{route=\"other\",status=\"4xx\"}", 1.0);
    server.stop();
}

/// A unique, clean temp directory for one disk-tier test.
fn disk_dir(name: &str) -> std::path::PathBuf {
    let dir =
        std::env::temp_dir().join(format!("saturn-integration-{}-{name}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn warm_restart_serves_byte_identical_reports_from_disk() {
    let dir = disk_dir("warm-restart");
    let body = trace(6, 240, 35);
    let target = "/v1/analyze?points=10";
    let cold = {
        let server = start(|c| {
            c.cache_dir = Some(dir.clone());
            c.cache_disk_bytes = 8 << 20;
        });
        let cold = request(server.addr(), "POST", target, body.as_bytes());
        assert_eq!(cold.status, 200);
        await_metric_at_least(server.addr(), "saturn_cache_disk_writes_total", 1.0);
        // drain flushes pending spills before the server goes away
        server.drain(Duration::from_secs(5));
        server.stop();
        cold.body
    };
    // A fresh process-equivalent: new server, cold memory, same --cache-dir.
    let server = start(|c| {
        c.cache_dir = Some(dir.clone());
        c.cache_disk_bytes = 8 << 20;
    });
    let warm = request(server.addr(), "POST", target, body.as_bytes());
    assert_eq!(warm.status, 200);
    assert_eq!(warm.body, cold, "disk-served report must be byte-identical");
    let text = scrape_metrics(server.addr());
    assert!(metric_sample(&text, "saturn_cache_disk_hits_total") >= 1.0);
    assert_eq!(metric_sample(&text, "saturn_cache_disk_corrupt_total"), 0.0);
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_only_cache_serves_repeats_without_a_memory_tier() {
    let dir = disk_dir("disk-only");
    let server = start(|c| {
        c.cache_bytes = 0; // memory tier disabled entirely
        c.cache_dir = Some(dir.clone());
        c.cache_disk_bytes = 8 << 20;
    });
    let body = trace(5, 180, 40);
    let first = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(first.status, 200);
    await_metric_at_least(server.addr(), "saturn_cache_disk_writes_total", 1.0);
    let second = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body, "disk hit must serve the cold bytes");
    let text = scrape_metrics(server.addr());
    assert!(metric_sample(&text, "saturn_cache_disk_hits_total") >= 1.0);
    assert_eq!(metric_sample(&text, "saturn_cache_entries"), 0.0, "no memory tier");
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn disk_write_errors_degrade_to_memory_only_without_failing_requests() {
    let dir = disk_dir("degrade");
    let server = start(|c| {
        c.cache_dir = Some(dir.clone());
        c.cache_disk_bytes = 8 << 20;
        c.faults =
            Some(Arc::new(saturn_server::FaultPlan::parse("disk_write_err:1").expect("plan")));
    });
    let body = trace(5, 160, 30);
    let first = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(first.status, 200, "a failing disk must never fail a request");
    await_metric_at_least(server.addr(), "saturn_cache_disk_errors_total", 1.0);
    let second = request(server.addr(), "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(second.status, 200);
    assert_eq!(second.body, first.body, "memory tier still serves identically");
    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    assert_eq!(health["cache_disk"]["degraded"].as_bool(), Some(true));
    assert!(health["cache_disk"]["errors"].as_u64().unwrap_or(0) >= 1);
    assert_eq!(
        metric_sample(&scrape_metrics(server.addr()), "saturn_cache_disk_writes_total"),
        0.0
    );
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn health_reports_disk_tier_fields_only_when_configured() {
    let without = start(|_| {});
    let health = json(&request(without.addr(), "GET", "/v1/health", b""));
    assert!(health["cache_disk"].is_null(), "no disk tier ⇒ no cache_disk object");
    without.stop();

    let dir = disk_dir("health");
    let server = start(|c| {
        c.cache_dir = Some(dir.clone());
        c.cache_disk_bytes = 4 << 20;
    });
    let health = json(&request(server.addr(), "GET", "/v1/health", b""));
    let disk = &health["cache_disk"];
    assert_eq!(disk["capacity_bytes"].as_u64(), Some(4 << 20));
    assert_eq!(disk["degraded"].as_bool(), Some(false));
    for field in
        ["entries", "bytes", "hits", "misses", "writes", "evictions", "corrupt", "errors"]
    {
        assert!(disk[field].as_u64().is_some(), "cache_disk.{field} missing");
    }
    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}

/// Asserts one failure response conforms to the error envelope:
/// `{"error": {"code", "message", "retryable"}}` with the code from the
/// documented registry and `retryable` matching the status semantics.
fn assert_envelope(response: &Response, status: u16, code: &str) {
    assert_eq!(response.status, status, "expected {status} {code}");
    let v = json(response);
    let error = &v["error"];
    assert_eq!(error["code"].as_str(), Some(code), "status {status}");
    assert!(!error["message"].as_str().expect("message").is_empty(), "status {status}");
    assert_eq!(
        error["retryable"].as_bool().expect("retryable"),
        matches!(status, 408 | 500 | 503 | 504),
        "status {status}: retryable must follow the status class"
    );
}

/// Every documented failure status, produced for real over the wire, must
/// carry the structured envelope — no route or layer may emit a bespoke
/// error shape.
#[test]
fn every_error_status_conforms_to_the_envelope_schema() {
    let server = start(|c| {
        c.max_body_bytes = 512;
        c.stream_ttl = Duration::ZERO; // sessions expire on the next request
    });
    let addr = server.addr();
    // allocate a session id, then let the TTL reap it for the 410
    let created = request(addr, "POST", "/v1/streams?t_begin=0&t_end=100", b"a b 1\n");
    assert_eq!(created.status, 201);
    let sid = json(&created)["stream"].as_u64().expect("stream id");
    std::thread::sleep(Duration::from_millis(5));
    let big = trace(10, 200, 10);
    assert!(big.len() > 512);
    for (response, status, code) in [
        (request(addr, "GET", "/nope", b""), 404, "not_found"),
        (request(addr, "GET", "/v1/analyze", b""), 405, "method_not_allowed"),
        (request(addr, "GET", "/v1/streams", b""), 405, "method_not_allowed"),
        (request(addr, "POST", "/v1/analyze", b"not a trace"), 400, "bad_request"),
        (request(addr, "POST", "/v1/analyze?points=x", b"a b 1\na c 2\n"), 400, "bad_request"),
        (request(addr, "POST", "/v1/analyze", big.as_bytes()), 413, "payload_too_large"),
        (request(addr, "POST", "/v1/streams?t_begin=9&t_end=1", b""), 400, "bad_request"),
        (request(addr, "POST", "/v1/streams", b""), 400, "bad_request"),
        (request(addr, "POST", &format!("/v1/streams/{sid}/events"), b"a b 1\n"), 410, "gone"),
        (request(addr, "POST", "/v1/streams/no/events", b""), 404, "not_found"),
        (request(addr, "POST", "/v1/streams/99999/events", b""), 404, "not_found"),
    ] {
        assert_envelope(&response, status, code);
    }
    server.stop();

    // backpressure and deadline failures carry the envelope too
    let tight = start(|c| c.queue_depth = 0);
    let refused =
        request(tight.addr(), "POST", "/v1/analyze?points=8", trace(5, 100, 20).as_bytes());
    assert_envelope(&refused, 503, "queue_full");
    tight.stop();
    let slow = start(|c| c.default_deadline_ms = 1);
    let expired =
        request(slow.addr(), "POST", "/v1/analyze?points=12", trace(10, 400, 30).as_bytes());
    assert_envelope(&expired, 504, "deadline_exceeded");
    slow.stop();

    // the executor failure path emits the registered `panicked` code
    let armed = start(|c| {
        c.faults =
            Some(Arc::new(saturn_server::FaultPlan::parse("panic:analyze:1").expect("plan")));
    });
    let panicked =
        request(armed.addr(), "POST", "/v1/analyze?points=8", trace(5, 100, 20).as_bytes());
    assert_envelope(&panicked, 500, "panicked");
    armed.stop();
}

/// The tentpole acceptance test: a session grown by repeated appends and
/// re-analyzed incrementally returns, at every step, byte-for-byte the
/// report `/v1/analyze` computes from scratch on the concatenated trace.
/// Caching is disabled so both sides genuinely compute.
#[test]
fn streaming_refresh_is_byte_identical_to_scratch_analyze() {
    let server = start(|c| {
        c.cache_bytes = 0;
        c.threads = 2;
    });
    let addr = server.addr();
    // events at both period endpoints, so the scratch run's observed
    // period equals the session's pinned [0, 2000] and fingerprints align
    let mut base = String::from("a z 0\na z 2000\n");
    for i in 0..120i64 {
        base.push_str(&format!("n{} n{} {}\n", i % 6, (i + 1) % 6, (i * 12) % 1500));
    }
    let batches: Vec<String> = (0..2)
        .map(|round| {
            (0..40i64)
                .map(|i| {
                    format!(
                        "m{} m{} {}\n",
                        i % 4,
                        (i + 1) % 4,
                        1500 + round * 250 + (i * 6) % 250
                    )
                })
                .collect()
        })
        .collect();

    let created =
        request(addr, "POST", "/v1/streams?t_begin=0&t_end=2000&directed=1", base.as_bytes());
    assert_eq!(created.status, 201);
    let v = json(&created);
    let sid = v["stream"].as_u64().expect("stream id");
    assert_eq!(v["events"].as_u64(), Some(122));
    assert!(v["ttl_secs"].as_u64().unwrap() >= 1);

    let mut concatenated = base.clone();
    let mut refreshed = Vec::new();
    for (round, batch) in std::iter::once(None).chain(batches.iter().map(Some)).enumerate() {
        if let Some(batch) = batch {
            let appended =
                request(addr, "POST", &format!("/v1/streams/{sid}/events"), batch.as_bytes());
            assert_eq!(appended.status, 200, "round {round}");
            assert_eq!(json(&appended)["appended"].as_u64(), Some(40));
            concatenated.push_str(batch);
        }
        let refresh = request(
            addr,
            "POST",
            &format!("/v1/streams/{sid}/analyze?points=10&directed=1"),
            b"",
        );
        assert_eq!(refresh.status, 200, "round {round}");
        let scratch =
            request(addr, "POST", "/v1/analyze?points=10&directed=1", concatenated.as_bytes());
        assert_eq!(scratch.status, 200, "round {round}");
        assert_eq!(
            refresh.body, scratch.body,
            "round {round}: incremental refresh must be byte-identical to scratch"
        );
        refreshed.push(refresh.body);
    }
    let last: serde_json::Value =
        serde_json::from_slice(refreshed.last().unwrap()).expect("report JSON");
    assert!(!last["results"].as_array().unwrap().is_empty());

    // a clean re-refresh (no append in between) serves every scale from
    // the session's sweep cache and still matches
    let again =
        request(addr, "POST", &format!("/v1/streams/{sid}/analyze?points=10&directed=1"), b"");
    assert_eq!(again.status, 200);
    assert_eq!(&again.body, refreshed.last().unwrap());

    // the incremental machinery demonstrably ran: dirty refreshes spliced
    // suffix windows, the clean one reused scales and skipped DP tiles
    let text = scrape_metrics(addr);
    assert!(metric_sample(&text, "saturn_stream_refreshes_total") >= 4.0);
    assert!(metric_sample(&text, "saturn_stream_suffix_windows_rebuilt_total") >= 1.0);
    assert!(metric_sample(&text, "saturn_stream_scales_reused_total") >= 1.0);
    assert!(metric_sample(&text, "saturn_stream_tiles_skipped_total") >= 1.0);
    assert!(metric_sample(&text, "saturn_stream_events_appended_total") >= 202.0);

    let health = json(&request(addr, "GET", "/v1/health", b""));
    assert_eq!(health["streams"]["open"].as_u64(), Some(1));
    assert!(health["streams"]["ttl_secs"].as_u64().unwrap() >= 1);
    server.stop();
}

/// Session-side failure semantics: required creation parameters, period
/// fencing with all-or-nothing batches, empty-session analyze, unknown
/// actions, and the session limit's `stream_limit` 503.
#[test]
fn stream_sessions_enforce_period_batches_and_limits() {
    let server = start(|c| c.max_streams = 1);
    let addr = server.addr();
    assert_envelope(&request(addr, "POST", "/v1/streams?t_begin=0", b""), 400, "bad_request");

    let created = request(addr, "POST", "/v1/streams?t_begin=0&t_end=1000", b"");
    assert_eq!(created.status, 201);
    let v = json(&created);
    let sid = v["stream"].as_u64().expect("stream id");
    assert_eq!(v["events"].as_u64(), Some(0));

    // an empty session has nothing to analyze
    let empty = request(addr, "POST", &format!("/v1/streams/{sid}/analyze"), b"");
    assert_envelope(&empty, 400, "bad_request");

    // a batch with one out-of-period event commits nothing...
    let rejected =
        request(addr, "POST", &format!("/v1/streams/{sid}/events"), b"a b 10\na b 5000\n");
    assert_envelope(&rejected, 400, "bad_request");
    assert!(json(&rejected)["error"]["message"].as_str().unwrap().contains("study period"));
    // ...so the next append starts from zero events
    let accepted =
        request(addr, "POST", &format!("/v1/streams/{sid}/events"), b"a b 10\nb c 20\n");
    assert_eq!(accepted.status, 200);
    assert_eq!(json(&accepted)["appended"].as_u64(), Some(2));
    assert_eq!(json(&accepted)["events"].as_u64(), Some(2));

    // unknown session action
    let unknown = request(addr, "POST", &format!("/v1/streams/{sid}/nope"), b"");
    assert_envelope(&unknown, 404, "not_found");

    // the session limit answers with its own 503 code and a retry hint
    let refused = request(addr, "POST", "/v1/streams?t_begin=0&t_end=10", b"");
    assert_envelope(&refused, 503, "stream_limit");
    assert!(refused.retry_after.unwrap_or(0) >= 1, "stream_limit 503 carries Retry-After");
    server.stop();
}

/// With caching on, a refresh and a scratch analyze of the same
/// concatenated trace are the same artifact: they share one cache entry,
/// whichever side computes first.
#[test]
fn streams_share_the_report_cache_with_scratch_analyze() {
    let server = start(|_| {});
    let addr = server.addr();
    let body = trace(6, 180, 10);
    let t_end = json(&request(addr, "POST", "/v1/stats", body.as_bytes()))["t_end"]
        .as_i64()
        .expect("t_end");
    let created =
        request(addr, "POST", &format!("/v1/streams?t_begin=0&t_end={t_end}"), body.as_bytes());
    assert_eq!(created.status, 201);
    let sid = json(&created)["stream"].as_u64().expect("stream id");

    let refresh = request(addr, "POST", &format!("/v1/streams/{sid}/analyze?points=8"), b"");
    assert_eq!(refresh.status, 200);
    let hits_before =
        json(&request(addr, "GET", "/v1/health", b""))["cache"]["hits"].as_u64().unwrap();
    let scratch = request(addr, "POST", "/v1/analyze?points=8", body.as_bytes());
    assert_eq!(scratch.status, 200);
    assert_eq!(refresh.body, scratch.body, "shared cache entry must serve both");
    let hits_after =
        json(&request(addr, "GET", "/v1/health", b""))["cache"]["hits"].as_u64().unwrap();
    assert_eq!(hits_after, hits_before + 1, "the scratch analyze must hit the refresh's entry");
    server.stop();
}

#[test]
fn bind_fails_fast_on_unwritable_cache_dir() {
    // A regular file where the directory should go: create_dir_all fails.
    let blocker =
        std::env::temp_dir().join(format!("saturn-integration-{}-blocker", std::process::id()));
    std::fs::write(&blocker, b"not a dir").expect("blocker");
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(blocker.join("cache")),
        ..ServerConfig::default()
    };
    let err = Server::bind(&config).err().expect("bind must fail fast");
    assert!(err.to_string().contains("cache dir"), "error names the cache dir: {err}");
    let _ = std::fs::remove_file(&blocker);
}
