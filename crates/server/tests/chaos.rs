//! Fault-injection chaos test: a mixed workload against a server armed
//! with a [`FaultPlan`] (injected panics, slowdowns, and cancel races)
//! plus misbehaving clients (mid-body disconnects and stalls).
//!
//! The properties under test are the lifecycle invariants from the
//! request-lifecycle work, not any particular success rate:
//!
//! * the server never hangs: every well-formed request gets a complete
//!   response with a status from the documented set
//! * a fault never corrupts state: after the storm, a cold sweep and its
//!   cache hit are byte-identical, and the job queue is empty
//! * drain under load completes within its budget and leaves coherent
//!   counters

use saturn_server::{FaultPlan, Server, ServerConfig};
use std::io::{BufRead, BufReader, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::Duration;

/// Statuses a client may legitimately observe under chaos: success,
/// client error, request timeout, injected-panic 500, backpressure 503,
/// and deadline/cancellation 504.
const ALLOWED: &[u16] = &[200, 400, 408, 500, 503, 504];

fn start_chaotic() -> saturn_server::ServerHandle {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        cache_bytes: 8 << 20,
        queue_depth: 32,
        max_connections: 64,
        read_timeout: Duration::from_millis(300),
        // no `parse` faults: a panic in a connection thread drops the
        // socket without a response, which would make "every request gets
        // a complete reply" unobservable for well-behaved clients
        faults: Some(Arc::new(
            FaultPlan::parse("panic:analyze:0.15,slow:job:15ms,cancel_race:0.2")
                .expect("fault plan"),
        )),
        ..ServerConfig::default()
    };
    Server::bind(&config).expect("bind").spawn().expect("spawn")
}

fn trace(nodes: u32, events: i64, gap: i64) -> String {
    let mut text = String::new();
    for i in 0..events {
        text.push_str(&format!(
            "n{} n{} {}\n",
            i % nodes as i64,
            (i + 1) % nodes as i64,
            i * gap + (i % 3)
        ));
    }
    text
}

struct Response {
    status: u16,
    body: Vec<u8>,
}

/// One request on a fresh connection; panics unless the server writes a
/// complete, well-formed response (the "never hangs, never truncates"
/// property — socket timeouts below turn a hang into a test failure).
fn request(addr: SocketAddr, method: &str, target: &str, body: &[u8]) -> Response {
    let stream = TcpStream::connect(addr).expect("connect");
    stream.set_read_timeout(Some(Duration::from_secs(60))).expect("timeout");
    let mut writer = stream.try_clone().expect("clone");
    // best-effort writes: a lame-duck server answers 503 and closes before
    // reading, so the write may hit a broken pipe while a complete response
    // is already in flight -- read_response below is the real assertion
    let head = format!(
        "{method} {target} HTTP/1.1\r\nHost: saturn\r\nContent-Length: {}\r\n\r\n",
        body.len()
    );
    let _ = writer.write_all(head.as_bytes());
    let _ = writer.write_all(body);
    read_response(&mut BufReader::new(stream))
}

fn read_response<R: BufRead>(reader: &mut R) -> Response {
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 = status_line
        .split_whitespace()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or_else(|| panic!("bad status line {status_line:?}"));
    let mut content_length = 0usize;
    loop {
        let mut line = String::new();
        reader.read_line(&mut line).expect("header line");
        if line.trim_end().is_empty() {
            break;
        }
        if let Some(v) = line.to_ascii_lowercase().trim_end().strip_prefix("content-length:") {
            content_length = v.trim().parse().expect("content length");
        }
    }
    let mut body = vec![0u8; content_length];
    reader.read_exact(&mut body).expect("complete body");
    Response { status, body }
}

/// Scrapes `/v1/metrics` and returns the value of an unlabelled counter.
fn counter_sample(addr: SocketAddr, name: &str) -> u64 {
    let scrape = request(addr, "GET", "/v1/metrics", b"");
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).expect("metrics utf8");
    text.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not in scrape"))
        .parse::<f64>()
        .expect("numeric sample") as u64
}

/// Mixed storm: unique and repeated sweeps, tight deadlines, health polls,
/// plus clients that disconnect or stall mid-body. Every well-formed
/// request must complete with an allowed status, and the server must be
/// fully consistent afterwards.
#[test]
fn chaos_storm_never_hangs_or_corrupts_the_cache() {
    let server = start_chaotic();
    let addr = server.addr();

    let mut clients = Vec::new();
    for worker in 0..6u32 {
        clients.push(std::thread::spawn(move || {
            for round in 0..4u32 {
                match (worker + round) % 6 {
                    // unique body: a genuinely new sweep every time
                    0 | 1 => {
                        let body = trace(5 + worker, 120 + round as i64 * 7, 30);
                        let target = format!("/v1/analyze?points={}", 6 + round);
                        let r = request(addr, "POST", &target, body.as_bytes());
                        assert!(ALLOWED.contains(&r.status), "analyze got {}", r.status);
                    }
                    // shared body: exercises coalescing under faults
                    2 => {
                        let body = trace(6, 140, 25);
                        let r = request(addr, "POST", "/v1/analyze?points=8", body.as_bytes());
                        assert!(ALLOWED.contains(&r.status), "shared analyze got {}", r.status);
                    }
                    // hopeless deadline: admission reject or structured 504
                    // (or 200 if an earlier round already cached the body)
                    3 => {
                        let body = trace(7, 160, 20);
                        let r = request(
                            addr,
                            "POST",
                            "/v1/analyze?points=9&deadline_ms=1",
                            body.as_bytes(),
                        );
                        assert!(ALLOWED.contains(&r.status), "deadline got {}", r.status);
                    }
                    // rude client: half a body, then gone
                    4 => {
                        let mut stream = TcpStream::connect(addr).expect("connect");
                        let _ = stream.write_all(
                            b"POST /v1/stats HTTP/1.1\r\nContent-Length: 999\r\n\r\nn0 n1 5\n",
                        );
                        drop(stream);
                    }
                    // stalled client: half a body, then silence -> 408
                    _ => {
                        let stream = TcpStream::connect(addr).expect("connect");
                        stream
                            .set_read_timeout(Some(Duration::from_secs(60)))
                            .expect("timeout");
                        let mut writer = stream.try_clone().expect("clone");
                        writer
                            .write_all(
                                b"POST /v1/stats HTTP/1.1\r\nContent-Length: 99\r\n\r\nn0 n1 5\n",
                            )
                            .expect("partial body");
                        let r = read_response(&mut BufReader::new(stream));
                        assert_eq!(r.status, 408, "stall must time out, not hang");
                    }
                }
                let health = request(addr, "GET", "/v1/health", b"");
                assert_eq!(health.status, 200);
            }
        }));
    }
    for client in clients {
        client.join().expect("chaos client");
    }

    // post-storm consistency: a brand-new trace sweeps cold, then hits the
    // cache byte-identically -- no partial or corrupt entry survived.
    // injected faults may 500/504 the cold attempt; retry until it lands.
    let body = trace(9, 180, 35);
    let target = "/v1/analyze?points=11";
    let cold = (0..50)
        .map(|_| request(addr, "POST", target, body.as_bytes()))
        .find(|r| r.status == 200)
        .expect("a clean sweep must eventually succeed");
    // that it *hit* is checked against the server's own counters, not
    // inferred from response bytes or timing
    let hits_before = counter_sample(addr, "saturn_cache_hits_total");
    let misses_before = counter_sample(addr, "saturn_cache_misses_total");
    let cached = request(addr, "POST", target, body.as_bytes());
    assert_eq!(cached.status, 200);
    assert_eq!(cold.body, cached.body, "cache hit must be byte-identical to cold");
    assert_eq!(
        counter_sample(addr, "saturn_cache_hits_total"),
        hits_before + 1,
        "the repeat request must be an explicit cache hit"
    );
    assert_eq!(
        counter_sample(addr, "saturn_cache_misses_total"),
        misses_before,
        "the repeat request must not miss"
    );

    let health = request(addr, "GET", "/v1/health", b"");
    let text = String::from_utf8(health.body).expect("health utf8");
    assert!(text.contains("\"draining\": false"), "not draining: {text}");
    server.stop();
}

/// Sum of the shard-labeled `saturn_executor_restarts_total` samples.
fn restarts_total(addr: SocketAddr) -> u64 {
    let scrape = request(addr, "GET", "/v1/metrics", b"");
    assert_eq!(scrape.status, 200);
    let text = String::from_utf8(scrape.body).expect("metrics utf8");
    text.lines()
        .filter(|line| line.starts_with("saturn_executor_restarts_total{"))
        .map(|line| {
            line.rsplit_once(' ').expect("sample").1.parse::<f64>().expect("numeric") as u64
        })
        .sum()
}

/// The sharded storm: `--executors 4` with executor deaths and stalls
/// armed. Every request still completes with a documented status while
/// executors die underneath it, the supervisor's restarts are observable
/// in the scrape, and the post-storm cold-vs-hit byte identity holds.
#[test]
fn sharded_storm_restarts_executors_and_keeps_answering() {
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 4,
        executors: 4,
        stall_budget: Duration::from_millis(250),
        cache_bytes: 8 << 20,
        queue_depth: 32,
        max_connections: 64,
        read_timeout: Duration::from_millis(300),
        faults: Some(Arc::new(
            FaultPlan::parse(
                "executor_die:0.25,executor_stall:analyze:20ms,panic:analyze:0.1,cancel_race:0.1",
            )
            .expect("fault plan"),
        )),
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind").spawn().expect("spawn");
    let addr = server.addr();

    let mut clients = Vec::new();
    for worker in 0..6u32 {
        clients.push(std::thread::spawn(move || {
            for round in 0..4u32 {
                // unique bodies spread over the four shards; every request
                // must complete even while executors are dying under it
                let body = trace(5 + worker, 110 + round as i64 * 9, 28);
                let target = format!("/v1/analyze?points={}", 6 + (worker + round) % 4);
                let r = request(addr, "POST", &target, body.as_bytes());
                assert!(ALLOWED.contains(&r.status), "storm analyze got {}", r.status);
                let health = request(addr, "GET", "/v1/health", b"");
                assert_eq!(health.status, 200, "health must answer from healthy shards");
            }
        }));
    }
    for client in clients {
        client.join().expect("storm client");
    }

    // the supervisor was exercised: with die:0.25 armed the storm alone
    // almost surely killed an executor; feed a few more cold sweeps if the
    // deterministic draw sequence spared them all
    let mut extra = 0i64;
    while restarts_total(addr) == 0 && extra < 100 {
        let body = trace(4, 60 + extra, 17);
        let _ = request(addr, "POST", "/v1/analyze?points=6", body.as_bytes());
        extra += 1;
    }
    assert!(restarts_total(addr) > 0, "the storm must have restarted at least one executor");

    // post-storm consistency: a cold sweep (retried past injected faults)
    // then a byte-identical cache hit
    let body = trace(9, 170, 33);
    let target = "/v1/analyze?points=11";
    let cold = (0..50)
        .map(|_| request(addr, "POST", target, body.as_bytes()))
        .find(|r| r.status == 200)
        .expect("a clean sweep must eventually succeed");
    let hits_before = counter_sample(addr, "saturn_cache_hits_total");
    let cached = request(addr, "POST", target, body.as_bytes());
    assert_eq!(cached.status, 200);
    assert_eq!(cold.body, cached.body, "cache hit must be byte-identical to cold");
    assert_eq!(
        counter_sample(addr, "saturn_cache_hits_total"),
        hits_before + 1,
        "the repeat request must be an explicit cache hit"
    );
    server.stop();
}

/// Drain called while sweeps are still arriving: the handle's drain must
/// return within its budget with an empty queue, and later connections get
/// lame-duck 503s instead of hanging.
#[test]
fn drain_under_load_completes_within_budget() {
    let server = start_chaotic();
    let addr = server.addr();

    let feeders: Vec<_> = (0..4u32)
        .map(|worker| {
            std::thread::spawn(move || {
                for round in 0..3u32 {
                    let body = trace(5 + worker, 110 + round as i64 * 9, 28);
                    let stream = TcpStream::connect(addr);
                    if let Ok(stream) = stream {
                        stream
                            .set_read_timeout(Some(Duration::from_secs(60)))
                            .expect("timeout");
                        let mut writer = stream.try_clone().expect("clone");
                        let head = format!(
                            "POST /v1/analyze?points=7 HTTP/1.1\r\nHost: s\r\nContent-Length: {}\r\n\r\n",
                            body.len()
                        );
                        if writer.write_all(head.as_bytes()).is_ok()
                            && writer.write_all(body.as_bytes()).is_ok()
                        {
                            // the server may close mid-drain; any complete
                            // response must still be an allowed status
                            let reader = &mut BufReader::new(stream);
                            let mut status_line = String::new();
                            if reader.read_line(&mut status_line).is_ok()
                                && !status_line.is_empty()
                            {
                                let status: u16 = status_line
                                    .split_whitespace()
                                    .nth(1)
                                    .and_then(|s| s.parse().ok())
                                    .unwrap_or_else(|| {
                                        panic!("bad status line {status_line:?}")
                                    });
                                assert!(ALLOWED.contains(&status), "drain got {status}");
                            }
                        }
                    }
                }
            })
        })
        .collect();

    std::thread::sleep(Duration::from_millis(40));
    let started = std::time::Instant::now();
    let stats = server.drain(Duration::from_secs(20));
    assert!(started.elapsed() < Duration::from_secs(25), "drain blew its budget");
    assert_eq!(stats.queued, 0, "drain must leave the queue empty");
    assert_eq!(stats.running, 0, "drain must leave nothing running");

    for feeder in feeders {
        feeder.join().expect("feeder");
    }
    let refused = request(addr, "GET", "/v1/health", b"");
    assert_eq!(refused.status, 503, "lame-duck connections get 503");
    server.stop();
}

/// Disk-fault storm: a server with no memory tier at all (so every repeat
/// lookup really reads the disk) and every disk fault armed — write errors,
/// full disk, silent corruption, and slow I/O. The invariants: only
/// documented statuses, corrupt entries quarantined (counter observed), the
/// breaker degrades the tier to memory-only (error counter observed), and
/// no request ever fails because of the disk.
#[test]
fn disk_fault_storm_degrades_without_failing_requests() {
    let dir =
        std::env::temp_dir().join(format!("saturn-chaos-{}-disk-storm", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let config = ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        // memory tier off: repeats miss memory by construction, so every
        // revisit exercises the disk lookup / quarantine / breaker paths
        cache_bytes: 0,
        cache_dir: Some(dir.clone()),
        cache_disk_bytes: 8 << 20,
        queue_depth: 32,
        max_connections: 64,
        // moderate write-fault rates: high enough to trip the breaker
        // repeatedly, low enough that successful probes keep closing it so
        // the read path (where corruption is detected) stays reachable
        faults: Some(Arc::new(
            FaultPlan::parse(
                "seed:42,disk_write_err:0.25,disk_corrupt:0.5,disk_slow:1ms,disk_full:0.1",
            )
            .expect("fault plan"),
        )),
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).expect("bind").spawn().expect("spawn");
    let addr = server.addr();

    let mut clients = Vec::new();
    for worker in 0..4u32 {
        clients.push(std::thread::spawn(move || {
            for i in 0..12u32 {
                // a few distinct traces, revisited: misses, spills, disk
                // lookups, and corrupt-entry quarantines all interleave
                let body = trace(4 + (i % 3), 120, 25 + (worker as i64 % 2));
                let response = request(addr, "POST", "/v1/analyze?points=6", body.as_bytes());
                assert!(
                    ALLOWED.contains(&response.status),
                    "disk storm got {}",
                    response.status
                );
                assert_ne!(response.status, 500, "disk faults must never 500 a request");
            }
        }));
    }
    for client in clients {
        client.join().expect("storm client");
    }

    // Keep feeding cold sweeps and revisiting *older* ones (bounded) until
    // the armed faults have demonstrably fired: at least one quarantined
    // corruption and at least one breaker-tripping I/O error. Corruption is
    // only detectable on a later read of an already-spilled entry, so each
    // round walks back over earlier targets — by then written, possibly
    // corrupted, and (whenever the breaker is closed) actually read.
    let mut history: Vec<(String, String)> = Vec::new();
    let mut extra = 0u32;
    while (counter_sample(addr, "saturn_cache_disk_corrupt_total") == 0
        || counter_sample(addr, "saturn_cache_disk_errors_total") == 0)
        && extra < 200
    {
        let body = trace(3 + (extra % 5), 100 + (extra as i64 % 7) * 10, 20);
        let target = format!("/v1/analyze?points=6&seed={}", 1000 + extra);
        let response = request(addr, "POST", &target, body.as_bytes());
        assert!(ALLOWED.contains(&response.status));
        history.push((target, body));
        // revisit a few earlier entries: disk lookups over settled spills
        for back in [1usize, 3, 7] {
            if let Some((target, body)) =
                history.len().checked_sub(back + 1).map(|i| &history[i])
            {
                let revisit = request(addr, "POST", target, body.as_bytes());
                assert!(ALLOWED.contains(&revisit.status));
            }
        }
        extra += 1;
        std::thread::sleep(Duration::from_millis(10));
    }
    assert!(
        counter_sample(addr, "saturn_cache_disk_corrupt_total") >= 1,
        "corruption fault armed at 0.4 never quarantined an entry"
    );
    assert!(
        counter_sample(addr, "saturn_cache_disk_errors_total") >= 1,
        "write faults armed at 0.4+0.2 never tripped the breaker"
    );

    // After the storm the service is still coherent: a cold sweep and its
    // repeat are byte-identical (by body comparison — whether the repeat is
    // served from memory, disk, or recomputed is the tier's business).
    let body = trace(7, 150, 45);
    let cold = request(addr, "POST", "/v1/analyze?points=7", body.as_bytes());
    assert_eq!(cold.status, 200, "a healthy sweep must succeed after the storm");
    let repeat = request(addr, "POST", "/v1/analyze?points=7", body.as_bytes());
    assert_eq!(repeat.status, 200);
    assert_eq!(repeat.body, cold.body, "post-storm bytes diverged");

    server.stop();
    let _ = std::fs::remove_dir_all(&dir);
}
