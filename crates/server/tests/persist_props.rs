//! Property-based validation of the disk spill tier's on-disk codec, plus
//! the corruption mutation oracle: a valid entry round-trips exactly, and
//! **every** single-byte corruption of a valid file is detected — at the
//! codec level (decode errors) and at the tier level (quarantine, never
//! served).

use proptest::prelude::*;
use saturn_server::persist::{decode_entry, encode_entry, DiskTier, HEADER_LEN};
use saturn_server::Metrics;
use std::path::PathBuf;
use std::sync::Arc;
use std::time::Duration;

/// Arbitrary keys plus bodies spanning empty, word-aligned, and ragged
/// lengths (the checksum absorbs the body in padded 8-byte words, so the
/// chunk boundaries are where padding bugs would hide).
fn arb_entry() -> impl Strategy<Value = (u128, Vec<u8>)> {
    (any::<u64>(), any::<u64>(), proptest::collection::vec(any::<u8>(), 0..200))
        .prop_map(|(hi, lo, body)| (((hi as u128) << 64) | lo as u128, body))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// encode → decode is the identity on (key, body).
    #[test]
    fn codec_round_trips(entry in arb_entry()) {
        let (key, body) = entry;
        let blob = encode_entry(key, &body);
        prop_assert_eq!(blob.len(), HEADER_LEN + body.len());
        let (decoded_key, decoded_body) = decode_entry(&blob).unwrap();
        prop_assert_eq!(decoded_key, key);
        prop_assert_eq!(decoded_body, &body[..]);
    }

    /// The mutation oracle, exhaustively: flipping any single bit-pattern
    /// of any single byte of a valid file must make decoding fail. This is
    /// guaranteed by construction — every absorb step of the Fx digest is
    /// a bijection of hasher state, so one differing word always yields a
    /// differing checksum — and this test pins the guarantee.
    #[test]
    fn every_single_byte_corruption_is_detected(entry in arb_entry(), flip in 1u8..=255) {
        let (key, body) = entry;
        let blob = encode_entry(key, &body);
        for at in 0..blob.len() {
            let mut mutated = blob.clone();
            mutated[at] ^= flip;
            prop_assert!(
                decode_entry(&mutated).is_err(),
                "byte {} xor {:#04x} went undetected", at, flip
            );
        }
    }

    /// Truncating a valid file anywhere must fail decoding.
    #[test]
    fn every_truncation_is_detected(entry in arb_entry()) {
        let (key, body) = entry;
        let blob = encode_entry(key, &body);
        for len in 0..blob.len() {
            prop_assert!(decode_entry(&blob[..len]).is_err(), "truncation to {} accepted", len);
        }
    }
}

/// The tier-level oracle: corrupt one byte of a real spill file on disk;
/// the next lookup must quarantine it (miss + corrupt counter + file gone),
/// never serve mangled bytes. Exercises every byte of a small entry.
#[test]
fn tier_quarantines_every_single_byte_corruption() {
    let dir: PathBuf = std::env::temp_dir()
        .join(format!("saturn-persist-props-{}-oracle", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let metrics = Arc::new(Metrics::new());
    let tier = DiskTier::open(&dir, 1 << 20, Arc::clone(&metrics), None).unwrap();
    let key = 0x0123_4567_89ab_cdefu128;
    let body = "short but real report body";
    tier.enqueue(key, Arc::from(body));
    assert!(tier.flush(Duration::from_secs(5)));
    let path = tier.entry_path(key);
    let pristine = std::fs::read(&path).unwrap();
    for at in 0..pristine.len() {
        let mut mutated = pristine.clone();
        mutated[at] ^= 0x55;
        std::fs::write(&path, &mutated).unwrap();
        let corrupt_before = tier.stats().corrupt;
        assert_eq!(tier.lookup(key), None, "corrupt byte {at} was served");
        assert_eq!(tier.stats().corrupt, corrupt_before + 1, "byte {at} not quarantined");
        assert!(!path.exists(), "byte {at}: corrupt file not deleted");
        // restore for the next position: re-spill the pristine entry
        tier.enqueue(key, Arc::from(body));
        assert!(tier.flush(Duration::from_secs(5)));
    }
    assert_eq!(tier.stats().corrupt, pristine.len() as u64);
    let _ = std::fs::remove_dir_all(&dir);
}
