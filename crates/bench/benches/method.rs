//! End-to-end cost of the occupancy method: grid size, parallelism, and the
//! per-scale cost profile ("the most costly computations are the ones made
//! for small values of Δ" — Section 5).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saturn_core::{OccupancyMethod, SweepGrid, TargetSpec};
use saturn_synth::TimeUniform;
use saturn_trips::{occupancy_histogram, TargetSet};

fn workload() -> saturn_linkstream::LinkStream {
    TimeUniform { nodes: 30, links_per_pair: 8, span: 50_000, seed: 5 }.generate()
}

/// Full method vs grid density.
fn bench_method_grid(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("method_grid_points");
    group.sample_size(10);
    for points in [8usize, 16, 32] {
        group.bench_with_input(BenchmarkId::from_parameter(points), &points, |b, &p| {
            b.iter(|| {
                OccupancyMethod::new()
                    .grid(SweepGrid::Geometric { points: p })
                    .threads(1)
                    .refine(0, 0)
                    .run(&stream)
            })
        });
    }
    group.finish();
}

/// Thread scaling of the sweep.
fn bench_method_threads(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("method_threads");
    group.sample_size(10);
    for threads in [1usize, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| {
                OccupancyMethod::new()
                    .grid(SweepGrid::Geometric { points: 24 })
                    .threads(t)
                    .refine(0, 0)
                    .run(&stream)
            })
        });
    }
    group.finish();
}

/// Per-scale cost: fine Δ vs coarse Δ on the same stream (the fine end
/// carries more distinct edges M, hence more work).
fn bench_per_scale_cost(c: &mut Criterion) {
    let stream = workload();
    let span = stream.span() as u64;
    let mut group = c.benchmark_group("per_scale_cost");
    for (label, k) in [("fine", span), ("mid", span / 100), ("coarse", 4u64)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &k, |b, &k| {
            b.iter(|| occupancy_histogram(&stream, k, &TargetSet::all(30)))
        });
    }
    group.finish();
}

/// Exact all-pairs vs sampled destinations.
fn bench_target_sampling(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 100, links_per_pair: 4, span: 50_000, seed: 6 }.generate();
    let mut group = c.benchmark_group("target_sampling");
    group.sample_size(10);
    for (label, spec) in
        [("all_100", TargetSpec::All), ("sample_20", TargetSpec::Sample { size: 20, seed: 1 })]
    {
        group.bench_with_input(BenchmarkId::from_parameter(label), &spec, |b, spec| {
            b.iter(|| {
                OccupancyMethod::new()
                    .grid(SweepGrid::Geometric { points: 12 })
                    .targets(*spec)
                    .threads(1)
                    .refine(0, 0)
                    .run(&stream)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_method_grid,
    bench_method_threads,
    bench_per_scale_cost,
    bench_target_sampling
);
criterion_main!(benches);
