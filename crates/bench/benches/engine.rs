//! Micro-benchmarks of the computational substrates: the `O(nM)` backward
//! DP (the paper's Section 5 complexity claim), aggregation, and the exact
//! M-K distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use saturn_distrib::{mk_distance_to_uniform, WeightedDist};
use saturn_graphseries::GraphSeries;
use saturn_synth::TimeUniform;
use saturn_trips::{occupancy_histogram_on, TargetSet, Timeline};

/// DP cost vs n at fixed per-pair activity: the paper's O(nM) means cost per
/// edge grows linearly with n (M itself grows with n² here, so total is
/// ~n³ — the throughput metric below normalizes by n·M).
fn bench_dp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_nm_scaling");
    group.sample_size(10);
    for n in [20u32, 40, 80] {
        let stream = TimeUniform { nodes: n, links_per_pair: 6, span: 50_000, seed: 1 }
            .generate();
        let timeline = Timeline::aggregated(&stream, 2_000);
        let work = (n as u64) * timeline.total_edges() as u64; // n·M units
        group.throughput(Throughput::Elements(work));
        group.bench_with_input(BenchmarkId::from_parameter(n), &timeline, |b, t| {
            b.iter(|| occupancy_histogram_on(t, &TargetSet::all(n)))
        });
    }
    group.finish();
}

/// DP cost vs the number of windows K at fixed data: K only changes step
/// bookkeeping, so cost should stay nearly flat.
fn bench_dp_vs_k(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 8, span: 100_000, seed: 2 }.generate();
    let mut group = c.benchmark_group("dp_vs_k");
    group.sample_size(10);
    for k in [100u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let timeline = Timeline::aggregated(&stream, k);
            b.iter(|| occupancy_histogram_on(&timeline, &TargetSet::all(40)))
        });
    }
    group.finish();
}

/// Aggregation throughput (events/s) across window counts.
fn bench_aggregation(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 60, links_per_pair: 10, span: 100_000, seed: 3 }.generate();
    let mut group = c.benchmark_group("aggregation");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [10u64, 1_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| GraphSeries::aggregate(&stream, k))
        });
    }
    group.finish();
}

/// Exact M-K distance vs support size (closed-form segment integration).
fn bench_mk_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("mk_distance");
    for support in [100usize, 10_000, 100_000] {
        let dist = WeightedDist::from_pairs(
            (1..=support).map(|i| (i as f64 / support as f64, 1 + (i % 7) as u64)).collect(),
        );
        group.throughput(Throughput::Elements(support as u64));
        group.bench_with_input(BenchmarkId::from_parameter(support), &dist, |b, d| {
            b.iter(|| mk_distance_to_uniform(d))
        });
    }
    group.finish();
}

/// Exact-timeline (stream) trip enumeration, the Section 8 reference.
fn bench_stream_trips(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 10, span: 100_000, seed: 4 }.generate();
    c.bench_function("stream_minimal_trips", |b| {
        b.iter(|| {
            saturn_trips::stream_minimal_trips(&stream, &TargetSet::all(40), true)
        })
    });
}

criterion_group!(
    benches,
    bench_dp_scaling,
    bench_dp_vs_k,
    bench_aggregation,
    bench_mk_distance,
    bench_stream_trips
);
criterion_main!(benches);
