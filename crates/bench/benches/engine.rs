//! Micro-benchmarks of the computational substrates: the `O(nM)` backward
//! DP (the paper's Section 5 complexity claim), aggregation, and the exact
//! M-K distance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use saturn_distrib::{mk_distance_to_uniform, WeightedDist};
use saturn_graphseries::GraphSeries;
use saturn_synth::TimeUniform;
use saturn_trips::dp::{baseline, NullSink};
use saturn_trips::{
    earliest_arrival_dp_in, occupancy_histogram_on, DpOptions, EngineArena, EventView,
    TargetSet, Timeline,
};

/// DP cost vs n at fixed per-pair activity: the paper's O(nM) means cost per
/// edge grows linearly with n (M itself grows with n² here, so total is
/// ~n³ — the throughput metric below normalizes by n·M).
fn bench_dp_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("dp_nm_scaling");
    group.sample_size(10);
    for n in [20u32, 40, 80] {
        let stream =
            TimeUniform { nodes: n, links_per_pair: 6, span: 50_000, seed: 1 }.generate();
        let timeline = Timeline::aggregated(&stream, 2_000);
        let work = (n as u64) * timeline.total_edges() as u64; // n·M units
        group.throughput(Throughput::Elements(work));
        group.bench_with_input(BenchmarkId::from_parameter(n), &timeline, |b, t| {
            b.iter(|| occupancy_histogram_on(t, &TargetSet::all(n)))
        });
    }
    group.finish();
}

/// DP cost vs the number of windows K at fixed data: K only changes step
/// bookkeeping, so cost should stay nearly flat.
fn bench_dp_vs_k(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 8, span: 100_000, seed: 2 }.generate();
    let mut group = c.benchmark_group("dp_vs_k");
    group.sample_size(10);
    for k in [100u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            let timeline = Timeline::aggregated(&stream, k);
            b.iter(|| occupancy_histogram_on(&timeline, &TargetSet::all(40)))
        });
    }
    group.finish();
}

/// Aggregation throughput (events/s) across window counts.
fn bench_aggregation(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 60, links_per_pair: 10, span: 100_000, seed: 3 }.generate();
    let mut group = c.benchmark_group("aggregation");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [10u64, 1_000, 100_000] {
        group.bench_with_input(BenchmarkId::from_parameter(k), &k, |b, &k| {
            b.iter(|| GraphSeries::aggregate(&stream, k))
        });
    }
    group.finish();
}

/// Exact M-K distance vs support size (closed-form segment integration).
fn bench_mk_distance(c: &mut Criterion) {
    let mut group = c.benchmark_group("mk_distance");
    for support in [100usize, 10_000, 100_000] {
        let dist = WeightedDist::from_pairs(
            (1..=support).map(|i| (i as f64 / support as f64, 1 + (i % 7) as u64)).collect(),
        );
        group.throughput(Throughput::Elements(support as u64));
        group.bench_with_input(BenchmarkId::from_parameter(support), &dist, |b, d| {
            b.iter(|| mk_distance_to_uniform(d))
        });
    }
    group.finish();
}

/// A large sparse ring: temporal reachability per row stays far below `n`
/// for most of the backward sweep, which is where the frontier bitmap prunes
/// hardest (sparse contact networks — the paper's datasets — look like this,
/// not like the dense all-pairs `TimeUniform`).
fn sparse_ring(n: u32, reps: i64) -> saturn_linkstream::LinkStream {
    use saturn_linkstream::{Directedness, LinkStreamBuilder};
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for rep in 0..reps {
        for i in 0..n {
            b.add_indexed(i, (i + 1) % n, rep * 1000 + (i as i64 % 997));
        }
    }
    b.build().unwrap()
}

/// The headline comparison: the pre-rework engine (fresh tables, full-row
/// snapshots, O(ncols) chain scans) vs the frontier-pruned arena engine on
/// the same timelines — one dense workload (frontier ≈ baseline locality)
/// and one sparse workload (frontier prunes, ≥3× expected). The
/// `BENCH_sweep.json` emitter records the same ratios; this group isolates
/// the DP itself.
fn bench_baseline_vs_frontier(c: &mut Criterion) {
    let dense = TimeUniform { nodes: 60, links_per_pair: 6, span: 100_000, seed: 7 }.generate();
    let sparse = sparse_ring(600, 40);
    let workloads =
        [("dense60", &dense, TargetSet::all(60)), ("ring600", &sparse, TargetSet::all(600))];
    let mut group = c.benchmark_group("engine_baseline_vs_frontier");
    group.sample_size(10);
    for (label, stream, targets) in workloads {
        for k in [2_000u64, 20_000] {
            let timeline = Timeline::aggregated(stream, k);
            group.throughput(Throughput::Elements(timeline.total_edges() as u64));
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/baseline"), k),
                &timeline,
                |b, t| {
                    b.iter(|| {
                        baseline::earliest_arrival_dp(
                            t,
                            &targets,
                            &mut NullSink,
                            DpOptions::default(),
                        )
                    })
                },
            );
            group.bench_with_input(
                BenchmarkId::new(format!("{label}/frontier"), k),
                &timeline,
                |b, t| {
                    let mut arena = EngineArena::new();
                    b.iter(|| {
                        earliest_arrival_dp_in(
                            &mut arena,
                            t,
                            &targets,
                            &mut NullSink,
                            DpOptions::default(),
                        )
                    })
                },
            );
        }
    }
    group.finish();
}

/// The degree-1 snapshot bypass vs the general snapshot path, on the
/// workload it targets: `sparse_ring` at K = 100000, where every non-empty
/// window holds exactly one edge and the general path pays two full row
/// snapshots plus slot bookkeeping per step. Results are bit-identical
/// (`remark1_ablation.rs`, `proptest_frontier.rs`); this group tracks the
/// wall-time delta.
fn bench_degree1_fast_path(c: &mut Criterion) {
    let sparse = sparse_ring(600, 40);
    let timeline = Timeline::aggregated(&sparse, 100_000);
    let targets = TargetSet::all(600);
    let single_edge = timeline.steps_desc().filter(|s| s.len() == 1).count();
    assert!(
        single_edge * 10 >= timeline.nonempty_steps() * 9,
        "workload must be dominated by single-edge steps"
    );
    let mut group = c.benchmark_group("degree1_fast_path");
    group.sample_size(10);
    group.throughput(Throughput::Elements(timeline.total_edges() as u64));
    group.bench_function("general_path", |b| {
        let mut arena = EngineArena::new();
        b.iter(|| {
            earliest_arrival_dp_in(
                &mut arena,
                &timeline,
                &targets,
                &mut NullSink,
                DpOptions { no_degree1_fast_path: true, ..Default::default() },
            )
        })
    });
    group.bench_function("fast_path", |b| {
        let mut arena = EngineArena::new();
        b.iter(|| {
            earliest_arrival_dp_in(
                &mut arena,
                &timeline,
                &targets,
                &mut NullSink,
                DpOptions::default(),
            )
        })
    });
    group.finish();
}

/// Bursty contact trains (same generator as `bench_sweep`'s `sparse_burst`
/// workload): each pair fires in short trains of closely spaced events, so
/// at fine scales the same edge recurs across consecutive windows while its
/// continuation rows stay unchanged — the regime delta propagation targets.
fn sparse_burst(n: u32, trains: i64, burst: i64) -> saturn_linkstream::LinkStream {
    use saturn_linkstream::{Directedness, LinkStreamBuilder};
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for train in 0..trains {
        for i in 0..n {
            let start = train * 10_000 + (i as i64 * 389) % 7_919;
            for e in 0..burst {
                b.add_indexed(i, (i + 1) % n, start + e * 3);
            }
        }
    }
    b.build().unwrap()
}

/// Delta propagation (per-(edge, direction) watermarks + bitmap dirty sets)
/// on vs off, on both sparse workloads: the recurring-contact ring (where
/// the win is mostly the sort-free change-driven trip reporting) and the
/// bursty contact trains (where the watermark filters additionally skip
/// nearly every chain scan between in-train firings). Results are
/// bit-identical either way (`proptest_frontier.rs`); this group tracks the
/// wall-time delta.
fn bench_delta_propagation(c: &mut Criterion) {
    let ring = sparse_ring(600, 40);
    let burst = sparse_burst(600, 8, 8);
    let mut group = c.benchmark_group("delta_propagation");
    group.sample_size(10);
    for (label, stream, k) in [("ring600", &ring, 2_000u64), ("burst600", &burst, 10_000)] {
        let timeline = Timeline::aggregated(stream, k);
        let targets = TargetSet::all(600);
        group.throughput(Throughput::Elements(timeline.total_edges() as u64));
        group.bench_function(format!("{label}/delta_off"), |b| {
            let mut arena = EngineArena::new();
            b.iter(|| {
                earliest_arrival_dp_in(
                    &mut arena,
                    &timeline,
                    &targets,
                    &mut NullSink,
                    DpOptions { no_delta_propagation: true, ..Default::default() },
                )
            })
        });
        group.bench_function(format!("{label}/delta_on"), |b| {
            let mut arena = EngineArena::new();
            b.iter(|| {
                earliest_arrival_dp_in(
                    &mut arena,
                    &timeline,
                    &targets,
                    &mut NullSink,
                    DpOptions::default(),
                )
            })
        });
    }
    group.finish();
}

/// Aggregation from the shared sorted event view vs per-call sorting — the
/// CSR timeline's second half.
fn bench_view_aggregation(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 60, links_per_pair: 10, span: 100_000, seed: 8 }.generate();
    let view = EventView::new(&stream);
    let mut group = c.benchmark_group("aggregation_shared_view");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for k in [100u64, 10_000, 100_000] {
        group.bench_with_input(BenchmarkId::new("fresh_sort", k), &k, |b, &k| {
            b.iter(|| Timeline::aggregated(&stream, k))
        });
        group.bench_with_input(BenchmarkId::new("shared_view", k), &k, |b, &k| {
            b.iter(|| Timeline::aggregated_from_view(&view, k))
        });
    }
    group.finish();
}

/// Incremental timeline construction at bracketing scale ratios: deriving
/// the coarse timeline by adjacent-window merging
/// (`Timeline::aggregated_by_merge`) vs re-scattering the shared event view
/// from scratch. Ratio 2 is the common case of sweep divisor chains (the
/// two-way merge fast path); ratio 10 exercises the pair-id bitmap union
/// taken by wider windows.
/// Merged timelines are field-for-field identical to scratch ones
/// (`timeline_incremental.rs`), so this group is pure build cost.
fn bench_timeline_build(c: &mut Criterion) {
    let stream = sparse_ring(400, 30);
    let view = EventView::new(&stream);
    let mut group = c.benchmark_group("timeline_build");
    group.throughput(Throughput::Elements(stream.len() as u64));
    for (fine_k, k) in [(40_000u64, 20_000u64), (40_000, 4_000)] {
        let fine = Timeline::aggregated_from_view(&view, fine_k);
        assert_eq!(
            fine.aggregated_by_merge(k).checksum(),
            Timeline::aggregated_from_view(&view, k).checksum(),
            "merged vs scratch checksum diverged at {fine_k} -> {k}"
        );
        group.bench_with_input(BenchmarkId::new("scratch", k), &k, |b, &k| {
            b.iter(|| Timeline::aggregated_from_view(&view, k))
        });
        group.bench_with_input(
            BenchmarkId::new(format!("merge_ratio{}", fine_k / k), k),
            &k,
            |b, &k| b.iter(|| fine.aggregated_by_merge(k)),
        );
    }
    group.finish();
}

/// Exact-timeline (stream) trip enumeration, the Section 8 reference.
fn bench_stream_trips(c: &mut Criterion) {
    let stream =
        TimeUniform { nodes: 40, links_per_pair: 10, span: 100_000, seed: 4 }.generate();
    c.bench_function("stream_minimal_trips", |b| {
        b.iter(|| saturn_trips::stream_minimal_trips(&stream, &TargetSet::all(40), true))
    });
}

criterion_group!(
    benches,
    bench_dp_scaling,
    bench_dp_vs_k,
    bench_baseline_vs_frontier,
    bench_degree1_fast_path,
    bench_delta_propagation,
    bench_timeline_build,
    bench_view_aggregation,
    bench_aggregation,
    bench_mk_distance,
    bench_stream_trips
);
criterion_main!(benches);
