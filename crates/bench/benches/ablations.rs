//! Ablation benches for the design choices called out in DESIGN.md §6:
//! selection-metric cost, grid strategy, and the distance-accumulation
//! option of the DP.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use saturn_core::{OccupancyMethod, SweepGrid};
use saturn_distrib::{SelectionMetric, WeightedDist};
use saturn_synth::TimeUniform;
use saturn_trips::{dp::NullSink, earliest_arrival_dp, DpOptions, TargetSet, Timeline};

fn workload() -> saturn_linkstream::LinkStream {
    TimeUniform { nodes: 30, links_per_pair: 8, span: 50_000, seed: 5 }.generate()
}

/// Cost of each Section 7 uniformity metric on a realistic distribution.
fn bench_selection_metrics(c: &mut Criterion) {
    let stream = workload();
    let hist = saturn_trips::occupancy_histogram(&stream, 500, &TargetSet::all(30));
    let dist = WeightedDist::from_pairs(hist.sorted_rates());
    let mut group = c.benchmark_group("selection_metric_cost");
    for metric in SelectionMetric::all() {
        group.bench_with_input(
            BenchmarkId::from_parameter(metric.to_string().replace(' ', "_")),
            &metric,
            |b, m| b.iter(|| m.score(&dist)),
        );
    }
    group.finish();
}

/// Geometric vs linear grid at equal point count (γ quality is checked in
/// tests; this measures cost only — linear grids spend most points at
/// coarse scales where the DP is cheap).
fn bench_grid_strategy(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("grid_strategy");
    group.sample_size(10);
    for (label, grid) in [
        ("geometric", SweepGrid::Geometric { points: 16 }),
        ("linear", SweepGrid::Linear { points: 16 }),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &grid, |b, g| {
            b.iter(|| {
                OccupancyMethod::new().grid(g.clone()).threads(1).refine(0, 0).run(&stream)
            })
        });
    }
    group.finish();
}

/// DP with vs without the distance accumulator (the Figure 2 extra).
fn bench_distance_accumulation(c: &mut Criterion) {
    let stream = workload();
    let timeline = Timeline::aggregated(&stream, 2_000);
    let mut group = c.benchmark_group("dp_distance_option");
    for (label, collect) in [("trips_only", false), ("with_distances", true)] {
        group.bench_with_input(BenchmarkId::from_parameter(label), &collect, |b, &collect| {
            b.iter(|| {
                earliest_arrival_dp(
                    &timeline,
                    &TargetSet::all(30),
                    &mut NullSink,
                    DpOptions { collect_distances: collect, ..Default::default() },
                )
            })
        });
    }
    group.finish();
}

/// Refinement rounds: extra cost of sharpening γ.
fn bench_refinement(c: &mut Criterion) {
    let stream = workload();
    let mut group = c.benchmark_group("refinement_rounds");
    group.sample_size(10);
    for rounds in [0usize, 1, 3] {
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &rounds, |b, &r| {
            b.iter(|| {
                OccupancyMethod::new()
                    .grid(SweepGrid::Geometric { points: 16 })
                    .threads(1)
                    .refine(r, 8)
                    .run(&stream)
            })
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_selection_metrics,
    bench_grid_strategy,
    bench_distance_accumulation,
    bench_refinement
);
criterion_main!(benches);
