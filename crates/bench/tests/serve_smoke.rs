//! Smoke pass for `bench_serve`: under fast mode it must complete, report
//! both paths, and leave a parseable record behind.

use std::process::Command;

#[test]
fn bench_serve_reports_cold_and_cache_hit_throughput() {
    let dir = std::env::temp_dir().join(format!("saturn-bench-serve-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    let out = Command::new(env!("CARGO_BIN_EXE_bench_serve"))
        .env("SATURN_FAST", "1")
        .env("SATURN_OUT", &dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "bench_serve failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("cold:"), "{text}");
    assert!(text.contains("cache-hit:"), "{text}");

    let record = std::fs::read_to_string(dir.join("bench_serve.json")).expect("record written");
    let v: serde_json::Value = serde_json::from_str(&record).expect("valid JSON");
    let cold = v["cold"]["requests_per_second"].as_f64().unwrap();
    let hit = v["cache_hit"]["requests_per_second"].as_f64().unwrap();
    assert!(cold > 0.0 && hit > 0.0);
    assert!(hit > cold, "cache hits must outpace cold sweeps (hit {hit}, cold {cold})");
    std::fs::remove_dir_all(&dir).ok();
}
