//! Smoke tests for the exhibit binaries: the cheap ones run for real (their
//! built-in shape assertions are the test), and the plot-script generator is
//! exercised against a synthetic results directory.

use std::process::Command;

#[test]
fn fig1_toy_asserts_both_path_phenomena() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig1_toy")).output().expect("runs");
    assert!(out.status.success(), "fig1_toy failed:\n{}", String::from_utf8_lossy(&out.stderr));
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("stream true, series true"), "{text}");
    assert!(text.contains("stream true, series false"), "{text}");
}

#[test]
fn make_plots_generates_a_script() {
    let dir = std::env::temp_dir().join(format!("saturn-exhibit-test-{}", std::process::id()));
    std::fs::create_dir_all(&dir).unwrap();
    std::fs::write(dir.join("fig5_demo_mk_proximity.dat"), "# delta y\n1 0.1\n2 0.3\n")
        .unwrap();
    std::fs::write(dir.join("fig8_left_lost.dat"), "# delta y\n1 0.0\n2 1.0\n").unwrap();

    let out = Command::new(env!("CARGO_BIN_EXE_make_plots"))
        .env("SATURN_OUT", &dir)
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "make_plots failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    let script = std::fs::read_to_string(dir.join("plot_all.gp")).unwrap();
    assert!(script.contains("fig5_demo_mk_proximity.dat"), "{script}");
    assert!(script.contains("set output 'fig8_validation.png'"), "{script}");
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn fast_mode_fig2_runs_with_assertions() {
    let out = Command::new(env!("CARGO_BIN_EXE_fig2_classic"))
        .env("SATURN_FAST", "1")
        .env(
            "SATURN_OUT",
            std::env::temp_dir().join(format!("saturn-fig2-test-{}", std::process::id())),
        )
        .output()
        .expect("runs");
    assert!(
        out.status.success(),
        "fig2_classic failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    assert!(String::from_utf8_lossy(&out.stdout).contains("monotone drifts confirmed"));
}
