//! Shared infrastructure for the figure-regeneration binaries and the
//! Criterion benches.
//!
//! Every binary regenerates one exhibit of the paper (see DESIGN.md §5 for
//! the index), writing gnuplot-ready `.dat` series under `results/` (override
//! with `SATURN_OUT`) and printing a human-readable summary. Setting
//! `SATURN_FAST=1` shrinks the workloads (scaled-down dataset stand-ins,
//! coarser grids) so the whole suite runs in seconds — used by CI and the
//! integration tests.

use saturn_synth::DatasetProfile;
use std::io::Write;
use std::path::{Path, PathBuf};

/// Ticks per hour at 1-second resolution.
pub const HOUR: f64 = 3_600.0;

/// Whether fast mode is requested (`SATURN_FAST=1`).
pub fn fast_mode() -> bool {
    std::env::var("SATURN_FAST").map(|v| v == "1").unwrap_or(false)
}

/// Output directory for `.dat` series (default `results/`).
pub fn out_dir() -> PathBuf {
    let dir = std::env::var("SATURN_OUT").unwrap_or_else(|_| "results".into());
    let path = PathBuf::from(dir);
    std::fs::create_dir_all(&path).expect("cannot create results directory");
    path
}

/// The dataset stand-in for `profile`, scaled down under fast mode.
pub fn dataset(profile: DatasetProfile) -> DatasetProfile {
    if fast_mode() {
        profile.scaled(0.06)
    } else {
        profile
    }
}

/// Grid size honoring fast mode.
pub fn grid_points(full: usize) -> usize {
    if fast_mode() {
        (full / 4).max(8)
    } else {
        full
    }
}

/// Writes an `(x, y)` series as a two-column `.dat` file with a comment
/// header; returns the path.
pub fn write_series(name: &str, header: &str, rows: &[(f64, f64)]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("cannot create .dat file");
    writeln!(f, "# {header}").unwrap();
    for (x, y) in rows {
        writeln!(f, "{x} {y}").unwrap();
    }
    println!("  wrote {}", path.display());
    path
}

/// Writes a multi-column `.dat` file; `columns` names the y-columns.
pub fn write_table(name: &str, columns: &[&str], rows: &[Vec<f64>]) -> PathBuf {
    let path = out_dir().join(name);
    let mut f = std::fs::File::create(&path).expect("cannot create .dat file");
    writeln!(f, "# {}", columns.join(" ")).unwrap();
    for row in rows {
        let line: Vec<String> = row.iter().map(|v| v.to_string()).collect();
        writeln!(f, "{}", line.join(" ")).unwrap();
    }
    println!("  wrote {}", path.display());
    path
}

/// Appends a summary block to `results/summary.md` (created on demand).
pub fn append_summary(title: &str, body: &str) {
    let path = out_dir().join("summary.md");
    let mut f = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(&path)
        .expect("cannot open summary.md");
    writeln!(f, "## {title}\n\n{body}\n").unwrap();
}

/// Renders a compact ASCII plot of an `(x, y)` series (log-x), `width`
/// buckets wide — a quick visual check in terminal output.
pub fn ascii_curve(rows: &[(f64, f64)], width: usize) -> String {
    if rows.is_empty() {
        return String::new();
    }
    let ymax = rows.iter().map(|&(_, y)| y).filter(|y| y.is_finite()).fold(0.0f64, f64::max);
    let mut out = String::new();
    let step = rows.len().max(1).div_ceil(width);
    for chunk in rows.chunks(step.max(1)) {
        let (x, y) = chunk[chunk.len() / 2];
        let bar = if ymax > 0.0 { ((y / ymax) * 40.0) as usize } else { 0 };
        out.push_str(&format!("{:>12.3} {:6.3} {}\n", x, y, "#".repeat(bar)));
    }
    out
}

/// Downsamples a plot series to at most `max_points` rows, keeping the first
/// and last points (ICDs of fine-scale occupancy distributions can hold
/// millions of steps; plots need a few thousand at most).
pub fn downsample(rows: &[(f64, f64)], max_points: usize) -> Vec<(f64, f64)> {
    if rows.len() <= max_points.max(2) {
        return rows.to_vec();
    }
    let step = (rows.len() - 1) as f64 / (max_points - 1) as f64;
    let mut out: Vec<(f64, f64)> =
        (0..max_points).map(|i| rows[(i as f64 * step) as usize]).collect();
    *out.last_mut().expect("max_points >= 2") = *rows.last().expect("non-empty");
    out
}

/// Resolves a path inside the output dir (for tests).
pub fn out_path(name: &str) -> PathBuf {
    out_dir().join(name)
}

/// Checks a file exists and is non-trivial (for make_all verification).
pub fn assert_written(path: &Path) {
    let meta = std::fs::metadata(path).expect("expected output file missing");
    assert!(meta.len() > 10, "output file {} is empty", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downsample_keeps_ends_and_bounds_size() {
        let rows: Vec<(f64, f64)> = (0..10_000).map(|i| (i as f64, (i * 2) as f64)).collect();
        let d = downsample(&rows, 100);
        assert_eq!(d.len(), 100);
        assert_eq!(d.first(), rows.first());
        assert_eq!(d.last(), rows.last());
        // strictly increasing x preserved
        assert!(d.windows(2).all(|w| w[0].0 < w[1].0));
        // short series pass through unchanged
        let short = vec![(0.0, 1.0), (1.0, 2.0)];
        assert_eq!(downsample(&short, 100), short);
    }

    #[test]
    fn ascii_curve_is_scaled_to_max() {
        let rows = vec![(1.0, 0.0), (2.0, 0.5), (3.0, 1.0)];
        let plot = ascii_curve(&rows, 3);
        let lines: Vec<&str> = plot.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[2].matches('#').count() > lines[1].matches('#').count());
        assert!(ascii_curve(&[], 5).is_empty());
    }

    #[test]
    fn series_files_round_trip() {
        std::env::set_var("SATURN_OUT", std::env::temp_dir().join("saturn-bench-test"));
        let p = write_series("test_series.dat", "x y", &[(1.0, 2.0), (3.0, 4.5)]);
        assert_written(&p);
        let text = std::fs::read_to_string(&p).unwrap();
        assert!(text.starts_with("# x y"));
        assert!(text.contains("3 4.5"));
        let t = write_table(
            "test_table.dat",
            &["a", "b"],
            &[vec![1.0, 2.0], vec![3.0, 4.0], vec![5.0, 6.0]],
        );
        assert_written(&t);
        std::env::remove_var("SATURN_OUT");
    }

    #[test]
    fn grid_points_honors_fast_mode() {
        std::env::remove_var("SATURN_FAST");
        assert_eq!(grid_points(40), 40);
        assert!(!fast_mode());
    }
}
