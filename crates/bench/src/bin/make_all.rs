//! Regenerates every exhibit of the paper in one run: Figures 1–8 and the
//! Section 5 γ table. Results land in `results/` (`.dat` series +
//! `summary.md`); each figure binary asserts its qualitative claims, so a
//! clean exit means the reproduction's shape checks all passed.
//!
//! ```sh
//! cargo run --release -p saturn-bench --bin make_all            # full (minutes)
//! SATURN_FAST=1 cargo run --release -p saturn-bench --bin make_all   # seconds
//! ```

use std::process::Command;

const BINS: [&str; 10] = [
    "fig1_toy",
    "fig2_classic",
    "fig3_icd_proximity",
    "fig4_icd_others",
    "fig5_proximity_others",
    "table_gamma",
    "fig6_synthetic",
    "fig7_selection",
    "fig8_validation",
    "make_plots",
];

fn main() {
    // start a fresh summary
    let summary = saturn_bench::out_path("summary.md");
    std::fs::write(
        &summary,
        format!(
            "# saturn — reproduction summary\n\nfast mode: {}\n\n",
            saturn_bench::fast_mode()
        ),
    )
    .expect("cannot write summary.md");

    let exe_dir =
        std::env::current_exe().expect("own path").parent().expect("bin dir").to_path_buf();

    let mut failures = Vec::new();
    for bin in BINS {
        println!("\n=== {bin} ===");
        let t0 = std::time::Instant::now();
        let status = Command::new(exe_dir.join(bin))
            .status()
            .unwrap_or_else(|e| panic!("cannot launch {bin}: {e} (build with --bins first)"));
        println!(
            "=== {bin}: {} in {:.1?} ===",
            if status.success() { "ok" } else { "FAILED" },
            t0.elapsed()
        );
        if !status.success() {
            failures.push(bin);
        }
    }

    saturn_bench::assert_written(&summary);
    if failures.is_empty() {
        println!("\nall exhibits regenerated — see {}", saturn_bench::out_dir().display());
    } else {
        eprintln!("\nfailed exhibits: {failures:?}");
        std::process::exit(1);
    }
}
