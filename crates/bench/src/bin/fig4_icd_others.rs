//! Figure 4 — inverse cumulative distributions of occupancy rates for the
//! Facebook, Enron and Manufacturing stand-ins, at several Δ spanning the
//! whole range: the same stretch-then-concentrate evolution as Irvine
//! (Figure 3 left), establishing the phenomenon across datasets.

use saturn_bench::{dataset, downsample, grid_points, write_series, HOUR};
use saturn_core::{OccupancyMethod, SweepGrid};
use saturn_distrib::WeightedDist;
use saturn_synth::DatasetProfile;
use saturn_trips::{occupancy_histogram, TargetSet};

fn main() {
    for profile in
        [DatasetProfile::facebook(), DatasetProfile::enron(), DatasetProfile::manufacturing()]
    {
        let profile = dataset(profile);
        println!("Figure 4 — occupancy ICDs ({} stand-in)", profile.name);
        let stream = profile.generate(1);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: grid_points(32) })
            .refine(0, 0)
            .run(&stream);

        let n = report.results().len();
        let mut picks: Vec<usize> = (0..7).map(|i| i * (n - 1) / 6).collect();
        picks.dedup();
        let targets = TargetSet::all(stream.node_count() as u32);
        for &i in &picks {
            let r = &report.results()[i];
            let hist = occupancy_histogram(&stream, r.k, &targets);
            let dist = WeightedDist::from_pairs(hist.sorted_rates());
            write_series(
                &format!("fig4_{}_icd_delta_{:.0}s.dat", profile.name, r.delta_ticks),
                &format!("occupancy_rate P(X>=x) at Δ = {:.1} h", r.delta_ticks / HOUR),
                &downsample(&dist.icd_points(), 2_000),
            );
        }

        // Stretch-then-concentrate check per dataset.
        let first = report.results().first().unwrap();
        let last = report.results().last().unwrap();
        assert!(first.mean_rate < last.mean_rate);
        assert!(last.fraction_at_one > 0.99);
        println!(
            "  {}: mean occupancy {:.4} (Δ=res) -> {:.4} (Δ=T); P[occ=1] at Δ=T: {:.3}\n",
            profile.name, first.mean_rate, last.mean_rate, last.fraction_at_one
        );
        saturn_bench::append_summary(
            &format!("Figure 4 ({} stand-in)", profile.name),
            &format!(
                "ICDs stretch then concentrate: mean rate {:.4} -> {:.4}, final P[occ=1] = {:.3}",
                first.mean_rate, last.mean_rate, last.fraction_at_one
            ),
        );
    }
}
