//! Figure 6 — the saturation scale on synthetic networks:
//! (left) γ vs mean inter-contact time for time-uniform networks (the paper:
//! perfectly proportional);
//! (right) γ vs the share of low-activity time for two-mode networks (the
//! paper: γ stays near the high-activity value until ~80%, then rises to the
//! low-activity value).

use saturn_bench::{fast_mode, write_series};
use saturn_core::{OccupancyMethod, SweepGrid, TargetSpec};
use saturn_linkstream::LinkStream;
use saturn_synth::{TimeUniform, TwoMode};

fn gamma_of(stream: &LinkStream, points: usize) -> f64 {
    OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points })
        .targets(TargetSpec::All)
        .refine(2, 8)
        .run(stream)
        .gamma()
        .expect("non-degenerate stream")
        .delta_ticks
}

fn main() {
    let (nodes, span, points) =
        if fast_mode() { (20u32, 20_000i64, 16) } else { (50, 100_000, 28) };

    // --- left panel: time-uniform networks --------------------------------
    println!("Figure 6 left — time-uniform networks (n = {nodes}, T = {span} s)");
    println!("{:>4} {:>16} {:>10} {:>8}", "N", "inter-contact", "γ (s)", "γ/ict");
    let sweep: &[u32] =
        if fast_mode() { &[5, 10, 20] } else { &[4, 6, 10, 16, 25, 40, 64, 100] };
    let mut left = Vec::new();
    let mut ratios = Vec::new();
    for &links_per_pair in sweep {
        let cfg = TimeUniform { nodes, links_per_pair, span, seed: 7 };
        let gamma = gamma_of(&cfg.generate(), points);
        let ict = cfg.mean_inter_contact();
        println!("{links_per_pair:>4} {ict:>16.1} {gamma:>10.1} {:>8.3}", gamma / ict);
        left.push((ict, gamma));
        ratios.push(gamma / ict);
    }
    write_series("fig6_left_time_uniform.dat", "mean_inter_contact_s gamma_s", &left);

    // Proportionality check (the paper: "perfectly proportional"): the
    // γ/ict ratio varies by < 35% around its mean across a 10× activity range.
    let mean_ratio: f64 = ratios.iter().sum::<f64>() / ratios.len() as f64;
    let max_dev =
        ratios.iter().map(|r| (r - mean_ratio).abs() / mean_ratio).fold(0.0f64, f64::max);
    println!("γ/ict = {mean_ratio:.3} ± {:.0}% — proportionality holds\n", max_dev * 100.0);
    assert!(max_dev < 0.35, "proportionality violated: deviation {max_dev}");

    // --- right panel: two-mode networks ------------------------------------
    println!("Figure 6 right — two-mode networks (n = {nodes}, 10 alternations)");
    println!("{:>12} {:>10}", "low-share %", "γ (s)");
    let shares: &[f64] = if fast_mode() {
        &[0.0, 0.5, 1.0]
    } else {
        &[0.0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.7, 0.8, 0.85, 0.9, 0.95, 0.98, 1.0]
    };
    let mut right = Vec::new();
    for &share in shares {
        let cfg = TwoMode {
            nodes,
            alternations: 10,
            span,
            links_high: 10,
            links_low: 2,
            low_share: share,
            seed: 13,
        };
        let gamma = gamma_of(&cfg.generate(), points);
        println!("{:>12.0} {gamma:>10.1}", share * 100.0);
        right.push((share * 100.0, gamma));
    }
    write_series("fig6_right_two_mode.dat", "low_share_pct gamma_s", &right);

    // The paper's qualitative claims: γ at moderate low-share stays close to
    // the high-activity value; γ at 100% (pure low activity) is much larger.
    let g0 = right.first().unwrap().1;
    let g_mid = right.iter().find(|&&(s, _)| (s - 50.0).abs() < 1.0).unwrap().1;
    let g100 = right.last().unwrap().1;
    println!(
        "\nγ(0%) = {g0:.1}, γ(50%) = {g_mid:.1}, γ(100%) = {g100:.1}: \
         mid-range stays within the high-activity regime ({})",
        g_mid < (g0 + g100) / 2.0
    );
    assert!(g100 > 3.0 * g0, "pure low activity must have a much larger γ");
    assert!(g_mid < (g0 + g100) / 2.0, "γ must favor the high-activity mode, not the average");

    saturn_bench::append_summary(
        "Figure 6 (synthetic networks)",
        &format!(
            "time-uniform: γ/ict = {mean_ratio:.3} ± {:.0}% (proportional, as in the paper); \
             two-mode: γ(0%)={g0:.1}s, γ(50%)={g_mid:.1}s, γ(100%)={g100:.1}s — \
             high-activity mode dominates until low activity takes over",
            max_dev * 100.0
        ),
    );
}
