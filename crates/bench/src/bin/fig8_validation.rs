//! Figure 8 — validation of the occupancy method on the Irvine stand-in:
//! (left) the proportion of shortest transitions lost as a function of Δ;
//! (right) the mean elongation factor of minimal trips as a function of Δ.
//!
//! The paper's claims to reproduce: the loss stays negligible over several
//! orders of magnitude of Δ and concentrates in the ~2 decades straddling γ;
//! the elongation stays ≈ 1 for several orders of magnitude before rising
//! around γ.

use saturn_bench::{dataset, grid_points, write_series, HOUR};
use saturn_core::{
    validation_sweep, OccupancyMethod, SweepGrid, TargetSpec, ValidationOptions,
};
use saturn_synth::DatasetProfile;

fn main() {
    let profile = dataset(DatasetProfile::irvine());
    println!("Figure 8 — validation measures ({} stand-in)", profile.name);
    let stream = profile.generate(1);

    let gamma = OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: grid_points(40) })
        .run(&stream)
        .gamma()
        .expect("non-degenerate stream");

    let report = validation_sweep(
        &stream,
        &SweepGrid::Geometric { points: grid_points(40) },
        TargetSpec::All,
        &ValidationOptions::default(),
    );

    let loss: Vec<(f64, f64)> =
        report.points.iter().map(|p| (p.delta_ticks / HOUR, p.lost_transitions)).collect();
    write_series("fig8_left_lost_transitions.dat", "delta_h lost_fraction", &loss);
    let elong: Vec<(f64, f64)> = report
        .points
        .iter()
        .filter(|p| p.elongation.count > 0)
        .map(|p| (p.delta_ticks / HOUR, p.elongation.mean))
        .collect();
    write_series("fig8_right_elongation.dat", "delta_h mean_elongation", &elong);

    println!("\n{:>12} {:>10} {:>12}", "Δ (h)", "lost", "elongation");
    for p in report.points.iter().step_by((report.points.len() / 16).max(1)) {
        println!(
            "{:>12.4} {:>10.4} {:>12.3}",
            p.delta_ticks / HOUR,
            p.lost_transitions,
            if p.elongation.count > 0 { p.elongation.mean } else { f64::NAN }
        );
    }

    // Claims. (1) loss negligible at fine scales, total at Δ = T;
    let first = report.points.first().unwrap();
    let last = report.points.last().unwrap();
    assert!(first.lost_transitions < 0.05, "fine-scale loss {}", first.lost_transitions);
    assert!((last.lost_transitions - 1.0).abs() < 1e-12);
    // (2) loss at γ is substantial but partial (the paper: 48%);
    let at_gamma = report
        .points
        .iter()
        .min_by(|a, b| {
            (a.delta_ticks - gamma.delta_ticks)
                .abs()
                .partial_cmp(&(b.delta_ticks - gamma.delta_ticks).abs())
                .unwrap()
        })
        .unwrap();
    println!(
        "\nloss at γ = {:.1} h: {:.0}% (the paper reports 48% on the real trace)",
        gamma.delta_ticks / HOUR,
        at_gamma.lost_transitions * 100.0
    );
    assert!(
        at_gamma.lost_transitions > 0.05 && at_gamma.lost_transitions < 0.95,
        "loss at γ should be partial, got {}",
        at_gamma.lost_transitions
    );
    // (3) elongation ≈ 1 at fine scales.
    if let Some(&(d, e)) = elong.first() {
        println!("elongation at Δ = {d:.4} h: {e:.3} (≈ 1 expected)");
        assert!(e < 1.5, "fine-scale elongation {e}");
    }

    saturn_bench::append_summary(
        "Figure 8 (validation, Irvine stand-in)",
        &format!(
            "loss: {:.3} (fine) -> {:.0}% (γ = {:.1} h) -> 100% (Δ=T); paper: 10% at 0.5h, \
             48% at γ=18h; elongation ≈ {:.2} at fine scales rising near γ",
            first.lost_transitions,
            at_gamma.lost_transitions * 100.0,
            gamma.delta_ticks / HOUR,
            elong.first().map(|&(_, e)| e).unwrap_or(f64::NAN)
        ),
    );
}
