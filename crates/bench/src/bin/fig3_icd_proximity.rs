//! Figure 3 — the occupancy method on the Irvine stand-in:
//! (left) inverse cumulative distributions of the occupancy rates for
//! several Δ across the whole range; (right) M-K proximity vs Δ with its
//! maximum at the saturation scale γ.
//!
//! The sweep runs scores-only; the full distributions (which hold millions
//! of distinct rates at fine scales) are recomputed for just the displayed
//! scales and downsampled for plotting.

use saturn_bench::{ascii_curve, dataset, downsample, grid_points, write_series, HOUR};
use saturn_core::{OccupancyMethod, SweepGrid};
use saturn_distrib::WeightedDist;
use saturn_synth::DatasetProfile;
use saturn_trips::{occupancy_histogram, TargetSet};

fn main() {
    let profile = dataset(DatasetProfile::irvine());
    println!("Figure 3 — occupancy ICDs and M-K proximity ({} stand-in)", profile.name);
    let stream = profile.generate(1);

    let report = OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: grid_points(48) })
        .run(&stream);
    let gamma = report.gamma().expect("non-degenerate stream");

    // Left panel: ICDs for ~8 scales spanning the range plus the selected one.
    let n = report.results().len();
    let mut picks: Vec<usize> = (0..8).map(|i| i * (n - 1) / 7).collect();
    if let Some(gpos) = report.results().iter().position(|r| r.k == gamma.k) {
        picks.push(gpos);
    }
    picks.sort_unstable();
    picks.dedup();
    let targets = TargetSet::all(stream.node_count() as u32);
    for &i in &picks {
        let r = &report.results()[i];
        let hist = occupancy_histogram(&stream, r.k, &targets);
        let dist = WeightedDist::from_pairs(hist.sorted_rates());
        let icd = downsample(&dist.icd_points(), 2_000);
        let tag = if r.k == gamma.k { "_gamma" } else { "" };
        write_series(
            &format!("fig3_icd_delta_{:.0}s{tag}.dat", r.delta_ticks),
            &format!("occupancy_rate P(X>=x) at Δ = {:.1} h", r.delta_ticks / HOUR),
            &icd,
        );
    }

    // Right panel: the M-K proximity curve.
    let curve: Vec<(f64, f64)> =
        report.score_curve().iter().map(|&(d, s)| (d / HOUR, s)).collect();
    write_series("fig3_mk_proximity.dat", "delta_h mk_proximity", &curve);

    println!("\nM-K proximity vs Δ (h):\n{}", ascii_curve(&curve, 18));
    println!(
        "γ = {:.1} h (paper reports {:.0} h on the real Irvine trace)",
        gamma.delta_ticks / HOUR,
        profile.paper_gamma_hours
    );

    // Qualitative checks of Section 4: the distribution stretches then
    // re-concentrates at 1.
    let first = report.results().first().unwrap();
    let last = report.results().last().unwrap();
    assert!(first.mean_rate < 0.5, "fine scales concentrate near 0");
    assert!(last.fraction_at_one > 0.99, "Δ = T concentrates at 1");
    assert!(
        gamma.score >= first.scores.mk_proximity && gamma.score >= last.scores.mk_proximity
    );

    saturn_bench::append_summary(
        "Figure 3 (Irvine stand-in)",
        &format!(
            "γ = {:.1} h (paper: {:.0} h on the real trace); proximity unimodal: \
             {:.4} (fine) -> {:.4} (γ) -> {:.4} (Δ=T)",
            gamma.delta_ticks / HOUR,
            profile.paper_gamma_hours,
            first.scores.mk_proximity,
            gamma.score,
            last.scores.mk_proximity
        ),
    );
}
