//! Figure 1 — a toy link stream, its aggregation into a 3-snapshot series,
//! and the temporal paths that survive or die.
//!
//! The paper's figure shows a 5-node stream with two highlighted temporal
//! paths: one (dark blue, `e ~> b`) that survives aggregation, and one
//! (light pink) that exists in the stream but not in the series because its
//! two hops fall inside the same window (Remark 1: links of one snapshot
//! cannot be chained). The exact link placement of the figure is not fully
//! recoverable from the text, so this binary uses an equivalent 5-node
//! stream exhibiting both phenomena, and verifies them mechanically.

use saturn_graphseries::GraphSeries;
use saturn_linkstream::{io, Directedness, NodeId};
use saturn_trips::{earliest_arrival_dp, DpOptions, TargetSet, Timeline, TripSink};

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);

impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

fn trips_of(timeline: &Timeline, n: u32) -> Vec<(u32, u32, u32, u32, u32)> {
    let mut sink = Collect::default();
    earliest_arrival_dp(timeline, &TargetSet::all(n), &mut sink, DpOptions::default());
    sink.0
}

fn main() {
    println!("Figure 1 — aggregation of a toy link stream (K = 3)\n");

    // Study period [0, 8]; K = 3 gives windows [0, 8/3), [8/3, 16/3), [16/3, 8].
    let text = "b e 2\na b 4\nd e 5\na c 7\nc d 7\nd b 8\n";
    let stream = io::read_str(text, Directedness::Undirected).unwrap();
    let n = stream.node_count() as u32;
    let series = GraphSeries::aggregate(&stream, 3);

    println!("link stream L:");
    for l in stream.events() {
        println!("  t={}  {} -- {}", l.t, stream.label(l.u), stream.label(l.v));
    }
    println!("\naggregated series G_Δ (Δ = {:.2}):", series.delta_ticks());
    for (w, snap) in series.snapshots() {
        let edges: Vec<String> = snap
            .edges()
            .iter()
            .map(|&(u, v)| format!("{}-{}", stream.label(NodeId(u)), stream.label(NodeId(v))))
            .collect();
        println!("  G_{}: {}", w + 1, edges.join(", "));
    }

    let label = |i: u32| stream.label(NodeId(i)).to_string();
    let series_trips = trips_of(&Timeline::aggregated(&stream, 3), n);
    let stream_trips = trips_of(&Timeline::exact(&stream), n);
    let has = |trips: &[(u32, u32, u32, u32, u32)], from: &str, to: &str| {
        trips.iter().any(|&(u, v, ..)| label(u) == from && label(v) == to)
    };

    // The surviving path: e -> d (d-e @ t5, window 2) -> b (d-b @ t8, window 3).
    let eb_series = has(&series_trips, "e", "b");
    let eb_stream = has(&stream_trips, "e", "b");
    println!("\ne ~> b  (the dark-blue path): stream {eb_stream}, series {eb_series}");
    assert!(eb_stream && eb_series, "the surviving path must exist in both");

    // The lost path: c -> d (c-d @ t7) -> b (d-b @ t8) — both hops in window 3.
    let cb_series = has(&series_trips, "c", "b");
    let cb_stream = has(&stream_trips, "c", "b");
    println!("c ~> b  (the light-pink path): stream {cb_stream}, series {cb_series}");
    assert!(cb_stream, "the pink path exists in the stream");
    assert!(!cb_series, "the pink path must be lost in the series (both hops share window 3)");

    println!(
        "\n==> aggregation erased the order of c-d and d-b inside window 3,\n    \
         destroying the only c ~> b propagation route — Remark 1 in action."
    );

    saturn_bench::append_summary(
        "Figure 1 (toy example)",
        &format!(
            "dark-blue path e~>b: stream {eb_stream}, series {eb_series} (survives); \
             light-pink path c~>b: stream {cb_stream}, series {cb_series} (lost)"
        ),
    );
}
