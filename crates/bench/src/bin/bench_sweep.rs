//! Emits `BENCH_sweep.json`: the sweep engine's performance trajectory,
//! committed to the repository so future PRs can track speedups/regressions
//! without re-running the whole suite.
//!
//! Three workloads bracket the engine's regimes:
//!
//! * `dense_uniform` — all-pairs activity on 60 nodes: rows saturate almost
//!   immediately, so the frontier bitmap degenerates to a sequential row
//!   walk (this bounds the *overhead* of the pruning machinery);
//! * `sparse_ring` — 600 nodes on a ring: per-row reachability stays far
//!   below `n` for most of the backward sweep (the regime of the paper's
//!   sparse contact datasets), where the pruning pays off outright;
//! * `sparse_burst` — 600 nodes with bursty contact trains (face-to-face
//!   dataset texture): the same edge recurs across consecutive fine-scale
//!   windows with unchanged continuation rows, the regime the engine's
//!   delta propagation targets (tracked in the `delta` section, with
//!   hard-asserted delta-on == delta-off checksums on all three workloads).
//!
//! Per scale, both the pre-rework pipeline (per-call timeline build + the
//! retained baseline engine with fresh tables) and the current pipeline
//! (shared sorted event view + frontier/arena engine) are timed; end-to-end
//! `OccupancyMethod::run` timings and a peak-RSS proxy (`VmHWM`) round out
//! the record.
//!
//! ```sh
//! cargo run --release -p saturn-bench --bin bench_sweep           # full
//! SATURN_FAST=1 cargo run --release -p saturn-bench --bin bench_sweep
//! SATURN_BENCH_OUT=BENCH_sweep.json  # output path (default)
//! ```

use saturn_core::parallel::WorkerPool;
use saturn_core::{OccupancyMethod, SweepCache, SweepControl, SweepGrid};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};
use saturn_synth::TimeUniform;
use saturn_trips::dp::{baseline, NullSink};
use saturn_trips::{
    earliest_arrival_dp_in, occupancy_histogram_tile_in, DpOptions, DpStats, EngineArena,
    EventView, OccupancyHistogram, TargetSet, Timeline,
};
use serde_json::Value;
use std::time::Instant;

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Median-of-`reps` wall time of `f`, in seconds.
fn time_median<R>(reps: usize, mut f: impl FnMut() -> R) -> f64 {
    let mut times: Vec<f64> = (0..reps)
        .map(|_| {
            let start = Instant::now();
            std::hint::black_box(f());
            start.elapsed().as_secs_f64()
        })
        .collect();
    times.sort_by(f64::total_cmp);
    times[times.len() / 2]
}

/// Peak resident set size in kilobytes, read from `/proc/self/status`
/// (`VmHWM`). `None` off Linux — the field is then absent from the JSON.
fn peak_rss_kb() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with("VmHWM:"))?;
    line.split_whitespace().nth(1)?.parse().ok()
}

fn sparse_ring(n: u32, reps: i64) -> LinkStream {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for rep in 0..reps {
        for i in 0..n {
            b.add_indexed(i, (i + 1) % n, rep * 1000 + (i as i64 % 997));
        }
    }
    b.build().unwrap()
}

/// Bursty contact trains: every ring pair is active in short trains of
/// closely spaced events separated by long silences — the temporal texture
/// of face-to-face contact datasets (and the regime `dense_uniform` /
/// `sparse_ring` don't cover). Within a train the same edge fires in many
/// consecutive fine-scale windows while the rest of the graph is quiet, so
/// its continuation rows almost never change between firings: the workload
/// where delta propagation should shine.
fn sparse_burst(n: u32, trains: i64, burst: i64) -> LinkStream {
    let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    for train in 0..trains {
        for i in 0..n {
            // deterministic per-pair jitter desynchronizes train starts
            let start = train * 10_000 + (i as i64 * 389) % 7_919;
            for e in 0..burst {
                b.add_indexed(i, (i + 1) % n, start + e * 3);
            }
        }
    }
    b.build().unwrap()
}

/// Times one workload across `scales`; returns `(json, Σ legacy, Σ current)`.
fn measure_workload(
    name: &str,
    stream: &LinkStream,
    scales: &[u64],
    reps: usize,
) -> (Value, f64, f64) {
    let n = stream.node_count() as u32;
    let targets = TargetSet::all(n);
    let view = EventView::new(stream);
    println!("workload {name}: n={n} events={} span={}", stream.len(), stream.span());

    let mut per_scale = Vec::new();
    let mut total_legacy = 0.0f64;
    let mut total_current = 0.0f64;
    for &k in scales {
        let timeline = Timeline::aggregated_from_view(&view, k);
        let traversals = {
            let mut arena = EngineArena::new();
            earliest_arrival_dp_in(
                &mut arena,
                &timeline,
                &targets,
                &mut NullSink,
                DpOptions::default(),
            )
            .traversals
        };

        // pre-rework pipeline: per-call timeline build + fresh-table engine
        let t_legacy = time_median(reps, || {
            let t = Timeline::aggregated(stream, k);
            baseline::earliest_arrival_dp(&t, &targets, &mut NullSink, DpOptions::default())
        });
        // current pipeline: shared view + frontier/arena engine
        let mut arena = EngineArena::new();
        let t_current = time_median(reps, || {
            let t = Timeline::aggregated_from_view(&view, k);
            earliest_arrival_dp_in(
                &mut arena,
                &t,
                &targets,
                &mut NullSink,
                DpOptions::default(),
            )
        });
        total_legacy += t_legacy;
        total_current += t_current;
        let speedup = t_legacy / t_current;
        println!(
            "  k={k:>7}  legacy {:>9.3} ms  current {:>9.3} ms  ({speedup:.2}x)  \
             {:.1}M traversals/s",
            t_legacy * 1e3,
            t_current * 1e3,
            traversals as f64 / t_current / 1e6,
        );
        per_scale.push(obj(vec![
            ("k", Value::Int(k as i128)),
            ("edges", Value::Int(timeline.total_edges() as i128)),
            ("traversals", Value::Int(traversals as i128)),
            ("legacy_pipeline_seconds", Value::Float(t_legacy)),
            ("current_pipeline_seconds", Value::Float(t_current)),
            ("speedup", Value::Float(speedup)),
            ("traversals_per_second", Value::Float(traversals as f64 / t_current)),
        ]));
    }
    let json = obj(vec![
        ("nodes", Value::Int(n as i128)),
        ("events", Value::Int(stream.len() as i128)),
        ("span_ticks", Value::Int(stream.span() as i128)),
        ("per_scale", Value::Array(per_scale)),
        ("workload_speedup", Value::Float(total_legacy / total_current)),
    ]);
    (json, total_legacy, total_current)
}

/// Merges the tiles of `ranges` into one histogram with a shared arena.
fn tiled_histogram(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    ranges: &[(u32, u32)],
) -> OccupancyHistogram {
    let mut acc = OccupancyHistogram::new();
    for &(start, len) in ranges {
        let h = occupancy_histogram_tile_in(arena, timeline, targets, start, len as usize);
        acc.merge(&h);
    }
    acc
}

/// Histogram equality strong enough for a checksum: totals and the full
/// sorted (rate, multiplicity) sequence.
fn histograms_match(a: &OccupancyHistogram, b: &OccupancyHistogram) -> bool {
    a.total_trips() == b.total_trips()
        && a.distinct_rates() == b.distinct_rates()
        && a.sorted_rates() == b.sorted_rates()
}

/// The `intra_scale` section: what the second parallel axis costs and buys.
/// Tiled-vs-untiled checksums are hard-asserted — a mismatch aborts the
/// bench (and CI) rather than recording garbage trend data.
fn measure_intra_scale(
    dense: &LinkStream,
    sparse: &LinkStream,
    fast: bool,
    reps: usize,
) -> Value {
    // --- tile-size sensitivity on one dense scale, single-threaded --------
    let k = if fast { 1_000u64 } else { 10_000 };
    let targets = TargetSet::all(dense.node_count() as u32);
    let ncols = targets.len();
    let view = EventView::new(dense);
    let timeline = Timeline::aggregated_from_view(&view, k);
    let mut arena = EngineArena::new();
    let t_untiled = time_median(reps, || {
        occupancy_histogram_tile_in(&mut arena, &timeline, &targets, 0, ncols)
    });
    let reference = occupancy_histogram_tile_in(&mut arena, &timeline, &targets, 0, ncols);

    let mut checksums_match = true;
    let mut tile_sensitivity = Vec::new();
    let mut overhead_at_two_tiles = f64::NAN;
    for tiles in [2usize, 4, 8] {
        let tile = ncols.div_ceil(tiles).max(1);
        let ranges = targets.tile_ranges(tile);
        let t = time_median(reps, || tiled_histogram(&mut arena, &timeline, &targets, &ranges));
        let merged = tiled_histogram(&mut arena, &timeline, &targets, &ranges);
        let ok = histograms_match(&merged, &reference);
        checksums_match &= ok;
        assert!(ok, "tiled histogram (tile={tile}) diverges from untiled");
        let overhead = t / t_untiled;
        if tiles == 2 {
            overhead_at_two_tiles = overhead;
        }
        println!(
            "  intra_scale dense k={k} tile={tile} ({} tiles): {:.3} ms ({overhead:.3}x untiled)",
            ranges.len(),
            t * 1e3,
        );
        tile_sensitivity.push(obj(vec![
            ("tile_cols", Value::Int(tile as i128)),
            ("tiles", Value::Int(ranges.len() as i128)),
            ("seconds", Value::Float(t)),
            ("overhead_vs_untiled", Value::Float(overhead)),
        ]));
    }

    // --- single-scale wall time vs worker count (auto tiling) -------------
    let mut single_scale_threads = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = time_median(reps.min(3), || {
            OccupancyMethod::new()
                .grid(SweepGrid::ExplicitK(vec![k]))
                .threads(threads)
                .refine(0, 0)
                .run(dense)
        });
        println!("  intra_scale single-scale threads={threads}: {:.3} ms", t * 1e3);
        single_scale_threads.push(obj(vec![
            ("threads", Value::Int(threads as i128)),
            ("run_seconds", Value::Float(t)),
        ]));
    }

    // --- degree-1 fast path on the snapshot-bound sparse fine tail --------
    let kd = if fast { 10_000u64 } else { 100_000 };
    let stargets = TargetSet::all(sparse.node_count() as u32);
    let sview = EventView::new(sparse);
    let stimeline = Timeline::aggregated_from_view(&sview, kd);
    let degree1_steps = stimeline.steps_desc().filter(|s| s.len() == 1).count();
    let t_general = time_median(reps, || {
        earliest_arrival_dp_in(
            &mut arena,
            &stimeline,
            &stargets,
            &mut NullSink,
            DpOptions { no_degree1_fast_path: true, ..Default::default() },
        )
    });
    let t_fast = time_median(reps, || {
        earliest_arrival_dp_in(
            &mut arena,
            &stimeline,
            &stargets,
            &mut NullSink,
            DpOptions::default(),
        )
    });
    let speedup = t_general / t_fast;
    println!(
        "  intra_scale degree1 sparse k={kd} ({degree1_steps} single-edge steps): \
         general {:.3} ms, fast {:.3} ms ({speedup:.3}x)",
        t_general * 1e3,
        t_fast * 1e3,
    );

    obj(vec![
        ("dense_scale_k", Value::Int(k as i128)),
        ("untiled_seconds", Value::Float(t_untiled)),
        ("tiled_single_thread_overhead", Value::Float(overhead_at_two_tiles)),
        ("checksums_match", Value::Bool(checksums_match)),
        ("tile_sensitivity", Value::Array(tile_sensitivity)),
        ("single_scale_threads", Value::Array(single_scale_threads)),
        (
            "degree1",
            obj(vec![
                ("k", Value::Int(kd as i128)),
                ("single_edge_steps", Value::Int(degree1_steps as i128)),
                ("general_seconds", Value::Float(t_general)),
                ("fast_path_seconds", Value::Float(t_fast)),
                ("speedup", Value::Float(speedup)),
            ]),
        ),
    ])
}

/// A full-result checksum of one engine run — a mixing fold over the trip
/// stream (order-sensitive) plus the exact distance sums — together with
/// the run's [`DpStats`] (offer/snapshot counters for the JSON). Delta
/// propagation claims bit-identical results, so any checksum divergence is
/// a correctness bug, not noise.
fn engine_checksum(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    options: DpOptions,
) -> ((u64, i128, i128, i128), DpStats) {
    let mut acc = 0u64;
    let mut sink = |u: u32, v: u32, dep: u32, arr: u32, hops: u32| {
        let mut x = acc ^ (u as u64 | (v as u64) << 32);
        x = x.wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(17);
        x ^= dep as u64 | (arr as u64) << 20 | (hops as u64) << 44;
        acc = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    };
    let stats = earliest_arrival_dp_in(
        arena,
        timeline,
        targets,
        &mut sink,
        DpOptions { collect_distances: true, ..options },
    );
    let d = stats.distances.unwrap();
    ((acc ^ stats.trips, d.sum_dtime_steps, d.sum_dhops, d.finite_triples), stats)
}

/// The `delta` section: change-driven offers (watermark filtering) on vs
/// off, per scale, on all three workloads. Checksums (trip stream +
/// distance sums) are hard-asserted equal — delta propagation must be
/// invisible in results, visible only in wall time.
fn measure_delta(workloads: &[(&str, &LinkStream)], scales: &[u64], reps: usize) -> Value {
    let mut sections = Vec::new();
    let mut all_match = true;
    for &(name, stream) in workloads {
        let targets = TargetSet::all(stream.node_count() as u32);
        let view = EventView::new(stream);
        let mut arena = EngineArena::new();
        let mut per_scale = Vec::new();
        for &k in scales {
            let timeline = Timeline::aggregated_from_view(&view, k);
            let off_opts = DpOptions { no_delta_propagation: true, ..Default::default() };
            let on_opts = DpOptions::default();
            let (sum_off, stats_off) =
                engine_checksum(&mut arena, &timeline, &targets, off_opts);
            let (sum_on, stats_on) = engine_checksum(&mut arena, &timeline, &targets, on_opts);
            let ok = sum_off == sum_on;
            all_match &= ok;
            assert!(ok, "delta-on vs delta-off checksum diverged: {name} k={k}");
            let t_off = time_median(reps, || {
                earliest_arrival_dp_in(&mut arena, &timeline, &targets, &mut NullSink, off_opts)
            });
            let t_on = time_median(reps, || {
                earliest_arrival_dp_in(&mut arena, &timeline, &targets, &mut NullSink, on_opts)
            });
            let speedup = t_off / t_on;
            println!(
                "  delta {name} k={k:>7}  off {:>9.3} ms  on {:>9.3} ms  ({speedup:.2}x)  \
                 offers {} -> {}  snap {} -> {}",
                t_off * 1e3,
                t_on * 1e3,
                stats_off.chain_offers,
                stats_on.chain_offers,
                stats_off.snap_entries,
                stats_on.snap_entries,
            );
            per_scale.push(obj(vec![
                ("k", Value::Int(k as i128)),
                ("delta_off_seconds", Value::Float(t_off)),
                ("delta_on_seconds", Value::Float(t_on)),
                ("speedup", Value::Float(speedup)),
                ("chain_offers_off", Value::Int(stats_off.chain_offers as i128)),
                ("chain_offers_on", Value::Int(stats_on.chain_offers as i128)),
                ("snap_entries_off", Value::Int(stats_off.snap_entries as i128)),
                ("snap_entries_on", Value::Int(stats_on.snap_entries as i128)),
                ("trips", Value::Int(stats_on.trips as i128)),
                ("checksum_match", Value::Bool(ok)),
            ]));
        }
        sections.push((name, Value::Array(per_scale)));
    }
    let mut entries: Vec<(&str, Value)> = vec![("checksums_match", Value::Bool(all_match))];
    entries.extend(sections);
    obj(entries)
}

/// The `timeline` section: per-scale CSR timeline build cost, scratch (the
/// full radix scatter off the shared event view) vs incremental
/// (adjacent-window merge from the previously built finer scale,
/// `Timeline::aggregated_by_merge`), along a divisor ladder per workload.
/// Merged-vs-scratch checksums are hard-asserted — the merge claims
/// field-for-field identity, so any divergence is a correctness bug, not
/// noise.
fn measure_timeline(workloads: &[(&str, &LinkStream)], fast: bool, reps: usize) -> Value {
    // consecutive entries divide (ratios 2/5/5/2/10), so every scale after
    // the first takes the merge path — the access pattern of a sweep's
    // fine-scale tail, where the per-scale build is a visible wall-time
    // fraction since the delta engine closed the offer-bound tail
    let ladder: Vec<u64> = if fast {
        vec![10_000, 5_000, 1_000, 200, 100]
    } else {
        vec![100_000, 50_000, 10_000, 2_000, 1_000, 100]
    };
    let mut sections = Vec::new();
    let mut all_match = true;
    for &(name, stream) in workloads {
        let view = EventView::new(stream);
        let mut rows = Vec::new();
        let mut fine = Timeline::aggregated_from_view(&view, ladder[0]);
        for pair in ladder.windows(2) {
            let (from_k, k) = (pair[0], pair[1]);
            let merged = fine.aggregated_by_merge(k);
            let scratch = Timeline::aggregated_from_view(&view, k);
            let ok = merged.checksum() == scratch.checksum();
            all_match &= ok;
            assert!(ok, "merged vs scratch timeline checksum diverged: {name} k={k}");
            let t_scratch = time_median(reps, || Timeline::aggregated_from_view(&view, k));
            let t_inc = time_median(reps, || fine.aggregated_by_merge(k));
            let speedup = t_scratch / t_inc;
            println!(
                "  timeline {name} k={from_k:>7} -> {k:>7}  scratch {:>9.3} ms  \
                 merge {:>9.3} ms  ({speedup:.2}x)",
                t_scratch * 1e3,
                t_inc * 1e3,
            );
            rows.push(obj(vec![
                ("k", Value::Int(k as i128)),
                ("from_k", Value::Int(from_k as i128)),
                ("ratio", Value::Int((from_k / k) as i128)),
                ("edges", Value::Int(scratch.total_edges() as i128)),
                ("scratch_seconds", Value::Float(t_scratch)),
                ("incremental_seconds", Value::Float(t_inc)),
                ("speedup", Value::Float(speedup)),
                ("checksum_match", Value::Bool(ok)),
            ]));
            fine = merged;
        }
        sections.push((name, Value::Array(rows)));
    }
    let mut entries: Vec<(&str, Value)> = vec![("checksums_match", Value::Bool(all_match))];
    entries.extend(sections);
    obj(entries)
}

/// The `streaming` section: what an ingest session's sweep cache buys. A
/// pinned-period ring stream grows through append rounds landing in the
/// late suffix (the `/v1/streams` access pattern), and each round times a
/// warm [`OccupancyMethod::try_refresh_on`] against a scratch sweep of the
/// same grown stream. Refresh-vs-scratch reports are hard-asserted
/// byte-identical (`to_json`) — the session cache must be invisible in
/// report bytes, visible only in wall time. A final append-free refresh
/// records the full-reuse path (every scale served from cached histograms).
fn measure_streaming(fast: bool, reps: usize) -> Value {
    let n: u32 = if fast { 100 } else { 150 };
    let span: i64 = if fast { 40_000 } else { 100_000 };
    let comb: i64 = if fast { 250 } else { 500 };
    let rounds: i64 = 4;
    // small poll-between-batches appends: a live feed delivers a handful of
    // contact continuations between re-analyzes, not bulk backfills
    let batch: i64 = if fast { 12 } else { 24 };
    let points = if fast { 8 } else { 12 };
    let reps = reps.min(3);

    // base ring activity is a per-pair comb covering the whole pinned
    // period: every window at least `comb` wide provably holds every ring
    // edge. Append rounds then re-fire existing pairs 1-3 ticks after one
    // of their late comb events — the contact-train texture of streamed
    // face-to-face data, where a live edge keeps firing at closely spaced
    // timestamps. At every scale whose windows absorb that spacing the
    // appends deduplicate away, the spliced timeline comes back
    // field-for-field identical, and the cached histogram is served with
    // zero DP work; only the tick-finest scales recompute.
    let append_from = span * 9 / 10;
    let mut builder = LinkStreamBuilder::indexed(Directedness::Undirected, n);
    builder.period(0, span);
    for u in 0..n {
        let mut t = (u as i64 * 37) % comb;
        while t <= span {
            builder.add_indexed(u, (u + 1) % n, t);
            t += comb;
        }
    }
    let base = builder.snapshot().expect("non-empty base");

    // the method configuration `/v1/streams/<id>/analyze` runs: geometric
    // grid, default refinement
    let method = OccupancyMethod::new().grid(SweepGrid::Geometric { points }).threads(1);
    let mut pool = WorkerPool::new(1);
    let ctl = SweepControl::new();
    let mut cache = SweepCache::new();
    let cold_start = Instant::now();
    let cold = method
        .try_refresh_on(&base, &mut pool, &ctl, &mut cache, None)
        .expect("never cancelled");
    let cold_seconds = cold_start.elapsed().as_secs_f64();
    assert!(
        cold.to_json() == method.run_on(&base, &mut pool).to_json(),
        "streaming cold refresh diverged from scratch"
    );
    println!(
        "  streaming n={n} events_base={} points={points}: cold refresh {:.3} ms",
        base.len(),
        cold_seconds * 1e3,
    );

    let mut per_round = Vec::new();
    let mut all_identical = true;
    let (mut total_scratch, mut total_refresh) = (0.0f64, 0.0f64);
    let (mut reused, mut respliced, mut tiles_skipped, mut suffix_rebuilt) =
        (0u64, 0u64, 0u64, 0u64);
    let mut scales = 0u64;
    let mut clean_refresh_seconds = 0.0f64;
    // round `rounds` appends nothing: the clean full-reuse refresh
    for r in 0..=rounds {
        let dirty = if r < rounds {
            let lo = append_from + (span - append_from) * r / rounds;
            for i in 0..batch {
                let u = ((i * 13 + r * 7) % n as i64) as u32;
                // the first comb event of pair u at or after `lo`, continued
                // one tick later (comb spacing keeps t off the comb itself)
                let t0 = lo + ((u as i64 * 37) % comb - lo).rem_euclid(comb);
                let t = (t0 + 1).min(span);
                builder.add_indexed(u, (u + 1) % n, t);
            }
            Some(lo)
        } else {
            None
        };
        let grown = builder.snapshot().expect("non-empty");
        let t_scratch = time_median(reps, || method.run_on(&grown, &mut pool));
        // each rep refreshes a clone of the pre-round cache, so every rep
        // does the same (warm) work; the clone cost lands on the refresh
        // side, making the reported speedup conservative
        let t_refresh = time_median(reps, || {
            let mut warm = cache.clone();
            method.try_refresh_on(&grown, &mut pool, &ctl, &mut warm, dirty)
        });
        let refreshed = method
            .try_refresh_on(&grown, &mut pool, &ctl, &mut cache, dirty)
            .expect("never cancelled");
        let stats = cache.stats;
        let ok = refreshed.to_json() == method.run_on(&grown, &mut pool).to_json();
        all_identical &= ok;
        assert!(ok, "streaming round {r}: refresh diverged from scratch");
        let speedup = t_scratch / t_refresh;
        println!(
            "  streaming round {r}: events={:>6}  scratch {:>8.3} ms  refresh {:>8.3} ms  \
             ({speedup:.2}x)  reused {}/{} respliced {} suffix_windows {}",
            grown.len(),
            t_scratch * 1e3,
            t_refresh * 1e3,
            stats.scales_reused,
            stats.scales_total,
            stats.scales_respliced,
            stats.suffix_windows_rebuilt,
        );
        if r < rounds {
            total_scratch += t_scratch;
            total_refresh += t_refresh;
        } else {
            clean_refresh_seconds = t_refresh;
        }
        reused += stats.scales_reused;
        respliced += stats.scales_respliced;
        tiles_skipped += stats.tiles_skipped;
        suffix_rebuilt += stats.suffix_windows_rebuilt;
        scales = stats.scales_total;
        per_round.push(obj(vec![
            ("round", Value::Int(r as i128)),
            ("events", Value::Int(grown.len() as i128)),
            ("dirty_from", dirty.map_or(Value::Null, |t| Value::Int(t as i128))),
            ("scratch_seconds", Value::Float(t_scratch)),
            ("refresh_seconds", Value::Float(t_refresh)),
            ("speedup", Value::Float(speedup)),
            ("scales_total", Value::Int(stats.scales_total as i128)),
            ("scales_reused", Value::Int(stats.scales_reused as i128)),
            ("scales_respliced", Value::Int(stats.scales_respliced as i128)),
            ("scales_scratch", Value::Int(stats.scales_scratch as i128)),
            ("tiles_skipped", Value::Int(stats.tiles_skipped as i128)),
            ("suffix_windows_rebuilt", Value::Int(stats.suffix_windows_rebuilt as i128)),
            ("reports_identical", Value::Bool(ok)),
        ]));
    }
    let events_appended = builder.len() as i64 - base.len() as i64;
    let speedup = total_scratch / total_refresh;
    println!(
        "  streaming totals: scratch {:.3} s  refresh {:.3} s  ({speedup:.2}x over append \
         rounds, clean refresh {:.3} ms)",
        total_scratch,
        total_refresh,
        clean_refresh_seconds * 1e3,
    );
    obj(vec![
        ("workload", Value::String("streaming_ring".to_string())),
        ("nodes", Value::Int(n as i128)),
        ("span_ticks", Value::Int(span as i128)),
        ("points", Value::Int(points as i128)),
        ("events_base", Value::Int(base.len() as i128)),
        ("events_appended", Value::Int(events_appended as i128)),
        ("append_rounds", Value::Int(rounds as i128)),
        ("cold_refresh_seconds", Value::Float(cold_seconds)),
        ("scales", Value::Int(scales as i128)),
        ("scales_reused", Value::Int(reused as i128)),
        ("scales_respliced", Value::Int(respliced as i128)),
        ("tiles_skipped", Value::Int(tiles_skipped as i128)),
        ("suffix_windows_rebuilt", Value::Int(suffix_rebuilt as i128)),
        ("scratch_seconds", Value::Float(total_scratch)),
        ("refresh_seconds", Value::Float(total_refresh)),
        ("clean_refresh_seconds", Value::Float(clean_refresh_seconds)),
        ("speedup", Value::Float(speedup)),
        ("reports_identical", Value::Bool(all_identical)),
        ("per_round", Value::Array(per_round)),
    ])
}

fn main() {
    let fast = saturn_bench::fast_mode();
    let reps = if fast { 3 } else { 5 };

    let dense = if fast {
        TimeUniform { nodes: 24, links_per_pair: 4, span: 20_000, seed: 7 }.generate()
    } else {
        TimeUniform { nodes: 60, links_per_pair: 6, span: 100_000, seed: 7 }.generate()
    };
    let sparse = if fast { sparse_ring(120, 10) } else { sparse_ring(600, 40) };
    let burst = if fast { sparse_burst(120, 4, 6) } else { sparse_burst(600, 8, 8) };
    let scales: Vec<u64> = if fast {
        vec![100, 1_000, 10_000]
    } else {
        vec![1_000, 2_000, 10_000, 20_000, 100_000]
    };

    let (dense_json, dl, dc) = measure_workload("dense_uniform", &dense, &scales, reps);
    let (sparse_json, sl, sc) = measure_workload("sparse_ring", &sparse, &scales, reps);
    let (burst_json, bl, bc) = measure_workload("sparse_burst", &burst, &scales, reps);

    println!("delta propagation (change-driven offers) on vs off:");
    let delta = measure_delta(
        &[("dense_uniform", &dense), ("sparse_ring", &sparse), ("sparse_burst", &burst)],
        &scales,
        reps,
    );

    println!("intra-scale parallelism (target tiling + degree-1 fast path):");
    let intra_scale = measure_intra_scale(&dense, &sparse, fast, reps);

    println!("incremental timeline construction (adjacent-window merge) vs scratch:");
    let timeline = measure_timeline(
        &[("dense_uniform", &dense), ("sparse_ring", &sparse), ("sparse_burst", &burst)],
        fast,
        reps,
    );

    println!("streaming ingest refresh (session sweep cache) vs scratch sweeps:");
    let streaming = measure_streaming(fast, reps);

    // --- end-to-end method timings on the dense workload ------------------
    let grid = SweepGrid::Geometric { points: if fast { 10 } else { 16 } };
    let mut end_to_end = Vec::new();
    for threads in [1usize, 2, 4] {
        let t = time_median(reps.min(3), || {
            OccupancyMethod::new().grid(grid.clone()).threads(threads).refine(2, 6).run(&dense)
        });
        println!("method threads={threads}: {t:.3} s");
        end_to_end.push(obj(vec![
            ("threads", Value::Int(threads as i128)),
            ("run_seconds", Value::Float(t)),
        ]));
    }

    let aggregate = (dl + sl + bl) / (dc + sc + bc);
    println!("aggregate pipeline speedup over all workloads: {aggregate:.2}x");

    let mut top = vec![
        (
            "description",
            Value::String(
                "Sweep-engine perf trajectory: per-scale wall time of the pre-rework \
                 pipeline (per-call timeline build + fresh-table baseline engine) vs the \
                 current pipeline (shared sorted event view + frontier/arena engine), \
                 traversal throughput, end-to-end method timings. Regenerate: cargo run \
                 --release -p saturn-bench --bin bench_sweep"
                    .to_string(),
            ),
        ),
        (
            "host",
            obj(vec![
                (
                    "available_parallelism",
                    Value::Int(
                        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1)
                            as i128,
                    ),
                ),
                ("fast_mode", Value::Bool(fast)),
            ]),
        ),
        ("dense_uniform", dense_json),
        ("sparse_ring", sparse_json),
        ("sparse_burst", burst_json),
        ("delta", delta),
        ("intra_scale", intra_scale),
        ("timeline", timeline),
        ("streaming", streaming),
        ("end_to_end", Value::Array(end_to_end)),
        ("aggregate_pipeline_speedup", Value::Float(aggregate)),
    ];
    if let Some(kb) = peak_rss_kb() {
        top.push(("peak_rss_kb", Value::Int(kb as i128)));
    }

    let out_path =
        std::env::var("SATURN_BENCH_OUT").unwrap_or_else(|_| "BENCH_sweep.json".to_string());
    std::fs::write(&out_path, obj(top).to_string_pretty()).expect("cannot write bench output");
    println!("wrote {out_path}");
}
