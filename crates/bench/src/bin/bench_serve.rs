//! `bench_serve` — throughput of the analysis service, cold vs. cache-hit.
//!
//! Starts an in-process [`saturn_server::Server`] on an ephemeral port and
//! drives it over real sockets:
//!
//! * **cold** — every request carries a distinct trace (different synth
//!   seeds), so each one misses the report cache and pays a full sweep on
//!   the shared worker pool. This bounds the service's compute-limited
//!   throughput.
//! * **cache-hit** — one trace repeated from several concurrent clients
//!   after a priming request; every response is served from the
//!   content-addressed cache without touching the sweep engine. This bounds
//!   the service's delivery-limited throughput, and the ratio of the two is
//!   what the cache buys on repeated traffic.
//! * **disk-hit** — the server is drained (spilling every cached report to
//!   the durable tier), stopped, and restarted on the same `--cache-dir`
//!   with the memory tier disabled, so every repeat request pays exactly one
//!   disk read + checksum verify. This sits between the other two: the cost
//!   of a warm restart, and what the spill tier buys over recomputing.
//!
//! Per-request latencies go through the server's own
//! [`saturn_server::metrics::Histogram`], so the p50/p90/p99 in
//! `bench_serve.json` are computed by the exact bucket math `/v1/metrics`
//! exports. Whether the hit path really hit is proven by scraping
//! `/v1/metrics` and checking `saturn_cache_hits_total` /
//! `saturn_cache_misses_total` deltas — not inferred from timing.
//!
//! ```sh
//! cargo run --release -p saturn-bench --bin bench_serve            # full
//! SATURN_FAST=1 cargo run --release -p saturn-bench --bin bench_serve
//! ```
//!
//! Writes `bench_serve.json` under the results directory (`SATURN_OUT`).

use saturn_bench::{dataset, fast_mode, out_dir};
use saturn_linkstream::io as stream_io;
use saturn_server::metrics::Histogram;
use saturn_server::{Server, ServerConfig};
use saturn_synth::DatasetProfile;
use serde_json::Value;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// One blocking request; returns the status code and body length.
fn post_analyze(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    (status, rest.len())
}

/// Scrapes `GET /v1/metrics` and returns the raw exposition text.
fn scrape_metrics(addr: SocketAddr) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET /v1/metrics HTTP/1.1\r\nHost: bench\r\nConnection: close\r\n\r\n")
        .expect("write head");
    let mut raw = String::new();
    BufReader::new(stream).read_to_string(&mut raw).expect("read metrics");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    assert!(head.starts_with("HTTP/1.1 200"), "metrics scrape failed: {head}");
    body.to_string()
}

/// The value of an unlabelled counter/gauge sample in an exposition body.
fn sample(text: &str, name: &str) -> u64 {
    text.lines()
        .find_map(|line| line.strip_prefix(name).and_then(|rest| rest.strip_prefix(' ')))
        .unwrap_or_else(|| panic!("metric {name} not in scrape"))
        .parse::<f64>()
        .expect("numeric sample") as u64
}

/// `(p50, p90, p99)` of `h` as a JSON object, microseconds.
fn percentiles_json(h: &Histogram) -> Value {
    let (p50, p90, p99) = h.percentiles().expect("non-empty histogram");
    obj(vec![
        ("p50_us", Value::Int(p50 as i128)),
        ("p90_us", Value::Int(p90 as i128)),
        ("p99_us", Value::Int(p99 as i128)),
    ])
}

fn main() {
    let fast = fast_mode();
    let (cold_requests, hit_requests, disk_requests, clients, points) =
        if fast { (3, 300, 120, 4, 8) } else { (8, 3000, 1000, 8, 24) };
    let profile = dataset(DatasetProfile::irvine());
    println!(
        "bench_serve — {} stand-in, {} cold / {} hit / {} disk-hit requests, {clients} clients, points={points}",
        profile.name, cold_requests, hit_requests, disk_requests
    );

    let cache_dir =
        std::env::temp_dir().join(format!("saturn-bench-serve-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&cache_dir);
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server = server.spawn().expect("spawn");
    let target = format!("/v1/analyze?points={points}&directed=1");

    // ---- cold path: distinct trace per request, every one a cache miss
    let cold_bodies: Vec<String> = (0..cold_requests)
        .map(|seed| stream_io::to_string(&profile.generate(1000 + seed as u64)))
        .collect();
    let cold_latency = Histogram::new();
    let started = Instant::now();
    for body in &cold_bodies {
        let request_started = Instant::now();
        let (status, len) = post_analyze(addr, &target, body.as_bytes());
        cold_latency.observe(request_started.elapsed());
        assert_eq!(status, 200, "cold request failed");
        assert!(len > 0);
    }
    let cold_secs = started.elapsed().as_secs_f64();
    let cold_rps = cold_requests as f64 / cold_secs;
    let (cold_p50, cold_p90, cold_p99) = cold_latency.percentiles().expect("cold samples");
    println!("  cold:      {cold_requests} requests in {cold_secs:.3}s = {cold_rps:.2} req/s");
    println!("             p50≤{cold_p50}µs p90≤{cold_p90}µs p99≤{cold_p99}µs");

    // ---- cache-hit path: one trace, primed once, hammered concurrently
    let hot_body: Arc<String> = Arc::new(stream_io::to_string(&profile.generate(7)));
    let (status, _) = post_analyze(addr, &target, hot_body.as_bytes());
    assert_eq!(status, 200, "priming request failed");
    let before = scrape_metrics(addr);
    let hits_before = sample(&before, "saturn_cache_hits_total");
    let misses_before = sample(&before, "saturn_cache_misses_total");
    // cold requests and the priming request each missed exactly once
    assert_eq!(
        misses_before,
        cold_requests as u64 + 1,
        "every cold request and the primer should miss once"
    );
    let per_client = hit_requests / clients;
    let hit_latency = Histogram::new();
    let started = Instant::now();
    let workers: Vec<_> = (0..clients)
        .map(|_| {
            let body = Arc::clone(&hot_body);
            let target = target.clone();
            std::thread::spawn(move || {
                // per-client histogram, merged below — same merge path the
                // registry relies on being exact
                let latency = Histogram::new();
                for _ in 0..per_client {
                    let request_started = Instant::now();
                    let (status, len) = post_analyze(addr, &target, body.as_bytes());
                    latency.observe(request_started.elapsed());
                    assert_eq!(status, 200, "hit request failed");
                    assert!(len > 0);
                }
                latency
            })
        })
        .collect();
    for worker in workers {
        hit_latency.merge(&worker.join().expect("client thread"));
    }
    let hit_secs = started.elapsed().as_secs_f64();
    let served = (per_client * clients) as f64;
    let hit_rps = served / hit_secs;
    let (hit_p50, hit_p90, hit_p99) = hit_latency.percentiles().expect("hit samples");
    println!("  cache-hit: {served} requests in {hit_secs:.3}s = {hit_rps:.2} req/s");
    println!("             p50≤{hit_p50}µs p90≤{hit_p90}µs p99≤{hit_p99}µs");
    println!("  speedup:   {:.1}x over the cold path", hit_rps / cold_rps);

    // the hit loop really hit: the server's own counters moved by exactly
    // the number of requests served, and nothing missed. Explicit counters,
    // not timing inference — a regression that quietly recomputes every
    // "hit" fails here even on a machine fast enough to hide it.
    let after = scrape_metrics(addr);
    assert_eq!(
        sample(&after, "saturn_cache_hits_total") - hits_before,
        served as u64,
        "every hit-phase request should be served from cache"
    );
    assert_eq!(
        sample(&after, "saturn_cache_misses_total"),
        misses_before,
        "no hit-phase request should miss"
    );

    // ---- disk-hit path: drain (flushing every report to the spill tier),
    // restart on the same cache dir with the memory tier off, and repeat one
    // trace — every response is one disk read + checksum verify.
    assert!(
        sample(&after, "saturn_cache_disk_writes_total") > cold_requests as u64,
        "every distinct report should have spilled to disk"
    );
    server.drain(Duration::from_secs(10));
    server.stop();
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        cache_bytes: 0,
        cache_dir: Some(cache_dir.clone()),
        ..ServerConfig::default()
    })
    .expect("rebind on warm cache dir");
    let addr = server.local_addr().expect("addr");
    let server = server.spawn().expect("respawn");
    let disk_latency = Histogram::new();
    let started = Instant::now();
    for _ in 0..disk_requests {
        let request_started = Instant::now();
        let (status, len) = post_analyze(addr, &target, hot_body.as_bytes());
        disk_latency.observe(request_started.elapsed());
        assert_eq!(status, 200, "disk-hit request failed");
        assert!(len > 0);
    }
    let disk_secs = started.elapsed().as_secs_f64();
    let disk_rps = disk_requests as f64 / disk_secs;
    let (disk_p50, disk_p90, disk_p99) = disk_latency.percentiles().expect("disk samples");
    println!("  disk-hit:  {disk_requests} requests in {disk_secs:.3}s = {disk_rps:.2} req/s");
    println!("             p50≤{disk_p50}µs p90≤{disk_p90}µs p99≤{disk_p99}µs");

    // the disk loop really read the spill tier: the restarted server's
    // disk-hit counter moved once per request and nothing recomputed.
    let warm = scrape_metrics(addr);
    assert_eq!(
        sample(&warm, "saturn_cache_disk_hits_total"),
        disk_requests as u64,
        "every disk-phase request should be served from the spill tier"
    );
    assert_eq!(
        sample(&warm, "saturn_cache_disk_corrupt_total"),
        0,
        "no spill entry should fail verification"
    );

    let record = obj(vec![
        ("workload", Value::String(profile.name.to_string())),
        ("fast_mode", Value::Bool(fast)),
        ("points", Value::Int(points as i128)),
        ("clients", Value::Int(clients as i128)),
        (
            "cold",
            obj(vec![
                ("requests", Value::Int(cold_requests as i128)),
                ("seconds", Value::Float(cold_secs)),
                ("requests_per_second", Value::Float(cold_rps)),
                ("latency", percentiles_json(&cold_latency)),
            ]),
        ),
        (
            "cache_hit",
            obj(vec![
                ("requests", Value::Int(served as i128)),
                ("seconds", Value::Float(hit_secs)),
                ("requests_per_second", Value::Float(hit_rps)),
                ("latency", percentiles_json(&hit_latency)),
            ]),
        ),
        (
            "disk_hit",
            obj(vec![
                ("requests", Value::Int(disk_requests as i128)),
                ("seconds", Value::Float(disk_secs)),
                ("requests_per_second", Value::Float(disk_rps)),
                ("latency", percentiles_json(&disk_latency)),
            ]),
        ),
        ("hit_over_cold_speedup", Value::Float(hit_rps / cold_rps)),
        ("disk_over_cold_speedup", Value::Float(disk_rps / cold_rps)),
    ]);
    let path = out_dir().join("bench_serve.json");
    std::fs::write(&path, record.to_string_pretty()).expect("write bench_serve.json");
    println!("  wrote {}", path.display());
    server.stop();
    let _ = std::fs::remove_dir_all(&cache_dir);
}
