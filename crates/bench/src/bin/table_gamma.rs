//! The Section 5 results table: saturation scale γ and mean activity for all
//! four datasets, reproducing the paper's central quantitative claim —
//! higher activity ⇒ smaller saturation scale (Facebook 46 h > Enron 78 h?
//! no: the *two lowest-activity* networks get the two largest γ, and the two
//! highest-activity ones the two smallest).

use saturn_bench::{dataset, grid_points, write_table, HOUR};
use saturn_core::{OccupancyMethod, SweepGrid};
use saturn_synth::DatasetProfile;

fn main() {
    println!("Section 5 table — saturation scales of the four dataset stand-ins\n");
    println!(
        "{:>15} {:>8} {:>9} {:>12} {:>12} {:>12}",
        "dataset", "nodes", "events", "msg/pers/day", "γ (h)", "paper γ (h)"
    );

    let mut rows = Vec::new();
    let mut activities = Vec::new();
    let mut gammas = Vec::new();
    for profile in DatasetProfile::all() {
        let profile = dataset(profile);
        let stream = profile.generate(1);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: grid_points(48) })
            .run(&stream);
        let gamma = report.gamma().expect("non-degenerate stream");
        let activity = profile.activity_per_person_per_day();
        println!(
            "{:>15} {:>8} {:>9} {:>12.2} {:>12.1} {:>12.0}",
            profile.name,
            stream.node_count(),
            stream.len(),
            activity,
            gamma.delta_ticks / HOUR,
            profile.paper_gamma_hours
        );
        rows.push(vec![activity, gamma.delta_ticks / HOUR, profile.paper_gamma_hours]);
        activities.push((profile.name, activity));
        gammas.push((profile.name, gamma.delta_ticks / HOUR));
    }
    write_table("table_gamma.dat", &["activity_per_day", "gamma_h", "paper_gamma_h"], &rows);

    // The paper's claim: the two low-activity networks (facebook, enron)
    // have larger γ than the two high-activity ones (irvine, manufacturing).
    let g = |name: &str| gammas.iter().find(|(n, _)| *n == name).unwrap().1;
    let low_min = g("facebook").min(g("enron"));
    let high_max = g("irvine").max(g("manufacturing"));
    let ordering_holds = low_min > high_max;
    println!(
        "\nactivity/γ anti-correlation (min(fb,enron) = {low_min:.1} h > max(irvine,mfg) = \
         {high_max:.1} h): {ordering_holds}"
    );
    saturn_bench::append_summary(
        "Section 5 table (γ per dataset)",
        &format!(
            "{}; low-activity γ exceeds high-activity γ: {ordering_holds}",
            gammas.iter().map(|(n, g)| format!("{n} {g:.1}h")).collect::<Vec<_>>().join(", ")
        ),
    );
}
