//! Figure 2 — the classical parameters of the aggregated series as functions
//! of Δ, for the Irvine stand-in: density (top-left), non-isolated vertices
//! and largest connected component (top-right), distance in time (bottom-
//! left, log-log) and distance in absolute time + distance in hops
//! (bottom-right).
//!
//! The point of the figure: all of these drift smoothly from one extreme to
//! the other — no scale stands out — which motivates the occupancy method.

use saturn_bench::{dataset, grid_points, write_table, HOUR};
use saturn_core::{classic_sweep, SweepGrid, TargetSpec};
use saturn_synth::DatasetProfile;

fn main() {
    let profile = dataset(DatasetProfile::irvine());
    println!("Figure 2 — classical parameters vs Δ ({} stand-in)", profile.name);
    let stream = profile.generate(1);
    let points = classic_sweep(
        &stream,
        &SweepGrid::Geometric { points: grid_points(40) },
        TargetSpec::All,
        0,
        1,
    );

    let rows: Vec<Vec<f64>> = points
        .iter()
        .map(|p| {
            vec![
                p.delta_ticks / HOUR,
                p.snapshots.mean_density,
                p.snapshots.mean_non_isolated,
                p.snapshots.mean_largest_component,
                p.distances.mean_dtime_steps,
                p.distances.mean_dabstime_ticks / HOUR,
                p.distances.mean_dhops,
            ]
        })
        .collect();
    write_table(
        "fig2_classic.dat",
        &[
            "delta_h",
            "density",
            "non_isolated",
            "largest_cc",
            "dtime_steps",
            "dabstime_h",
            "dhops",
        ],
        &rows,
    );

    println!(
        "\n{:>12} {:>12} {:>10} {:>10} {:>12} {:>12} {:>8}",
        "Δ (h)", "density", "non-isol", "LCC", "d_time", "d_abs (h)", "d_hops"
    );
    for p in points.iter().step_by((points.len() / 14).max(1)) {
        println!(
            "{:>12.4} {:>12.3e} {:>10.1} {:>10.1} {:>12.1} {:>12.1} {:>8.2}",
            p.delta_ticks / HOUR,
            p.snapshots.mean_density,
            p.snapshots.mean_non_isolated,
            p.snapshots.mean_largest_component,
            p.distances.mean_dtime_steps,
            p.distances.mean_dabstime_ticks / HOUR,
            p.distances.mean_dhops,
        );
    }

    // The paper's qualitative checks.
    let first = points.first().unwrap();
    let last = points.last().unwrap();
    assert!(first.snapshots.mean_density < last.snapshots.mean_density);
    assert!(first.distances.mean_dtime_steps > last.distances.mean_dtime_steps);
    assert!((last.distances.mean_dhops - 1.0).abs() < 1e-9);
    println!(
        "\nmonotone drifts confirmed: density {:.2e} -> {:.2e}, d_hops {:.2} -> 1, \
         d_abstime -> T = {:.0} h",
        first.snapshots.mean_density,
        last.snapshots.mean_density,
        first.distances.mean_dhops,
        last.distances.mean_dabstime_ticks / HOUR
    );
    saturn_bench::append_summary(
        "Figure 2 (classical parameters, Irvine stand-in)",
        &format!(
            "density {:.3e} -> {:.3e}; LCC {:.1} -> {:.1}; d_hops {:.2} -> {:.2}; \
             all drift smoothly — no detectable scale (matches the paper)",
            first.snapshots.mean_density,
            last.snapshots.mean_density,
            first.snapshots.mean_largest_component,
            last.snapshots.mean_largest_component,
            first.distances.mean_dhops,
            last.distances.mean_dhops
        ),
    );
}
