//! Figure 5 — M-K proximity vs Δ for the Facebook, Enron and Manufacturing
//! stand-ins; each curve is unimodal with its maximum at the dataset's
//! saturation scale (paper: 46 h, 76 h, 12 h on the real traces).

use saturn_bench::{ascii_curve, dataset, grid_points, write_series, HOUR};
use saturn_core::{OccupancyMethod, SweepGrid};
use saturn_synth::DatasetProfile;

fn main() {
    let mut lines = Vec::new();
    for profile in
        [DatasetProfile::facebook(), DatasetProfile::enron(), DatasetProfile::manufacturing()]
    {
        let profile = dataset(profile);
        println!("Figure 5 — M-K proximity ({} stand-in)", profile.name);
        let stream = profile.generate(1);
        let report = OccupancyMethod::new()
            .grid(SweepGrid::Geometric { points: grid_points(40) })
            .run(&stream);
        let gamma = report.gamma().expect("non-degenerate stream");
        let curve: Vec<(f64, f64)> =
            report.score_curve().iter().map(|&(d, s)| (d / HOUR, s)).collect();
        write_series(
            &format!("fig5_{}_mk_proximity.dat", profile.name),
            "delta_h mk_proximity",
            &curve,
        );
        println!("{}", ascii_curve(&curve, 14));
        println!(
            "  γ({}) = {:.1} h  (paper: {:.0} h on the real trace)\n",
            profile.name,
            gamma.delta_ticks / HOUR,
            profile.paper_gamma_hours
        );
        lines.push(format!(
            "γ({}) = {:.1} h (paper {:.0} h)",
            profile.name,
            gamma.delta_ticks / HOUR,
            profile.paper_gamma_hours
        ));
    }
    saturn_bench::append_summary("Figure 5 (proximity curves)", &lines.join("; "));
}
