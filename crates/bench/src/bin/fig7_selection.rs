//! Figure 7 — comparison of the selection methods of Section 7 on the Irvine
//! stand-in: the Δ each method selects, the ICD of each selected
//! distribution (left panel), and the normalized score curves (right panel).
//!
//! The paper's findings to reproduce: M-K, standard deviation, Shannon(10)
//! and CRE select nearly the same scale (14.5 h – 18.7 h on the real trace);
//! the variation coefficient degenerates to (almost) no aggregation; Shannon
//! is sensitive to its slot count, drifting fine-ward as slots increase.

use saturn_bench::{dataset, downsample, grid_points, write_series, HOUR};
use saturn_core::{compare_selection_methods, KeepPolicy, SweepGrid, TargetSpec};
use saturn_distrib::{SelectionMetric, WeightedDist};
use saturn_synth::DatasetProfile;
use saturn_trips::{occupancy_histogram, TargetSet};

fn main() {
    let profile = dataset(DatasetProfile::irvine());
    println!("Figure 7 — selection-method comparison ({} stand-in)\n", profile.name);
    let stream = profile.generate(1);
    let cmp = compare_selection_methods(
        &stream,
        SweepGrid::Geometric { points: grid_points(40) },
        TargetSpec::All,
        0,
        KeepPolicy::ScoresOnly,
    );

    println!("{:>32} {:>12}", "method", "selected Δ (h)");
    let mut summary = Vec::new();
    for (metric, gamma) in &cmp.gammas {
        let delta_h = gamma.map(|g| g.delta_ticks / HOUR);
        println!(
            "{:>32} {:>12}",
            metric.to_string(),
            delta_h.map_or("—".into(), |d| format!("{d:.2}"))
        );
        if let Some(d) = delta_h {
            summary.push(format!("{metric}: {d:.2}h"));
        }

        // right panel: normalized curves
        let curve: Vec<(f64, f64)> =
            cmp.normalized_curve(*metric).into_iter().map(|(d, s)| (d / HOUR, s)).collect();
        if !curve.is_empty() {
            let slug = metric.to_string().replace([' ', '(', ')', '-'], "_").to_lowercase();
            write_series(&format!("fig7_curve_{slug}.dat"), "delta_h normalized_score", &curve);
        }

        // left panel: ICD of the selected distribution (recomputed for just
        // this scale; keeping every sweep distribution would hold millions
        // of rates per fine scale in memory)
        if let Some(g) = gamma {
            let hist =
                occupancy_histogram(&stream, g.k, &TargetSet::all(stream.node_count() as u32));
            let dist = WeightedDist::from_pairs(hist.sorted_rates());
            let slug = metric.to_string().replace([' ', '(', ')', '-'], "_").to_lowercase();
            write_series(
                &format!("fig7_icd_{slug}.dat"),
                &format!("ICD selected by {metric} at Δ = {:.2} h", g.delta_ticks / HOUR),
                &downsample(&dist.icd_points(), 2_000),
            );
        }
    }

    // Quantified claims.
    let delta = |m: SelectionMetric| {
        cmp.gammas
            .iter()
            .find(|(mm, _)| *mm == m)
            .and_then(|(_, g)| *g)
            .map(|g| g.delta_ticks)
            .expect("selected")
    };
    let mk = delta(SelectionMetric::MkProximity);
    let sd = delta(SelectionMetric::StdDev);
    let sh10 = delta(SelectionMetric::ShannonEntropy { slots: 10 });
    let cre = delta(SelectionMetric::Cre);
    let cv = delta(SelectionMetric::VariationCoefficient);
    let sh100 = delta(SelectionMetric::ShannonEntropy { slots: 100 });

    let close = |a: f64, b: f64| a.max(b) / a.min(b) <= 4.0;
    println!(
        "\nM-K ≈ std-dev ≈ Shannon(10) ≈ CRE: {}",
        close(mk, sd) && close(mk, sh10) && close(mk, cre)
    );
    println!("variation coefficient degenerates fine-ward: {}", cv <= mk);
    println!("Shannon(100) selects a finer scale than Shannon(10): {}", sh100 <= sh10);

    assert!(close(mk, sd) && close(mk, sh10) && close(mk, cre), "reasonable methods disagree");
    assert!(cv <= mk, "cv should select a (much) finer scale");

    saturn_bench::append_summary(
        "Figure 7 (selection methods, Irvine stand-in)",
        &summary.join("; "),
    );
}
