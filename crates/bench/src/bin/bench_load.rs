//! `bench_load` — open-loop Poisson load against the analysis service.
//!
//! The other service bench (`bench_serve`) is *closed-loop*: each client
//! waits for its response before sending the next request, so a slow server
//! silently throttles the offered load and latency percentiles flatter the
//! service (coordinated omission). This driver is *open-loop*: arrival times
//! are drawn up front from a Poisson process (exponential inter-arrival
//! gaps on a deterministic splitmix64 stream) and each request fires at its
//! absolute slot on the wall clock regardless of how earlier requests are
//! faring — exactly the arrival pattern under which admission control,
//! per-shard queues, and `Retry-After` earn their keep.
//!
//! Every response is kept, not just the 200s: latencies are bucketed
//! per-status through the server's own
//! [`saturn_server::metrics::Histogram`], so a 503 that came back in 300µs
//! and a cold 200 that took 80ms land in different rows of the report
//! instead of averaging into a meaningless blur.
//!
//! The same workload runs twice — `--executors 1` and `--executors 2` — so
//! the JSON shows what a second supervised shard buys under an offered rate
//! the single executor cannot absorb.
//!
//! ```sh
//! cargo run --release -p saturn-bench --bin bench_load            # full
//! SATURN_FAST=1 cargo run --release -p saturn-bench --bin bench_load
//! ```
//!
//! Writes `bench_load.json` under the results directory (`SATURN_OUT`).

use saturn_bench::{dataset, fast_mode, out_dir};
use saturn_linkstream::io as stream_io;
use saturn_server::metrics::Histogram;
use saturn_server::{Server, ServerConfig};
use saturn_synth::DatasetProfile;
use serde_json::Value;
use std::collections::BTreeMap;
use std::io::{BufRead, BufReader, Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::time::{Duration, Instant};

fn obj(entries: Vec<(&str, Value)>) -> Value {
    Value::Object(entries.into_iter().map(|(k, v)| (k.to_string(), v)).collect())
}

/// Deterministic splitmix64 stream (same generator the fault plan uses).
struct SplitMix(u64);

impl SplitMix {
    fn next_u64(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, 1)`.
    fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Exponential with rate `rate_hz` (inter-arrival gap of a Poisson
    /// process), via inversion.
    fn next_exp(&mut self, rate_hz: f64) -> Duration {
        Duration::from_secs_f64(-(1.0 - self.next_f64()).ln() / rate_hz)
    }
}

/// One blocking request; returns the status code and body length.
fn post_analyze(addr: SocketAddr, target: &str, body: &[u8]) -> (u16, usize) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(
        stream,
        "POST {target} HTTP/1.1\r\nHost: bench\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .expect("write head");
    stream.write_all(body).expect("write body");
    let mut reader = BufReader::new(stream);
    let mut status_line = String::new();
    reader.read_line(&mut status_line).expect("status line");
    let status: u16 =
        status_line.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status");
    let mut rest = Vec::new();
    reader.read_to_end(&mut rest).expect("drain");
    (status, rest.len())
}

/// Drives the pre-drawn arrival schedule against a fresh server with
/// `executors` shards; returns the leg's JSON record.
fn run_leg(
    executors: usize,
    bodies: &[Arc<String>],
    gaps: &[Duration],
    rate_hz: f64,
    target: &str,
) -> Value {
    let server = Server::bind(&ServerConfig {
        addr: "127.0.0.1:0".into(),
        threads: 2,
        queue_depth: 16,
        executors,
        ..ServerConfig::default()
    })
    .expect("bind");
    let addr = server.local_addr().expect("addr");
    let server = server.spawn().expect("spawn");

    let started = Instant::now();
    let mut due = Duration::ZERO;
    let mut handles = Vec::with_capacity(bodies.len());
    for (body, gap) in bodies.iter().zip(gaps) {
        due += *gap;
        // open loop: wait for the arrival's absolute slot, never for the
        // previous request — a backed-up server still sees the full rate
        if let Some(wait) = due.checked_sub(started.elapsed()) {
            std::thread::sleep(wait);
        }
        let body = Arc::clone(body);
        let target = target.to_string();
        handles.push(std::thread::spawn(move || {
            let sent = Instant::now();
            let (status, _) = post_analyze(addr, &target, body.as_bytes());
            (status, sent.elapsed())
        }));
    }
    let mut by_status: BTreeMap<u16, Histogram> = BTreeMap::new();
    for handle in handles {
        let (status, latency) = handle.join().expect("request thread");
        by_status.entry(status).or_default().observe(latency);
    }
    let wall = started.elapsed().as_secs_f64();
    server.stop();

    let answered: u64 = by_status.values().map(Histogram::count).sum();
    assert_eq!(answered, bodies.len() as u64, "every arrival must be answered");
    let ok = by_status.get(&200).map_or(0, Histogram::count);
    assert!(ok > 0, "the service must complete at least one sweep under load");

    println!(
        "  executors={executors}: {answered} arrivals at {rate_hz:.0}/s offered, \
         {wall:.3}s wall, {ok} × 200"
    );
    let statuses: Vec<Value> = by_status
        .iter()
        .map(|(status, latency)| {
            let (p50, p90, p99) = latency.percentiles().expect("non-empty histogram");
            println!(
                "    {status}: count={} p50≤{p50}µs p90≤{p90}µs p99≤{p99}µs",
                latency.count()
            );
            obj(vec![
                ("status", Value::Int(*status as i128)),
                ("count", Value::Int(latency.count() as i128)),
                ("p50_us", Value::Int(p50 as i128)),
                ("p90_us", Value::Int(p90 as i128)),
                ("p99_us", Value::Int(p99 as i128)),
            ])
        })
        .collect();
    obj(vec![
        ("executors", Value::Int(executors as i128)),
        ("arrivals", Value::Int(bodies.len() as i128)),
        ("offered_rate_hz", Value::Float(rate_hz)),
        ("wall_seconds", Value::Float(wall)),
        ("completed_200", Value::Int(ok as i128)),
        ("by_status", Value::Array(statuses)),
    ])
}

fn main() {
    let fast = fast_mode();
    let (arrivals, rate_hz, points, distinct) =
        if fast { (60, 40.0, 8, 12) } else { (240, 60.0, 16, 48) };
    let profile = dataset(DatasetProfile::irvine());
    println!(
        "bench_load — {} stand-in, {arrivals} Poisson arrivals at {rate_hz:.0}/s, \
         points={points}",
        profile.name
    );

    // the trace pool is rendered before the clock starts: a quarter of the
    // arrivals repeat one hot body (cache hits), the rest cycle `distinct`
    // cold bodies (full sweeps) — enough compute to back up one executor at
    // the offered rate
    let hot: Arc<String> = Arc::new(stream_io::to_string(&profile.generate(7)));
    let cold: Vec<Arc<String>> = (0..distinct)
        .map(|seed| Arc::new(stream_io::to_string(&profile.generate(2000 + seed as u64))))
        .collect();
    let bodies: Vec<Arc<String>> = (0..arrivals)
        .map(|i| if i % 4 == 0 { Arc::clone(&hot) } else { Arc::clone(&cold[i % distinct]) })
        .collect();
    // one schedule, drawn once, replayed for every leg: the executor counts
    // see byte- and time-identical offered load
    let mut rng = SplitMix(0x10ad_5eed_0ff0_0d00);
    let gaps: Vec<Duration> = (0..arrivals).map(|_| rng.next_exp(rate_hz)).collect();
    let target = format!("/v1/analyze?points={points}&directed=1");

    let legs: Vec<Value> =
        [1usize, 2].iter().map(|&n| run_leg(n, &bodies, &gaps, rate_hz, &target)).collect();

    let record = obj(vec![
        ("workload", Value::String(profile.name.to_string())),
        ("fast_mode", Value::Bool(fast)),
        ("points", Value::Int(points as i128)),
        ("arrivals", Value::Int(arrivals as i128)),
        ("offered_rate_hz", Value::Float(rate_hz)),
        ("legs", Value::Array(legs)),
    ]);
    let path = out_dir().join("bench_load.json");
    std::fs::write(&path, record.to_string_pretty()).expect("write bench_load.json");
    println!("  wrote {}", path.display());
}
