//! Property-based validation of aggregation and snapshot metrics.

use proptest::prelude::*;
use saturn_graphseries::{aggregate_with, snapshot_means, GraphSeries, WindowScheme};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};

fn arb_stream() -> impl Strategy<Value = LinkStream> {
    proptest::collection::vec((0u32..10, 0u32..10, 0i64..500), 1..80).prop_filter_map(
        "non-empty",
        |events| {
            let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
            for (u, v, t) in events {
                if u != v {
                    b.add_indexed(u, v, t);
                }
            }
            b.build().ok()
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Total edge count across snapshots never exceeds the event count and
    /// never falls below the number of distinct pairs.
    #[test]
    fn edge_budget(stream in arb_stream(), k in 1u64..200) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let series = GraphSeries::aggregate(&stream, k);
        let mut pairs: Vec<_> = stream.events().iter().map(|l| (l.u, l.v)).collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert!(series.total_edges() <= stream.len());
        prop_assert!(series.total_edges() >= pairs.len());
    }

    /// Snapshot metric ranges: density in [0,1], LCC in [1, n],
    /// non-isolated even-count-consistent with edges.
    #[test]
    fn metric_ranges(stream in arb_stream(), k in 1u64..100) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let series = GraphSeries::aggregate(&stream, k);
        for (_, snap) in series.snapshots() {
            prop_assert!((0.0..=1.0).contains(&snap.density()));
            let lcc = snap.largest_component();
            prop_assert!((1..=10).contains(&lcc));
            let ni = snap.non_isolated();
            prop_assert!(ni >= 2 || snap.edge_count() == 0);
            prop_assert!(ni <= 2 * snap.edge_count());
            prop_assert!(lcc <= ni.max(1));
        }
    }

    /// The streaming means equal the materialized-series means.
    #[test]
    fn streaming_equals_materialized(stream in arb_stream(), k in 1u64..60) {
        let k = if stream.span() == 0 { 1 } else { k.min(stream.span() as u64).max(1) };
        let a = snapshot_means(&stream, k);
        let series = GraphSeries::aggregate(&stream, k);
        let b = saturn_graphseries::metrics::snapshot_means_of_series(&series);
        prop_assert_eq!(a.non_empty, b.non_empty);
        prop_assert_eq!(a.total_edges, b.total_edges);
        prop_assert!((a.mean_density - b.mean_density).abs() < 1e-12);
        prop_assert!((a.mean_largest_component - b.mean_largest_component).abs() < 1e-12);
    }

    /// K = 1 gives the fully aggregated static graph: one snapshot holding
    /// every distinct pair.
    #[test]
    fn total_aggregation(stream in arb_stream()) {
        let series = GraphSeries::aggregate(&stream, 1);
        prop_assert_eq!(series.non_empty(), 1);
        let snap = series.snapshot_at(0).unwrap();
        let mut pairs: Vec<_> =
            stream.events().iter().map(|l| (l.u.raw(), l.v.raw())).collect();
        pairs.sort_unstable();
        pairs.dedup();
        prop_assert_eq!(snap.edge_count(), pairs.len());
    }

    /// Sliding windows with stride == width reproduce the disjoint scheme's
    /// edge multiset when Δ divides the span evenly.
    #[test]
    fn sliding_consistency(stream in arb_stream(), width in 1i64..100) {
        let span = stream.span();
        prop_assume!(span > 0);
        let windows =
            aggregate_with(&stream, WindowScheme::Sliding { width, stride: width });
        let total: usize = windows.iter().map(|w| w.snapshot.edge_count()).sum();
        // partitioning: every event in exactly one window
        let mut dedup_per_window = 0usize;
        for w in &windows {
            dedup_per_window += w.snapshot.edge_count();
        }
        prop_assert_eq!(total, dedup_per_window);
        prop_assert!(total <= stream.len());
        // and cumulative growth is monotone
        let cumulative = aggregate_with(&stream, WindowScheme::Cumulative { k: 5 });
        let counts: Vec<usize> =
            cumulative.iter().map(|w| w.snapshot.edge_count()).collect();
        prop_assert!(counts.windows(2).all(|w| w[0] <= w[1]));
    }

    /// Restriction then aggregation is consistent: the restricted stream's
    /// total aggregation holds exactly the pairs with events in the range.
    #[test]
    fn restrict_then_aggregate(stream in arb_stream(), a in 0i64..400, len in 1i64..200) {
        let begin = stream.t_begin() + (a % (stream.span().max(1)));
        let end = saturn_linkstream::Time::new(
            (begin.ticks() + len).min(stream.t_end().ticks()),
        );
        if let Some(sub) = stream.restrict(begin, end) {
            prop_assert!(sub.len() <= stream.len());
            prop_assert_eq!(sub.node_count(), stream.node_count());
            let series = GraphSeries::aggregate(&sub, 1);
            let snap = series.snapshot_at(0).unwrap();
            let mut expected: Vec<_> = stream
                .events()
                .iter()
                .filter(|l| l.t >= begin && l.t <= end)
                .map(|l| (l.u.raw(), l.v.raw()))
                .collect();
            expected.sort_unstable();
            expected.dedup();
            prop_assert_eq!(snap.edges().to_vec(), expected);
        }
    }
}
