//! One aggregated graph `G_k = (V, E_k)`.

use saturn_linkstream::{Directedness, Link};
use serde::Serialize;

use crate::UnionFind;

/// A static graph over the fixed node set `V = 0..n`, holding the distinct
/// edges observed in one aggregation window.
///
/// Edges are stored sorted and deduplicated; in an undirected snapshot every
/// edge satisfies `u <= v`.
#[derive(Clone, Debug, PartialEq, Eq, Serialize)]
pub struct Snapshot {
    n: u32,
    directedness: Directedness,
    edges: Vec<(u32, u32)>,
}

impl Snapshot {
    /// Builds a snapshot from the raw link events of one window, removing
    /// duplicate pairs (Definition 1 keeps each pair at most once).
    pub fn from_links(n: u32, directedness: Directedness, links: &[Link]) -> Self {
        let mut edges: Vec<(u32, u32)> = links.iter().map(|l| (l.u.raw(), l.v.raw())).collect();
        edges.sort_unstable();
        edges.dedup();
        Snapshot { n, directedness, edges }
    }

    /// Builds a snapshot directly from deduplicated edge pairs.
    ///
    /// # Panics
    /// Panics in debug builds if the pairs are not sorted/deduplicated or
    /// contain an endpoint `>= n`.
    pub fn from_edges(n: u32, directedness: Directedness, edges: Vec<(u32, u32)>) -> Self {
        debug_assert!(edges.windows(2).all(|w| w[0] < w[1]), "edges must be sorted+dedup");
        debug_assert!(edges.iter().all(|&(u, v)| u < n && v < n), "endpoint out of range");
        Snapshot { n, directedness, edges }
    }

    /// Number of nodes `n` (the fixed node set of the series).
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Orientation inherited from the stream.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// The distinct edges, sorted.
    pub fn edges(&self) -> &[(u32, u32)] {
        &self.edges
    }

    /// Number of distinct edges `|E_k|`.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Graph density: `m / (n(n-1))` if directed, `2m / (n(n-1))` if
    /// undirected. Zero for graphs with fewer than two nodes.
    pub fn density(&self) -> f64 {
        let n = self.n as f64;
        if self.n < 2 {
            return 0.0;
        }
        let pairs = match self.directedness {
            Directedness::Directed => n * (n - 1.0),
            Directedness::Undirected => n * (n - 1.0) / 2.0,
        };
        self.edge_count() as f64 / pairs
    }

    /// Mean degree over **all** `n` nodes (isolated ones included). Each edge
    /// contributes to both endpoints, so this is `2m/n` — the paper notes it
    /// equals density up to the factor `n - 1`.
    pub fn mean_degree(&self) -> f64 {
        if self.n == 0 {
            return 0.0;
        }
        2.0 * self.edge_count() as f64 / self.n as f64
    }

    /// Number of nodes incident to at least one edge.
    pub fn non_isolated(&self) -> usize {
        let mut touched: Vec<u32> = Vec::with_capacity(self.edges.len() * 2);
        for &(u, v) in &self.edges {
            touched.push(u);
            touched.push(v);
        }
        touched.sort_unstable();
        touched.dedup();
        touched.len()
    }

    /// Size (node count) of the largest connected component, using weak
    /// connectivity for directed snapshots. An empty snapshot has a largest
    /// component of size 1 when `n > 0` (an isolated vertex), 0 otherwise.
    pub fn largest_component(&self) -> usize {
        if self.edges.is_empty() {
            return usize::from(self.n > 0);
        }
        let mut uf = UnionFind::new(self.n as usize);
        let mut best = 1u32;
        for &(u, v) in &self.edges {
            uf.union(u, v);
            best = best.max(uf.component_size(u));
        }
        best as usize
    }

    /// Out-adjacency lists (or plain adjacency if undirected, with each edge
    /// listed from both endpoints), indexed by node.
    pub fn adjacency(&self) -> Vec<Vec<u32>> {
        let mut adj = vec![Vec::new(); self.n as usize];
        for &(u, v) in &self.edges {
            adj[u as usize].push(v);
            if !self.directedness.is_directed() {
                adj[v as usize].push(u);
            }
        }
        adj
    }

    /// Whether the given (oriented as stored) edge is present.
    pub fn has_edge(&self, u: u32, v: u32) -> bool {
        let key = if self.directedness.is_directed() || u <= v { (u, v) } else { (v, u) };
        self.edges.binary_search(&key).is_ok()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{NodeId, Time};

    fn link(u: u32, v: u32) -> Link {
        Link::new(NodeId(u), NodeId(v), Time::new(0))
    }

    #[test]
    fn from_links_dedups() {
        let s = Snapshot::from_links(
            4,
            Directedness::Undirected,
            &[link(0, 1), link(0, 1), link(2, 3)],
        );
        assert_eq!(s.edge_count(), 2);
        assert_eq!(s.edges(), &[(0, 1), (2, 3)]);
    }

    #[test]
    fn density_undirected_and_directed() {
        // 4 nodes, 3 edges
        let e = vec![(0, 1), (1, 2), (2, 3)];
        let und = Snapshot::from_edges(4, Directedness::Undirected, e.clone());
        assert!((und.density() - 3.0 / 6.0).abs() < 1e-12);
        let dir = Snapshot::from_edges(4, Directedness::Directed, e);
        assert!((dir.density() - 3.0 / 12.0).abs() < 1e-12);
    }

    #[test]
    fn degenerate_sizes() {
        let s = Snapshot::from_edges(0, Directedness::Undirected, vec![]);
        assert_eq!(s.density(), 0.0);
        assert_eq!(s.mean_degree(), 0.0);
        assert_eq!(s.largest_component(), 0);
        let s1 = Snapshot::from_edges(1, Directedness::Undirected, vec![]);
        assert_eq!(s1.largest_component(), 1);
    }

    #[test]
    fn connectivity_metrics() {
        // components: {0,1,2}, {3,4}, {5} isolated; n = 6
        let s = Snapshot::from_edges(6, Directedness::Undirected, vec![(0, 1), (1, 2), (3, 4)]);
        assert_eq!(s.non_isolated(), 5);
        assert_eq!(s.largest_component(), 3);
        assert!((s.mean_degree() - 6.0 / 6.0).abs() < 1e-12);
    }

    #[test]
    fn directed_uses_weak_connectivity() {
        let s = Snapshot::from_edges(3, Directedness::Directed, vec![(0, 1), (2, 1)]);
        assert_eq!(s.largest_component(), 3); // 0 -> 1 <- 2 weakly connected
    }

    #[test]
    fn adjacency_mirrors_undirected_edges() {
        let s = Snapshot::from_edges(3, Directedness::Undirected, vec![(0, 1), (1, 2)]);
        let adj = s.adjacency();
        assert_eq!(adj[0], vec![1]);
        assert_eq!(adj[1], vec![0, 2]);
        assert_eq!(adj[2], vec![1]);

        let d = Snapshot::from_edges(3, Directedness::Directed, vec![(0, 1), (1, 2)]);
        let adj = d.adjacency();
        assert_eq!(adj[1], vec![2]);
        assert!(adj[2].is_empty());
    }

    #[test]
    fn has_edge_handles_orientation() {
        let und = Snapshot::from_edges(3, Directedness::Undirected, vec![(0, 2)]);
        assert!(und.has_edge(0, 2));
        assert!(und.has_edge(2, 0));
        let dir = Snapshot::from_edges(3, Directedness::Directed, vec![(0, 2)]);
        assert!(dir.has_edge(0, 2));
        assert!(!dir.has_edge(2, 0));
    }
}
