//! The aggregated graph series `G_Δ`.

use crate::Snapshot;
use saturn_linkstream::{Directedness, LinkStream, WindowPartition};
use serde::Serialize;

/// The series `G_Δ = (G_1, ..., G_K)` obtained by aggregating a link stream
/// on `K` disjoint windows of equal length `Δ = T/K` (Definition 1).
///
/// Only non-empty snapshots are materialized (a series with millions of
/// windows at fine scales would otherwise be dominated by empty graphs); each
/// is stored with its window index. [`GraphSeries::snapshot_at`] treats
/// missing windows as empty graphs over the same node set.
#[derive(Clone, Debug, Serialize)]
pub struct GraphSeries {
    partition: WindowPartition,
    n: u32,
    directedness: Directedness,
    /// `(window_index, snapshot)` for non-empty windows, ascending.
    snapshots: Vec<(u64, Snapshot)>,
}

impl GraphSeries {
    /// Aggregates `stream` over `k` equal windows.
    ///
    /// # Panics
    /// Panics if `k` is invalid for the stream's study period (zero, or
    /// `k > 1` for a zero-length period); use
    /// [`LinkStream::partition`] to validate `k` beforehand when it comes
    /// from untrusted input.
    pub fn aggregate(stream: &LinkStream, k: u64) -> Self {
        let partition =
            stream.partition(k).expect("invalid window count for this stream's study period");
        let n = stream.node_count() as u32;
        let snapshots = partition
            .window_slices(stream)
            .map(|(w, links)| (w, Snapshot::from_links(n, stream.directedness(), links)))
            .collect();
        GraphSeries { partition, n, directedness: stream.directedness(), snapshots }
    }

    /// The window partition that produced the series.
    pub fn partition(&self) -> &WindowPartition {
        &self.partition
    }

    /// Number of windows `K` (including empty ones).
    pub fn k(&self) -> u64 {
        self.partition.k()
    }

    /// Window length `Δ` in ticks.
    pub fn delta_ticks(&self) -> f64 {
        self.partition.delta_ticks()
    }

    /// Number of nodes of every graph of the series.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Orientation inherited from the stream.
    pub fn directedness(&self) -> Directedness {
        self.directedness
    }

    /// Number of non-empty snapshots.
    pub fn non_empty(&self) -> usize {
        self.snapshots.len()
    }

    /// Iterates over `(window_index, snapshot)` for non-empty windows, in
    /// ascending window order.
    pub fn snapshots(&self) -> impl Iterator<Item = (u64, &Snapshot)> {
        self.snapshots.iter().map(|(w, s)| (*w, s))
    }

    /// The snapshot of window `w`, or `None` if that window is empty.
    pub fn snapshot_at(&self, w: u64) -> Option<&Snapshot> {
        self.snapshots
            .binary_search_by_key(&w, |(wi, _)| *wi)
            .ok()
            .map(|i| &self.snapshots[i].1)
    }

    /// Total number of edges `M = Σ_k |E_k|` over the whole series — the `M`
    /// of the paper's `O(nM)` complexity statement.
    pub fn total_edges(&self) -> usize {
        self.snapshots.iter().map(|(_, s)| s.edge_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("a", "b", 1); // same pair, same window at Δ=5 -> dedup in E_1
        b.add("b", "c", 2);
        b.add("c", "d", 7);
        b.add("a", "d", 10);
        b.build().unwrap()
    }

    #[test]
    fn aggregate_dedups_within_window() {
        let s = stream();
        let g = GraphSeries::aggregate(&s, 2); // Δ = 5: [0,5) and [5,10]
        assert_eq!(g.k(), 2);
        assert_eq!(g.non_empty(), 2);
        let w0 = g.snapshot_at(0).unwrap();
        assert_eq!(w0.edge_count(), 2); // ab (deduped), bc
        let w1 = g.snapshot_at(1).unwrap();
        assert_eq!(w1.edge_count(), 2); // cd, ad
        assert_eq!(g.total_edges(), 4);
    }

    #[test]
    fn total_aggregation_is_one_static_graph() {
        let s = stream();
        let g = GraphSeries::aggregate(&s, 1);
        assert_eq!(g.k(), 1);
        assert_eq!(g.non_empty(), 1);
        assert_eq!(g.snapshot_at(0).unwrap().edge_count(), 4); // ab, bc, cd, ad
    }

    #[test]
    fn empty_windows_are_skipped_but_indexed() {
        let s = stream();
        let g = GraphSeries::aggregate(&s, 11); // Δ = 10/11 < 1: one event per window at most
        assert!(g.non_empty() <= 5);
        assert!(g.snapshot_at(5).is_none() || g.snapshot_at(5).unwrap().edge_count() > 0);
        // every snapshot's window index is < k
        assert!(g.snapshots().all(|(w, _)| w < g.k()));
    }

    #[test]
    fn finest_scale_one_event_per_window() {
        let s = stream();
        // Δ = 1 tick: K = span = 10
        let g = GraphSeries::aggregate(&s, 10);
        // events at t=0,1,2,7,10; t=10 clamps into window 9 with... t=7 -> w7
        assert_eq!(g.total_edges(), 5);
        assert_eq!(g.snapshot_at(0).unwrap().edge_count(), 1);
    }

    #[test]
    fn node_set_is_fixed_across_snapshots() {
        let s = stream();
        let g = GraphSeries::aggregate(&s, 3);
        for (_, snap) in g.snapshots() {
            assert_eq!(snap.n(), 4);
        }
    }
}
