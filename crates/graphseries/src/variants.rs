//! Alternative window schemes: sliding (overlapping) and cumulative windows.
//!
//! The paper's introduction surveys three families of aggregation windows:
//! disjoint equal-length ones (Definition 1, the main object of study),
//! *overlapping* windows, and windows *all starting at the beginning of the
//! study period* (cumulative). This module implements the two variants so a
//! series built either way can be inspected with the same snapshot metrics —
//! and so the sensitivity of downstream analyses to the window type (ref 37 in
//! the paper) can be measured.

use crate::Snapshot;
use saturn_linkstream::{LinkStream, Time};
use serde::{Deserialize, Serialize};

/// A window scheme over the study period.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum WindowScheme {
    /// `K` disjoint windows of length `T/K` — Definition 1, equivalent to
    /// [`GraphSeries::aggregate`](crate::GraphSeries::aggregate).
    Disjoint {
        /// Number of windows.
        k: u64,
    },
    /// Overlapping windows `[t0 + i·stride, t0 + i·stride + width)`, `i`
    /// ranging while the window intersects the study period.
    Sliding {
        /// Window length in ticks.
        width: i64,
        /// Offset between consecutive window starts, `0 < stride <= width`
        /// for actual overlap (larger strides leave gaps and are allowed).
        stride: i64,
    },
    /// Growing windows `[t0, t0 + i·(T/k)]` for `i = 1..=k` — every window
    /// starts at the beginning of the study period.
    Cumulative {
        /// Number of windows.
        k: u64,
    },
}

/// One aggregated window of a variant series: its real bounds and snapshot.
#[derive(Clone, Debug, Serialize)]
pub struct VariantWindow {
    /// Window start (inclusive), in ticks.
    pub start: i64,
    /// Window end (exclusive), in ticks.
    pub end: i64,
    /// The aggregated graph of the window.
    pub snapshot: Snapshot,
}

/// Aggregates `stream` under `scheme`, returning one entry per window
/// (including empty windows for the sliding/cumulative variants, whose
/// indices are meaningful positions in time).
///
/// # Panics
/// Panics on degenerate parameters (`k == 0`, `width < 1`, `stride < 1`).
pub fn aggregate_with(stream: &LinkStream, scheme: WindowScheme) -> Vec<VariantWindow> {
    let n = stream.node_count() as u32;
    let d = stream.directedness();
    let t0 = stream.t_begin().ticks();
    let t1 = stream.t_end().ticks();
    let events = stream.events();

    let snapshot_of = |lo: i64, hi: i64| -> Snapshot {
        // events with lo <= t < hi (hi exclusive; final window is widened by
        // one tick by the callers so the last instant is included)
        let a = events.partition_point(|l| l.t < Time::new(lo));
        let b = events.partition_point(|l| l.t < Time::new(hi));
        Snapshot::from_links(n, d, &events[a..b])
    };

    match scheme {
        WindowScheme::Disjoint { k } => {
            assert!(k >= 1, "k must be >= 1");
            let partition = stream.partition(k).expect("valid disjoint partition");
            partition
                .window_slices(stream)
                .map(|(w, links)| {
                    let (lo, hi) = partition.window_bounds(w);
                    VariantWindow {
                        start: lo.floor() as i64,
                        end: hi.ceil() as i64,
                        snapshot: Snapshot::from_links(n, d, links),
                    }
                })
                .collect()
        }
        WindowScheme::Sliding { width, stride } => {
            assert!(width >= 1 && stride >= 1, "width and stride must be >= 1");
            let mut out = Vec::new();
            let mut start = t0;
            loop {
                let end = start + width;
                // widen the very last read so t_end is captured (closed period)
                let hi = if end > t1 { t1 + 1 } else { end };
                out.push(VariantWindow { start, end, snapshot: snapshot_of(start, hi) });
                if end > t1 {
                    break;
                }
                start += stride;
            }
            out
        }
        WindowScheme::Cumulative { k } => {
            assert!(k >= 1, "k must be >= 1");
            let span = (t1 - t0).max(1);
            (1..=k)
                .map(|i| {
                    // exact rational bound t0 + i·span/k, inclusive at i = k
                    let end = t0 + ((i as i128 * span as i128) / k as i128) as i64;
                    let hi = if i == k { t1 + 1 } else { end };
                    VariantWindow { start: t0, end, snapshot: snapshot_of(t0, hi) }
                })
                .collect()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphSeries;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("b", "c", 3);
        b.add("c", "d", 6);
        b.add("d", "e", 9);
        b.add("a", "e", 12);
        b.build().unwrap()
    }

    #[test]
    fn disjoint_matches_graph_series() {
        let s = stream();
        for k in [1u64, 2, 3, 6, 12] {
            let variant = aggregate_with(&s, WindowScheme::Disjoint { k });
            let series = GraphSeries::aggregate(&s, k);
            let via_series: Vec<usize> =
                series.snapshots().map(|(_, snap)| snap.edge_count()).collect();
            let via_variant: Vec<usize> =
                variant.iter().map(|w| w.snapshot.edge_count()).collect();
            assert_eq!(via_series, via_variant, "k={k}");
        }
    }

    #[test]
    fn sliding_with_stride_equal_width_partitions() {
        let s = stream();
        let windows = aggregate_with(&s, WindowScheme::Sliding { width: 4, stride: 4 });
        let total: usize = windows.iter().map(|w| w.snapshot.edge_count()).sum();
        assert_eq!(total, s.len(), "non-overlapping sliding covers each event once");
    }

    #[test]
    fn overlapping_windows_duplicate_events() {
        let s = stream();
        let windows = aggregate_with(&s, WindowScheme::Sliding { width: 6, stride: 3 });
        let total: usize = windows.iter().map(|w| w.snapshot.edge_count()).sum();
        assert!(total > s.len(), "overlap must count events in several windows");
        // each window's start advances by stride
        for pair in windows.windows(2) {
            assert_eq!(pair[1].start - pair[0].start, 3);
        }
    }

    #[test]
    fn cumulative_grows_to_total_aggregation() {
        let s = stream();
        let windows = aggregate_with(&s, WindowScheme::Cumulative { k: 4 });
        assert_eq!(windows.len(), 4);
        let counts: Vec<usize> = windows.iter().map(|w| w.snapshot.edge_count()).collect();
        assert!(counts.windows(2).all(|w| w[0] <= w[1]), "monotone growth: {counts:?}");
        assert_eq!(*counts.last().unwrap(), 5, "final window = total aggregation");
        assert!(windows.iter().all(|w| w.start == 0));
    }

    #[test]
    fn sliding_gaps_are_allowed() {
        let s = stream();
        // width 2, stride 5: gaps between windows; some events never counted
        let windows = aggregate_with(&s, WindowScheme::Sliding { width: 2, stride: 5 });
        let total: usize = windows.iter().map(|w| w.snapshot.edge_count()).sum();
        assert!(total <= s.len());
    }

    #[test]
    #[should_panic(expected = "width and stride")]
    fn rejects_zero_stride() {
        aggregate_with(&stream(), WindowScheme::Sliding { width: 4, stride: 0 });
    }
}
