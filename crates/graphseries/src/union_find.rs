//! Versioned disjoint-set forest.
//!
//! The per-snapshot connectivity metrics need a union-find that is reset for
//! every window of the series. A plain reset costs `O(n)` per window, which
//! dominates everything else when the series has millions of mostly-empty
//! windows. This implementation instead stamps every cell with a *version*
//! and lazily reinitializes a cell the first time it is touched after
//! [`UnionFind::reset`], making a reset `O(1)`.

/// Disjoint-set forest over `0..n` with union by size, path halving, and
/// O(1) versioned reset.
///
/// ```
/// use saturn_graphseries::UnionFind;
/// let mut uf = UnionFind::new(5);
/// uf.union(0, 1);
/// uf.union(3, 4);
/// assert!(uf.connected(0, 1));
/// assert!(!uf.connected(1, 3));
/// assert_eq!(uf.component_size(4), 2);
/// uf.reset();
/// assert!(!uf.connected(0, 1));
/// ```
#[derive(Clone, Debug)]
pub struct UnionFind {
    parent: Vec<u32>,
    size: Vec<u32>,
    version: Vec<u32>,
    current: u32,
}

impl UnionFind {
    /// Creates a forest of `n` singleton sets.
    pub fn new(n: usize) -> Self {
        assert!(n <= u32::MAX as usize, "UnionFind supports at most u32::MAX elements");
        UnionFind { parent: vec![0; n], size: vec![0; n], version: vec![0; n], current: 1 }
    }

    /// Number of elements.
    pub fn len(&self) -> usize {
        self.parent.len()
    }

    /// Whether the forest is over an empty universe.
    pub fn is_empty(&self) -> bool {
        self.parent.is_empty()
    }

    /// Forgets all unions in O(1).
    pub fn reset(&mut self) {
        self.current = self.current.checked_add(1).unwrap_or_else(|| {
            // Version counter wrapped (after 2^32 resets): do one eager clear.
            self.version.fill(0);
            1
        });
    }

    #[inline]
    fn touch(&mut self, x: u32) {
        if self.version[x as usize] != self.current {
            self.version[x as usize] = self.current;
            self.parent[x as usize] = x;
            self.size[x as usize] = 1;
        }
    }

    /// Returns the representative of `x`'s set.
    pub fn find(&mut self, x: u32) -> u32 {
        self.touch(x);
        let mut x = x;
        while self.parent[x as usize] != x {
            let grand = self.parent[self.parent[x as usize] as usize];
            self.parent[x as usize] = grand; // path halving
            x = grand;
        }
        x
    }

    /// Merges the sets of `a` and `b`; returns `true` if they were distinct.
    pub fn union(&mut self, a: u32, b: u32) -> bool {
        let ra = self.find(a);
        let rb = self.find(b);
        if ra == rb {
            return false;
        }
        let (big, small) =
            if self.size[ra as usize] >= self.size[rb as usize] { (ra, rb) } else { (rb, ra) };
        self.parent[small as usize] = big;
        self.size[big as usize] += self.size[small as usize];
        true
    }

    /// Whether `a` and `b` are currently in the same set.
    pub fn connected(&mut self, a: u32, b: u32) -> bool {
        self.find(a) == self.find(b)
    }

    /// Size of the set containing `x`.
    pub fn component_size(&mut self, x: u32) -> u32 {
        let r = self.find(x);
        self.size[r as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unions_merge_and_track_sizes() {
        let mut uf = UnionFind::new(6);
        assert!(uf.union(0, 1));
        assert!(uf.union(1, 2));
        assert!(!uf.union(0, 2)); // already joined
        assert_eq!(uf.component_size(1), 3);
        assert_eq!(uf.component_size(5), 1);
    }

    #[test]
    fn reset_is_effective() {
        let mut uf = UnionFind::new(4);
        uf.union(0, 3);
        uf.reset();
        assert!(!uf.connected(0, 3));
        assert_eq!(uf.component_size(0), 1);
        // and unions work again after reset
        uf.union(2, 3);
        assert!(uf.connected(2, 3));
    }

    #[test]
    fn many_resets_stay_consistent() {
        let mut uf = UnionFind::new(3);
        for round in 0..1000 {
            uf.reset();
            if round % 2 == 0 {
                uf.union(0, 1);
                assert!(uf.connected(0, 1));
                assert!(!uf.connected(1, 2));
            } else {
                uf.union(1, 2);
                assert!(uf.connected(1, 2));
                assert!(!uf.connected(0, 1));
            }
        }
    }

    #[test]
    fn transitive_connectivity_chain() {
        let mut uf = UnionFind::new(100);
        for i in 0..99 {
            uf.union(i, i + 1);
        }
        assert!(uf.connected(0, 99));
        assert_eq!(uf.component_size(42), 100);
    }
}
