//! Snapshot graphs and aggregation of link streams into graph series.
//!
//! This crate implements Definition 1 of the paper: given a link stream `L`
//! over a study period of length `T` and an integer `K >= 1`, the aggregated
//! series `G_Δ` (with `Δ = T/K`) consists of the `K` graphs
//! `G_k = (V, E_k)` where `E_k` holds every pair `{u, v}` linked at least
//! once inside window `k`.
//!
//! It also provides the *classical* per-snapshot statistics whose smooth,
//! featureless variation with `Δ` motivates the occupancy method (Figure 2
//! and Section 3 of the paper): density, mean degree, number of non-isolated
//! vertices and size of the largest connected component.
//!
//! ```
//! use saturn_linkstream::{Directedness, LinkStreamBuilder};
//! use saturn_graphseries::GraphSeries;
//!
//! let mut b = LinkStreamBuilder::new(Directedness::Undirected);
//! b.add("a", "b", 0);
//! b.add("b", "c", 4);
//! b.add("a", "c", 9);
//! let stream = b.build().unwrap();
//!
//! let series = GraphSeries::aggregate(&stream, 3); // Δ = 3 ticks
//! assert_eq!(series.k(), 3);
//! assert_eq!(series.non_empty(), 3);
//! assert_eq!(series.total_edges(), 3);
//! ```

pub mod metrics;
pub mod series;
pub mod snapshot;
pub mod union_find;
pub mod variants;

pub use metrics::{snapshot_means, SnapshotMeans};
pub use series::GraphSeries;
pub use snapshot::Snapshot;
pub use union_find::UnionFind;
pub use variants::{aggregate_with, VariantWindow, WindowScheme};
