//! Classical per-snapshot statistics of an aggregated series (Figure 2).
//!
//! The paper's Section 3 shows that these quantities vary smoothly with the
//! aggregation period and therefore cannot reveal the saturation scale — they
//! are reproduced here both as the baseline the occupancy method is compared
//! against and as generally useful series descriptors.
//!
//! Means are taken over the **non-empty** snapshots of the series (at fine
//! scales almost all windows are empty and would otherwise drown the
//! statistics; the paper's reported minima — e.g. a largest component of 2.3
//! nodes for Irvine at Δ = 1s — are only consistent with this convention).

use crate::UnionFind;
use saturn_linkstream::LinkStream;
use serde::Serialize;

/// Mean per-snapshot statistics of an aggregated series at one scale `Δ`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct SnapshotMeans {
    /// Number of windows `K` of the series.
    pub k: u64,
    /// Window length `Δ` in ticks.
    pub delta_ticks: f64,
    /// Number of non-empty snapshots the means are taken over.
    pub non_empty: usize,
    /// Total number of distinct edges `M` over the series.
    pub total_edges: usize,
    /// Mean snapshot density.
    pub mean_density: f64,
    /// Mean snapshot degree (over all `n` nodes).
    pub mean_degree: f64,
    /// Mean number of non-isolated vertices per snapshot.
    pub mean_non_isolated: f64,
    /// Mean size of the largest connected component per snapshot.
    pub mean_largest_component: f64,
}

/// Computes [`SnapshotMeans`] for `stream` aggregated over `k` windows,
/// streaming over the windows without materializing the series.
///
/// # Panics
/// Panics if `k` is invalid for the stream's study period.
pub fn snapshot_means(stream: &LinkStream, k: u64) -> SnapshotMeans {
    let partition = stream.partition(k).expect("invalid window count");
    let n = stream.node_count() as u32;
    let mut uf = UnionFind::new(n as usize);

    let mut non_empty = 0usize;
    let mut total_edges = 0usize;
    let mut sum_density = 0.0f64;
    let mut sum_degree = 0.0f64;
    let mut sum_non_isolated = 0.0f64;
    let mut sum_lcc = 0.0f64;

    let mut scratch: Vec<(u32, u32)> = Vec::new();
    for (_w, links) in partition.window_slices(stream) {
        scratch.clear();
        scratch.extend(links.iter().map(|l| (l.u.raw(), l.v.raw())));
        scratch.sort_unstable();
        scratch.dedup();

        let m = scratch.len();
        non_empty += 1;
        total_edges += m;

        // density & degree straight from the edge count
        let snap_density = {
            // reuse Snapshot's conventions without building one
            let nf = n as f64;
            if n < 2 {
                0.0
            } else {
                match stream.directedness() {
                    saturn_linkstream::Directedness::Directed => m as f64 / (nf * (nf - 1.0)),
                    saturn_linkstream::Directedness::Undirected => {
                        2.0 * m as f64 / (nf * (nf - 1.0))
                    }
                }
            }
        };
        sum_density += snap_density;
        sum_degree += if n == 0 { 0.0 } else { 2.0 * m as f64 / n as f64 };

        // connectivity via the versioned union-find
        uf.reset();
        let mut lcc = 1u32;
        let mut touched: Vec<u32> = Vec::with_capacity(m * 2);
        for &(u, v) in scratch.iter() {
            uf.union(u, v);
            lcc = lcc.max(uf.component_size(u));
            touched.push(u);
            touched.push(v);
        }
        touched.sort_unstable();
        touched.dedup();
        sum_non_isolated += touched.len() as f64;
        sum_lcc += lcc as f64;
    }

    let d = non_empty.max(1) as f64;
    SnapshotMeans {
        k,
        delta_ticks: partition.delta_ticks(),
        non_empty,
        total_edges,
        mean_density: sum_density / d,
        mean_degree: sum_degree / d,
        mean_non_isolated: sum_non_isolated / d,
        mean_largest_component: sum_lcc / d,
    }
}

/// Convenience: the same statistics computed from an already materialized
/// [`crate::GraphSeries`].
pub fn snapshot_means_of_series(series: &crate::GraphSeries) -> SnapshotMeans {
    let mut non_empty = 0usize;
    let mut total_edges = 0usize;
    let (mut sd, mut sg, mut sni, mut slcc) = (0.0f64, 0.0f64, 0.0f64, 0.0f64);
    for (_, snap) in series.snapshots() {
        non_empty += 1;
        total_edges += snap.edge_count();
        sd += snap.density();
        sg += snap.mean_degree();
        sni += snap.non_isolated() as f64;
        slcc += snap.largest_component() as f64;
    }
    let d = non_empty.max(1) as f64;
    SnapshotMeans {
        k: series.k(),
        delta_ticks: series.delta_ticks(),
        non_empty,
        total_edges,
        mean_density: sd / d,
        mean_degree: sg / d,
        mean_non_isolated: sni / d,
        mean_largest_component: slcc / d,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphSeries;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("b", "c", 1);
        b.add("c", "d", 6);
        b.add("d", "e", 8);
        b.add("a", "e", 10);
        b.build().unwrap()
    }

    #[test]
    fn streaming_matches_materialized() {
        let s = stream();
        for k in [1u64, 2, 3, 5, 10] {
            let a = snapshot_means(&s, k);
            let series = GraphSeries::aggregate(&s, k);
            let b = snapshot_means_of_series(&series);
            assert_eq!(a.non_empty, b.non_empty, "k={k}");
            assert_eq!(a.total_edges, b.total_edges, "k={k}");
            assert!((a.mean_density - b.mean_density).abs() < 1e-12, "k={k}");
            assert!((a.mean_degree - b.mean_degree).abs() < 1e-12, "k={k}");
            assert!((a.mean_non_isolated - b.mean_non_isolated).abs() < 1e-12, "k={k}");
            assert!(
                (a.mean_largest_component - b.mean_largest_component).abs() < 1e-12,
                "k={k}"
            );
        }
    }

    #[test]
    fn total_aggregation_values() {
        let s = stream();
        let m = snapshot_means(&s, 1);
        assert_eq!(m.non_empty, 1);
        // one pentagon over 5 nodes: density 5/10, degree 2, all 5 non-isolated, lcc 5
        assert!((m.mean_density - 0.5).abs() < 1e-12);
        assert!((m.mean_degree - 2.0).abs() < 1e-12);
        assert_eq!(m.mean_non_isolated, 5.0);
        assert_eq!(m.mean_largest_component, 5.0);
    }

    #[test]
    fn density_grows_with_delta() {
        let s = stream();
        let fine = snapshot_means(&s, 10);
        let coarse = snapshot_means(&s, 1);
        assert!(fine.mean_density < coarse.mean_density);
        assert!(fine.mean_largest_component < coarse.mean_largest_component);
    }
}
