//! End-to-end tests of the `saturn` binary.

use std::process::Command;

fn saturn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_saturn"))
        .args(args)
        .output()
        .expect("binary runs")
}

fn tmp_trace() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("saturn-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace-{}.txt", std::process::id()));
    let mut text = String::new();
    for i in 0..300i64 {
        text.push_str(&format!("n{} n{} {}\n", i % 6, (i + 1) % 6, i * 40));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn help_and_unknown_commands() {
    let out = saturn(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = saturn(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = saturn(&[]);
    assert!(!out.status.success());
}

#[test]
fn stats_reports_counts() {
    let path = tmp_trace();
    let out = saturn(&["stats", path.to_str().unwrap(), "--directed"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes                6"), "{text}");
    assert!(text.contains("links                300"), "{text}");
}

#[test]
fn analyze_finds_gamma_and_json_is_valid() {
    let path = tmp_trace();
    let out = saturn(&["analyze", path.to_str().unwrap(), "--points", "10", "--unit", "s"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("γ ="), "{text}");

    let out = saturn(&["analyze", path.to_str().unwrap(), "--points", "10", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value =
        serde_json::from_slice(&out.stdout).expect("valid JSON report");
    assert!(v["results"].as_array().unwrap().len() >= 5);
}

#[test]
fn validate_prints_loss_table() {
    let path = tmp_trace();
    let out = saturn(&["validate", path.to_str().unwrap(), "--points", "8", "--unit", "s"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lost"), "{text}");
    assert!(text.contains("elongation"), "{text}");
}

#[test]
fn synth_writes_parseable_stream() {
    let dir = std::env::temp_dir().join("saturn-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("synth-{}.txt", std::process::id()));
    let out = saturn(&[
        "synth",
        "manufacturing",
        "--scale",
        "0.05",
        "--seed",
        "3",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // the generated file round-trips through analyze
    let out = saturn(&["analyze", path.to_str().unwrap(), "--directed", "--points", "8"]);
    assert!(out.status.success());

    let out = saturn(&["synth", "atlantis"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn missing_file_fails_cleanly() {
    let out = saturn(&["analyze", "/no/such/file.txt"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/no/such/file.txt"), "{err}");
}
