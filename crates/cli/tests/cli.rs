//! End-to-end tests of the `saturn` binary.

use std::process::Command;

fn saturn(args: &[&str]) -> std::process::Output {
    Command::new(env!("CARGO_BIN_EXE_saturn")).args(args).output().expect("binary runs")
}

fn tmp_trace() -> std::path::PathBuf {
    let dir = std::env::temp_dir().join("saturn-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("trace-{}.txt", std::process::id()));
    let mut text = String::new();
    for i in 0..300i64 {
        text.push_str(&format!("n{} n{} {}\n", i % 6, (i + 1) % 6, i * 40));
    }
    std::fs::write(&path, text).unwrap();
    path
}

#[test]
fn help_and_unknown_commands() {
    let out = saturn(&["help"]);
    assert!(out.status.success());
    assert!(String::from_utf8_lossy(&out.stdout).contains("USAGE"));

    let out = saturn(&["frobnicate"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown command"));

    let out = saturn(&[]);
    assert!(!out.status.success());
}

#[test]
fn stats_reports_counts() {
    let path = tmp_trace();
    let out = saturn(&["stats", path.to_str().unwrap(), "--directed"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("nodes                6"), "{text}");
    assert!(text.contains("links                300"), "{text}");
}

#[test]
fn analyze_finds_gamma_and_json_is_valid() {
    let path = tmp_trace();
    let out = saturn(&["analyze", path.to_str().unwrap(), "--points", "10", "--unit", "s"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("γ ="), "{text}");

    let out = saturn(&["analyze", path.to_str().unwrap(), "--points", "10", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON report");
    assert!(v["results"].as_array().unwrap().len() >= 5);
}

#[test]
fn validate_prints_loss_table() {
    let path = tmp_trace();
    let out = saturn(&["validate", path.to_str().unwrap(), "--points", "8", "--unit", "s"]);
    assert!(out.status.success());
    let text = String::from_utf8_lossy(&out.stdout);
    assert!(text.contains("lost"), "{text}");
    assert!(text.contains("elongation"), "{text}");
}

#[test]
fn synth_writes_parseable_stream() {
    let dir = std::env::temp_dir().join("saturn-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("synth-{}.txt", std::process::id()));
    let out = saturn(&[
        "synth",
        "manufacturing",
        "--scale",
        "0.05",
        "--seed",
        "3",
        "--out",
        path.to_str().unwrap(),
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    // the generated file round-trips through analyze
    let out = saturn(&["analyze", path.to_str().unwrap(), "--directed", "--points", "8"]);
    assert!(out.status.success());

    let out = saturn(&["synth", "atlantis"]);
    assert!(!out.status.success());
    assert!(String::from_utf8_lossy(&out.stderr).contains("unknown profile"));
}

#[test]
fn synth_analyze_json_end_to_end() {
    // generate a trace, analyze it, and assert on the parsed report
    let dir = std::env::temp_dir().join("saturn-cli-tests");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join(format!("e2e-{}.txt", std::process::id()));
    let out = saturn(&["synth", "irvine", "--scale", "0.04", "--out", path.to_str().unwrap()]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));

    let out = saturn(&[
        "analyze",
        path.to_str().unwrap(),
        "--directed",
        "--points",
        "8",
        "--threads",
        "2",
        "--json",
    ]);
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    let results = v["results"].as_array().unwrap();
    assert!(results.len() >= 8, "coarse grid plus refinement");
    for r in results {
        assert!(r["delta_ticks"].as_f64().unwrap() > 0.0);
        assert!(r["k"].as_u64().unwrap() >= 1);
        assert!(
            r["scores"]["mk_proximity"].is_null()
                || r["scores"]["mk_proximity"].as_f64().is_some()
        );
    }
    // deterministic across thread counts: --threads 1 gives the same bytes
    let again = saturn(&[
        "analyze",
        path.to_str().unwrap(),
        "--directed",
        "--points",
        "8",
        "--threads",
        "1",
        "--json",
    ]);
    assert_eq!(out.stdout, again.stdout, "thread count must not change the report");
}

/// The execution-knob matrix the CI job scripts: every combination of
/// `--no-delta`, `--no-incremental`, `--tile`, and thread count must emit
/// byte-identical JSON — the property that lets ops flip any knob on a
/// live deployment without reports moving.
#[test]
fn execution_knobs_do_not_change_report_bytes() {
    let path = tmp_trace();
    let path = path.to_str().unwrap();
    let baseline = saturn(&["analyze", path, "--points", "8", "--threads", "2", "--json"]);
    assert!(baseline.status.success(), "{}", String::from_utf8_lossy(&baseline.stderr));
    for knobs in [
        &["--no-incremental"][..],
        &["--no-delta"],
        &["--tile", "7"],
        &["--no-incremental", "--no-delta", "--tile", "3", "--threads", "1"],
    ] {
        let mut args = vec!["analyze", path, "--points", "8", "--threads", "2", "--json"];
        args.extend_from_slice(knobs);
        let out = saturn(&args);
        assert!(out.status.success(), "{knobs:?}: {}", String::from_utf8_lossy(&out.stderr));
        assert_eq!(baseline.stdout, out.stdout, "{knobs:?} must not change the report bytes");
    }
}

#[test]
fn stats_json_is_machine_readable() {
    let path = tmp_trace();
    let out = saturn(&["stats", path.to_str().unwrap(), "--directed", "--json"]);
    assert!(out.status.success());
    let v: serde_json::Value = serde_json::from_slice(&out.stdout).expect("valid JSON");
    assert_eq!(v["nodes"].as_u64(), Some(6));
    assert_eq!(v["links"].as_u64(), Some(300));
    assert_eq!(v["dropped_self_loops"].as_u64(), Some(0));
    assert!(v["span"].as_i64().unwrap() > 0);
    assert!(v["mean_inter_contact"].as_f64().unwrap() > 0.0);
}

#[test]
fn threads_env_var_is_honored() {
    let path = tmp_trace();
    let out = Command::new(env!("CARGO_BIN_EXE_saturn"))
        .args(["analyze", path.to_str().unwrap(), "--points", "8", "--json"])
        .env("SATURN_THREADS", "1")
        .output()
        .expect("binary runs");
    assert!(out.status.success(), "{}", String::from_utf8_lossy(&out.stderr));
    let baseline = saturn(&["analyze", path.to_str().unwrap(), "--points", "8", "--json"]);
    assert_eq!(out.stdout, baseline.stdout);
}

#[test]
fn serve_answers_an_analyze_request() {
    use std::io::{BufRead, BufReader, Read, Write};

    let mut child = Command::new(env!("CARGO_BIN_EXE_saturn"))
        .args(["serve", "--addr", "127.0.0.1:0", "--threads", "2", "--cache-mb", "8"])
        .stdout(std::process::Stdio::piped())
        .spawn()
        .expect("serve starts");
    let mut lines = BufReader::new(child.stdout.take().expect("stdout piped"));
    let mut first = String::new();
    lines.read_line(&mut first).expect("banner line");
    let addr = first.trim().rsplit("http://").next().expect("address in banner").to_string();

    let trace = "a b 1\nb c 5\nc d 9\na c 13\nb d 17\na d 21\n".repeat(20);
    let body: String = trace
        .lines()
        .enumerate()
        .map(|(i, l)| {
            let mut parts = l.split_whitespace();
            let (u, v) = (parts.next().unwrap(), parts.next().unwrap());
            format!("{u}{} {v}{} {}\n", i % 3, i % 3, i * 4)
        })
        .collect();

    let mut stream = std::net::TcpStream::connect(&addr).expect("connect to served addr");
    write!(
        stream,
        "POST /v1/analyze?points=8 HTTP/1.1\r\nHost: x\r\nConnection: close\r\nContent-Length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut response = String::new();
    stream.read_to_string(&mut response).expect("read response");
    child.kill().ok();
    child.wait().ok();

    assert!(response.starts_with("HTTP/1.1 200"), "{response}");
    let json_start = response.find("\r\n\r\n").expect("header/body split") + 4;
    let v: serde_json::Value =
        serde_json::from_str(&response[json_start..]).expect("valid JSON report");
    assert!(!v["results"].as_array().unwrap().is_empty());
}

#[test]
fn missing_file_fails_cleanly() {
    let out = saturn(&["analyze", "/no/such/file.txt"]);
    assert!(!out.status.success());
    let err = String::from_utf8_lossy(&out.stderr);
    assert!(err.contains("/no/such/file.txt"), "{err}");
}
