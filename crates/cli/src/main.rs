//! `saturn` — command-line saturation-scale analyzer for link streams.
//!
//! The paper's closing claim: "our method is fully automatic and does not
//! require any parameter as input. Therefore, it can easily been
//! incorporated into any automatic tool for analyzing dynamic networks."
//! This binary is that tool.
//!
//! ```text
//! saturn analyze <file> [--directed] [--points N] [--sample N] [--threads N] [--tile N] [--no-delta] [--no-incremental] [--json] [--unit s|m|h|d]
//! saturn synth <irvine|facebook|enron|manufacturing> [--seed S] [--scale F] [--out FILE]
//! saturn validate <file> [--directed] [--points N] [--threads N]
//! saturn stats <file> [--directed] [--json]
//! saturn serve [--addr A] [--threads N] [--tile N] [--cache-mb M] [--cache-dir DIR] [--cache-disk-mb M] [--queue N] [--executors N|auto] [--default-deadline-ms N] [--drain-secs N] [--stream-ttl-secs N] [--max-streams N]
//! saturn help
//! ```

use saturn_core::parallel::WorkerPool;
use saturn_core::{
    json_trace_from_env, validation_sweep, JsonTraceObserver, OccupancyMethod, SweepControl,
    SweepGrid, TargetSpec, ValidationOptions,
};
use saturn_linkstream::{io, Directedness, LinkStream};
use saturn_server::{FaultPlan, Server, ServerConfig};
use saturn_synth::DatasetProfile;
use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = args.first() else {
        eprintln!("{USAGE}");
        return ExitCode::FAILURE;
    };
    let rest = &args[1..];
    let result = match command.as_str() {
        "analyze" => cmd_analyze(rest),
        "synth" => cmd_synth(rest),
        "validate" => cmd_validate(rest),
        "stats" => cmd_stats(rest),
        "serve" => cmd_serve(rest),
        "help" | "--help" | "-h" => {
            println!("{USAGE}");
            Ok(())
        }
        other => Err(format!("unknown command `{other}`\n{USAGE}")),
    };
    match result {
        Ok(()) => ExitCode::SUCCESS,
        Err(msg) => {
            eprintln!("saturn: {msg}");
            ExitCode::FAILURE
        }
    }
}

const USAGE: &str = "\
saturn — saturation-scale analysis of link streams (CoNEXT 2015)

USAGE:
  saturn analyze <file>   detect the saturation scale γ of a trace
      --directed          treat links as directed (default: undirected)
      --points N          Δ-grid size (default 48)
      --sample N          sample N destination nodes (default: exact, all nodes)
      --threads N         worker threads (default: $SATURN_THREADS, else all cores)
      --tile N            target-tile width in columns (default 0 = auto);
                          execution knob only — reports are bit-identical
      --no-delta          disable DP delta propagation (ablation; reports
                          are bit-identical either way)
      --no-incremental    build every scale's timeline from scratch instead
                          of merging adjacent windows of a finer scale
                          (ablation; reports are bit-identical either way)
      --unit s|m|h|d      display unit for Δ (ticks are seconds; default h)
      --json              emit the full report as JSON
                          ($SATURN_TRACE=json mirrors per-tile sweep spans
                          as JSON lines on stderr; output is unchanged)
  saturn validate <file>  information-loss curves (lost transitions, elongation)
      --directed, --points N, --threads N, --unit, --json as above
  saturn stats <file>     print stream statistics
      --directed, --json as above
  saturn serve            run the HTTP analysis service (POST /v1/analyze,
                          /v1/validate, /v1/stats, /v1/streams;
                          GET /v1/jobs/<id>, /v1/health, /v1/metrics)
      --addr A            bind address (default 127.0.0.1:7878; port 0 = ephemeral)
      --threads N         sweep worker pool size, shared across requests
      --tile N            default target-tile width for analyze sweeps
                          (0 = auto; requests may override with ?tile=N)
      --no-delta          default delta-propagation setting for analyze
                          sweeps (requests may override with ?no_delta=1)
      --no-incremental    default incremental-timeline setting for analyze
                          sweeps (requests may override with ?no_incremental=1)
      --cache-mb M        in-memory report cache budget in MiB (default 64;
                          0 disables the memory tier entirely)
      --cache-dir DIR     durable disk spill tier under the memory cache:
                          completed/evicted reports persist as checksummed
                          content-addressed files and survive restarts
                          (default: none; the dir is created if missing and
                          must be writable, else serve fails fast)
      --cache-disk-mb M   disk spill tier budget in MiB (default 64;
                          0 disables the tier even with --cache-dir)
      --queue N           per-shard job queue depth before 503 backpressure
                          (default 64)
      --stream-ttl-secs N idle TTL of streaming ingest sessions; sessions
                          untouched this long are evicted and answer 410
                          (default 300)
      --max-streams N     concurrently open ingest sessions before creation
                          gets 503 stream_limit (default 64)
      --executors N|auto  executor shards, each with its own queue, worker
                          pool, and supervisor-backed restart (default 1;
                          auto = min(cores/4, 4)); execution knob only —
                          report bytes are identical at any count
      --default-deadline-ms N
                          deadline applied to requests that send no
                          ?deadline_ms= (default 0 = none); expired requests
                          get 504 with partial-progress counters
      --drain-secs N      graceful-drain budget after SIGTERM/SIGINT
                          (default 10): in-flight jobs get this long to
                          finish before cancellation
                          ($SATURN_FAULTS arms the fault-injection harness;
                          see the server crate docs for the spec grammar)
  saturn synth <name>     generate a dataset stand-in (irvine, facebook,
                          enron, manufacturing) to stdout or --out FILE
      --seed S            generation seed (default 1)
      --scale F           shrink nodes/events by factor F in (0,1]
  saturn help             this message

input format: one event per line, `u v t` or KONECT `u v w t`; integer
timestamps; lines starting with % or # are skipped.";

/// `$SATURN_THREADS`, or 0 ("all cores") when unset/unparseable.
fn env_threads() -> usize {
    std::env::var("SATURN_THREADS").ok().and_then(|v| v.parse().ok()).unwrap_or(0)
}

#[derive(Debug)]
struct Flags {
    file: Option<String>,
    directed: bool,
    points: usize,
    sample: Option<u32>,
    threads: usize,
    tile: usize,
    no_delta: bool,
    no_incremental: bool,
    json: bool,
    unit: (f64, &'static str),
    seed: u64,
    scale: f64,
    out: Option<String>,
    addr: String,
    cache_mb: usize,
    cache_dir: Option<String>,
    cache_disk_mb: usize,
    queue: usize,
    executors: usize,
    default_deadline_ms: u64,
    drain_secs: u64,
    stream_ttl_secs: u64,
    max_streams: usize,
}

fn parse_flags(args: &[String]) -> Result<Flags, String> {
    let mut f = Flags {
        file: None,
        directed: false,
        points: 48,
        sample: None,
        threads: env_threads(),
        tile: 0,
        no_delta: false,
        no_incremental: false,
        json: false,
        unit: (3600.0, "h"),
        seed: 1,
        scale: 1.0,
        out: None,
        addr: "127.0.0.1:7878".into(),
        cache_mb: 64,
        cache_dir: None,
        cache_disk_mb: 64,
        queue: 64,
        executors: 1,
        default_deadline_ms: 0,
        drain_secs: 10,
        stream_ttl_secs: 300,
        max_streams: 64,
    };
    let mut it = args.iter();
    while let Some(a) = it.next() {
        let mut value = |name: &str| {
            it.next().map(|s| s.to_string()).ok_or(format!("{name} needs a value"))
        };
        match a.as_str() {
            "--directed" => f.directed = true,
            "--json" => f.json = true,
            "--points" => {
                f.points = value("--points")?.parse().map_err(|e| format!("--points: {e}"))?
            }
            "--sample" => {
                f.sample =
                    Some(value("--sample")?.parse().map_err(|e| format!("--sample: {e}"))?)
            }
            "--threads" => {
                f.threads =
                    value("--threads")?.parse().map_err(|e| format!("--threads: {e}"))?
            }
            "--tile" => {
                f.tile = value("--tile")?.parse().map_err(|e| format!("--tile: {e}"))?
            }
            "--no-delta" => f.no_delta = true,
            "--no-incremental" => f.no_incremental = true,
            "--addr" => f.addr = value("--addr")?,
            "--cache-mb" => {
                f.cache_mb =
                    value("--cache-mb")?.parse().map_err(|e| format!("--cache-mb: {e}"))?
            }
            "--cache-dir" => f.cache_dir = Some(value("--cache-dir")?),
            "--cache-disk-mb" => {
                f.cache_disk_mb = value("--cache-disk-mb")?
                    .parse()
                    .map_err(|e| format!("--cache-disk-mb: {e}"))?
            }
            "--queue" => {
                f.queue = value("--queue")?.parse().map_err(|e| format!("--queue: {e}"))?
            }
            "--executors" => {
                // `auto` maps to 0, which the server resolves to
                // min(cores/4, 4) at bind time
                f.executors = match value("--executors")?.as_str() {
                    "auto" => 0,
                    n => n.parse().map_err(|e| format!("--executors: {e}"))?,
                }
            }
            "--default-deadline-ms" => {
                f.default_deadline_ms = value("--default-deadline-ms")?
                    .parse()
                    .map_err(|e| format!("--default-deadline-ms: {e}"))?
            }
            "--drain-secs" => {
                f.drain_secs =
                    value("--drain-secs")?.parse().map_err(|e| format!("--drain-secs: {e}"))?
            }
            "--stream-ttl-secs" => {
                f.stream_ttl_secs = value("--stream-ttl-secs")?
                    .parse()
                    .map_err(|e| format!("--stream-ttl-secs: {e}"))?
            }
            "--max-streams" => {
                f.max_streams = value("--max-streams")?
                    .parse()
                    .map_err(|e| format!("--max-streams: {e}"))?
            }
            "--seed" => {
                f.seed = value("--seed")?.parse().map_err(|e| format!("--seed: {e}"))?
            }
            "--scale" => {
                f.scale = value("--scale")?.parse().map_err(|e| format!("--scale: {e}"))?
            }
            "--out" => f.out = Some(value("--out")?),
            "--unit" => {
                f.unit = match value("--unit")?.as_str() {
                    "s" => (1.0, "s"),
                    "m" => (60.0, "min"),
                    "h" => (3600.0, "h"),
                    "d" => (86400.0, "d"),
                    u => return Err(format!("unknown unit `{u}` (use s|m|h|d)")),
                }
            }
            other if !other.starts_with('-') && f.file.is_none() => {
                f.file = Some(other.to_string())
            }
            other => return Err(format!("unexpected argument `{other}`")),
        }
    }
    Ok(f)
}

fn load(f: &Flags) -> Result<LinkStream, String> {
    let file = f.file.as_deref().ok_or("missing input file")?;
    let d = if f.directed { Directedness::Directed } else { Directedness::Undirected };
    io::read_path(file, d).map_err(|e| format!("{file}: {e}"))
}

fn targets(f: &Flags) -> TargetSpec {
    match f.sample {
        Some(size) => TargetSpec::Sample { size, seed: f.seed },
        None => TargetSpec::All,
    }
}

fn cmd_analyze(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let stream = load(&f)?;
    let method = OccupancyMethod::new()
        .grid(SweepGrid::Geometric { points: f.points })
        .targets(targets(&f))
        .threads(f.threads)
        .tile(f.tile)
        .no_delta_propagation(f.no_delta)
        .no_incremental_timeline(f.no_incremental);
    let report = if json_trace_from_env() {
        // SATURN_TRACE=json: mirror every completed (scale, tile) span as a
        // JSON line on stderr, same format `saturn serve` emits. Observation
        // only — report bytes are identical with or without the observer.
        let mut pool = WorkerPool::new(f.threads);
        let ctl = SweepControl::with_observer(std::sync::Arc::new(JsonTraceObserver));
        method
            .try_run_on(&stream, &mut pool, &ctl)
            .expect("a sweep whose token never fires cannot be cancelled")
    } else {
        method.run(&stream)
    };
    if f.json {
        println!("{}", report.to_json());
    } else {
        print!("{}", report.render_text(f.unit.0, f.unit.1));
    }
    Ok(())
}

fn cmd_validate(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let stream = load(&f)?;
    let report = validation_sweep(
        &stream,
        &SweepGrid::Geometric { points: f.points },
        targets(&f),
        &ValidationOptions { threads: f.threads, ..ValidationOptions::default() },
    );
    if f.json {
        println!("{}", serde_json::to_string_pretty(&report).expect("serializable"));
        return Ok(());
    }
    let (per, unit) = f.unit;
    println!(
        "{} shortest transitions, {} stream trips",
        report.reference_transitions, report.reference_trips
    );
    println!("{:>14} {:>12} {:>12}", format!("Δ ({unit})"), "lost", "elongation");
    for p in &report.points {
        println!(
            "{:>14.4} {:>12.4} {:>12.3}",
            p.delta_ticks / per,
            p.lost_transitions,
            p.elongation.mean
        );
    }
    Ok(())
}

fn cmd_stats(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    let stream = load(&f)?;
    let s = stream.stats();
    if f.json {
        // the same shape `POST /v1/stats` serves
        println!("{}", serde_json::to_string_pretty(&s).expect("stats serialize"));
        return Ok(());
    }
    println!("nodes                {}", s.nodes);
    println!("links                {}", s.links);
    println!("distinct timestamps  {}", s.distinct_timestamps);
    println!("period               [{}, {}] ({} ticks)", s.t_begin, s.t_end, s.span);
    println!("links/node           {:.3}", s.mean_links_per_node);
    println!("mean inter-contact   {:.1} ticks", s.mean_inter_contact);
    println!("dropped self-loops   {}", s.dropped_self_loops);
    println!("dropped duplicates   {}", s.dropped_duplicates);
    Ok(())
}

fn cmd_serve(args: &[String]) -> Result<(), String> {
    let f = parse_flags(args)?;
    if let Some(file) = &f.file {
        return Err(format!(
            "serve takes no input file (got `{file}`); traces arrive in request bodies"
        ));
    }
    let faults = match FaultPlan::from_env() {
        None => None,
        Some(Ok(plan)) => {
            eprintln!("saturn-server: WARNING: fault injection armed via SATURN_FAULTS");
            Some(std::sync::Arc::new(plan))
        }
        Some(Err(e)) => return Err(format!("SATURN_FAULTS: {e}")),
    };
    let config = ServerConfig {
        addr: f.addr.clone(),
        threads: f.threads,
        tile: f.tile,
        no_delta: f.no_delta,
        no_incremental: f.no_incremental,
        cache_bytes: f.cache_mb << 20,
        cache_dir: f.cache_dir.as_ref().map(std::path::PathBuf::from),
        cache_disk_bytes: f.cache_disk_mb << 20,
        queue_depth: f.queue,
        executors: f.executors,
        default_deadline_ms: f.default_deadline_ms,
        drain_secs: f.drain_secs,
        stream_ttl: std::time::Duration::from_secs(f.stream_ttl_secs),
        max_streams: f.max_streams,
        faults,
        ..ServerConfig::default()
    };
    let server = Server::bind(&config).map_err(|e| format!("bind {}: {e}", config.addr))?;
    let addr = server.local_addr().map_err(|e| format!("local addr: {e}"))?;
    // machine-readable first line: tests and scripts bind port 0 and read
    // the resolved address from here
    println!("saturn-server listening on http://{addr}");
    println!(
        "  threads={} executors={} cache={}MiB disk={} queue={} deadline={} drain={}s  (POST /v1/analyze | /v1/validate | /v1/stats | /v1/streams, GET /v1/jobs/<id> | /v1/health | /v1/metrics)",
        if f.threads == 0 { "auto".to_string() } else { f.threads.to_string() },
        if f.executors == 0 {
            format!("auto({})", saturn_server::auto_executors())
        } else {
            f.executors.to_string()
        },
        f.cache_mb,
        match &f.cache_dir {
            Some(dir) if f.cache_disk_mb > 0 => format!("{}MiB@{dir}", f.cache_disk_mb),
            _ => "off".to_string(),
        },
        f.queue,
        if f.default_deadline_ms == 0 {
            "none".to_string()
        } else {
            format!("{}ms", f.default_deadline_ms)
        },
        f.drain_secs,
    );
    server.run().map_err(|e| format!("serve: {e}"))
}

fn cmd_synth(args: &[String]) -> Result<(), String> {
    let name = args.first().ok_or("synth needs a profile name")?.clone();
    let f = parse_flags(&args[1..])?;
    let profile = match name.as_str() {
        "irvine" => DatasetProfile::irvine(),
        "facebook" => DatasetProfile::facebook(),
        "enron" => DatasetProfile::enron(),
        "manufacturing" => DatasetProfile::manufacturing(),
        other => return Err(format!("unknown profile `{other}`")),
    };
    let profile = if f.scale < 1.0 { profile.scaled(f.scale) } else { profile };
    let stream = profile.generate(f.seed);
    match &f.out {
        Some(path) => {
            io::write_path(&stream, path).map_err(|e| format!("{path}: {e}"))?;
            eprintln!("wrote {} events to {path}", stream.len());
        }
        None => {
            io::write_stream(&stream, std::io::stdout().lock())
                .map_err(|e| format!("stdout: {e}"))?;
        }
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    fn flags(args: &[&str]) -> Result<Flags, String> {
        parse_flags(&args.iter().map(|s| s.to_string()).collect::<Vec<_>>())
    }

    #[test]
    fn defaults() {
        let f = flags(&["trace.txt"]).unwrap();
        assert_eq!(f.file.as_deref(), Some("trace.txt"));
        assert!(!f.directed && !f.json);
        assert_eq!(f.points, 48);
        assert_eq!(f.unit.1, "h");
        assert!(f.sample.is_none());
    }

    #[test]
    fn all_flags_parse() {
        let f = flags(&[
            "t.txt",
            "--directed",
            "--points",
            "12",
            "--sample",
            "30",
            "--json",
            "--unit",
            "m",
            "--seed",
            "9",
            "--scale",
            "0.5",
            "--out",
            "x.txt",
        ])
        .unwrap();
        assert!(f.directed && f.json);
        assert_eq!(f.points, 12);
        assert_eq!(f.sample, Some(30));
        assert_eq!(f.unit, (60.0, "min"));
        assert_eq!(f.seed, 9);
        assert_eq!(f.scale, 0.5);
        assert_eq!(f.out.as_deref(), Some("x.txt"));
    }

    #[test]
    fn server_and_thread_flags_parse() {
        let f = flags(&[
            "--addr",
            "0.0.0.0:9090",
            "--threads",
            "4",
            "--cache-mb",
            "16",
            "--queue",
            "8",
        ])
        .unwrap();
        assert_eq!(f.addr, "0.0.0.0:9090");
        assert_eq!(f.threads, 4);
        assert_eq!(f.cache_mb, 16);
        assert_eq!(f.queue, 8);
        assert!(flags(&["--threads", "many"]).unwrap_err().contains("--threads"));
        assert!(flags(&["--cache-mb"]).unwrap_err().contains("--cache-mb"));
    }

    #[test]
    fn disk_cache_flags_parse_and_default_off() {
        let f = flags(&[]).unwrap();
        assert!(f.cache_dir.is_none(), "disk tier is off unless --cache-dir is given");
        assert_eq!(f.cache_disk_mb, 64);
        let f = flags(&["--cache-dir", "/tmp/spill", "--cache-disk-mb", "128"]).unwrap();
        assert_eq!(f.cache_dir.as_deref(), Some("/tmp/spill"));
        assert_eq!(f.cache_disk_mb, 128);
        // 0 budgets disable a tier without error
        assert_eq!(flags(&["--cache-mb", "0"]).unwrap().cache_mb, 0);
        assert_eq!(flags(&["--cache-disk-mb", "0"]).unwrap().cache_disk_mb, 0);
        assert!(flags(&["--cache-dir"]).unwrap_err().contains("--cache-dir"));
        assert!(flags(&["--cache-disk-mb", "lots"]).unwrap_err().contains("--cache-disk-mb"));
    }

    #[test]
    fn executors_flag_parses_counts_and_auto() {
        assert_eq!(flags(&[]).unwrap().executors, 1);
        assert_eq!(flags(&["--executors", "4"]).unwrap().executors, 4);
        // `auto` becomes 0, resolved by the server to min(cores/4, 4)
        assert_eq!(flags(&["--executors", "auto"]).unwrap().executors, 0);
        assert!(flags(&["--executors", "lots"]).unwrap_err().contains("--executors"));
        assert!(flags(&["--executors"]).unwrap_err().contains("--executors"));
    }

    #[test]
    fn lifecycle_flags_parse_and_default_off() {
        let f = flags(&[]).unwrap();
        assert_eq!(f.default_deadline_ms, 0);
        assert_eq!(f.drain_secs, 10);
        let f = flags(&["--default-deadline-ms", "2500", "--drain-secs", "3"]).unwrap();
        assert_eq!(f.default_deadline_ms, 2500);
        assert_eq!(f.drain_secs, 3);
        assert!(flags(&["--default-deadline-ms", "soon"])
            .unwrap_err()
            .contains("--default-deadline-ms"));
        assert!(flags(&["--drain-secs"]).unwrap_err().contains("--drain-secs"));
    }

    #[test]
    fn stream_session_flags_parse_and_default() {
        let f = flags(&[]).unwrap();
        assert_eq!(f.stream_ttl_secs, 300);
        assert_eq!(f.max_streams, 64);
        let f = flags(&["--stream-ttl-secs", "5", "--max-streams", "2"]).unwrap();
        assert_eq!(f.stream_ttl_secs, 5);
        assert_eq!(f.max_streams, 2);
        assert!(flags(&["--stream-ttl-secs", "soon"])
            .unwrap_err()
            .contains("--stream-ttl-secs"));
        assert!(flags(&["--max-streams"]).unwrap_err().contains("--max-streams"));
    }

    #[test]
    fn tile_flag_parses_and_defaults_to_auto() {
        assert_eq!(flags(&["t.txt"]).unwrap().tile, 0);
        assert_eq!(flags(&["t.txt", "--tile", "64"]).unwrap().tile, 64);
        assert!(flags(&["--tile", "wide"]).unwrap_err().contains("--tile"));
        assert!(flags(&["--tile"]).unwrap_err().contains("--tile"));
    }

    #[test]
    fn no_delta_flag_parses_and_defaults_off() {
        assert!(!flags(&["t.txt"]).unwrap().no_delta);
        assert!(flags(&["t.txt", "--no-delta"]).unwrap().no_delta);
    }

    #[test]
    fn no_incremental_flag_parses_and_defaults_off() {
        assert!(!flags(&["t.txt"]).unwrap().no_incremental);
        assert!(flags(&["t.txt", "--no-incremental"]).unwrap().no_incremental);
    }

    #[test]
    fn errors_are_descriptive() {
        assert!(flags(&["--points"]).unwrap_err().contains("--points"));
        assert!(flags(&["--unit", "fortnights"]).unwrap_err().contains("fortnights"));
        assert!(flags(&["--points", "abc"]).unwrap_err().contains("--points"));
        assert!(flags(&["a.txt", "b.txt"]).unwrap_err().contains("unexpected"));
        assert!(flags(&["--bogus"]).unwrap_err().contains("--bogus"));
    }

    #[test]
    fn unit_table() {
        for (name, per, label) in
            [("s", 1.0, "s"), ("m", 60.0, "min"), ("h", 3600.0, "h"), ("d", 86400.0, "d")]
        {
            let f = flags(&["t", "--unit", name]).unwrap();
            assert_eq!(f.unit, (per, label));
        }
    }

    #[test]
    fn missing_file_reported_by_load() {
        let f = flags(&["--directed"]).unwrap();
        assert!(load(&f).unwrap_err().contains("missing input file"));
    }
}
