//! Property-based validation of the distribution substrate: closed-form
//! integrals against numerical quadrature, and structural invariants.

use proptest::prelude::*;
use saturn_distrib::{
    cumulative_residual_entropy, mk_distance_to_uniform, shannon_entropy, std_dev,
    SelectionMetric, WeightedDist,
};

fn arb_dist() -> impl Strategy<Value = WeightedDist> {
    proptest::collection::vec((0u32..=1000, 1u64..50), 1..60).prop_map(|pairs| {
        WeightedDist::from_pairs(
            pairs.into_iter().map(|(v, w)| (v as f64 / 1000.0, w)).collect(),
        )
    })
}

/// Mid-point quadrature of `f` over [0, 1].
fn quad(f: impl Fn(f64) -> f64, steps: usize) -> f64 {
    (0..steps).map(|i| f((i as f64 + 0.5) / steps as f64)).sum::<f64>() / steps as f64
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(150))]

    /// The closed-form M-K distance equals numerical integration of its
    /// defining integral.
    #[test]
    fn mk_matches_quadrature(dist in arb_dist()) {
        let exact = mk_distance_to_uniform(&dist);
        let numeric = quad(|lam| (dist.survival(lam) - (1.0 - lam)).abs(), 40_000);
        prop_assert!((exact - numeric).abs() < 5e-4, "exact {exact} vs numeric {numeric}");
    }

    /// Same for the cumulative residual entropy.
    #[test]
    fn cre_matches_quadrature(dist in arb_dist()) {
        let exact = cumulative_residual_entropy(&dist);
        let numeric = quad(
            |lam| {
                let s = dist.survival(lam);
                if s > 0.0 { -s * s.ln() } else { 0.0 }
            },
            40_000,
        );
        prop_assert!((exact - numeric).abs() < 5e-4, "exact {exact} vs numeric {numeric}");
    }

    /// Survival segments tile [0, 1] with non-increasing levels.
    #[test]
    fn survival_segments_are_a_tiling(dist in arb_dist()) {
        let segs = dist.survival_segments();
        prop_assert!(!segs.is_empty());
        prop_assert_eq!(segs.first().unwrap().0, 0.0);
        prop_assert_eq!(segs.last().unwrap().1, 1.0);
        for w in segs.windows(2) {
            prop_assert_eq!(w[0].1, w[1].0, "contiguous");
            prop_assert!(w[0].2 >= w[1].2, "survival decreases");
        }
        for &(lo, hi, s) in &segs {
            prop_assert!(lo < hi);
            prop_assert!((0.0..=1.0).contains(&s));
        }
    }

    /// ICD points descend in y and ascend in x.
    #[test]
    fn icd_is_monotone(dist in arb_dist()) {
        let icd = dist.icd_points();
        for w in icd.windows(2) {
            prop_assert!(w[0].0 < w[1].0);
            prop_assert!(w[0].1 >= w[1].1);
        }
        if let Some(&(_, y0)) = icd.first() {
            prop_assert!((y0 - 1.0).abs() < 1e-12, "first ICD point has full mass");
        }
    }

    /// Bounds: M-K distance in [0, 1/2]; entropy scores non-negative; the
    /// standard deviation of a [0,1] variable is at most 1/2.
    #[test]
    fn score_bounds(dist in arb_dist()) {
        let d = mk_distance_to_uniform(&dist);
        prop_assert!((0.0..=0.5 + 1e-12).contains(&d));
        prop_assert!(std_dev(&dist) <= 0.5 + 1e-12);
        prop_assert!(shannon_entropy(&dist, 10) >= -1e-12);
        prop_assert!(cumulative_residual_entropy(&dist) >= -1e-12);
    }

    /// Every metric is invariant under weight rescaling (weights are
    /// multiplicities, not probabilities).
    #[test]
    fn metrics_are_scale_invariant(
        pairs in proptest::collection::vec((0u32..=100, 1u64..20), 1..30),
        factor in 2u64..9,
    ) {
        let base: Vec<(f64, u64)> =
            pairs.iter().map(|&(v, w)| (v as f64 / 100.0, w)).collect();
        let scaled: Vec<(f64, u64)> =
            pairs.iter().map(|&(v, w)| (v as f64 / 100.0, w * factor)).collect();
        let a = WeightedDist::from_pairs(base);
        let b = WeightedDist::from_pairs(scaled);
        for metric in SelectionMetric::all() {
            let (sa, sb) = (metric.score(&a), metric.score(&b));
            if sa.is_finite() || sb.is_finite() {
                prop_assert!((sa - sb).abs() < 1e-9, "{metric}: {sa} vs {sb}");
            }
        }
    }

    /// Merging duplicates never changes any score.
    #[test]
    fn duplicate_merging_is_transparent(
        pairs in proptest::collection::vec((0u32..=50, 1u64..10), 1..20),
    ) {
        let once: Vec<(f64, u64)> =
            pairs.iter().map(|&(v, w)| (v as f64 / 50.0, w)).collect();
        // split each weight into two identical entries
        let twice: Vec<(f64, u64)> = pairs
            .iter()
            .flat_map(|&(v, w)| {
                let x = v as f64 / 50.0;
                [(x, w), (x, w)]
            })
            .collect();
        let a = WeightedDist::from_pairs(once);
        let b = WeightedDist::from_pairs(twice);
        prop_assert_eq!(a.support_size(), b.support_size());
        prop_assert_eq!(b.total_weight(), 2 * a.total_weight());
        prop_assert!((mk_distance_to_uniform(&a) - mk_distance_to_uniform(&b)).abs() < 1e-12);
    }
}
