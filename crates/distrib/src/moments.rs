//! Weighted moments: mean, standard deviation, variation coefficient.

use crate::WeightedDist;

/// Weighted mean `E[X]`. `NaN` for an empty distribution.
pub fn mean(dist: &WeightedDist) -> f64 {
    if dist.is_empty() {
        return f64::NAN;
    }
    let s: f64 = dist.pairs().map(|(v, w)| v * w as f64).sum();
    s / dist.total_weight() as f64
}

/// Weighted population standard deviation `σ = sqrt(E[(X - µ)²])`.
/// One of the five selection methods of Section 7 (select max σ). `NaN` for
/// an empty distribution.
pub fn std_dev(dist: &WeightedDist) -> f64 {
    if dist.is_empty() {
        return f64::NAN;
    }
    let mu = mean(dist);
    let s: f64 = dist.pairs().map(|(v, w)| (v - mu) * (v - mu) * w as f64).sum();
    (s / dist.total_weight() as f64).sqrt()
}

/// Variation coefficient `c_v = σ/µ`. The paper shows that maximizing it
/// over-favors distributions with tiny means (it selects no aggregation at
/// all) — kept for the Section 7 comparison. `NaN` for an empty distribution
/// or zero mean.
pub fn variation_coefficient(dist: &WeightedDist) -> f64 {
    let mu = mean(dist);
    if mu <= 0.0 || mu.is_nan() {
        return f64::NAN;
    }
    std_dev(dist) / mu
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightedDist;

    #[test]
    fn mean_and_std_of_two_point_mass() {
        let d = WeightedDist::from_pairs(vec![(0.0, 1), (1.0, 1)]);
        assert!((mean(&d) - 0.5).abs() < 1e-12);
        assert!((std_dev(&d) - 0.5).abs() < 1e-12);
        assert!((variation_coefficient(&d) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn weights_matter() {
        let d = WeightedDist::from_pairs(vec![(0.0, 3), (1.0, 1)]);
        assert!((mean(&d) - 0.25).abs() < 1e-12);
        // σ² = 0.75·0.0625 + 0.25·0.5625 = 0.1875; σ = sqrt(3)/4
        assert!((std_dev(&d) - 0.1875f64.sqrt()).abs() < 1e-12);
    }

    #[test]
    fn dirac_has_zero_std() {
        let d = WeightedDist::from_pairs(vec![(0.42, 9)]);
        assert!((mean(&d) - 0.42).abs() < 1e-12);
        assert_eq!(std_dev(&d), 0.0);
        assert_eq!(variation_coefficient(&d), 0.0);
    }

    #[test]
    fn uniform_grid_matches_uniform_density_moments() {
        let n = 10_000;
        let d = WeightedDist::from_pairs((1..=n).map(|i| (i as f64 / n as f64, 1)).collect());
        assert!((mean(&d) - 0.5).abs() < 1e-3);
        assert!((std_dev(&d) - (1.0f64 / 12.0).sqrt()).abs() < 1e-3);
    }

    #[test]
    fn degenerate_cases_are_nan() {
        let empty = WeightedDist::from_pairs(vec![]);
        assert!(mean(&empty).is_nan());
        assert!(std_dev(&empty).is_nan());
        assert!(variation_coefficient(&empty).is_nan());
        let zero = WeightedDist::from_pairs(vec![(0.0, 5)]);
        assert!(variation_coefficient(&zero).is_nan());
    }
}
