//! Entropy-based uniformity measures (Section 7 of the paper).

use crate::WeightedDist;

/// Shannon entropy `H = -Σ p_j ln p_j` of the distribution discretized into
/// `slots` equal bins of `[0, 1]` (value 1.0 falls in the last bin).
///
/// The paper notes this measure "gives very satisfactory results" for
/// `slots ≈ 10` but is sensitive to the slot count — the reason it was not
/// retained. Returns `NaN` for an empty distribution.
///
/// # Panics
/// Panics if `slots == 0`.
pub fn shannon_entropy(dist: &WeightedDist, slots: usize) -> f64 {
    assert!(slots > 0, "need at least one slot");
    if dist.is_empty() {
        return f64::NAN;
    }
    let mut bins = vec![0u64; slots];
    for (v, w) in dist.pairs() {
        let j = ((v * slots as f64) as usize).min(slots - 1);
        bins[j] += w;
    }
    let total = dist.total_weight() as f64;
    bins.iter()
        .filter(|&&w| w > 0)
        .map(|&w| {
            let p = w as f64 / total;
            -p * p.ln()
        })
        .sum()
}

/// Cumulative residual entropy `ε(X) = -∫₀¹ P(X > λ) ln P(X > λ) dλ`,
/// computed in closed form over the constant segments of the survival
/// function (`0·ln 0 = 0` by convention).
///
/// Like the Shannon entropy it is maximized by the uniform density, but it
/// compares distributions on the common support `[0, 1]` without any binning.
/// Returns `NaN` for an empty distribution.
pub fn cumulative_residual_entropy(dist: &WeightedDist) -> f64 {
    if dist.is_empty() {
        return f64::NAN;
    }
    dist.survival_segments()
        .into_iter()
        .map(|(a, b, s)| if s > 0.0 { -(b - a) * s * s.ln() } else { 0.0 })
        .sum()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::WeightedDist;

    #[test]
    fn shannon_uniform_bins_maximize() {
        // one value per slot center: H = ln(slots)
        let slots = 10;
        let d = WeightedDist::from_pairs(
            (0..slots).map(|i| ((i as f64 + 0.5) / slots as f64, 1)).collect(),
        );
        let h = shannon_entropy(&d, slots as usize);
        assert!((h - (slots as f64).ln()).abs() < 1e-12);
    }

    #[test]
    fn shannon_dirac_is_zero() {
        let d = WeightedDist::from_pairs(vec![(0.73, 42)]);
        assert_eq!(shannon_entropy(&d, 10), 0.0);
    }

    #[test]
    fn shannon_depends_on_slot_count() {
        // two close values: indistinguishable at 5 slots, distinct at 100
        let d = WeightedDist::from_pairs(vec![(0.50, 1), (0.52, 1)]);
        assert_eq!(shannon_entropy(&d, 5), 0.0);
        assert!(shannon_entropy(&d, 100) > 0.6);
    }

    #[test]
    fn value_one_falls_in_last_bin() {
        let d = WeightedDist::from_pairs(vec![(1.0, 1)]);
        assert_eq!(shannon_entropy(&d, 10), 0.0); // single bin occupied, no panic
    }

    #[test]
    fn cre_uniform_density_limit() {
        // For the uniform density on [0,1], S(λ) = 1-λ and
        // ε = -∫ (1-λ)ln(1-λ) dλ = 1/4. A fine uniform grid approaches it.
        let n = 2000;
        let d = WeightedDist::from_pairs((1..=n).map(|i| (i as f64 / n as f64, 1)).collect());
        let e = cumulative_residual_entropy(&d);
        assert!((e - 0.25).abs() < 2e-3, "cre = {e}");
    }

    #[test]
    fn cre_dirac_at_one() {
        // S = 1 on [0,1): ε = -∫ 1·ln 1 = 0
        let d = WeightedDist::from_pairs(vec![(1.0, 5)]);
        assert!(cumulative_residual_entropy(&d).abs() < 1e-12);
    }

    #[test]
    fn cre_monte_carlo_agreement() {
        let d = WeightedDist::from_pairs(vec![(0.15, 2), (0.4, 1), (0.66, 3), (0.95, 1)]);
        let exact = cumulative_residual_entropy(&d);
        let steps = 2_000_000;
        let mut num = 0.0;
        for i in 0..steps {
            let lam = (i as f64 + 0.5) / steps as f64;
            let s: f64 = d.survival(lam);
            if s > 0.0 {
                num += -s * s.ln();
            }
        }
        num /= steps as f64;
        assert!((exact - num).abs() < 1e-5, "exact={exact} numeric={num}");
    }

    #[test]
    fn empty_distributions_are_nan() {
        let d = WeightedDist::from_pairs(vec![]);
        assert!(shannon_entropy(&d, 10).is_nan());
        assert!(cumulative_residual_entropy(&d).is_nan());
    }
}
