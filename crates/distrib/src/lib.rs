//! Weighted empirical distributions on `[0, 1]` and uniformity measures.
//!
//! The occupancy method compares, for every aggregation scale `Δ`, the
//! distribution of occupancy rates with the uniform density on `[0, 1]`
//! (Section 4 of the paper), and Section 7 studies five candidate measures of
//! "how uniformly spread" a distribution is. This crate provides:
//!
//! * [`WeightedDist`] — an exact weighted empirical distribution with its
//!   survival function / inverse cumulative distribution (ICD),
//! * [`mk_distance_to_uniform`] / [`mk_proximity`] — the Monge–Kantorovich
//!   distance to the uniform density, computed in closed form,
//! * [`shannon_entropy`] and [`cumulative_residual_entropy`],
//! * weighted moments (mean, standard deviation, variation coefficient),
//! * [`SelectionMetric`] — the five selection methods of Section 7 behind a
//!   single scoring interface (higher score = more uniformly spread).
//!
//! ```
//! use saturn_distrib::{WeightedDist, mk_proximity};
//!
//! // mass concentrated at 1 (total aggregation): far from uniform
//! let one = WeightedDist::from_pairs(vec![(1.0, 10)]);
//! // evenly spread mass: close to uniform
//! let spread = WeightedDist::from_pairs((1..=10).map(|i| (i as f64 / 10.0, 1)).collect());
//! assert!(mk_proximity(&spread) > mk_proximity(&one));
//! ```

pub mod dist;
pub mod entropy;
pub mod mk;
pub mod moments;
pub mod uniformity;

pub use dist::WeightedDist;
pub use entropy::{cumulative_residual_entropy, shannon_entropy};
pub use mk::{mk_distance_to_uniform, mk_proximity};
pub use moments::{mean, std_dev, variation_coefficient};
pub use uniformity::SelectionMetric;
