//! Monge–Kantorovich distance to the uniform density distribution.
//!
//! The paper (Section 7) measures how uniformly spread a distribution `X` on
//! `[0, 1]` is by the area between its inverse cumulative distribution and
//! that of the uniform density (`y = 1 - λ`):
//!
//! `dist_MK(X) = ∫₀¹ |P(X > λ) - (1 - λ)| dλ`
//!
//! and selects the aggregation scale maximizing the **M-K proximity**
//! `1/2 - dist_MK(X)` (the distance is always below 1/2 on `[0, 1]`). The
//! integral is computed in closed form over the constant segments of the
//! survival function — no numerical quadrature.

use crate::WeightedDist;

/// Exact `∫₀¹ |P(X > λ) - (1 - λ)| dλ`.
///
/// Returns `NaN` for an empty distribution.
pub fn mk_distance_to_uniform(dist: &WeightedDist) -> f64 {
    if dist.is_empty() {
        return f64::NAN;
    }
    let mut acc = 0.0f64;
    for (a, b, s) in dist.survival_segments() {
        // integrand |s - 1 + λ| = |λ - c| with c = 1 - s, over [a, b]
        let c = 1.0 - s;
        acc += if c <= a {
            // λ - c >= 0 throughout
            ((b - c) * (b - c) - (a - c) * (a - c)) / 2.0
        } else if c >= b {
            // c - λ >= 0 throughout
            ((c - a) * (c - a) - (c - b) * (c - b)) / 2.0
        } else {
            // sign change at λ = c
            ((c - a) * (c - a) + (b - c) * (b - c)) / 2.0
        };
    }
    acc
}

/// The M-K proximity `1/2 - dist_MK(X)` — the quantity maximized by the
/// occupancy method (Figures 3, 5 of the paper). Higher is closer to the
/// uniform density.
pub fn mk_proximity(dist: &WeightedDist) -> f64 {
    0.5 - mk_distance_to_uniform(dist)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn dirac(x: f64) -> WeightedDist {
        WeightedDist::from_pairs(vec![(x, 1)])
    }

    #[test]
    fn dirac_at_one_has_distance_half() {
        // S(λ) = 1 on [0,1): ∫ |1 - 1 + λ| = ∫ λ = 1/2
        let d = mk_distance_to_uniform(&dirac(1.0));
        assert!((d - 0.5).abs() < 1e-12);
        assert!(mk_proximity(&dirac(1.0)).abs() < 1e-12);
    }

    #[test]
    fn dirac_at_zero_has_distance_half() {
        // S(λ) = 0 on [0,1]: ∫ (1 - λ) = 1/2
        let d = mk_distance_to_uniform(&dirac(0.0));
        assert!((d - 0.5).abs() < 1e-12);
    }

    #[test]
    fn dirac_at_half_distance_quarter() {
        // S = 1 on [0, .5), 0 on [.5, 1]:
        // ∫₀^.5 |λ| + ∫_.5^1 (1-λ) = 1/8 + 1/8 = 1/4
        let d = mk_distance_to_uniform(&dirac(0.5));
        assert!((d - 0.25).abs() < 1e-12);
    }

    #[test]
    fn fine_uniform_grid_approaches_zero_distance() {
        for n in [10u32, 100, 1000] {
            let d =
                WeightedDist::from_pairs((1..=n).map(|i| (i as f64 / n as f64, 1)).collect());
            let dist = mk_distance_to_uniform(&d);
            // the empirical uniform grid is within O(1/n) of the density
            assert!(dist < 1.0 / n as f64, "n={n} dist={dist}");
        }
    }

    #[test]
    fn monte_carlo_agreement() {
        // Cross-check the closed form against numerical integration.
        let d = WeightedDist::from_pairs(vec![(0.1, 3), (0.35, 1), (0.5, 4), (0.8, 2)]);
        let exact = mk_distance_to_uniform(&d);
        let steps = 2_000_000;
        let mut num = 0.0;
        for i in 0..steps {
            let lam = (i as f64 + 0.5) / steps as f64;
            num += (d.survival(lam) - (1.0 - lam)).abs();
        }
        num /= steps as f64;
        assert!((exact - num).abs() < 1e-5, "exact={exact} numeric={num}");
    }

    #[test]
    fn proximity_is_bounded() {
        for pairs in
            [vec![(0.2, 5), (0.9, 1)], vec![(1.0, 7)], vec![(0.01, 1), (0.5, 1), (0.99, 1)]]
        {
            let p = mk_proximity(&WeightedDist::from_pairs(pairs));
            assert!((0.0..=0.5).contains(&p), "proximity {p} out of [0, 1/2]");
        }
    }

    #[test]
    fn empty_is_nan() {
        assert!(mk_distance_to_uniform(&WeightedDist::from_pairs(vec![])).is_nan());
    }
}
