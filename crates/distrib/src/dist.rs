//! Weighted empirical distributions on `[0, 1]`.

use serde::Serialize;

/// A weighted empirical distribution with support in `[0, 1]`.
///
/// Stored as sorted distinct values with positive integer weights; all
/// derived quantities (survival function, moments, distances) are exact up to
/// floating-point arithmetic — no binning is involved unless explicitly
/// requested (Shannon entropy).
#[derive(Clone, Debug, Default, Serialize)]
pub struct WeightedDist {
    /// Sorted distinct values.
    values: Vec<f64>,
    /// Weight of each value (same length).
    weights: Vec<u64>,
    total: u64,
}

impl WeightedDist {
    /// Builds a distribution from arbitrary `(value, weight)` pairs; values
    /// are sorted and duplicates merged. Pairs with zero weight are dropped.
    ///
    /// # Panics
    /// Panics if a value is not finite or lies outside `[0, 1]`.
    pub fn from_pairs(mut pairs: Vec<(f64, u64)>) -> Self {
        pairs.retain(|&(_, w)| w > 0);
        for &(v, _) in &pairs {
            assert!(v.is_finite() && (0.0..=1.0).contains(&v), "value {v} outside [0, 1]");
        }
        pairs.sort_unstable_by(|a, b| a.0.partial_cmp(&b.0).expect("finite values"));
        let mut values = Vec::with_capacity(pairs.len());
        let mut weights: Vec<u64> = Vec::with_capacity(pairs.len());
        let mut total = 0u64;
        for (v, w) in pairs {
            total += w;
            if values.last() == Some(&v) {
                *weights.last_mut().expect("non-empty") += w;
            } else {
                values.push(v);
                weights.push(w);
            }
        }
        WeightedDist { values, weights, total }
    }

    /// Total weight.
    pub fn total_weight(&self) -> u64 {
        self.total
    }

    /// Whether the distribution carries no mass.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct values.
    pub fn support_size(&self) -> usize {
        self.values.len()
    }

    /// The sorted distinct values with their weights.
    pub fn pairs(&self) -> impl Iterator<Item = (f64, u64)> + '_ {
        self.values.iter().copied().zip(self.weights.iter().copied())
    }

    /// Survival function `P(X > x)`.
    pub fn survival(&self, x: f64) -> f64 {
        if self.total == 0 {
            return 0.0;
        }
        // weight of values <= x
        let idx = self.values.partition_point(|&v| v <= x);
        let below: u64 = self.weights[..idx].iter().sum();
        (self.total - below) as f64 / self.total as f64
    }

    /// Points `(v_i, P(X >= v_i))` of the inverse cumulative distribution,
    /// one per distinct value, descending in `y` — the curves of Figures 3
    /// and 4 of the paper.
    pub fn icd_points(&self) -> Vec<(f64, f64)> {
        if self.total == 0 {
            return Vec::new();
        }
        let mut out = Vec::with_capacity(self.values.len());
        let mut below = 0u64;
        for (v, w) in self.pairs() {
            out.push((v, (self.total - below) as f64 / self.total as f64));
            below += w;
        }
        out
    }

    /// The constant segments of the survival function: `(lo, hi, s)` such
    /// that `P(X > λ) = s` for `λ ∈ [lo, hi)`, covering `[0, 1]` exactly.
    /// Used by the closed-form integrals (M-K distance, CRE).
    pub fn survival_segments(&self) -> Vec<(f64, f64, f64)> {
        let mut out = Vec::with_capacity(self.values.len() + 1);
        if self.total == 0 {
            return out;
        }
        let total = self.total as f64;
        let mut prev = 0.0f64;
        let mut below = 0u64;
        for (v, w) in self.pairs() {
            if v > prev {
                out.push((prev, v, (self.total - below) as f64 / total));
                prev = v;
            }
            below += w;
        }
        if prev < 1.0 {
            out.push((prev, 1.0, (self.total - below) as f64 / total));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn merging_and_sorting() {
        let d =
            WeightedDist::from_pairs(vec![(0.5, 2), (0.25, 1), (0.5, 3), (1.0, 1), (0.1, 0)]);
        assert_eq!(d.total_weight(), 7);
        assert_eq!(d.support_size(), 3);
        let pairs: Vec<_> = d.pairs().collect();
        assert_eq!(pairs, vec![(0.25, 1), (0.5, 5), (1.0, 1)]);
    }

    #[test]
    fn survival_function_steps() {
        let d = WeightedDist::from_pairs(vec![(0.25, 1), (0.5, 2), (1.0, 1)]);
        assert_eq!(d.survival(0.0), 1.0);
        assert_eq!(d.survival(0.25), 0.75);
        assert_eq!(d.survival(0.3), 0.75);
        assert_eq!(d.survival(0.5), 0.25);
        assert_eq!(d.survival(1.0), 0.0);
    }

    #[test]
    fn icd_points_descend() {
        let d = WeightedDist::from_pairs(vec![(0.2, 1), (0.6, 1), (0.9, 2)]);
        let icd = d.icd_points();
        assert_eq!(icd.len(), 3);
        assert_eq!(icd[0], (0.2, 1.0));
        assert_eq!(icd[1], (0.6, 0.75));
        assert_eq!(icd[2], (0.9, 0.5));
    }

    #[test]
    fn segments_partition_unit_interval() {
        let d = WeightedDist::from_pairs(vec![(0.25, 1), (0.5, 1)]);
        let segs = d.survival_segments();
        assert_eq!(segs, vec![(0.0, 0.25, 1.0), (0.25, 0.5, 0.5), (0.5, 1.0, 0.0)]);
        // coverage: contiguous, starts at 0, ends at 1
        assert_eq!(segs.first().unwrap().0, 0.0);
        assert_eq!(segs.last().unwrap().1, 1.0);
        for w in segs.windows(2) {
            assert_eq!(w[0].1, w[1].0);
        }
    }

    #[test]
    fn value_at_zero_is_allowed_and_at_one_closes() {
        let d = WeightedDist::from_pairs(vec![(0.0, 1), (1.0, 1)]);
        let segs = d.survival_segments();
        // [0,1) with S = 0.5 (the 0-value never counts as "X > λ" for λ>=0)
        assert_eq!(segs, vec![(0.0, 1.0, 0.5)]);
    }

    #[test]
    #[should_panic(expected = "outside [0, 1]")]
    fn rejects_out_of_range() {
        WeightedDist::from_pairs(vec![(1.5, 1)]);
    }

    #[test]
    fn empty_distribution() {
        let d = WeightedDist::from_pairs(vec![]);
        assert!(d.is_empty());
        assert_eq!(d.survival(0.5), 0.0);
        assert!(d.icd_points().is_empty());
        assert!(d.survival_segments().is_empty());
    }
}
