//! The five selection methods of Section 7 behind one interface.

use crate::{
    cumulative_residual_entropy, mk_proximity, shannon_entropy, std_dev, variation_coefficient,
    WeightedDist,
};
use serde::{Deserialize, Serialize};
use std::fmt;

/// A method for scoring how uniformly a distribution is spread over `[0, 1]`.
/// Higher score = more uniformly spread; the occupancy method selects the
/// aggregation period maximizing the score.
///
/// The paper retains [`MkProximity`](SelectionMetric::MkProximity) as its
/// reference method ("conceptually simple and gives very satisfactory
/// results"); the others are provided for the Section 7 comparison.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Default, Serialize, Deserialize)]
pub enum SelectionMetric {
    /// M-K proximity `1/2 - dist_MK` to the uniform density (the default).
    #[default]
    MkProximity,
    /// Standard deviation (selects slightly larger periods than M-K).
    StdDev,
    /// Variation coefficient (documented failure mode: selects ~no
    /// aggregation).
    VariationCoefficient,
    /// Shannon entropy over `slots` equal bins of `[0, 1]`.
    ShannonEntropy {
        /// Number of discretization slots (the paper uses 10).
        slots: usize,
    },
    /// Cumulative residual entropy.
    Cre,
}

impl SelectionMetric {
    /// All metrics compared in Section 7, with the paper's slot count.
    pub fn all() -> Vec<SelectionMetric> {
        vec![
            SelectionMetric::MkProximity,
            SelectionMetric::StdDev,
            SelectionMetric::VariationCoefficient,
            SelectionMetric::ShannonEntropy { slots: 10 },
            SelectionMetric::Cre,
        ]
    }

    /// Scores `dist`; `NaN` for empty distributions.
    pub fn score(&self, dist: &WeightedDist) -> f64 {
        match *self {
            SelectionMetric::MkProximity => mk_proximity(dist),
            SelectionMetric::StdDev => std_dev(dist),
            SelectionMetric::VariationCoefficient => variation_coefficient(dist),
            SelectionMetric::ShannonEntropy { slots } => shannon_entropy(dist, slots),
            SelectionMetric::Cre => cumulative_residual_entropy(dist),
        }
    }
}

impl fmt::Display for SelectionMetric {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SelectionMetric::MkProximity => write!(f, "M-K proximity"),
            SelectionMetric::StdDev => write!(f, "standard deviation"),
            SelectionMetric::VariationCoefficient => write!(f, "variation coefficient"),
            SelectionMetric::ShannonEntropy { slots } => {
                write!(f, "Shannon entropy ({slots} slots)")
            }
            SelectionMetric::Cre => write!(f, "cumulative residual entropy"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spread() -> WeightedDist {
        WeightedDist::from_pairs((1..=20).map(|i| (i as f64 / 20.0, 1)).collect())
    }

    fn concentrated() -> WeightedDist {
        WeightedDist::from_pairs(vec![(1.0, 19), (0.95, 1)])
    }

    #[test]
    fn all_metrics_except_cv_prefer_the_spread_distribution() {
        for metric in SelectionMetric::all() {
            if metric == SelectionMetric::VariationCoefficient {
                continue; // documented failure mode
            }
            let s = metric.score(&spread());
            let c = metric.score(&concentrated());
            assert!(s > c, "{metric}: spread {s} <= concentrated {c}");
        }
    }

    #[test]
    fn cv_prefers_small_means() {
        // The paper's criticism: c_v favors distributions with tiny means.
        let tiny = WeightedDist::from_pairs(vec![(0.001, 10), (0.01, 1)]);
        let cv = SelectionMetric::VariationCoefficient;
        assert!(cv.score(&tiny) > cv.score(&spread()));
    }

    #[test]
    fn display_names() {
        assert_eq!(SelectionMetric::MkProximity.to_string(), "M-K proximity");
        assert_eq!(
            SelectionMetric::ShannonEntropy { slots: 10 }.to_string(),
            "Shannon entropy (10 slots)"
        );
    }

    #[test]
    fn default_is_mk() {
        assert_eq!(SelectionMetric::default(), SelectionMetric::MkProximity);
    }
}
