//! The message-network model behind the dataset stand-ins.
//!
//! Emulates the statistical fingerprints of email / message traces that the
//! occupancy method's evaluation relies on:
//!
//! * **heavy-tailed node activity** — a few prolific senders, many quiet
//!   ones (Pareto-distributed node weights);
//! * **repeated ties** — most messages go to already-contacted peers
//!   (preferential re-selection of past contacts);
//! * **circadian + weekly rhythm** — base traffic follows a
//!   [`crate::CircadianProfile`];
//! * **reply bursts** — "most of people only send some emails a day and
//!   frequently wait for some hours or some days before getting a reply"
//!   (Section 5): each message triggers a reply with some probability after
//!   an exponential delay.

use crate::poisson::{sample_cumulative, sample_exponential, sample_fixed_count};
use crate::CircadianProfile;
use rand::{Rng, SeedableRng};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};

/// Configuration of the message-network generator.
#[derive(Clone, Debug)]
pub struct MessageModel {
    /// Number of nodes.
    pub nodes: u32,
    /// Target number of messages (the output lands within a few per mille,
    /// duplicates removed by the builder).
    pub events: usize,
    /// Study period length in ticks.
    pub span: i64,
    /// Pareto shape of the node-activity weights (smaller = heavier tail;
    /// typical 1.2–2.0).
    pub activity_shape: f64,
    /// Probability that a message goes to a previously contacted peer.
    pub repeat_contact: f64,
    /// Probability that a message triggers a reply.
    pub reply_probability: f64,
    /// Mean reply delay in ticks.
    pub reply_delay_mean: f64,
    /// Day/week activity envelope.
    pub circadian: CircadianProfile,
    /// RNG seed.
    pub seed: u64,
}

impl MessageModel {
    /// Generates the (directed) message stream.
    ///
    /// # Panics
    /// Panics on degenerate parameters (`nodes < 2`, `events == 0`,
    /// `span < 1`, probabilities outside `[0, 1]`).
    pub fn generate(&self) -> LinkStream {
        assert!(self.nodes >= 2 && self.events > 0 && self.span >= 1);
        assert!((0.0..=1.0).contains(&self.repeat_contact));
        assert!((0.0..=1.0).contains(&self.reply_probability));
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);

        // Heavy-tailed node weights (Pareto via inverse transform), as a
        // cumulative table for O(log n) sampling.
        let mut cumulative = Vec::with_capacity(self.nodes as usize);
        let mut acc = 0.0f64;
        for _ in 0..self.nodes {
            let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
            acc += u.powf(-1.0 / self.activity_shape);
            cumulative.push(acc);
        }

        // Base (non-reply) message instants follow the circadian envelope.
        let expected_replies =
            self.events as f64 * self.reply_probability / (1.0 + self.reply_probability);
        let base_count = (self.events as f64 - expected_replies).round().max(1.0) as usize;
        let circadian = self.circadian;
        let base_times =
            sample_fixed_count(&mut rng, |t| circadian.rate(t), 1.0, 0, self.span, base_count);

        let mut contacts: Vec<Vec<u32>> = vec![Vec::new(); self.nodes as usize];
        let mut b = LinkStreamBuilder::indexed(Directedness::Directed, self.nodes);
        b.period(0, self.span);

        // (time, sender, receiver) reply queue, processed interleaved with
        // base messages so chains stay within the period.
        let mut emitted = 0usize;
        let mut pending: std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32, u32)>> =
            std::collections::BinaryHeap::new();

        let emit =
            |b: &mut LinkStreamBuilder,
             contacts: &mut Vec<Vec<u32>>,
             rng: &mut rand::rngs::StdRng,
             pending: &mut std::collections::BinaryHeap<std::cmp::Reverse<(i64, u32, u32)>>,
             s: u32,
             r: u32,
             t: i64,
             emitted: &mut usize| {
                b.add_indexed(s, r, t);
                *emitted += 1;
                if !contacts[s as usize].contains(&r) {
                    contacts[s as usize].push(r);
                }
                if rng.gen::<f64>() < self.reply_probability {
                    let delay = sample_exponential(rng, self.reply_delay_mean).ceil() as i64;
                    let rt = t + delay.max(1);
                    if rt <= self.span {
                        pending.push(std::cmp::Reverse((rt, r, s)));
                    }
                }
            };

        for &t in &base_times {
            // flush due replies first (keeps global time order irrelevant for
            // correctness — the builder sorts — but bounds the queue)
            while let Some(&std::cmp::Reverse((rt, s, r))) = pending.peek() {
                if rt > t || emitted >= self.events {
                    break;
                }
                pending.pop();
                emit(&mut b, &mut contacts, &mut rng, &mut pending, s, r, rt, &mut emitted);
            }
            if emitted >= self.events {
                break;
            }
            let s = sample_cumulative(&mut rng, &cumulative) as u32;
            let r =
                if !contacts[s as usize].is_empty() && rng.gen::<f64>() < self.repeat_contact {
                    contacts[s as usize][rng.gen_range(0..contacts[s as usize].len())]
                } else {
                    // fresh contact, weight-biased, not the sender
                    loop {
                        let r = sample_cumulative(&mut rng, &cumulative) as u32;
                        if r != s {
                            break r;
                        }
                    }
                };
            emit(&mut b, &mut contacts, &mut rng, &mut pending, s, r, t, &mut emitted);
        }
        // drain remaining replies up to the target
        while emitted < self.events {
            let Some(std::cmp::Reverse((rt, s, r))) = pending.pop() else { break };
            emit(&mut b, &mut contacts, &mut rng, &mut pending, s, r, rt, &mut emitted);
        }

        b.build().expect("events >= 1")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> MessageModel {
        MessageModel {
            nodes: 60,
            events: 3_000,
            span: 30 * 86_400,
            activity_shape: 1.5,
            repeat_contact: 0.7,
            reply_probability: 0.4,
            reply_delay_mean: 4.0 * 3_600.0,
            circadian: CircadianProfile::office(86_400),
            seed: 11,
        }
    }

    #[test]
    fn hits_event_target_closely() {
        let s = model().generate();
        let target = 3_000f64;
        assert!(
            (s.len() as f64 - target).abs() / target < 0.05,
            "{} events vs target {target}",
            s.len()
        );
        assert!(s.is_directed());
    }

    #[test]
    fn activity_is_heavy_tailed() {
        let s = model().generate();
        let mut out_deg = vec![0usize; 60];
        for l in s.events() {
            out_deg[l.u.index()] += 1;
        }
        out_deg.sort_unstable_by(|a, b| b.cmp(a));
        let top5: usize = out_deg[..5].iter().sum();
        let share = top5 as f64 / s.len() as f64;
        assert!(share > 0.25, "top-5 senders carry {share} of messages");
    }

    #[test]
    fn circadian_rhythm_is_visible() {
        let s = model().generate();
        let day = 86_400i64;
        let active = s
            .events()
            .iter()
            .filter(|l| {
                let frac = (l.t.ticks() % day) as f64 / day as f64;
                (8.0 / 24.0..20.0 / 24.0).contains(&frac)
            })
            .count();
        let share = active as f64 / s.len() as f64;
        assert!(share > 0.75, "daytime share {share}");
    }

    #[test]
    fn repeated_ties_dominate() {
        let s = model().generate();
        let mut pairs = std::collections::HashMap::new();
        for l in s.events() {
            *pairs.entry((l.u, l.v)).or_insert(0usize) += 1;
        }
        let repeated: usize = pairs.values().filter(|&&c| c > 1).copied().sum();
        assert!(repeated as f64 / s.len() as f64 > 0.3, "repeated-tie share too low");
    }

    #[test]
    fn deterministic_per_seed() {
        let a = model().generate();
        let b = model().generate();
        assert_eq!(a.events(), b.events());
    }
}
