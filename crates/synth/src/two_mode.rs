//! Two-mode networks (Section 6, Figure 6 right).
//!
//! "Built by 10 alternations of one period of high activity and one period of
//! low activity, which are time uniform networks with parameters N1, T1 and
//! N2, T2 respectively. N1, N2 and the whole length T = 10(T1 + T2) of study
//! are fixed and we vary the ratio between T1 and T2."

use rand::{Rng, SeedableRng};
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder};

/// Generator configuration for two-mode networks.
#[derive(Clone, Copy, Debug)]
pub struct TwoMode {
    /// Number of nodes.
    pub nodes: u32,
    /// Number of high/low alternations (the paper uses 10).
    pub alternations: u32,
    /// Total study period `T = alternations · (T1 + T2)` in ticks.
    pub span: i64,
    /// Links per pair per **high**-activity period.
    pub links_high: u32,
    /// Links per pair per **low**-activity period.
    pub links_low: u32,
    /// Share of each alternation spent in the low-activity mode,
    /// `ρ = T2/(T1 + T2) ∈ [0, 1]` — the x-axis of Figure 6 (right).
    pub low_share: f64,
    /// RNG seed.
    pub seed: u64,
}

impl TwoMode {
    /// Generates the stream. Periods of zero length contribute no link (at
    /// `ρ = 0` the network is purely high-activity, at `ρ = 1` purely low).
    ///
    /// # Panics
    /// Panics on degenerate parameters (`nodes < 2`, `alternations == 0`,
    /// `span < alternations`, `low_share` outside `[0, 1]`, or both link
    /// counts zero).
    pub fn generate(&self) -> LinkStream {
        assert!(self.nodes >= 2 && self.alternations >= 1);
        assert!((0.0..=1.0).contains(&self.low_share), "low_share must be in [0, 1]");
        assert!(self.span >= self.alternations as i64);
        assert!(self.links_high > 0 || self.links_low > 0);

        let period = self.span as f64 / self.alternations as f64;
        let t1 = period * (1.0 - self.low_share); // high-activity length
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, self.nodes);
        b.period(0, self.span);

        for a in 0..self.alternations {
            let base = a as f64 * period;
            // high segment [base, base + t1), low segment [base + t1, base + period)
            let segments = [
                (base, base + t1, self.links_high),
                (base + t1, base + period, self.links_low),
            ];
            for (lo, hi, links) in segments {
                let lo_t = lo.ceil() as i64;
                let hi_t = (hi.floor() as i64).min(self.span);
                if links == 0 || hi_t <= lo_t {
                    continue;
                }
                for u in 0..self.nodes {
                    for v in (u + 1)..self.nodes {
                        for _ in 0..links {
                            let t = rng.gen_range(lo_t..hi_t);
                            b.add_indexed(u, v, t);
                        }
                    }
                }
            }
        }
        b.build().expect("at least one segment generates links")
    }

    /// Expected event count (before same-tick deduplication).
    pub fn expected_events(&self) -> u64 {
        let pairs = self.nodes as u64 * (self.nodes as u64 - 1) / 2;
        let per_alt = if self.low_share < 1.0 { self.links_high as u64 } else { 0 }
            + if self.low_share > 0.0 { self.links_low as u64 } else { 0 };
        pairs * per_alt * self.alternations as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(low_share: f64) -> TwoMode {
        TwoMode {
            nodes: 6,
            alternations: 4,
            span: 8_000,
            links_high: 6,
            links_low: 1,
            low_share,
            seed: 5,
        }
    }

    #[test]
    fn pure_high_mode_at_zero_share() {
        let s = cfg(0.0).generate();
        // 15 pairs × 6 links × 4 alternations = 360 (minus rare dedups)
        assert!(s.len() >= 350);
    }

    #[test]
    fn pure_low_mode_at_full_share() {
        let s = cfg(1.0).generate();
        // 15 pairs × 1 link × 4 alternations = 60
        assert!(s.len() >= 55 && s.len() <= 60);
    }

    #[test]
    fn high_segments_carry_more_events() {
        let tm = cfg(0.5);
        let s = tm.generate();
        let period = 8_000.0 / 4.0;
        let mut high = 0usize;
        let mut low = 0usize;
        for l in s.events() {
            let phase = (l.t.ticks() as f64) % period;
            if phase < period * 0.5 {
                high += 1;
            } else {
                low += 1;
            }
        }
        assert!(high > 3 * low, "high-activity segments must dominate: high={high} low={low}");
    }

    #[test]
    fn deterministic() {
        let a = cfg(0.3).generate();
        let b = cfg(0.3).generate();
        assert_eq!(a.events(), b.events());
    }

    #[test]
    #[should_panic(expected = "low_share")]
    fn rejects_bad_share() {
        cfg(1.5).generate();
    }
}
