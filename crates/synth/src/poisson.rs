//! Point-process sampling primitives.
//!
//! Implemented from first principles (inverse-transform exponentials and
//! thinning for non-homogeneous Poisson processes) to keep the dependency
//! set to plain `rand`.

use rand::Rng;

/// Samples `Exp(mean)` by inverse transform. Always strictly positive.
pub fn sample_exponential<R: Rng>(rng: &mut R, mean: f64) -> f64 {
    debug_assert!(mean > 0.0);
    let u: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    -mean * u.ln()
}

/// Samples event times of a non-homogeneous Poisson process on `[t0, t1)`
/// with intensity `rate(t) <= rate_max` (events per tick), by thinning.
/// Returns integer tick times, sorted.
pub fn sample_nhpp<R: Rng>(
    rng: &mut R,
    rate: impl Fn(f64) -> f64,
    rate_max: f64,
    t0: i64,
    t1: i64,
) -> Vec<i64> {
    debug_assert!(rate_max > 0.0 && t1 > t0);
    let mut out = Vec::new();
    let mut t = t0 as f64;
    loop {
        t += sample_exponential(rng, 1.0 / rate_max);
        if t >= t1 as f64 {
            break;
        }
        let r = rate(t);
        debug_assert!(r <= rate_max * (1.0 + 1e-9), "rate exceeds rate_max at t={t}");
        if rng.gen::<f64>() * rate_max < r {
            out.push(t as i64);
        }
    }
    out
}

/// Samples exactly `count` event times on `[t0, t1)` distributed with density
/// proportional to `rate(t)`, by rejection. Returns sorted tick times.
pub fn sample_fixed_count<R: Rng>(
    rng: &mut R,
    rate: impl Fn(f64) -> f64,
    rate_max: f64,
    t0: i64,
    t1: i64,
    count: usize,
) -> Vec<i64> {
    debug_assert!(rate_max > 0.0 && t1 > t0);
    let mut out = Vec::with_capacity(count);
    while out.len() < count {
        let t = rng.gen_range(t0..t1);
        let r = rate(t as f64);
        if rng.gen::<f64>() * rate_max < r {
            out.push(t);
        }
    }
    out.sort_unstable();
    out
}

/// Draws an index from a cumulative weight table (binary search on the
/// prefix sums). `cumulative` must be non-empty, non-decreasing, ending at
/// the total weight.
pub fn sample_cumulative<R: Rng>(rng: &mut R, cumulative: &[f64]) -> usize {
    let total = *cumulative.last().expect("non-empty weights");
    let x = rng.gen::<f64>() * total;
    cumulative.partition_point(|&c| c <= x).min(cumulative.len() - 1)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::SeedableRng;

    fn rng() -> rand::rngs::StdRng {
        rand::rngs::StdRng::seed_from_u64(1234)
    }

    #[test]
    fn exponential_mean_is_right() {
        let mut r = rng();
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| sample_exponential(&mut r, 5.0)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.1, "mean {mean}");
    }

    #[test]
    fn nhpp_rate_controls_counts() {
        let mut r = rng();
        // constant rate 0.01 over 100_000 ticks => ~1000 events
        let events = sample_nhpp(&mut r, |_| 0.01, 0.01, 0, 100_000);
        assert!((events.len() as f64 - 1000.0).abs() < 150.0, "{} events", events.len());
        assert!(events.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn nhpp_thinning_shapes_density() {
        let mut r = rng();
        // rate 0 on first half, high on second half
        let events =
            sample_nhpp(&mut r, |t| if t < 5_000.0 { 0.0 } else { 0.02 }, 0.02, 0, 10_000);
        assert!(!events.is_empty());
        assert!(events.iter().all(|&t| t >= 5_000));
    }

    #[test]
    fn fixed_count_hits_count_and_density() {
        let mut r = rng();
        let events = sample_fixed_count(
            &mut r,
            |t| if t < 1_000.0 { 1.0 } else { 0.1 },
            1.0,
            0,
            10_000,
            5_000,
        );
        assert_eq!(events.len(), 5_000);
        let early = events.iter().filter(|&&t| t < 1_000).count() as f64;
        // density 1.0 on 10% of the range vs 0.1 on 90%: early share = 1000/1900
        let share = early / 5_000.0;
        assert!((share - 1000.0 / 1900.0).abs() < 0.05, "share {share}");
    }

    #[test]
    fn cumulative_sampler_respects_weights() {
        let mut r = rng();
        let cum = vec![1.0, 1.5, 3.5]; // weights 1.0, 0.5, 2.0
        let mut counts = [0usize; 3];
        for _ in 0..30_000 {
            counts[sample_cumulative(&mut r, &cum)] += 1;
        }
        let f0 = counts[0] as f64 / 30_000.0;
        let f2 = counts[2] as f64 / 30_000.0;
        assert!((f0 - 1.0 / 3.5).abs() < 0.02);
        assert!((f2 - 2.0 / 3.5).abs() < 0.02);
    }
}
