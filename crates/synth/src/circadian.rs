//! Circadian and weekly activity modulation.
//!
//! Human communication networks "often exhibit circadian rhythms" (Section 6
//! of the paper): most activity happens during waking hours on weekdays. The
//! profile below is the rate modulator used by the dataset stand-ins.

use serde::Serialize;

/// A day/week activity envelope, returning a rate multiplier in `(0, 1]`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct CircadianProfile {
    /// Ticks per day (86 400 for 1-second ticks).
    pub day_ticks: i64,
    /// Start of the active window, as a fraction of the day (e.g. 8h = 1/3).
    pub active_start: f64,
    /// End of the active window, as a fraction of the day (e.g. 22h ≈ 0.917).
    pub active_end: f64,
    /// Rate multiplier outside the active window, in `(0, 1]`.
    pub night_level: f64,
    /// Rate multiplier applied on the last `weekend_days` of each week.
    pub weekend_level: f64,
    /// Number of weekend days per 7-day week (0 disables weekly modulation).
    pub weekend_days: u32,
}

impl CircadianProfile {
    /// A typical office-hours profile: active 8h–20h, quiet nights, damped
    /// week-ends.
    pub fn office(day_ticks: i64) -> Self {
        CircadianProfile {
            day_ticks,
            active_start: 8.0 / 24.0,
            active_end: 20.0 / 24.0,
            night_level: 0.05,
            weekend_level: 0.15,
            weekend_days: 2,
        }
    }

    /// An online-community profile: active 10h–24h, some night activity, no
    /// weekday/weekend distinction.
    pub fn online(day_ticks: i64) -> Self {
        CircadianProfile {
            day_ticks,
            active_start: 10.0 / 24.0,
            active_end: 1.0, // 24h/24h: active through the end of the day
            night_level: 0.15,
            weekend_level: 1.0,
            weekend_days: 0,
        }
    }

    /// The rate multiplier at tick `t` (t = 0 is midnight starting a Monday).
    pub fn rate(&self, t: f64) -> f64 {
        let day = self.day_ticks as f64;
        let day_frac = (t / day).fract();
        let daily = if day_frac >= self.active_start && day_frac < self.active_end {
            1.0
        } else {
            self.night_level
        };
        let weekly = if self.weekend_days > 0 {
            let day_of_week = ((t / day) as i64).rem_euclid(7) as u32;
            if day_of_week >= 7 - self.weekend_days {
                self.weekend_level
            } else {
                1.0
            }
        } else {
            1.0
        };
        (daily * weekly).max(1e-6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const DAY: i64 = 86_400;

    #[test]
    fn office_day_night_contrast() {
        let p = CircadianProfile::office(DAY);
        let noon = p.rate(12.0 / 24.0 * DAY as f64);
        let night = p.rate(3.0 / 24.0 * DAY as f64);
        assert_eq!(noon, 1.0);
        assert!(night < 0.1);
    }

    #[test]
    fn weekend_damping() {
        let p = CircadianProfile::office(DAY);
        // Saturday noon (day 5, 0-based from Monday)
        let sat_noon = p.rate((5.0 + 0.5) * DAY as f64);
        let wed_noon = p.rate((2.0 + 0.5) * DAY as f64);
        assert!(sat_noon < wed_noon);
        assert!((sat_noon - 0.15).abs() < 1e-12);
    }

    #[test]
    fn online_profile_has_no_weekend_dip() {
        let p = CircadianProfile::online(DAY);
        let sat = p.rate((5.0 + 0.6) * DAY as f64);
        let wed = p.rate((2.0 + 0.6) * DAY as f64);
        assert_eq!(sat, wed);
    }

    #[test]
    fn rate_is_always_positive_and_bounded() {
        let p = CircadianProfile::office(DAY);
        for i in 0..1_000 {
            let r = p.rate(i as f64 * 997.0);
            assert!(r > 0.0 && r <= 1.0, "rate {r} at i={i}");
        }
    }
}
