//! Stand-ins for the four real traces of Section 5.
//!
//! The paper evaluates on four public traces that cannot be fetched in this
//! offline environment. Each profile below synthesizes a stream with the
//! *published* node count, event count, duration and directedness, using the
//! [`crate::reply::MessageModel`] to reproduce the temporal
//! fingerprints the evaluation depends on (heavy-tailed activity, repeated
//! ties, circadian rhythm, reply bursts). The published per-dataset activity
//! levels (messages/person/day: Facebook 0.12 < Enron 0.29 < Irvine 0.66 <
//! Manufacturing 2.22) are preserved by construction, so the *ordering* of
//! saturation scales across datasets is comparable with the paper even
//! though absolute γ values need not match exactly.

use crate::reply::MessageModel;
use crate::CircadianProfile;
use saturn_linkstream::LinkStream;
use serde::Serialize;

/// Ticks per second (all four traces use 1-second resolution).
pub const SECOND: i64 = 1;
/// Ticks per hour.
pub const HOUR: i64 = 3_600;
/// Ticks per day.
pub const DAY: i64 = 86_400;

/// A named dataset profile with its published characteristics.
#[derive(Clone, Debug, Serialize)]
pub struct DatasetProfile {
    /// Dataset name as used in the paper.
    pub name: &'static str,
    /// Published node count.
    pub nodes: u32,
    /// Published event count.
    pub events: usize,
    /// Published study period, in ticks (1-second resolution).
    pub span: i64,
    /// Saturation scale reported by the paper, in hours (for
    /// EXPERIMENTS.md comparisons).
    pub paper_gamma_hours: f64,
    /// Mean reply delay used by the generator, in ticks.
    reply_delay_mean: f64,
    /// Reply probability used by the generator.
    reply_probability: f64,
    /// Whether the population follows office rhythms (vs online-community).
    office_rhythm: bool,
}

impl DatasetProfile {
    /// UC Irvine online-community messages: 1 509 users, 48 000 messages,
    /// 48 days. Paper: γ = 18 h.
    pub fn irvine() -> Self {
        DatasetProfile {
            name: "irvine",
            nodes: 1_509,
            events: 48_000,
            span: 48 * DAY,
            paper_gamma_hours: 18.0,
            reply_delay_mean: 6.0 * HOUR as f64,
            reply_probability: 0.45,
            office_rhythm: false,
        }
    }

    /// Facebook wall posts: 3 387 users, 11 991 posts, 1 month.
    /// Paper: γ = 46 h.
    pub fn facebook() -> Self {
        DatasetProfile {
            name: "facebook",
            nodes: 3_387,
            events: 11_991,
            span: 31 * DAY,
            paper_gamma_hours: 46.0,
            reply_delay_mean: 16.0 * HOUR as f64,
            reply_probability: 0.35,
            office_rhythm: false,
        }
    }

    /// Enron employee emails: 150 employees, 15 951 emails, year 2001.
    /// Paper: γ = 78 h (76 h in the figure).
    pub fn enron() -> Self {
        DatasetProfile {
            name: "enron",
            nodes: 150,
            events: 15_951,
            span: 365 * DAY,
            paper_gamma_hours: 78.0,
            reply_delay_mean: 20.0 * HOUR as f64,
            reply_probability: 0.4,
            office_rhythm: true,
        }
    }

    /// Manufacturing-company internal emails: 153 employees, 82 894 emails,
    /// 8 months. Paper: γ = 12 h.
    pub fn manufacturing() -> Self {
        DatasetProfile {
            name: "manufacturing",
            nodes: 153,
            events: 82_894,
            span: 243 * DAY,
            paper_gamma_hours: 12.0,
            reply_delay_mean: 3.0 * HOUR as f64,
            reply_probability: 0.5,
            office_rhythm: true,
        }
    }

    /// All four profiles, in the paper's presentation order.
    pub fn all() -> Vec<DatasetProfile> {
        vec![Self::irvine(), Self::facebook(), Self::enron(), Self::manufacturing()]
    }

    /// Published mean activity in messages per person per day (the paper
    /// correlates it inversely with γ).
    pub fn activity_per_person_per_day(&self) -> f64 {
        self.events as f64 / self.nodes as f64 / (self.span as f64 / DAY as f64)
    }

    /// Returns a proportionally shrunk profile (same span, `factor` of the
    /// nodes and events) for fast tests and CI runs. `factor` in `(0, 1]`.
    pub fn scaled(&self, factor: f64) -> Self {
        assert!(factor > 0.0 && factor <= 1.0);
        let mut p = self.clone();
        p.nodes = ((p.nodes as f64 * factor).round() as u32).max(2);
        p.events = ((p.events as f64 * factor).round() as usize).max(10);
        p
    }

    /// Generates the stand-in stream (deterministic per seed).
    pub fn generate(&self, seed: u64) -> LinkStream {
        let circadian = if self.office_rhythm {
            CircadianProfile::office(DAY)
        } else {
            CircadianProfile::online(DAY)
        };
        MessageModel {
            nodes: self.nodes,
            events: self.events,
            span: self.span,
            activity_shape: 1.4,
            repeat_contact: 0.75,
            reply_probability: self.reply_probability,
            reply_delay_mean: self.reply_delay_mean,
            circadian,
            seed: seed ^ fxhash(self.name),
        }
        .generate()
    }
}

/// Tiny deterministic string hash so each profile gets distinct sub-seeds.
fn fxhash(s: &str) -> u64 {
    s.bytes()
        .fold(0xcbf2_9ce4_8422_2325u64, |h, b| (h ^ b as u64).wrapping_mul(0x1000_0000_01b3))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn published_characteristics() {
        let irv = DatasetProfile::irvine();
        assert_eq!(irv.nodes, 1_509);
        assert_eq!(irv.events, 48_000);
        assert!((irv.activity_per_person_per_day() - 0.66).abs() < 0.01);

        let fb = DatasetProfile::facebook();
        assert!((fb.activity_per_person_per_day() - 0.114).abs() < 0.02);

        let enron = DatasetProfile::enron();
        assert!((enron.activity_per_person_per_day() - 0.29).abs() < 0.01);

        let man = DatasetProfile::manufacturing();
        assert!((man.activity_per_person_per_day() - 2.22).abs() < 0.02);
    }

    #[test]
    fn activity_ordering_matches_paper() {
        // Facebook < Enron < Irvine < Manufacturing
        let acts: Vec<f64> = [
            DatasetProfile::facebook(),
            DatasetProfile::enron(),
            DatasetProfile::irvine(),
            DatasetProfile::manufacturing(),
        ]
        .iter()
        .map(|p| p.activity_per_person_per_day())
        .collect();
        assert!(acts.windows(2).all(|w| w[0] < w[1]), "{acts:?}");
    }

    #[test]
    fn scaled_generation_is_fast_and_consistent() {
        let p = DatasetProfile::irvine().scaled(0.05);
        let s = p.generate(42);
        assert_eq!(s.node_count() as u32, p.nodes);
        assert!((s.len() as f64 - p.events as f64).abs() / (p.events as f64) < 0.1);
        assert!(s.is_directed());
        assert!(s.span() <= p.span);
    }

    #[test]
    fn generation_is_deterministic() {
        let p = DatasetProfile::enron().scaled(0.02);
        assert_eq!(p.generate(7).events(), p.generate(7).events());
        assert_ne!(p.generate(7).events(), p.generate(8).events());
    }

    #[test]
    #[should_panic]
    fn scaled_rejects_zero() {
        DatasetProfile::irvine().scaled(0.0);
    }
}
