//! Interval-link (duration) contact generator — RFID-style proximity data.
//!
//! The paper's Section 9 perspective concerns links that "last during an
//! interval of time (e.g. phone calls and physical contacts between
//! individuals)", typically measured by sensor deployments (refs 5 and 11 in the
//! paper). This generator produces such data: contacts arrive per pair as a
//! Poisson process and last an exponential duration, so the oversampling
//! pipeline ([`IntervalStream::sample_periodic`]) can be exercised
//! end-to-end.
//!
//! [`IntervalStream::sample_periodic`]: saturn_linkstream::IntervalStream::sample_periodic

use crate::poisson::sample_exponential;
use rand::SeedableRng;
use saturn_linkstream::{Directedness, IntervalStream, IntervalStreamBuilder};

/// Generator configuration for contact (interval) streams.
#[derive(Clone, Copy, Debug)]
pub struct ContactModel {
    /// Number of individuals.
    pub nodes: u32,
    /// Study period length in ticks.
    pub span: i64,
    /// Mean number of contacts per pair over the whole period.
    pub contacts_per_pair: f64,
    /// Mean contact duration in ticks.
    pub mean_duration: f64,
    /// RNG seed.
    pub seed: u64,
}

impl ContactModel {
    /// Generates the interval stream (undirected).
    ///
    /// # Panics
    /// Panics on degenerate parameters.
    pub fn generate(&self) -> IntervalStream {
        assert!(self.nodes >= 2 && self.span >= 2);
        assert!(self.contacts_per_pair > 0.0 && self.mean_duration >= 0.0);
        let mut rng = rand::rngs::StdRng::seed_from_u64(self.seed);
        let mut b = IntervalStreamBuilder::new(Directedness::Undirected);
        b.period(0, self.span);
        let arrival_mean = self.span as f64 / self.contacts_per_pair;
        for u in 0..self.nodes {
            for v in (u + 1)..self.nodes {
                let (lu, lv) = (u.to_string(), v.to_string());
                let mut t = sample_exponential(&mut rng, arrival_mean);
                while (t as i64) < self.span {
                    let start = t as i64;
                    let duration = if self.mean_duration > 0.0 {
                        sample_exponential(&mut rng, self.mean_duration) as i64
                    } else {
                        0
                    };
                    let end = (start + duration).min(self.span);
                    b.add(&lu, &lv, start, end);
                    // next contact begins after this one ends
                    t = end as f64 + sample_exponential(&mut rng, arrival_mean);
                }
            }
        }
        b.build().expect("contacts_per_pair > 0 makes emptiness vanishingly rare")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> ContactModel {
        ContactModel {
            nodes: 12,
            span: 100_000,
            contacts_per_pair: 8.0,
            mean_duration: 120.0,
            seed: 31,
        }
    }

    #[test]
    fn counts_and_durations_match_parameters() {
        let s = model().generate();
        let pairs = 12 * 11 / 2;
        let expected = pairs as f64 * 8.0;
        assert!(
            (s.len() as f64 - expected).abs() / expected < 0.25,
            "{} contacts vs ~{expected}",
            s.len()
        );
        let mean_dur = s.mean_duration();
        assert!((mean_dur - 120.0).abs() / 120.0 < 0.25, "mean duration {mean_dur} vs 120");
    }

    #[test]
    fn contacts_stay_inside_period_and_do_not_overlap_per_pair() {
        let s = model().generate();
        for l in s.links() {
            assert!(l.start.ticks() >= 0 && l.end.ticks() <= 100_000);
            assert!(l.start <= l.end);
        }
        // per-pair non-overlap (contacts are sequential by construction)
        use std::collections::HashMap;
        let mut last_end: HashMap<(u32, u32), i64> = HashMap::new();
        for l in s.links() {
            let key = (l.u.raw(), l.v.raw());
            if let Some(&e) = last_end.get(&key) {
                assert!(l.start.ticks() >= e, "overlapping contacts for {key:?}");
            }
            last_end.insert(key, l.end.ticks());
        }
    }

    #[test]
    fn oversampling_pipeline_runs() {
        let s = model().generate();
        let p = s.sample_periodic(60, 0).unwrap();
        assert!(p.len() > s.len() / 2, "sampling should capture many contacts");
        // finer sampling captures at least as many events
        let fine = s.sample_periodic(10, 0).unwrap();
        assert!(fine.len() >= p.len());
    }

    #[test]
    fn deterministic() {
        let a = model().generate();
        let b = model().generate();
        assert_eq!(a.links(), b.links());
    }
}
