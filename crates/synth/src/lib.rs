//! Synthetic link-stream generators.
//!
//! Two families reproduce Section 6 of the paper exactly:
//!
//! * [`TimeUniform`] — `N` links per node pair, timestamps uniform over
//!   `[0, T]` (Figure 6 left: γ is proportional to the mean inter-contact
//!   time);
//! * [`TwoMode`] — alternating high- and low-activity periods (Figure 6
//!   right: γ stays at the high-activity value until low activity dominates
//!   ~80% of the time).
//!
//! The third family, [`profiles`], synthesizes statistically analogous
//! stand-ins for the four real traces evaluated in Section 5 (UC Irvine
//! messages, Facebook wall posts, Enron emails, Manufacturing emails), which
//! cannot be downloaded in this offline environment: same node count, event
//! count, duration and directedness as published, with heavy-tailed node
//! activity, repeated ties, circadian + weekly rhythm, and reply bursts. See
//! DESIGN.md for the substitution rationale.
//!
//! ```
//! use saturn_synth::TimeUniform;
//!
//! let stream = TimeUniform { nodes: 10, links_per_pair: 4, span: 10_000, seed: 1 }
//!     .generate();
//! assert_eq!(stream.node_count(), 10);
//! // 45 pairs × 4 links (minus rare same-tick duplicates)
//! assert!(stream.len() > 170);
//! ```

pub mod circadian;
pub mod contacts;
pub mod poisson;
pub mod profiles;
pub mod reply;
pub mod time_uniform;
pub mod two_mode;

pub use circadian::CircadianProfile;
pub use contacts::ContactModel;
pub use profiles::DatasetProfile;
pub use time_uniform::TimeUniform;
pub use two_mode::TwoMode;
