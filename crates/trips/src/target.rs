//! Selection of destination nodes for the dynamic program.
//!
//! The engine's memory footprint is `O(n × |targets|)`. For the exact method
//! of the paper the target set is all of `V`; for very large networks a
//! deterministic sample of destinations bounds memory and work while
//! approximating the occupancy-rate distribution (trips toward a uniform
//! sample of destinations are an unbiased sample of all trips).

/// The set of destination nodes for which minimal trips are computed.
#[derive(Clone, Debug)]
pub struct TargetSet {
    /// `node -> column` or `NONE_COL`.
    col_of: Vec<u32>,
    /// `column -> node`.
    node_of: Vec<u32>,
}

const NONE_COL: u32 = u32::MAX;

impl TargetSet {
    /// Every node of `0..n` is a destination (the paper's exact setting).
    pub fn all(n: u32) -> Self {
        TargetSet { col_of: (0..n).collect(), node_of: (0..n).collect() }
    }

    /// A caller-chosen subset of destinations; duplicates are ignored.
    ///
    /// # Panics
    /// Panics if any node is `>= n` or the subset is empty.
    pub fn from_nodes(n: u32, nodes: &[u32]) -> Self {
        assert!(!nodes.is_empty(), "target set must not be empty");
        let mut col_of = vec![NONE_COL; n as usize];
        let mut node_of = Vec::with_capacity(nodes.len());
        for &v in nodes {
            assert!(v < n, "target node {v} out of range (n = {n})");
            if col_of[v as usize] == NONE_COL {
                col_of[v as usize] = node_of.len() as u32;
                node_of.push(v);
            }
        }
        TargetSet { col_of, node_of }
    }

    /// A deterministic pseudo-random sample of `size` destinations out of
    /// `0..n` (seeded, dependency-free `splitmix64`-based Fisher–Yates).
    pub fn sample(n: u32, size: u32, seed: u64) -> Self {
        let size = size.min(n).max(1);
        let mut pool: Vec<u32> = (0..n).collect();
        let mut state = seed ^ 0x9e37_79b9_7f4a_7c15;
        let mut next = move || {
            // splitmix64
            state = state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        };
        for i in 0..size as usize {
            let j = i + (next() % (n as u64 - i as u64)) as usize;
            pool.swap(i, j);
        }
        pool.truncate(size as usize);
        pool.sort_unstable();
        Self::from_nodes(n, &pool)
    }

    /// Number of destination columns.
    pub fn len(&self) -> usize {
        self.node_of.len()
    }

    /// Whether the set is empty (never true for constructed sets).
    pub fn is_empty(&self) -> bool {
        self.node_of.is_empty()
    }

    /// Whether every node is a destination.
    pub fn is_all(&self) -> bool {
        self.node_of.len() == self.col_of.len()
    }

    /// Column of node `v`, if `v` is a destination.
    #[inline]
    pub fn col_of(&self, v: u32) -> Option<u32> {
        let c = self.col_of[v as usize];
        (c != NONE_COL).then_some(c)
    }

    /// Node of column `c`.
    #[inline]
    pub fn node_of(&self, c: u32) -> u32 {
        self.node_of[c as usize]
    }

    /// The destination nodes, ascending.
    pub fn nodes(&self) -> &[u32] {
        &self.node_of
    }

    /// Partitions the columns into contiguous tiles of at most `tile`
    /// columns, as `(col_start, col_len)` pairs in ascending column order —
    /// the unit of [`crate::earliest_arrival_dp_tile_in`]. All tiles carry
    /// exactly `tile` columns except possibly the last; `tile >= len()` (or
    /// `tile == 0`, treated as "untiled") yields one full-range tile.
    pub fn tile_ranges(&self, tile: usize) -> Vec<(u32, u32)> {
        let ncols = self.len();
        let tile = if tile == 0 { ncols } else { tile.min(ncols) };
        let mut ranges = Vec::with_capacity(ncols.div_ceil(tile));
        let mut start = 0usize;
        while start < ncols {
            let len = tile.min(ncols - start);
            ranges.push((start as u32, len as u32));
            start += len;
        }
        ranges
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_is_identity() {
        let t = TargetSet::all(5);
        assert_eq!(t.len(), 5);
        assert!(t.is_all());
        for v in 0..5 {
            assert_eq!(t.col_of(v), Some(v));
            assert_eq!(t.node_of(v), v);
        }
    }

    #[test]
    fn subset_maps_both_ways() {
        let t = TargetSet::from_nodes(10, &[7, 2, 7, 4]);
        assert_eq!(t.len(), 3);
        assert!(!t.is_all());
        assert_eq!(t.col_of(7), Some(0));
        assert_eq!(t.col_of(2), Some(1));
        assert_eq!(t.col_of(4), Some(2));
        assert_eq!(t.col_of(0), None);
        assert_eq!(t.node_of(1), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn subset_checks_range() {
        TargetSet::from_nodes(3, &[3]);
    }

    #[test]
    fn sample_is_deterministic_and_in_range() {
        let a = TargetSet::sample(100, 10, 42);
        let b = TargetSet::sample(100, 10, 42);
        assert_eq!(a.nodes(), b.nodes());
        assert_eq!(a.len(), 10);
        assert!(a.nodes().iter().all(|&v| v < 100));
        let c = TargetSet::sample(100, 10, 43);
        assert_ne!(a.nodes(), c.nodes(), "different seeds should differ");
    }

    #[test]
    fn sample_larger_than_n_is_clamped() {
        let t = TargetSet::sample(5, 50, 1);
        assert_eq!(t.len(), 5);
        assert!(t.is_all());
    }

    #[test]
    fn tile_ranges_cover_exactly_once() {
        let t = TargetSet::all(10);
        assert_eq!(t.tile_ranges(4), vec![(0, 4), (4, 4), (8, 2)]);
        assert_eq!(t.tile_ranges(10), vec![(0, 10)]);
        assert_eq!(t.tile_ranges(0), vec![(0, 10)]);
        assert_eq!(t.tile_ranges(100), vec![(0, 10)]);
        let ones = t.tile_ranges(1);
        assert_eq!(ones.len(), 10);
        for (i, &(s, l)) in ones.iter().enumerate() {
            assert_eq!((s, l), (i as u32, 1));
        }
        // every partition covers [0, len) without gaps or overlaps
        for tile in 1..=11 {
            let r = t.tile_ranges(tile);
            assert_eq!(r[0].0, 0);
            assert_eq!(r.last().unwrap().0 + r.last().unwrap().1, 10);
            for w in r.windows(2) {
                assert_eq!(w[0].0 + w[0].1, w[1].0);
            }
        }
    }
}
