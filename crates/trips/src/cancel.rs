//! Cooperative cancellation of in-flight computations.
//!
//! A [`CancelToken`] is a cloneable handle to a shared flag. The party that
//! wants a computation stopped calls [`CancelToken::cancel`]; the computation
//! polls [`CancelToken::is_cancelled`] at its own safe points — between
//! `(scale, tile)` work items in the sweep scheduler and every
//! [`CANCEL_STRIDE`](crate::dp) steps inside the DP loop — and abandons its
//! work. Cancellation is *cooperative*: firing the token never interrupts a
//! step mid-update, so arena reuse stays sound (`EngineArena::prepare`
//! already tolerates abandoned runs), and a token that never fires is a pair
//! of relaxed loads per poll — it cannot change results, timings aside.
//!
//! The partial output of a cancelled run is unspecified and must be
//! discarded; callers signal this with the [`Cancelled`] error.

use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Shared cancellation flag. Cloning yields another handle to the same flag.
#[derive(Clone, Debug, Default)]
pub struct CancelToken {
    fired: Arc<AtomicBool>,
}

impl CancelToken {
    /// Creates a token in the not-cancelled state.
    pub fn new() -> Self {
        Self::default()
    }

    /// Fires the token. Idempotent; never blocks. All computations polling
    /// any clone of this token will stop at their next safe point.
    pub fn cancel(&self) {
        self.fired.store(true, Ordering::Release);
    }

    /// Whether the token has fired. A relaxed-ish acquire load — cheap
    /// enough to poll from worker loops.
    pub fn is_cancelled(&self) -> bool {
        self.fired.load(Ordering::Acquire)
    }
}

/// Error returned by cancellable entry points when their token fired before
/// the computation finished. Any partial output has been discarded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cancelled;

impl std::fmt::Display for Cancelled {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str("computation cancelled before completion")
    }
}

impl std::error::Error for Cancelled {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn clones_share_the_flag() {
        let a = CancelToken::new();
        let b = a.clone();
        assert!(!a.is_cancelled() && !b.is_cancelled());
        b.cancel();
        assert!(a.is_cancelled() && b.is_cancelled());
        a.cancel(); // idempotent
        assert!(a.is_cancelled());
    }
}
