//! Mean temporal distances of an aggregated series (Figure 2, bottom row).
//!
//! For every ordered pair `(u, v)` and every departure step `t` with a finite
//! distance, the paper considers:
//!
//! * `d_time(u, v, t) = t_arr - t + 1` — distance in time, in steps;
//! * `d_hops(u, v, t)` — minimum hops among paths realizing `d_time`;
//! * `d_abstime(u, v, t) = Δ · d_time(u, v, t)` — distance in absolute time,
//!   which cancels the `1/Δ` dependence of `d_time`.
//!
//! The sums over **all** departure steps are accumulated inside the DP in
//! `O(1)` per table update (arithmetic series between change points), so the
//! cost stays `O(nM)` even when the series has millions of windows.

use crate::{dp::NullSink, earliest_arrival_dp, DpOptions, TargetSet, Timeline};
use saturn_linkstream::LinkStream;
use serde::Serialize;

/// Mean temporal distances of `G_Δ` at one scale.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct DistanceMeans {
    /// Number of windows `K`.
    pub k: u64,
    /// Window length `Δ` in ticks.
    pub delta_ticks: f64,
    /// Mean `d_time` in steps, over all finite `(u, v, t)` triples.
    pub mean_dtime_steps: f64,
    /// Mean `d_abstime` in ticks (`Δ ·` mean `d_time`).
    pub mean_dabstime_ticks: f64,
    /// Mean `d_hops` over the same triples.
    pub mean_dhops: f64,
    /// Number of finite `(u, v, t)` triples.
    pub finite_triples: u128,
}

/// Computes the mean distances of the series `G_Δ` with `Δ = T/k`, over
/// destinations in `targets`.
pub fn distance_means(stream: &LinkStream, k: u64, targets: &TargetSet) -> DistanceMeans {
    let timeline = Timeline::aggregated(stream, k);
    distance_means_on(&timeline, stream.span(), k, targets)
}

/// Same as [`distance_means`], for an already-built aggregated timeline —
/// sweeps build the timeline once per scale from a shared
/// [`crate::EventView`] and pass it here. `span` is the stream's study
/// period length in ticks.
pub fn distance_means_on(
    timeline: &Timeline,
    span: i64,
    k: u64,
    targets: &TargetSet,
) -> DistanceMeans {
    let stats = earliest_arrival_dp(
        timeline,
        targets,
        &mut NullSink,
        DpOptions { collect_distances: true, ..Default::default() },
    );
    let sums = stats.distances.expect("collect_distances was set");
    let delta = span as f64 / k as f64;
    let cnt = sums.finite_triples.max(1) as f64;
    let mean_dtime = sums.sum_dtime_steps as f64 / cnt;
    DistanceMeans {
        k,
        delta_ticks: delta,
        mean_dtime_steps: mean_dtime,
        mean_dabstime_ticks: mean_dtime * delta,
        mean_dhops: sums.sum_dhops as f64 / cnt,
        finite_triples: sums.finite_triples as u128,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{io, Directedness};

    #[test]
    fn matches_hand_computation() {
        // Same example as the dp module's distance test: K = 2.
        let s = io::read_str("a b 0\nb c 10\n", Directedness::Undirected).unwrap();
        let d = distance_means(&s, 2, &TargetSet::all(3));
        assert_eq!(d.finite_triples, 7);
        assert!((d.mean_dtime_steps - 10.0 / 7.0).abs() < 1e-12);
        assert!((d.mean_dhops - 8.0 / 7.0).abs() < 1e-12);
        assert!((d.delta_ticks - 5.0).abs() < 1e-12);
        assert!((d.mean_dabstime_ticks - 5.0 * 10.0 / 7.0).abs() < 1e-12);
    }

    #[test]
    fn total_aggregation_every_reachable_pair_at_distance_one() {
        let s = io::read_str("a b 0\nb c 10\n", Directedness::Undirected).unwrap();
        let d = distance_means(&s, 1, &TargetSet::all(3));
        // single window: pairs (a,b),(b,a),(b,c),(c,b) reachable with d=1;
        // a->c impossible (one window, Remark 1)
        assert_eq!(d.finite_triples, 4);
        assert!((d.mean_dtime_steps - 1.0).abs() < 1e-12);
        assert!((d.mean_dhops - 1.0).abs() < 1e-12);
    }

    #[test]
    fn dhops_decreases_with_aggregation() {
        // a chain: at fine scales reaching the far node takes many hops; at
        // K=1... the chain is not traversable at K=1, but mean hops over
        // reachable pairs still drops.
        let text = "a b 0\nb c 10\nc d 20\nd e 30\n";
        let s = io::read_str(text, Directedness::Undirected).unwrap();
        let fine = distance_means(&s, 30, &TargetSet::all(5));
        let coarse = distance_means(&s, 2, &TargetSet::all(5));
        assert!(coarse.mean_dhops <= fine.mean_dhops);
        // and d_time in steps shrinks roughly like 1/Δ
        assert!(coarse.mean_dtime_steps < fine.mean_dtime_steps);
    }
}
