//! Elongation factors of aggregated minimal trips (Definition 8, Figure 8
//! right).
//!
//! The loss measured by lost transitions is pessimistic: a lost shortest
//! transition may be replaced by a slightly longer or later route, leaving
//! propagation almost unchanged. The elongation factor quantifies the actual
//! slowdown: for a minimal trip `(u, v, t_u, t_v)` of `G_Δ` spanning more
//! than one window, it is the ratio of its absolute duration
//! `(t_v - t_u + 1)·Δ` to the duration of the fastest minimal trip of the
//! original stream between the same nodes inside the same real-time range.

use crate::{earliest_arrival_dp, DpOptions, StreamTrips, TargetSet, Timeline, TripSink};
use saturn_linkstream::{LinkStream, Time, WindowPartition};
use serde::Serialize;

/// Aggregate elongation statistics at one scale `Δ`.
#[derive(Clone, Copy, Debug, Serialize)]
pub struct ElongationStats {
    /// Number of windows `K`.
    pub k: u64,
    /// Window length `Δ` in ticks.
    pub delta_ticks: f64,
    /// Mean elongation factor over all multi-window minimal trips of `G_Δ`.
    pub mean: f64,
    /// Number of trips entering the mean.
    pub count: u64,
    /// Minimal trips confined to a single window (`t_u = t_v`), excluded by
    /// Definition 8.
    pub single_window: u64,
}

struct ElongationSink<'a> {
    reference: &'a StreamTrips,
    partition: WindowPartition,
    delta_ticks: f64,
    sum: f64,
    count: u64,
    single_window: u64,
}

impl ElongationSink<'_> {
    /// Fastest reference-trip duration for `(u, v)` whose departure *and*
    /// arrival fall inside windows `dep..=arr`.
    fn reference_duration(&self, u: u32, v: u32, dep: u32, arr: u32) -> Option<i64> {
        let trips = self.reference.pair(u, v)?;
        // first reference trip departing in window >= dep
        let start =
            trips.partition_point(|&(d, _)| self.partition.index(Time::new(d)) < dep as u64);
        let mut best: Option<i64> = None;
        for &(d, a) in &trips[start..] {
            if self.partition.index(Time::new(a)) > arr as u64 {
                break; // arrivals ascend: nothing further qualifies
            }
            let dur = a - d;
            best = Some(best.map_or(dur, |b| b.min(dur)));
        }
        best
    }
}

impl TripSink for ElongationSink<'_> {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, _hops: u32) {
        if dep == arr {
            self.single_window += 1;
            return;
        }
        let Some(time_l) = self.reference_duration(u, v, dep, arr) else {
            // Unreachable when the reference was computed on the same stream
            // and target set; tolerate silently otherwise.
            debug_assert!(false, "aggregated trip without underlying stream trip");
            return;
        };
        // A reference trip of zero duration would be a direct link inside the
        // window range, contradicting the minimality of a multi-window trip.
        debug_assert!(time_l > 0, "Definition 8 guarantees time_L != 0");
        if time_l <= 0 {
            return;
        }
        let duration_abs = (arr - dep + 1) as f64 * self.delta_ticks;
        self.sum += duration_abs / time_l as f64;
        self.count += 1;
    }
}

/// Computes the mean elongation factor of the minimal trips of `G_Δ`
/// (`Δ = T/k`) relative to `reference` (the minimal trips of the same stream,
/// from [`stream_minimal_trips`](crate::stream_minimal_trips) with the same
/// `targets`).
pub fn elongation_stats(
    stream: &LinkStream,
    reference: &StreamTrips,
    k: u64,
    targets: &TargetSet,
) -> ElongationStats {
    let timeline = Timeline::aggregated(stream, k);
    let partition = stream.partition(k).expect("invalid window count");
    elongation_stats_on(&timeline, partition, reference, targets)
}

/// Same as [`elongation_stats`], for an already-built aggregated timeline
/// and its window partition — sweeps build the timeline once per scale from
/// a shared [`crate::EventView`] and pass it here.
pub fn elongation_stats_on(
    timeline: &Timeline,
    partition: saturn_linkstream::WindowPartition,
    reference: &StreamTrips,
    targets: &TargetSet,
) -> ElongationStats {
    let k = partition.k();
    let mut sink = ElongationSink {
        reference,
        partition,
        delta_ticks: partition.delta_ticks(),
        sum: 0.0,
        count: 0,
        single_window: 0,
    };
    earliest_arrival_dp(timeline, targets, &mut sink, DpOptions::default());
    ElongationStats {
        k,
        delta_ticks: partition.delta_ticks(),
        mean: if sink.count > 0 { sink.sum / sink.count as f64 } else { f64::NAN },
        count: sink.count,
        single_window: sink.single_window,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::stream_minimal_trips;
    use saturn_linkstream::{io, Directedness};

    #[test]
    fn perfect_aggregation_has_elongation_near_one() {
        // Chain with hops exactly one window apart at K = 10 (Δ = 10):
        // a-b@5, b-c@15: real trip duration 10; aggregated trip spans
        // windows 0..1, duration_abs = 2·10 = 20 => elongation 2.
        let s =
            io::read_str("a b 5\nb c 15\na z 0\na z 100\n", Directedness::Undirected).unwrap();
        let targets = TargetSet::all(4);
        let reference = stream_minimal_trips(&s, &targets, false);
        let e = elongation_stats(&s, &reference, 10, &targets);
        assert!(e.count > 0);
        assert!(e.mean >= 1.0, "mean elongation {: } must be >= 1", e.mean);
    }

    #[test]
    fn elongation_is_at_least_one_on_random_chains() {
        let text = "a b 0\nb c 7\nc d 19\nd e 23\na c 31\nb e 40\n";
        let s = io::read_str(text, Directedness::Undirected).unwrap();
        let targets = TargetSet::all(5);
        let reference = stream_minimal_trips(&s, &targets, false);
        for k in [2u64, 3, 5, 8, 13, 40] {
            let e = elongation_stats(&s, &reference, k, &targets);
            if e.count > 0 {
                assert!(e.mean >= 1.0 - 1e-9, "k={k}: mean elongation {} below 1", e.mean);
            }
        }
    }

    #[test]
    fn single_window_trips_are_excluded() {
        let s = io::read_str("a b 0\nb c 50\n", Directedness::Undirected).unwrap();
        let targets = TargetSet::all(3);
        let reference = stream_minimal_trips(&s, &targets, false);
        // K = 1: every trip is single-window
        let e = elongation_stats(&s, &reference, 1, &targets);
        assert_eq!(e.count, 0);
        assert!(e.single_window > 0);
        assert!(e.mean.is_nan());
    }

    #[test]
    fn exact_elongation_value_on_known_example() {
        // Stream: a-b@0, b-c@99 over [0, 99]; K = 2 (Δ = 49.5):
        // windows: t=0 -> w0, t=99 -> w1.
        // G_Δ trip a->c: dep 0, arr 1, duration_abs = 2·49.5 = 99.
        // Underlying fastest trip: (0, 99), duration 99. Elongation = 1.
        let s = io::read_str("a b 0\nb c 99\n", Directedness::Undirected).unwrap();
        let targets = TargetSet::all(3);
        let reference = stream_minimal_trips(&s, &targets, false);
        let e = elongation_stats(&s, &reference, 2, &targets);
        assert_eq!(e.count, 1);
        assert!((e.mean - 1.0).abs() < 1e-12, "mean = {}", e.mean);
    }
}
