//! Minimal trips of the raw link stream `L`.
//!
//! Running the earliest-arrival DP on the *exact* timeline (one step per
//! distinct timestamp) yields the minimal trips of the original stream. They
//! serve two purposes in Section 8 of the paper: the two-hop ones are the
//! *shortest transitions* (loss measure, Figure 8 left), and the per-pair
//! trip lists are the reference against which aggregated trips are compared
//! by the *elongation factor* (Figure 8 right).

use crate::{
    earliest_arrival_dp, DpOptions, ShortestTransitions, TargetSet, Timeline, TripSink,
};
use saturn_linkstream::LinkStream;
use std::collections::{HashMap, HashSet};

/// The minimal trips of one ordered pair, as `(departure tick, arrival
/// tick)`, ascending in both components (minimal trips of a pair are nested
/// like a staircase: an earlier departure always has a strictly earlier
/// arrival).
pub type PairTrips = Vec<(i64, i64)>;

/// All minimal trips of a link stream, grouped by ordered pair, plus the
/// shortest transitions.
#[derive(Clone, Debug, Default)]
pub struct StreamTrips {
    per_pair: HashMap<(u32, u32), PairTrips>,
    /// The two-hop minimal trips, weighted by their number of middle nodes.
    pub transitions: ShortestTransitions,
    total: u64,
}

impl StreamTrips {
    /// The minimal trips of pair `(u, v)`, if any.
    pub fn pair(&self, u: u32, v: u32) -> Option<&[(i64, i64)]> {
        self.per_pair.get(&(u, v)).map(|v| v.as_slice())
    }

    /// Total number of minimal trips.
    pub fn total_trips(&self) -> u64 {
        self.total
    }

    /// Number of ordered pairs with at least one trip.
    pub fn pair_count(&self) -> usize {
        self.per_pair.len()
    }

    /// Iterates over `((u, v), trips)` in unspecified order.
    pub fn iter(&self) -> impl Iterator<Item = (&(u32, u32), &PairTrips)> {
        self.per_pair.iter()
    }
}

struct StreamSink<'a> {
    timeline: &'a Timeline,
    trips: StreamTrips,
    /// Raw two-hop trips pending multiplicity resolution:
    /// `(u, v, t1, t2)`.
    two_hop: Vec<(u32, u32, i64, i64)>,
}

impl TripSink for StreamSink<'_> {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        let t1 = self.timeline.tick_of(dep).expect("exact timeline");
        let t2 = self.timeline.tick_of(arr).expect("exact timeline");
        self.trips.per_pair.entry((u, v)).or_default().push((t1, t2));
        self.trips.total += 1;
        if hops == 2 {
            self.two_hop.push((u, v, t1, t2));
        }
    }
}

/// Computes all minimal trips of `stream` toward destinations in `targets`.
///
/// When `weighted_transitions` is set, each two-hop minimal trip is counted
/// with its exact number of distinct middle nodes (the multiset of shortest
/// transitions of Definition 6); otherwise each two-hop trip counts once,
/// which only rescales the loss curve.
pub fn stream_minimal_trips(
    stream: &LinkStream,
    targets: &TargetSet,
    weighted_transitions: bool,
) -> StreamTrips {
    let timeline = Timeline::exact(stream);
    let mut sink =
        StreamSink { timeline: &timeline, trips: StreamTrips::default(), two_hop: Vec::new() };
    earliest_arrival_dp(&timeline, targets, &mut sink, DpOptions::default());

    let StreamSink { trips: mut out, two_hop, .. } = sink;

    // The DP visits steps in descending order, so per-pair lists arrived in
    // descending departure order; flip them to ascending for binary search.
    for trips in out.per_pair.values_mut() {
        trips.reverse();
        debug_assert!(trips.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
    }

    // Resolve transition multiplicities.
    if weighted_transitions && !two_hop.is_empty() {
        // successor lists per (node, instant) and membership set
        let mut succ: HashMap<(u32, i64), Vec<u32>> = HashMap::new();
        let mut member: HashSet<(u32, u32, i64)> = HashSet::new();
        for l in stream.events() {
            let (u, v, t) = (l.u.raw(), l.v.raw(), l.t.ticks());
            succ.entry((u, t)).or_default().push(v);
            member.insert((u, v, t));
            if !stream.is_directed() {
                succ.entry((v, t)).or_default().push(u);
                member.insert((v, u, t));
            }
        }
        for (u, v, t1, t2) in two_hop {
            let mut weight = 0u64;
            if let Some(mids) = succ.get(&(u, t1)) {
                for &b in mids {
                    if b != v && member.contains(&(b, v, t2)) {
                        weight += 1;
                    }
                }
            }
            debug_assert!(weight >= 1, "a 2-hop minimal trip must have a middle node");
            out.transitions.push(t1, t2, weight.max(1));
        }
    } else {
        for (_, _, t1, t2) in two_hop {
            out.transitions.push(t1, t2, 1);
        }
    }

    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{io, Directedness};

    #[test]
    fn chain_produces_expected_trips() {
        // a-b@1, b-c@5: minimal trips include (a,c,1,5) with 2 hops.
        let s = io::read_str("a b 1\nb c 5\n", Directedness::Undirected).unwrap();
        let trips = stream_minimal_trips(&s, &TargetSet::all(3), true);
        assert_eq!(trips.pair(0, 2), Some(&[(1i64, 5i64)][..]));
        assert_eq!(trips.transitions.len(), 1);
        assert_eq!(trips.transitions.items[0].weight, 1);
        // single-link trips exist too
        assert_eq!(trips.pair(0, 1), Some(&[(1i64, 1i64)][..]));
        // no c -> a trip
        assert!(trips.pair(2, 0).is_none());
    }

    #[test]
    fn multiplicity_counts_middle_nodes() {
        // two middle nodes b, d: a-b@0, a-d@0, b-c@5, d-c@5
        let s = io::read_str("a b 0\na d 0\nb c 5\nd c 5\n", Directedness::Undirected).unwrap();
        let trips = stream_minimal_trips(&s, &TargetSet::all(4), true);
        let tr: Vec<_> =
            trips.transitions.items.iter().filter(|t| (t.t1, t.t2) == (0, 5)).collect();
        // the (a,c,0,5) trip has weight 2; (b,d)/(d,b) trips via a->? ...
        // check at least the a->c one carries weight 2
        assert!(tr.iter().any(|t| t.weight == 2), "transitions: {tr:?}");
    }

    #[test]
    fn unweighted_mode_counts_once() {
        let s = io::read_str("a b 0\na d 0\nb c 5\nd c 5\n", Directedness::Undirected).unwrap();
        let w = stream_minimal_trips(&s, &TargetSet::all(4), true);
        let u = stream_minimal_trips(&s, &TargetSet::all(4), false);
        assert_eq!(w.transitions.len(), u.transitions.len());
        assert!(w.transitions.total_weight > u.transitions.total_weight);
    }

    #[test]
    fn pair_lists_are_ascending_staircases() {
        let s = io::read_str(
            "a b 0\nb c 2\na b 10\nb c 12\na b 20\nb c 30\n",
            Directedness::Undirected,
        )
        .unwrap();
        let trips = stream_minimal_trips(&s, &TargetSet::all(3), false);
        let ac = trips.pair(0, 2).unwrap();
        assert!(ac.windows(2).all(|w| w[0].0 < w[1].0 && w[0].1 < w[1].1));
        // trips: dep 0 -> arr 2, dep 10 -> arr 12, dep 20 -> arr 30
        assert_eq!(ac, &[(0, 2), (10, 12), (20, 30)]);
    }

    #[test]
    fn same_instant_links_cannot_form_transitions() {
        let s = io::read_str("a b 5\nb c 5\n", Directedness::Undirected).unwrap();
        let trips = stream_minimal_trips(&s, &TargetSet::all(3), true);
        assert!(trips.pair(0, 2).is_none());
        assert!(trips.transitions.is_empty());
    }

    #[test]
    fn directed_transitions_follow_arrows() {
        let s = io::read_str("a b 0\nc b 5\n", Directedness::Directed).unwrap();
        // a->b then b has no outgoing link: no a->? transition; c->b@5 only.
        let trips = stream_minimal_trips(&s, &TargetSet::all(3), true);
        assert!(trips.transitions.is_empty());
        assert!(trips.pair(0, 2).is_none());
    }
}
