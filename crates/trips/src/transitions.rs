//! Shortest transitions and the lost-transition loss measure (Section 8).
//!
//! A *transition* is a two-hop temporal path `((a, b, t1), (b, c, t2))`; it
//! is a *shortest transition* when `(a, c, t1, t2)` is a minimal trip of the
//! link stream (Definition 6). Shortest transitions are the elementary units
//! of propagation: if every shortest transition survives aggregation, every
//! minimal trip does, and the propagation possibilities of the stream are
//! unchanged.
//!
//! A shortest transition is *lost* at scale `Δ` exactly when its two hops
//! fall inside the same aggregation window (the order of the two links is
//! then erased). The fraction of lost shortest transitions as a function of
//! `Δ` is the paper's first validation measure (Figure 8, left).

use saturn_linkstream::{Time, WindowPartition};
use serde::Serialize;

/// One shortest transition, reduced to what the loss measure needs: its two
/// hop instants and its multiplicity (number of distinct middle nodes
/// realizing the same minimal trip).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize)]
pub struct Transition {
    /// Instant of the first hop.
    pub t1: i64,
    /// Instant of the second hop (`t1 < t2`).
    pub t2: i64,
    /// Number of two-hop paths with these instants realizing the trip.
    pub weight: u64,
}

/// All shortest transitions of a link stream.
#[derive(Clone, Debug, Default, Serialize)]
pub struct ShortestTransitions {
    /// The transitions, in no particular order.
    pub items: Vec<Transition>,
    /// Sum of the weights.
    pub total_weight: u64,
}

impl ShortestTransitions {
    /// Adds a transition.
    pub fn push(&mut self, t1: i64, t2: i64, weight: u64) {
        debug_assert!(t1 < t2, "a transition chains strictly increasing instants");
        self.items.push(Transition { t1, t2, weight });
        self.total_weight += weight;
    }

    /// Number of distinct `(t1, t2)` transition records.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the stream has no shortest transition.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }
}

/// Weighted fraction of shortest transitions whose two hops fall inside one
/// window of `partition` — the transitions that no longer exist in `G_Δ`.
///
/// Returns `NaN` when the stream has no shortest transition.
pub fn lost_transition_fraction(
    transitions: &ShortestTransitions,
    partition: &WindowPartition,
) -> f64 {
    if transitions.total_weight == 0 {
        return f64::NAN;
    }
    let lost: u64 = transitions
        .items
        .iter()
        .filter(|tr| partition.index(Time::new(tr.t1)) == partition.index(Time::new(tr.t2)))
        .map(|tr| tr.weight)
        .sum();
    lost as f64 / transitions.total_weight as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn loss_fraction_counts_same_window_pairs() {
        let mut tr = ShortestTransitions::default();
        tr.push(0, 1, 1); // windows at Δ=5 over [0,10]: both in w0 -> lost
        tr.push(2, 7, 2); // w0 and w1 -> kept
        tr.push(6, 9, 1); // both w1 -> lost
        let p = WindowPartition::new(Time::new(0), Time::new(10), 2).unwrap();
        let f = lost_transition_fraction(&tr, &p);
        assert!((f - 2.0 / 4.0).abs() < 1e-12);
    }

    #[test]
    fn finest_partition_loses_nothing() {
        let mut tr = ShortestTransitions::default();
        tr.push(0, 1, 1);
        tr.push(3, 9, 1);
        let p = WindowPartition::new(Time::new(0), Time::new(10), 10).unwrap();
        assert_eq!(lost_transition_fraction(&tr, &p), 0.0);
    }

    #[test]
    fn total_aggregation_loses_everything() {
        let mut tr = ShortestTransitions::default();
        tr.push(0, 1, 1);
        tr.push(3, 9, 4);
        let p = WindowPartition::new(Time::new(0), Time::new(10), 1).unwrap();
        assert_eq!(lost_transition_fraction(&tr, &p), 1.0);
    }

    #[test]
    fn empty_transitions_yield_nan() {
        let tr = ShortestTransitions::default();
        let p = WindowPartition::new(Time::new(0), Time::new(10), 2).unwrap();
        assert!(lost_transition_fraction(&tr, &p).is_nan());
    }
}
