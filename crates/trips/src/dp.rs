//! The backward earliest-arrival dynamic program.
//!
//! This is the algorithm sketched in Section 5 of the paper: *"a dynamic
//! programming scheme going backward in time: at one step, knowing all the
//! minimal trips of the series starting not before time k+1, the algorithm
//! computes the minimal trips starting exactly at time k, their duration and
//! their minimum number of hops"*, with total complexity `O(nM)`.
//!
//! # State
//!
//! For every ordered pair `(u, v)` (with `v` restricted to the
//! [`TargetSet`]), the engine maintains while sweeping steps `k = K-1 .. 0`:
//!
//! * `ea[u][v]` — earliest arrival step among temporal paths departing at a
//!   step `>= k`,
//! * `hops[u][v]` — minimum hop count among paths achieving that arrival,
//! * `set_at[u][v]` — the step at which the current `(ea, hops)` value was
//!   installed (used both to deduplicate work inside a step and to flush
//!   distance sums over the departure-time ranges where the value was valid).
//!
//! # Memory & layout invariants (the [`EngineArena`])
//!
//! The sweep calls this engine once per aggregation scale, with identical
//! table dimensions `n × |targets|` every time. All engine state therefore
//! lives in a caller-owned [`EngineArena`] that each worker thread allocates
//! once and reuses for every scale it processes. The invariants:
//!
//! * **Epoch stamping.** Tables are never re-zeroed between runs. Each run
//!   bumps `arena.epoch`; a cell `(ea, hops, set_at)` is *live* iff
//!   `stamp[idx] == epoch`, so stale values from earlier scales read as
//!   "unreachable" at the cost of one `u32` compare. On the (once per 2^32
//!   runs) epoch wrap, stamps are hard-reset.
//! * **Reachability frontier.** A per-row bitmap (one bit per column) marks
//!   the cells whose earliest arrival is finite. Backward in time,
//!   reachability only grows, so bits are set-only within a run; the bitmap
//!   is 1/128th the size of the cell table and is simply cleared between
//!   runs. Snapshots iterate set bits in ascending column order — when a row
//!   is dense this walks the cells sequentially (the same locality as a full
//!   row scan), and when it is sparse whole 64-column words are skipped per
//!   `trailing_zeros` step. That pruning is decisive for early backward
//!   steps, where nearly every pair is still unreachable.
//! * **Frontier snapshots.** At each step, rows that can be read as
//!   continuations snapshot only their frontier entries (`(col, ea, hops)`
//!   triples appended to one flat buffer) instead of `copy_from_slice`-ing
//!   whole rows. Snapshot bounds are frozen before any edge of the step is
//!   applied, which is exactly the strict inequality of Remark 1 —
//!   same-step values can never be read back (see the ablation test
//!   `remark1_ablation.rs` for the naive in-place variant's failure).
//! * **CSR timelines.** Steps arrive as [`StepView`] slices into the
//!   timeline's flat `edge_src` / `edge_dst` arrays ([`Timeline`] docs);
//!   the engine walks them with zero per-step allocation.
//! * **Tile locality.** The recurrence `ea[u][v] ← 1 + ea'[w][v]` never
//!   reads a column other than `v`, so the engine can run on any contiguous
//!   *column range* of the [`TargetSet`] in complete isolation
//!   ([`earliest_arrival_dp_tile_in`]): the arena's tables, frontier bitmap
//!   and snapshot slots are all sized `n × tile` (better cache residency at
//!   large `n`), columns are tile-local (`global − col_start`), and reported
//!   trips / distance sums / per-tile `OccupancyHistogram`s partition the
//!   untiled run exactly — merging tiles in ascending column order
//!   reproduces the untiled output bit for bit. Traversal counts are
//!   per-edge, not per-column, so `DpStats::traversals` repeats per tile.
//! * **Degree-1 snapshot bypass.** A step carrying a single edge `(u, w)`
//!   skips the slot machinery entirely: direction `u → w` reads row `w`
//!   *live* (nothing has written it yet this step — offers only touch the
//!   reader's own row), and for undirected timelines row `u` alone is
//!   snapshotted (one flat append) before direction `u → w` dirties it, so
//!   direction `w → u` still sees pre-step values. The offer sequence is
//!   identical to the general path's, so results are bit-identical; what is
//!   saved is one row snapshot, all `slot_of` bookkeeping, and (directed)
//!   every snapshot write. This attacks the snapshot-bound fine-scale tail
//!   where nearly every non-empty window holds one edge.
//!   [`DpOptions::no_degree1_fast_path`] forces the general path for
//!   differential tests and benches.
//!
//! # Delta propagation invariants
//!
//! The fine-scale tail is *offer-bound*: the same few edges fire step after
//! step, and each firing re-offers every live column of its continuation
//! row even though almost none of them changed since the previous firing.
//! The engine therefore tracks change, and only emits chain offers for
//! columns that actually changed:
//!
//! * **Per-(edge, direction) watermarks.** The timeline assigns every
//!   distinct `(src, dst)` pair a stable id ([`crate::StepView::pair`]); the arena
//!   keeps, at `wm[2 · pair + direction]`, the step at which that traversal
//!   direction last consumed its continuation row. Watermarks are
//!   epoch-stamped like cells, so arena reuse across scales/tiles (whose
//!   pair ids mean different edges) needs no clearing.
//! * **Change record = `set_at`.** A cell's `set_at` is by construction the
//!   step of its most recent `(ea, hops)` change. With the backward sweep
//!   running `k = K-1 .. 0`, "cell changed since direction `d` last fired
//!   at step `L`" is exactly `set_at <= L` (snapshot values always have
//!   `set_at >= k + 1`, so same-step writes never leak in). Alongside, a
//!   per-row mark (`row_changed_at`, the minimum live `set_at` of the row)
//!   lets a consumer skip the *whole* row scan when `row_changed_at > L`.
//! * **Correctness (why skipped offers are no-ops).** Inductive invariant:
//!   after direction `(u, w)` fires at step `L`, every chain candidate
//!   `(ea'[w][v], hops'[w][v] + 1)` built from row `w`'s pre-step-`L`
//!   values has been offered to `(u, v)`, so `cell[u][v]` is at least as
//!   good (first on `ea`, then `hops`) as that candidate — and cells only
//!   improve monotonically. At a later (smaller) step `k`, an entry with
//!   `set_at > L` still holds the *same* value it held at step `L`, so its
//!   candidate is already dominated and cannot pass `offer`'s strict
//!   improvement test. Offers that cannot improve have *zero* side effects
//!   (no cell write, no `dirty` push, no distance flush), hence the
//!   filtered run's cell states, trip stream, and distance sums are
//!   bit-identical to the unfiltered run's — enforced differentially
//!   against both the frontier engine with delta off and [`baseline`] in
//!   `proptest_frontier.rs`, and across delta × tile × thread combinations
//!   in `core/tests/tiling_determinism.rs`. The single-hop offer
//!   `(k, 1)` is never filtered: its candidate is new every step.
//! * **Filtered snapshots.** Remark-1 snapshots stay the value source, but
//!   are built *already filtered*: a pre-pass over the step's edges
//!   computes, per slotted row, the most permissive consumer watermark
//!   (`slot_maxlast`), and the snapshot keeps only entries with
//!   `set_at <= slot_maxlast` (each direction then re-filters by its own
//!   watermark). Rows with no consumer in the step — e.g. directed tails —
//!   and rows unchanged since every consumer's last visit skip the
//!   frontier scan outright. This composes with the degree-1 bypass: a
//!   single-edge step whose rows are unchanged since the edge last fired
//!   does no snapshot work and no chain scan at all, which is the common
//!   case on bursty contact trains.
//! * **Interaction with Remark 1 and the degree-1 bypass.** Filters only
//!   ever *remove* offers whose values are pre-step by the existing
//!   snapshot discipline; they never change which values are read, so the
//!   strict inequality of Remark 1 is untouched. In the degree-1 forward
//!   direction the row is read live (nothing has written it this step) and
//!   its live `row_changed_at` / `set_at` are therefore pre-step exact; the
//!   reverse-direction snapshot is taken before the forward offers dirty
//!   row `eu`, watermark filtering included.
//! * [`DpOptions::no_delta_propagation`] restores the emit-everything
//!   behavior for differential tests and the `delta_propagation` bench;
//!   results are bit-identical with the flag on or off.
//!
//! The pre-rework engine (full-row snapshots, per-run table allocation,
//! `O(ncols)` chain scans) is preserved in [`baseline`] as the comparison
//! oracle for differential tests and the speedup benches.
//!
//! # Recurrence at step `k`
//!
//! For every edge `(u, w)` of step `k` (plus the reverse traversal when
//! undirected): the single hop yields candidate `(arrival = k, hops = 1)` for
//! target `w`, and chaining through `w` yields, for every target `v`,
//! candidate `(arrival = ea'[w][v], hops = 1 + hops'[w][v])` — where primed
//! values are **pre-step** values (rows read as continuations are snapshotted
//! first), so two edges of the same step can never chain, enforcing the
//! strict inequality of Remark 1.
//!
//! # Minimal trips
//!
//! A minimal trip is exactly a strict improvement of `ea`: `(u, v, k, a)` is
//! a minimal trip iff `a = ea_k[u][v] < ea_{k+1}[u][v]`. *Proof.* If
//! `ea_{k+1} = ea_k` then the same trip fits in `[k+1, a] ⊊ [k, a]`, so
//! `[k, a]` is not minimal; conversely if `ea_k < ea_{k+1}` then no trip fits
//! in `[k+1, a'] ⊆ [k, a]` with `a' <= a` (it would force
//! `ea_{k+1} <= a < ea_{k+1}`), and no trip fits in `[k, a']` with `a' < a`
//! (it would contradict `ea_k = a`); hence `[k, a]` is minimal. Trips are
//! reported once per step, after all its edges are processed (in ascending
//! `(row, target-column)` order within the step), so the sink always sees
//! final values.

use crate::cancel::CancelToken;
use crate::{TargetSet, Timeline};

/// Sentinel for "no path".
const NONE_EA: u32 = u32::MAX;
/// Sentinel for "value never set" / "no slot".
const NEVER: u32 = u32::MAX;
/// Steps between cancellation polls in the main DP loop: a fired
/// [`CancelToken`] stops a run within this many steps of one tile. Chosen so
/// the poll is amortized to nothing even on degree-1 timelines where a step
/// costs a handful of instructions.
pub const CANCEL_STRIDE: u32 = 512;

/// Receives every minimal trip discovered by the engine.
///
/// `dep` and `arr` are *step indices* of the timeline (window indices for
/// aggregated timelines, timestamp ranks for exact ones); `hops` is the
/// minimum hop count among temporal paths departing exactly at `dep` and
/// arriving exactly at `arr`.
pub trait TripSink {
    /// Called once per minimal trip, in non-increasing `dep` order.
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32);
}

/// A sink that discards trips (useful when only distances are wanted).
pub struct NullSink;

impl TripSink for NullSink {
    fn minimal_trip(&mut self, _: u32, _: u32, _: u32, _: u32, _: u32) {}
}

impl<F: FnMut(u32, u32, u32, u32, u32)> TripSink for F {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self(u, v, dep, arr, hops)
    }
}

/// Engine options.
#[derive(Clone, Copy, Debug, Default)]
pub struct DpOptions {
    /// Accumulate the exact sums needed for mean `d_time` / `d_hops` over all
    /// departure steps (Figure 2, bottom row). Costs one extra `u32` table.
    pub collect_distances: bool,
    /// Force single-edge steps through the general snapshot path instead of
    /// the degree-1 bypass (module docs). Results are bit-identical either
    /// way; the flag exists for differential tests and the
    /// `degree1_fast_path` bench. Ignored by [`baseline`], which has no
    /// fast path.
    pub no_degree1_fast_path: bool,
    /// Disable delta propagation: emit every chain offer at every step
    /// instead of only those whose source-row column changed since the same
    /// (edge, direction) last consumed the row (module docs). Results are
    /// bit-identical either way — skipped offers are provably
    /// non-improving — so the flag exists purely for differential tests and
    /// the `delta_propagation` bench/ablation. Ignored by [`baseline`],
    /// which keeps no watermarks.
    pub no_delta_propagation: bool,
    /// Disable incremental timeline construction in sweeps: build every
    /// scale's [`Timeline`] from scratch off the shared event view instead
    /// of merging adjacent windows of an already-built finer scale
    /// (`Timeline::aggregated_by_merge`; see the timeline module's "Merge
    /// invariants"). The engines themselves ignore this flag — a merged
    /// timeline is field-for-field identical to a scratch-built one, so
    /// they consume either unchanged. Its consumer is the sweep scheduler:
    /// `OccupancyMethod::sweep_scales` builds one `DpOptions` per sweep
    /// (from `OccupancyMethod::no_incremental_timeline`, which CLI
    /// `--no-incremental` and serve `?no_incremental=1` set) and reads this
    /// field to empty the scale merge plan, so every execution knob rides
    /// the same options value. Results are bit-identical either way and
    /// the flag never enters content fingerprints.
    pub no_incremental_timeline: bool,
}

/// Raw distance sums over every `(u, v, departure step)` triple with a finite
/// distance. Durations are counted in *steps* (`arr - dep + 1`), matching the
/// paper's graph-series definition of `d_time`.
#[derive(Clone, Copy, Debug, Default)]
pub struct DistanceSums {
    /// `Σ (arr - dep + 1)` over finite triples.
    pub sum_dtime_steps: i128,
    /// `Σ hops` over the same triples.
    pub sum_dhops: i128,
    /// Number of finite `(u, v, dep)` triples.
    pub finite_triples: i128,
}

/// Summary of one engine run.
#[derive(Clone, Copy, Debug, Default)]
pub struct DpStats {
    /// Number of minimal trips reported.
    pub trips: u64,
    /// Total edge traversals processed (`M`, doubled for undirected).
    pub traversals: u64,
    /// Chain offers actually emitted (after delta filtering; excludes the
    /// per-traversal single-hop offer). The delta bench reports this next
    /// to wall time: it is the work the watermark filters eliminate.
    pub chain_offers: u64,
    /// Snapshot entries appended across all steps (after snapshot-side
    /// delta filtering).
    pub snap_entries: u64,
    /// Steps taken through the degree-1 fast path (single-edge steps with
    /// no slot machinery — the fine-scale tail's dominant step shape).
    /// Always 0 for the baseline engine, which has no such path.
    pub degree1_steps: u64,
    /// Distance sums, if requested.
    pub distances: Option<DistanceSums>,
}

/// One DP table cell, sized to a half cache line so every `offer` touches a
/// single line (the pre-rework layout spread `ea`/`hops`/`set_at` across
/// three parallel arrays — three random accesses per offer).
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct Cell {
    /// Earliest arrival; garbage unless `stamp` matches the run's epoch.
    ea: u32,
    /// Min hops at the earliest arrival.
    hops: u32,
    /// Step at which `(ea, hops)` was installed.
    set_at: u32,
    /// Generation stamp; the cell is live iff `stamp == arena.epoch`.
    stamp: u32,
}

/// One snapshotted frontier entry of a continuation row. `set_at` is the
/// pre-step install step of the value — consumers with a live delta
/// watermark `L` skip entries with `set_at > L` (unchanged since they last
/// consumed the row; module docs). 16 bytes keeps the flat snapshot buffer
/// quarter-cache-line aligned.
#[repr(C)]
#[derive(Clone, Copy, Debug)]
struct Snap {
    col: u32,
    ea: u32,
    hops: u32,
    set_at: u32,
}

/// Reusable per-worker engine state; see the module docs for the epoch and
/// frontier invariants. One arena serves any number of sequential runs; the
/// sweep gives each worker thread its own.
#[derive(Clone, Debug, Default)]
pub struct EngineArena {
    nrows: usize,
    ncols: usize,
    /// Current run's generation stamp; cells are live iff their stamp
    /// matches.
    epoch: u32,
    cells: Vec<Cell>,
    /// Per-row frontier bitmap (one bit per column): bit set = live cell.
    /// Iterated in ascending column order, so snapshots and chain updates
    /// walk rows sequentially — baseline-grade locality when dense, 64
    /// columns skipped per zero word when sparse. 1/128th the size of the
    /// cell table, so clearing it per run costs nothing measurable.
    frontier: Vec<u64>,
    /// Words per frontier row: `ceil(ncols / 64)`.
    words_per_row: usize,
    /// Flat per-step snapshot of frontier entries.
    snap: Vec<Snap>,
    /// Per snapshot slot: `(start, len)` into `snap`.
    slot_bounds: Vec<(u32, u32)>,
    /// Per snapshot slot: the most permissive delta watermark among the
    /// step's consumers of the row (`0` = no consumer, `NEVER` = some
    /// consumer needs everything). Snapshots are filtered to entries with
    /// `set_at <= slot_maxlast[slot]`.
    slot_maxlast: Vec<u32>,
    /// node -> snapshot slot (`NEVER` = none), plus the slotted-node list.
    slot_of: Vec<u32>,
    slotted: Vec<u32>,
    /// `(cell index, pre-step ea)` of cells first touched in the current
    /// step — the pre-delta dirty set, used only under
    /// [`DpOptions::no_delta_propagation`] (it needs an `O(n log n)`
    /// per-step sort to report trips in canonical order).
    dirty: Vec<(usize, u32)>,
    /// The delta path's dirty-column set: one `words_per_row` bitmap tile
    /// per snapshot slot, bit set iff the cell changed this step. Iterating
    /// set bits (slots in ascending node order) reproduces the canonical
    /// ascending `(row, col)` report order with no sort at all.
    dirty_bits: Vec<u64>,
    /// Same geometry: bit set iff the cell's `ea` strictly improved this
    /// step — exactly the minimal-trip condition, so trip reporting is a
    /// walk of these bits.
    ea_bits: Vec<u64>,
    /// Reporting scratch: the step's `(node, slot)` pairs, sorted ascending
    /// by node before the report walk.
    report_order: Vec<(u32, u32)>,
    /// Per row: step of the row's most recent cell change (live iff
    /// `row_changed_stamp` matches the epoch; dead = never changed this
    /// run). Equals the minimum `set_at` over the row's live cells, so a
    /// consumer watermark `L < row_changed_at[row]` proves the whole row
    /// unchanged since that consumer's last visit.
    row_changed_at: Vec<u32>,
    row_changed_stamp: Vec<u32>,
    /// Delta watermarks, indexed `2 * pair_id + direction` over the
    /// timeline's distinct edge pairs: the step at which that (edge,
    /// direction) last consumed its continuation row (live iff `wm_stamp`
    /// matches the epoch; dead = never fired this run). Sized for the
    /// largest timeline seen; stale stamps from other timelines/scales are
    /// dead by the epoch invariant, exactly like cells.
    wm: Vec<u32>,
    wm_stamp: Vec<u32>,
}

impl EngineArena {
    /// An empty arena; tables materialize on first use and are reused when
    /// dimensions repeat (the whole point: a sweep's scales all share
    /// `n × |targets|`).
    pub fn new() -> Self {
        Self::default()
    }

    /// Readies the arena for a run over an `nrows × ncols` table.
    ///
    /// Geometry changes reuse the cell buffer whenever it is large enough:
    /// a stale stamp is always from a past epoch, so cells re-read under a
    /// different `(nrows, ncols)` mapping are dead regardless of which
    /// `(row, col)` wrote them. Workers of a tiled sweep alternate between
    /// full tiles and the remainder tile, and must not reallocate per item.
    fn prepare(&mut self, nrows: usize, ncols: usize) {
        let n_cells = nrows.checked_mul(ncols).expect("state table size overflow");
        let mut epoch_restarted = false;
        if n_cells > self.cells.len() {
            // grow: fresh allocation; ea/hops/set_at are garbage until
            // stamped, only `stamp` needs real init
            self.cells = vec![Cell { ea: NONE_EA, hops: 0, set_at: NEVER, stamp: 0 }; n_cells];
            self.epoch = 1;
            epoch_restarted = true;
        } else if self.epoch == u32::MAX {
            for cell in &mut self.cells {
                cell.stamp = 0;
            }
            self.epoch = 1;
            epoch_restarted = true;
        } else {
            self.epoch += 1;
        }
        if epoch_restarted {
            // every stamped side table restarts with the epoch counter, or
            // stale entries from before the restart would read as live
            self.wm_stamp.fill(0);
            self.row_changed_stamp.fill(0);
        }
        if self.nrows != nrows || self.ncols != ncols {
            self.words_per_row = ncols.div_ceil(64);
            let words = nrows * self.words_per_row;
            if words > self.frontier.len() {
                self.frontier.resize(words, 0);
            }
            if nrows > self.slot_of.len() {
                self.slot_of.resize(nrows, NEVER);
            }
            if nrows > self.row_changed_stamp.len() {
                self.row_changed_at.resize(nrows, 0);
                self.row_changed_stamp.resize(nrows, 0);
            }
            self.nrows = nrows;
            self.ncols = ncols;
        }
        self.frontier[..nrows * self.words_per_row].fill(0);
        self.slotted.clear();
        self.slot_bounds.clear();
        self.slot_maxlast.clear();
        self.snap.clear();
        self.dirty.clear();
        // normally already zero (the report walk clears the words it
        // visits), but a sink panic can abandon a run mid-step
        self.dirty_bits.fill(0);
        self.ea_bits.fill(0);
        self.report_order.clear();
        // normally all NEVER already (step 5 of run releases slots), but a
        // sink panic caught by the caller can abandon a run mid-step and
        // leave stale slot indices behind; O(nrows) is noise next to the
        // table itself
        self.slot_of.fill(NEVER);
    }

    fn run(
        &mut self,
        timeline: &Timeline,
        targets: &TargetSet,
        col_start: u32,
        sink: &mut impl TripSink,
        options: DpOptions,
        cancel: Option<&CancelToken>,
    ) -> DpStats {
        // Field-split the arena so the hot loops can hold a shared borrow of
        // the snapshot buffer while mutating cells/frontier/dirty.
        let EngineArena {
            nrows,
            ncols,
            epoch,
            cells,
            frontier,
            words_per_row,
            snap,
            slot_bounds,
            slot_maxlast,
            slot_of,
            slotted,
            dirty,
            dirty_bits,
            ea_bits,
            report_order,
            row_changed_at,
            row_changed_stamp,
            wm,
            wm_stamp,
        } = self;
        let (nrows, ncols, epoch, words_per_row) = (*nrows, *ncols, *epoch, *words_per_row);
        let undirected = !timeline.is_directed();
        let collect = options.collect_distances;
        let degree1 = !options.no_degree1_fast_path;
        let delta = !options.no_delta_propagation;
        // Watermark storage: two slots (one per direction) for each distinct
        // edge pair of this timeline. Capacity is kept across runs; entries
        // stamped by earlier runs — including runs over other timelines,
        // whose pair ids mean something else — are dead by the epoch check.
        let wm_len = timeline.distinct_pairs() as usize * 2;
        if wm.len() < wm_len {
            wm.resize(wm_len, 0);
            wm_stamp.resize(wm_len, 0);
        }

        /// The delta watermark of one (edge, direction): the step at which
        /// it last consumed its continuation row, or `NEVER` when it has not
        /// fired this run (or delta propagation is off) — `NEVER` passes
        /// every `set_at <= last` filter, i.e. "offer everything".
        #[inline(always)]
        fn wm_last(wm: &[u32], wm_stamp: &[u32], epoch: u32, idx: usize, delta: bool) -> u32 {
            if delta && wm_stamp[idx] == epoch {
                wm[idx]
            } else {
                NEVER
            }
        }

        /// The step of `row`'s most recent change, or `NEVER` when the row
        /// has not changed this run (its frontier is then empty anyway).
        #[inline(always)]
        fn row_mark(at: &[u32], stamp: &[u32], epoch: u32, row: usize) -> u32 {
            if stamp[row] == epoch {
                at[row]
            } else {
                NEVER
            }
        }
        // Tile-local column of node `v`, if `v` is a destination inside
        // `[col_start, col_start + ncols)` — one array read plus a wrapping
        // range compare on the hot path.
        let col_end = col_start as usize + ncols;
        let local_col = |v: u32| -> Option<u32> {
            match targets.col_of(v) {
                Some(c) if (c as usize) >= col_start as usize && (c as usize) < col_end => {
                    Some(c - col_start)
                }
                _ => None,
            }
        };
        let mut sums = DistanceSums::default();
        let mut trips = 0u64;
        let mut traversals = 0u64;
        let mut chain_offers = 0u64;
        let mut snap_entries = 0u64;
        let mut degree1_steps = 0u64;

        /// The DP update for one candidate `(arrival, hops)` at cell `idx`
        /// (= row `row_node` × column `col`) during step `k`. A free fn over
        /// the split-out arena parts so callers can keep disjoint borrows.
        ///
        /// Change tracking is dual-mode (`delta`): the delta path records
        /// changes in the caller's per-slot bitmaps at `bit_base`
        /// (idempotent ORs; `ea_bits` additionally marks strict `ea`
        /// improvements — the minimal-trip condition), the pre-delta path
        /// pushes `(idx, pre-step ea)` onto the sorted-later `dirty` vec.
        /// `delta` is constant within a run, so the branches predict
        /// perfectly.
        #[allow(clippy::too_many_arguments)] // hot inner call; a params struct costs moves
        #[inline(always)]
        fn offer(
            cells: &mut [Cell],
            frontier: &mut [u64],
            words_per_row: usize,
            dirty: &mut Vec<(usize, u32)>,
            dirty_bits: &mut [u64],
            ea_bits: &mut [u64],
            delta: bool,
            bit_base: usize,
            epoch: u32,
            idx: usize,
            row_node: u32,
            col: u32,
            k: u32,
            arr: u32,
            h: u32,
            collect: bool,
            sums: &mut DistanceSums,
        ) {
            let cell = &mut cells[idx];
            let live = cell.stamp == epoch;
            let cur = if live { cell.ea } else { NONE_EA };
            if arr < cur {
                if !live {
                    // first touch this run: enters the frontier
                    cell.stamp = epoch;
                    cell.set_at = k;
                    frontier[row_node as usize * words_per_row + (col as usize >> 6)] |=
                        1u64 << (col & 63);
                    if !delta {
                        dirty.push((idx, NONE_EA));
                    }
                } else if cell.set_at != k {
                    if collect {
                        flush_distances(cell, k, sums);
                    }
                    if !delta {
                        dirty.push((idx, cur));
                    }
                    cell.set_at = k;
                }
                cell.ea = arr;
                cell.hops = h;
                if delta {
                    let w = bit_base + (col as usize >> 6);
                    let bit = 1u64 << (col & 63);
                    dirty_bits[w] |= bit;
                    ea_bits[w] |= bit;
                }
            } else if arr == cur && arr != NONE_EA && h < cell.hops {
                if cell.set_at != k {
                    if collect {
                        flush_distances(cell, k, sums);
                    }
                    if !delta {
                        dirty.push((idx, cur));
                    }
                    cell.set_at = k;
                }
                cell.hops = h;
                if delta {
                    dirty_bits[bit_base + (col as usize >> 6)] |= 1u64 << (col & 63);
                }
            }
        }

        /// Flushes the distance contribution of a live cell's value, valid
        /// for departure steps `[new_k + 1, set_at]`, before replacement.
        #[inline]
        fn flush_distances(cell: &Cell, new_k: u32, sums: &mut DistanceSums) {
            debug_assert!(cell.ea != NONE_EA);
            let hi = cell.set_at as i128; // inclusive
            let lo = new_k as i128 + 1; // inclusive
            if hi < lo {
                return;
            }
            let cnt = hi - lo + 1;
            // Σ_{t=lo..hi} (a - t + 1) = cnt·(a + 1) - Σ t
            let sum_t = (lo + hi) * cnt / 2;
            sums.sum_dtime_steps += cnt * (cell.ea as i128 + 1) - sum_t;
            sums.sum_dhops += cnt * cell.hops as i128;
            sums.finite_triples += cnt;
        }

        // Cooperative cancellation: polled once per CANCEL_STRIDE steps —
        // coarse enough to stay invisible in the hot loop, fine enough that
        // an abandoned sweep stops in bounded time. Breaking between steps
        // leaves the arena in the same state a caught sink panic would;
        // `prepare` resets it, and the partial stats are discarded upstream.
        let mut cancel_countdown = CANCEL_STRIDE;
        for step in timeline.steps_desc() {
            if let Some(token) = cancel {
                cancel_countdown -= 1;
                if cancel_countdown == 0 {
                    cancel_countdown = CANCEL_STRIDE;
                    if token.is_cancelled() {
                        break;
                    }
                }
            }
            let k = step.index;

            if degree1 && step.len() == 1 {
                // Degree-1 fast path (module docs): one edge `(eu, ew)`,
                // no slot machinery. Direction `eu -> ew` writes only row
                // `eu`, so row `ew` stays pre-step and is read live; for the
                // undirected reverse direction, row `eu`'s frontier is
                // snapshotted (one flat append) *before* the forward
                // direction dirties it — the strict inequality of Remark 1,
                // with half the snapshot writes and zero bookkeeping.
                // Delta propagation applies per direction: a continuation
                // row unchanged since the direction's last visit is skipped
                // outright (for the reverse direction that skips building
                // the snapshot at all — the tail's dominant cost), and a
                // changed row only offers the entries installed since.
                let (eu, ew) = (step.src[0], step.dst[0]);
                degree1_steps += 1;
                debug_assert_ne!(eu, ew, "streams never carry self-loops");
                debug_assert!(snap.is_empty() && slotted.is_empty());
                if delta {
                    // fixed dirty-bitmap slots: row eu -> 0, row ew -> 1
                    let need = 2 * words_per_row;
                    if dirty_bits.len() < need {
                        dirty_bits.resize(need, 0);
                        ea_bits.resize(need, 0);
                    }
                    report_order.push((eu, 0));
                    if undirected {
                        report_order.push((ew, 1));
                    }
                }
                let wi_fwd = step.pair[0] as usize * 2;
                let last_fwd = wm_last(wm, wm_stamp, epoch, wi_fwd, delta);
                let last_rev = if undirected {
                    wm_last(wm, wm_stamp, epoch, wi_fwd + 1, delta)
                } else {
                    0
                };
                if delta {
                    wm[wi_fwd] = k;
                    wm_stamp[wi_fwd] = epoch;
                    if undirected {
                        wm[wi_fwd + 1] = k;
                        wm_stamp[wi_fwd + 1] = epoch;
                    }
                }
                if undirected
                    && row_mark(row_changed_at, row_changed_stamp, epoch, eu as usize)
                        <= last_rev
                {
                    let row = eu as usize * ncols;
                    let words = &frontier[eu as usize * words_per_row..][..words_per_row];
                    for (wi, &word) in words.iter().enumerate() {
                        let mut bits = word;
                        while bits != 0 {
                            let c = (wi as u32) * 64 + bits.trailing_zeros();
                            bits &= bits - 1;
                            let cell = &cells[row + c as usize];
                            if cell.set_at <= last_rev {
                                snap.push(Snap {
                                    col: c,
                                    ea: cell.ea,
                                    hops: cell.hops,
                                    set_at: cell.set_at,
                                });
                            }
                        }
                    }
                }
                // forward direction eu -> ew: chains over row ew, read live
                {
                    traversals += 1;
                    let row = eu as usize * ncols;
                    if let Some(c) = local_col(ew) {
                        offer(
                            cells,
                            frontier,
                            words_per_row,
                            dirty,
                            dirty_bits,
                            ea_bits,
                            delta,
                            0,
                            epoch,
                            row + c as usize,
                            eu,
                            c,
                            k,
                            k,
                            1,
                            collect,
                            &mut sums,
                        );
                    }
                    if row_mark(row_changed_at, row_changed_stamp, epoch, ew as usize)
                        <= last_fwd
                    {
                        let diag = local_col(eu).unwrap_or(u32::MAX);
                        let row_w = ew as usize * ncols;
                        let fw = ew as usize * words_per_row;
                        for wi in 0..words_per_row {
                            // copy the word: offers touch row eu's words
                            // only, never row ew's, so each copy is the
                            // pre-step value
                            let mut bits = frontier[fw + wi];
                            while bits != 0 {
                                let c = (wi as u32) * 64 + bits.trailing_zeros();
                                bits &= bits - 1;
                                if c == diag {
                                    continue;
                                }
                                let (s_ea, s_hops, s_set_at) = {
                                    let cell = &cells[row_w + c as usize];
                                    (cell.ea, cell.hops, cell.set_at)
                                };
                                if s_set_at > last_fwd {
                                    continue;
                                }
                                chain_offers += 1;
                                offer(
                                    cells,
                                    frontier,
                                    words_per_row,
                                    dirty,
                                    dirty_bits,
                                    ea_bits,
                                    delta,
                                    0,
                                    epoch,
                                    row + c as usize,
                                    eu,
                                    c,
                                    k,
                                    s_ea,
                                    s_hops + 1,
                                    collect,
                                    &mut sums,
                                );
                            }
                        }
                    }
                }
                // reverse direction ew -> eu: chains over the (already
                // delta-filtered) snapshot
                if undirected {
                    traversals += 1;
                    let row = ew as usize * ncols;
                    if let Some(c) = local_col(eu) {
                        offer(
                            cells,
                            frontier,
                            words_per_row,
                            dirty,
                            dirty_bits,
                            ea_bits,
                            delta,
                            words_per_row,
                            epoch,
                            row + c as usize,
                            ew,
                            c,
                            k,
                            k,
                            1,
                            collect,
                            &mut sums,
                        );
                    }
                    let diag = local_col(ew).unwrap_or(u32::MAX);
                    for s in snap.iter() {
                        if s.col == diag {
                            continue;
                        }
                        chain_offers += 1;
                        offer(
                            cells,
                            frontier,
                            words_per_row,
                            dirty,
                            dirty_bits,
                            ea_bits,
                            delta,
                            words_per_row,
                            epoch,
                            row + s.col as usize,
                            ew,
                            s.col,
                            k,
                            s.ea,
                            s.hops + 1,
                            collect,
                            &mut sums,
                        );
                    }
                }
            } else {
                // 1. Assign snapshot slots to every endpoint of the step. Reads
                //    go through edge heads, but in a directed timeline a tail
                //    `u` can be the head of another edge of the same step, so
                //    both endpoints are slotted uniformly.
                debug_assert!(slotted.is_empty());
                for &node in step.src.iter().chain(step.dst.iter()) {
                    if slot_of[node as usize] == NEVER {
                        let slot = slotted.len() as u32;
                        slot_of[node as usize] = slot;
                        slotted.push(node);
                        // 0 = "no consumer yet": live watermarks and row marks
                        // at step k are always >= k + 1 >= 1, so 0 filters
                        // everything out
                        slot_maxlast.push(if delta { 0 } else { NEVER });
                        if delta {
                            report_order.push((node, slot));
                        }
                    }
                }
                if delta {
                    let need = slotted.len() * words_per_row;
                    if dirty_bits.len() < need {
                        dirty_bits.resize(need, 0);
                        ea_bits.resize(need, 0);
                    }
                }
                // 1b. (delta) Per slot, the most permissive consumer watermark:
                //     the snapshot below keeps exactly the entries at least one
                //     of the step's consuming directions still needs.
                if delta {
                    for e in 0..step.len() {
                        let wi = step.pair[e] as usize * 2;
                        let heads: [(usize, u32); 2] =
                            [(wi, step.dst[e]), (wi + 1, step.src[e])];
                        let nheads = if undirected { 2 } else { 1 };
                        for &(wi, head) in &heads[..nheads] {
                            let last = wm_last(wm, wm_stamp, epoch, wi, true);
                            let slot = slot_of[head as usize] as usize;
                            slot_maxlast[slot] = slot_maxlast[slot].max(last);
                        }
                    }
                }
                // 2. Snapshot the pre-step frontier of every slotted row — only
                //    pre-step values are ever read, which is exactly the strict
                //    inequality of Remark 1 — filtered to the entries installed
                //    since some consumer's last visit. A row whose most recent
                //    change predates every consumer's watermark skips the scan
                //    outright (its entries all have `set_at > maxlast`).
                for (si, &node) in slotted.iter().enumerate() {
                    let start = snap.len() as u32;
                    let maxlast = slot_maxlast[si];
                    if row_mark(row_changed_at, row_changed_stamp, epoch, node as usize)
                        <= maxlast
                    {
                        let row = node as usize * ncols;
                        let words = &frontier[node as usize * words_per_row..][..words_per_row];
                        for (wi, &word) in words.iter().enumerate() {
                            let mut bits = word;
                            while bits != 0 {
                                let c = (wi as u32) * 64 + bits.trailing_zeros();
                                bits &= bits - 1;
                                let cell = &cells[row + c as usize];
                                if cell.set_at <= maxlast {
                                    snap.push(Snap {
                                        col: c,
                                        ea: cell.ea,
                                        hops: cell.hops,
                                        set_at: cell.set_at,
                                    });
                                }
                            }
                        }
                    }
                    slot_bounds.push((start, snap.len() as u32 - start));
                }

                // 3. Process every traversal of the step against the snapshots,
                //    each direction filtering by its own watermark (the shared
                //    snapshot was filtered by the *max* over consumers).
                for e in 0..step.len() {
                    let (eu, ew) = (step.src[e], step.dst[e]);
                    let wi = step.pair[e] as usize * 2;
                    let dirs: [(u32, u32, usize); 2] = [(eu, ew, wi), (ew, eu, wi + 1)];
                    let ndirs = if undirected { 2 } else { 1 };
                    for &(u, w, wi) in &dirs[..ndirs] {
                        traversals += 1;
                        let row = u as usize * ncols;
                        // dirty-bitmap tile of the written row (= row u)
                        let bit_base = slot_of[u as usize] as usize * words_per_row;
                        // single hop: u -> w at step k (never delta-filtered —
                        // its candidate `(k, 1)` is new every step)
                        if let Some(c) = local_col(w) {
                            offer(
                                cells,
                                frontier,
                                words_per_row,
                                dirty,
                                dirty_bits,
                                ea_bits,
                                delta,
                                bit_base,
                                epoch,
                                row + c as usize,
                                u,
                                c,
                                k,
                                k,
                                1,
                                collect,
                                &mut sums,
                            );
                        }
                        let last = wm_last(wm, wm_stamp, epoch, wi, delta);
                        if delta {
                            wm[wi] = k;
                            wm_stamp[wi] = epoch;
                        }
                        // chain: u -(k)-> w, then w's pre-step frontier entries
                        // changed since this direction last consumed them
                        let slot = slot_of[w as usize] as usize;
                        let (start, len) = slot_bounds[slot];
                        // diagonal column to skip (no u -> u trips); NONE_COL
                        // sentinel can never equal a stored column
                        let diag = local_col(u).unwrap_or(u32::MAX);
                        for s in &snap[start as usize..(start + len) as usize] {
                            if s.col == diag || s.set_at > last {
                                continue;
                            }
                            chain_offers += 1;
                            offer(
                                cells,
                                frontier,
                                words_per_row,
                                dirty,
                                dirty_bits,
                                ea_bits,
                                delta,
                                bit_base,
                                epoch,
                                row + s.col as usize,
                                u,
                                s.col,
                                k,
                                s.ea,
                                s.hops + 1,
                                collect,
                                &mut sums,
                            );
                        }
                    }
                }
            }

            // 4. Report the minimal trips of this step with final values,
            //    in ascending (row, target-column) order — deterministic
            //    regardless of frontier insertion order. (Equal to (u, v)
            //    order when the TargetSet's columns are node-sorted, which
            //    all built-in constructors guarantee except a caller-ordered
            //    TargetSet::from_nodes.)
            if delta {
                // Walk the per-slot dirty bitmaps with slots in ascending
                // node order: set bits ascend within a row, so the
                // canonical order falls out with no per-step sort (the
                // pre-delta path below pays an O(changes log changes) sort
                // here — the dominant cost at trip-dense fine scales). An
                // `ea_bits` bit is set iff the cell's ea strictly improved
                // this step — exactly the minimal-trip condition — while
                // `dirty_bits` (any change, hops ties included) feeds the
                // per-row change marks the delta filters read.
                report_order.sort_unstable();
                for &(node, slot) in report_order.iter() {
                    let base = slot as usize * words_per_row;
                    let row = node as usize * ncols;
                    let mut row_changed = false;
                    for (wi, dirty_word) in
                        dirty_bits[base..base + words_per_row].iter_mut().enumerate()
                    {
                        if *dirty_word == 0 {
                            continue;
                        }
                        *dirty_word = 0;
                        row_changed = true;
                        let ea_word = &mut ea_bits[base + wi];
                        let mut bits = *ea_word;
                        *ea_word = 0;
                        while bits != 0 {
                            let c = (wi as u32) * 64 + bits.trailing_zeros();
                            bits &= bits - 1;
                            let cell = &cells[row + c as usize];
                            let v = targets.node_of(col_start + c);
                            sink.minimal_trip(node, v, k, cell.ea, cell.hops);
                            trips += 1;
                        }
                    }
                    if row_changed {
                        row_changed_at[node as usize] = k;
                        row_changed_stamp[node as usize] = epoch;
                    }
                }
                report_order.clear();
            } else {
                // pre-delta path: sort the flat dirty list into canonical
                // order, report strict ea improvements vs the pre-step value
                dirty.sort_unstable_by_key(|&(idx, _)| idx);
                for &(idx, pre_ea) in dirty.iter() {
                    let cell = &cells[idx];
                    if cell.ea < pre_ea {
                        let u = (idx / ncols) as u32;
                        let v = targets.node_of(col_start + (idx % ncols) as u32);
                        sink.minimal_trip(u, v, k, cell.ea, cell.hops);
                        trips += 1;
                    }
                }
                dirty.clear();
            }

            // 5. Release snapshot slots and buffers (capacity kept).
            snap_entries += snap.len() as u64;
            for &node in slotted.iter() {
                slot_of[node as usize] = NEVER;
            }
            slotted.clear();
            slot_bounds.clear();
            slot_maxlast.clear();
            snap.clear();
        }

        // Final distance flush: each surviving value is valid for departure
        // steps [0, set_at]. Only frontier cells can carry finite values.
        let distances = if collect {
            for node in 0..nrows {
                let row = node * ncols;
                let words = &frontier[node * words_per_row..][..words_per_row];
                for (wi, &word) in words.iter().enumerate() {
                    let mut bits = word;
                    while bits != 0 {
                        let c = (wi as u32) * 64 + bits.trailing_zeros();
                        bits &= bits - 1;
                        let cell = &cells[row + c as usize];
                        debug_assert!(cell.ea != NONE_EA && cell.stamp == epoch);
                        let hi = cell.set_at as i128;
                        let cnt = hi + 1; // steps 0..=hi
                        let sum_t = hi * (hi + 1) / 2;
                        sums.sum_dtime_steps += cnt * (cell.ea as i128 + 1) - sum_t;
                        sums.sum_dhops += cnt * cell.hops as i128;
                        sums.finite_triples += cnt;
                    }
                }
            }
            Some(sums)
        } else {
            None
        };

        DpStats { trips, traversals, chain_offers, snap_entries, degree1_steps, distances }
    }
}

/// Runs the backward DP over `timeline`, reporting every minimal trip whose
/// destination lies in `targets` to `sink`. Allocates a fresh arena; sweeps
/// should hold an [`EngineArena`] per worker and call
/// [`earliest_arrival_dp_in`].
///
/// Complexity: `O(|targets| · M)` time worst-case — with the frontier
/// pruning, each traversal pays for *reachable* columns only — and
/// `O(n · |targets|)` memory, where `M` is the total edge count of the
/// timeline.
pub fn earliest_arrival_dp(
    timeline: &Timeline,
    targets: &TargetSet,
    sink: &mut impl TripSink,
    options: DpOptions,
) -> DpStats {
    let mut arena = EngineArena::new();
    earliest_arrival_dp_in(&mut arena, timeline, targets, sink, options)
}

/// [`earliest_arrival_dp`] against caller-owned state: the arena's tables
/// are reused (epoch-stamped, not re-zeroed) when consecutive runs share
/// dimensions — the hot configuration of the Δ sweep.
pub fn earliest_arrival_dp_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    sink: &mut impl TripSink,
    options: DpOptions,
) -> DpStats {
    earliest_arrival_dp_tile_in(arena, timeline, targets, 0, targets.len(), sink, options)
}

/// Runs the backward DP over a contiguous *column range* of `targets`:
/// destinations `targets.node_of(c)` for `c` in
/// `col_start .. col_start + col_len`. Because the recurrence never reads
/// across columns, tile runs are completely independent: the per-tile trips
/// (reported with their global node ids), distance sums, and histograms
/// partition the untiled run exactly, and merging tiles in ascending
/// `col_start` order reproduces its output bit for bit. Arena state is
/// sized `n × col_len` — the tiled sweep's memory/cache lever.
///
/// `DpStats::traversals` counts every edge traversal of the timeline and is
/// therefore repeated per tile, not partitioned.
///
/// # Panics
/// Panics if the range is empty or exceeds `targets.len()`.
pub fn earliest_arrival_dp_tile_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
    sink: &mut impl TripSink,
    options: DpOptions,
) -> DpStats {
    earliest_arrival_dp_tile_cancel_in(
        arena, timeline, targets, col_start, col_len, sink, options, None,
    )
}

/// [`earliest_arrival_dp_tile_in`] with a cooperative [`CancelToken`],
/// polled every [`CANCEL_STRIDE`] steps. A `None` (or never-fired) token
/// takes the exact same code path and produces bit-identical output; once
/// the token fires the run stops within one stride, its partial sink output
/// and stats are meaningless, and the caller must discard them. The arena
/// stays reusable either way.
#[allow(clippy::too_many_arguments)] // mirror of the tile entry + one token
pub fn earliest_arrival_dp_tile_cancel_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
    sink: &mut impl TripSink,
    options: DpOptions,
    cancel: Option<&CancelToken>,
) -> DpStats {
    assert!(col_len > 0, "empty target tile");
    assert!(
        col_start as usize + col_len <= targets.len(),
        "tile [{col_start}, {col_start}+{col_len}) out of range for {} targets",
        targets.len()
    );
    arena.prepare(timeline.n() as usize, col_len);
    arena.run(timeline, targets, col_start, sink, options, cancel)
}

pub mod baseline {
    //! The pre-rework engine: fresh `O(n·|targets|)` tables per run,
    //! full-row `copy_from_slice` snapshots, `O(ncols)` chain scans.
    //!
    //! Kept as (a) the oracle for differential property tests of the
    //! frontier-pruned engine and (b) the baseline side of the speedup
    //! benches in `crates/bench` — `BENCH_sweep.json` tracks the ratio.

    use super::{DistanceSums, DpOptions, DpStats, TripSink, NEVER, NONE_EA};
    use crate::{TargetSet, Timeline};

    /// [`super::earliest_arrival_dp`]'s behavior-identical slow twin.
    pub fn earliest_arrival_dp(
        timeline: &Timeline,
        targets: &TargetSet,
        sink: &mut impl TripSink,
        options: DpOptions,
    ) -> DpStats {
        Engine::new(timeline, targets, options).run(timeline, sink)
    }

    struct Engine<'a> {
        targets: &'a TargetSet,
        ncols: usize,
        ea: Vec<u32>,
        hops: Vec<u32>,
        set_at: Vec<u32>,
        scratch_ea: Vec<u32>,
        scratch_hops: Vec<u32>,
        slot_of: Vec<u32>,
        slotted: Vec<u32>,
        dirty: Vec<(usize, u32)>,
        collect_distances: bool,
        sums: DistanceSums,
    }

    impl<'a> Engine<'a> {
        fn new(timeline: &Timeline, targets: &'a TargetSet, options: DpOptions) -> Self {
            let n = timeline.n() as usize;
            let ncols = targets.len();
            let cells = n.checked_mul(ncols).expect("state table size overflow");
            Engine {
                targets,
                ncols,
                ea: vec![NONE_EA; cells],
                hops: vec![0; cells],
                set_at: vec![NEVER; cells],
                scratch_ea: Vec::new(),
                scratch_hops: Vec::new(),
                slot_of: vec![NEVER; n],
                slotted: Vec::new(),
                dirty: Vec::new(),
                collect_distances: options.collect_distances,
                sums: DistanceSums::default(),
            }
        }

        #[inline]
        fn flush_distances(&mut self, idx: usize, new_k: u32) {
            if !self.collect_distances {
                return;
            }
            let a = self.ea[idx];
            if a == NONE_EA {
                return;
            }
            let hi = self.set_at[idx] as i128;
            let lo = new_k as i128 + 1;
            if hi < lo {
                return;
            }
            let cnt = hi - lo + 1;
            let sum_t = (lo + hi) * cnt / 2;
            self.sums.sum_dtime_steps += cnt * (a as i128 + 1) - sum_t;
            self.sums.sum_dhops += cnt * self.hops[idx] as i128;
            self.sums.finite_triples += cnt;
        }

        #[inline]
        fn offer(&mut self, idx: usize, k: u32, arr: u32, h: u32) {
            let cur = self.ea[idx];
            if arr < cur {
                if self.set_at[idx] != k {
                    self.flush_distances(idx, k);
                    self.dirty.push((idx, cur));
                    self.set_at[idx] = k;
                }
                self.ea[idx] = arr;
                self.hops[idx] = h;
            } else if arr == cur && arr != NONE_EA && h < self.hops[idx] {
                if self.set_at[idx] != k {
                    self.flush_distances(idx, k);
                    self.dirty.push((idx, cur));
                    self.set_at[idx] = k;
                }
                self.hops[idx] = h;
            }
        }

        fn run(mut self, timeline: &Timeline, sink: &mut impl TripSink) -> DpStats {
            let undirected = !timeline.is_directed();
            let ncols = self.ncols;
            let mut trips = 0u64;
            let mut traversals = 0u64;
            let mut chain_offers = 0u64;
            let mut snap_entries = 0u64;

            for step in timeline.steps_desc() {
                let k = step.index;
                debug_assert!(self.slotted.is_empty());
                for &node in step.src.iter().chain(step.dst.iter()) {
                    if self.slot_of[node as usize] == NEVER {
                        let slot = self.slotted.len();
                        self.slot_of[node as usize] = slot as u32;
                        self.slotted.push(node);
                        let need = (slot + 1) * ncols;
                        if self.scratch_ea.len() < need {
                            self.scratch_ea.resize(need, NONE_EA);
                            self.scratch_hops.resize(need, 0);
                        }
                        let src = node as usize * ncols;
                        self.scratch_ea[slot * ncols..need]
                            .copy_from_slice(&self.ea[src..src + ncols]);
                        self.scratch_hops[slot * ncols..need]
                            .copy_from_slice(&self.hops[src..src + ncols]);
                        snap_entries += ncols as u64;
                    }
                }

                for e in 0..step.len() {
                    let (eu, ew) = (step.src[e], step.dst[e]);
                    let dirs: [(u32, u32); 2] = [(eu, ew), (ew, eu)];
                    let ndirs = if undirected { 2 } else { 1 };
                    for &(u, w) in &dirs[..ndirs] {
                        traversals += 1;
                        let row = u as usize * ncols;
                        if let Some(c) = self.targets.col_of(w) {
                            self.offer(row + c as usize, k, k, 1);
                        }
                        let slot = self.slot_of[w as usize] as usize;
                        let su_col = self.targets.col_of(u);
                        let base = slot * ncols;
                        for c in 0..ncols {
                            let a = self.scratch_ea[base + c];
                            if a == NONE_EA {
                                continue;
                            }
                            if su_col == Some(c as u32) {
                                continue;
                            }
                            chain_offers += 1;
                            let h = 1 + self.scratch_hops[base + c];
                            self.offer(row + c, k, a, h);
                        }
                    }
                }

                self.dirty.sort_unstable_by_key(|&(idx, _)| idx);
                for &(idx, pre_ea) in &self.dirty {
                    let a = self.ea[idx];
                    if a < pre_ea {
                        let u = (idx / ncols) as u32;
                        let v = self.targets.node_of((idx % ncols) as u32);
                        sink.minimal_trip(u, v, k, a, self.hops[idx]);
                        trips += 1;
                    }
                }
                self.dirty.clear();

                for &node in &self.slotted {
                    self.slot_of[node as usize] = NEVER;
                }
                self.slotted.clear();
            }

            let distances = if self.collect_distances {
                for idx in 0..self.ea.len() {
                    let a = self.ea[idx];
                    if a == NONE_EA {
                        continue;
                    }
                    let hi = self.set_at[idx] as i128;
                    let cnt = hi + 1;
                    let sum_t = hi * (hi + 1) / 2;
                    self.sums.sum_dtime_steps += cnt * (a as i128 + 1) - sum_t;
                    self.sums.sum_dhops += cnt * self.hops[idx] as i128;
                    self.sums.finite_triples += cnt;
                }
                Some(self.sums)
            } else {
                None
            };

            DpStats {
                trips,
                traversals,
                chain_offers,
                snap_entries,
                degree1_steps: 0,
                distances,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::Directedness;

    /// Collects trips into a vector for inspection.
    #[derive(Default)]
    struct Collect(Vec<(u32, u32, u32, u32, u32)>);

    impl TripSink for Collect {
        fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
            self.0.push((u, v, dep, arr, hops));
        }
    }

    fn run(
        stream_text: &str,
        directedness: Directedness,
        k: u64,
    ) -> Vec<(u32, u32, u32, u32, u32)> {
        let s = saturn_linkstream::io::read_str(stream_text, directedness).unwrap();
        let t = Timeline::aggregated(&s, k);
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(t.n()), &mut sink, DpOptions::default());
        let mut out = sink.0;
        out.sort_unstable();
        out
    }

    #[test]
    fn single_link_single_trip() {
        // a-b at t=0; a-c at t=5
        let trips = run("a b 0\na c 5\n", Directedness::Undirected, 5);
        // Δ = 1: a-b in window 0 (both directions), a-c in window 4
        // trips: (a,b,0,0,1), (b,a,0,0,1), (a,c,4,4,1), (c,a,4,4,1), and
        // b -> c via a: edge ab at w0, ac at w4: b dep 0 arr 4 hops 2
        // c -> b: needs ca before ab: impossible.
        assert!(trips.contains(&(0, 1, 0, 0, 1)));
        assert!(trips.contains(&(1, 0, 0, 0, 1)));
        assert!(trips.contains(&(0, 2, 4, 4, 1)));
        assert!(trips.contains(&(1, 2, 0, 4, 2)));
        assert!(!trips.iter().any(|&(u, v, ..)| u == 2 && v == 1));
    }

    #[test]
    fn same_window_links_cannot_chain() {
        // Both links in one window (K = 1): no two-hop path (Remark 1 / Fig 1).
        let trips = run("a b 0\nb c 5\n", Directedness::Undirected, 1);
        // only the four single-link trips inside window 0
        assert_eq!(trips.len(), 4);
        assert!(trips.iter().all(|&(.., hops)| hops == 1));
        assert!(!trips.iter().any(|&(u, v, ..)| (u, v) == (0, 2)));
    }

    #[test]
    fn two_window_chain_exists() {
        let trips = run("a b 0\nb c 5\n", Directedness::Undirected, 2);
        // windows: ab in w0, bc in w1; a->c = (0, 2, dep 0, arr 1, hops 2)
        assert!(trips.contains(&(0, 2, 0, 1, 2)));
        // c->a would need cb then ba: cb is in w1, ba would need w>1: absent
        assert!(!trips.iter().any(|&(u, v, ..)| (u, v) == (2, 0)));
    }

    #[test]
    fn directed_edges_are_one_way() {
        let s =
            saturn_linkstream::io::read_str("a b 0\nb c 5\n", Directedness::Directed).unwrap();
        let t = Timeline::aggregated(&s, 2);
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(3), &mut sink, DpOptions::default());
        let trips = sink.0;
        assert!(trips.contains(&(0, 2, 0, 1, 2)));
        assert!(!trips.iter().any(|&(u, v, ..)| (u, v) == (1, 0))); // no b->a
        assert!(!trips.iter().any(|&(u, v, ..)| (u, v) == (2, 1)));
    }

    #[test]
    fn minimality_no_nested_trip() {
        // a-b at w0 and w2; b-c at w3.
        // a->c trips: dep 0: ab@0 then bc@3 -> arr 3. But ab@2 then bc@3 is
        // strictly inside: the minimal trips must be (2,3), not (0,3).
        let text = "a b 0\na b 20\nb c 30\n";
        let s = saturn_linkstream::io::read_str(text, Directedness::Undirected).unwrap();
        let t = Timeline::aggregated(&s, 4); // Δ=7.5: t=0->w0, 20->w2, 30->w3
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(3), &mut sink, DpOptions::default());
        let ac: Vec<_> = sink.0.iter().filter(|&&(u, v, ..)| (u, v) == (0, 2)).collect();
        assert_eq!(ac.len(), 1);
        assert_eq!(*ac[0], (0, 2, 2, 3, 2));
    }

    #[test]
    fn hops_are_minimum_at_earliest_arrival() {
        // Two routes a->d arriving at the same window 2:
        //   long: a-b@0, b-c@1, c-d@2 (3 hops)
        //   short: direct a-d@2 (1 hop)
        let text = "a b 0\nb c 10\nc d 20\na d 20\n";
        let s = saturn_linkstream::io::read_str(text, Directedness::Undirected).unwrap();
        let t = Timeline::aggregated(&s, 3); // windows of 20/3: w0={ab}, w1={bc}, w2={cd, ad}
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(4), &mut sink, DpOptions::default());
        let ad: Vec<_> = sink.0.iter().filter(|&&(u, v, ..)| (u, v) == (0, 3)).collect();
        // minimal trip dep 0..: earliest arrival w2 via either route; but the
        // direct link at w2 gives trip (2,2) which dominates (0,2): minimal
        // trips are (2,2,1 hop).
        assert_eq!(ad.len(), 1);
        assert_eq!(*ad[0], (0, 3, 2, 2, 1));
    }

    #[test]
    fn same_step_improvement_keeps_min_hops() {
        // Two paths arriving at the same step, both departing at step 0:
        // a-b@w0,b-d@w1 (2 hops) and a-c@w0,c-d@w1 (2 hops). Ensure hops
        // reported is 2 and a single trip per pair.
        let text = "a b 0\na c 0\nb d 10\nc d 10\n";
        let s = saturn_linkstream::io::read_str(text, Directedness::Undirected).unwrap();
        let t = Timeline::aggregated(&s, 2);
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(4), &mut sink, DpOptions::default());
        let ad: Vec<_> = sink.0.iter().filter(|&&(u, v, ..)| (u, v) == (0, 3)).collect();
        assert_eq!(ad.len(), 1);
        assert_eq!(*ad[0], (0, 3, 0, 1, 2));
    }

    #[test]
    fn target_sampling_restricts_destinations() {
        let text = "a b 0\nb c 10\nc d 20\n";
        let s = saturn_linkstream::io::read_str(text, Directedness::Undirected).unwrap();
        let t = Timeline::aggregated(&s, 3);
        let targets = TargetSet::from_nodes(4, &[3]); // only destination d
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &targets, &mut sink, DpOptions::default());
        assert!(!sink.0.is_empty());
        assert!(sink.0.iter().all(|&(_, v, ..)| v == 3));
    }

    #[test]
    fn distance_sums_match_manual_enumeration() {
        // Tiny stream; enumerate d_time by hand.
        // Windows (K=2): w0 = {ab}, w1 = {bc}. Pairs with finite distances:
        // (a,b): dep 0 -> arr 0 (d=1); dep 1 -> none.
        // (b,a): dep 0 -> arr 0 (d=1).
        // (b,c): dep 0 -> arr 1 (d=2); dep 1 -> arr 1 (d=1).
        // (c,b): cb exists at w1 only: dep 0 -> arr 1 (d=2), dep 1 -> d=1.
        // (a,c): dep 0 -> ab@0, bc@1, arr 1, d=2, hops 2.
        // (c,a): none.
        // Σ d_time = 1+1+ (2+1) + (2+1) + 2 = 10 ; triples = 7
        // Σ hops  = 1+1+ (1+1) + (1+1) + 2 = 8
        let s = saturn_linkstream::io::read_str("a b 0\nb c 10\n", Directedness::Undirected)
            .unwrap();
        let t = Timeline::aggregated(&s, 2);
        let stats = earliest_arrival_dp(
            &t,
            &TargetSet::all(3),
            &mut NullSink,
            DpOptions { collect_distances: true, ..Default::default() },
        );
        let d = stats.distances.unwrap();
        assert_eq!(d.finite_triples, 7);
        assert_eq!(d.sum_dtime_steps, 10);
        assert_eq!(d.sum_dhops, 8);
    }

    #[test]
    fn closure_sink_works() {
        let s = saturn_linkstream::io::read_str("a b 0\nb c 10\n", Directedness::Undirected)
            .unwrap();
        let t = Timeline::aggregated(&s, 2);
        let mut count = 0u32;
        let mut sink = |_u: u32, _v: u32, _d: u32, _a: u32, _h: u32| count += 1;
        let stats =
            earliest_arrival_dp(&t, &TargetSet::all(3), &mut sink, DpOptions::default());
        assert_eq!(stats.trips as u32, count);
    }

    /// An arena reused across runs of *different* scales and dimensions must
    /// behave exactly like fresh allocation.
    #[test]
    fn arena_reuse_is_transparent() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nb c 7\nc d 13\nd a 20\na c 27\nb d 33\n",
            Directedness::Undirected,
        )
        .unwrap();
        let mut arena = EngineArena::new();
        for &k in &[1u64, 2, 5, 9, 33, 9, 2] {
            let t = Timeline::aggregated(&s, k);
            let mut fresh_sink = Collect::default();
            let fresh = earliest_arrival_dp(
                &t,
                &TargetSet::all(4),
                &mut fresh_sink,
                DpOptions { collect_distances: true, ..Default::default() },
            );
            let mut reused_sink = Collect::default();
            let reused = earliest_arrival_dp_in(
                &mut arena,
                &t,
                &TargetSet::all(4),
                &mut reused_sink,
                DpOptions { collect_distances: true, ..Default::default() },
            );
            assert_eq!(fresh_sink.0, reused_sink.0, "k={k}");
            assert_eq!(fresh.trips, reused.trips, "k={k}");
            assert_eq!(fresh.traversals, reused.traversals, "k={k}");
            let (df, dr) = (fresh.distances.unwrap(), reused.distances.unwrap());
            assert_eq!(df.sum_dtime_steps, dr.sum_dtime_steps, "k={k}");
            assert_eq!(df.sum_dhops, dr.sum_dhops, "k={k}");
            assert_eq!(df.finite_triples, dr.finite_triples, "k={k}");
        }
        // dimension change mid-stream: arena must transparently reallocate
        let t = Timeline::aggregated(&s, 3);
        let targets = TargetSet::from_nodes(4, &[0, 2]);
        let mut a_sink = Collect::default();
        earliest_arrival_dp_in(&mut arena, &t, &targets, &mut a_sink, DpOptions::default());
        let mut f_sink = Collect::default();
        earliest_arrival_dp(&t, &targets, &mut f_sink, DpOptions::default());
        assert_eq!(a_sink.0, f_sink.0);
    }

    /// Tile runs partition the untiled run exactly: for every tile size,
    /// concatenating per-tile trips (each tile's stream re-sorted) and
    /// summing distance stats reproduces the full run.
    #[test]
    fn tiled_runs_partition_the_untiled_run() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nc d 3\nb c 7\nd e 9\na e 14\nb d 18\nc e 21\na c 25\n",
            Directedness::Undirected,
        )
        .unwrap();
        let targets = TargetSet::all(5);
        let mut arena = EngineArena::new();
        for &k in &[1u64, 3, 9, 25] {
            let t = Timeline::aggregated(&s, k);
            let mut full_sink = Collect::default();
            let full = earliest_arrival_dp(
                &t,
                &targets,
                &mut full_sink,
                DpOptions { collect_distances: true, ..Default::default() },
            );
            let mut full_trips = full_sink.0;
            full_trips.sort_unstable();
            for tile in [1usize, 2, 3, 5] {
                let mut trips = Vec::new();
                let mut trip_count = 0u64;
                let mut sums = DistanceSums::default();
                for (start, len) in targets.tile_ranges(tile) {
                    let mut sink = Collect::default();
                    let stats = earliest_arrival_dp_tile_in(
                        &mut arena,
                        &t,
                        &targets,
                        start,
                        len as usize,
                        &mut sink,
                        DpOptions { collect_distances: true, ..Default::default() },
                    );
                    assert_eq!(stats.traversals, full.traversals, "k={k} tile={tile}");
                    trip_count += stats.trips;
                    let d = stats.distances.unwrap();
                    sums.sum_dtime_steps += d.sum_dtime_steps;
                    sums.sum_dhops += d.sum_dhops;
                    sums.finite_triples += d.finite_triples;
                    trips.extend(sink.0);
                }
                trips.sort_unstable();
                assert_eq!(trips, full_trips, "k={k} tile={tile}");
                assert_eq!(trip_count, full.trips, "k={k} tile={tile}");
                let fd = full.distances.unwrap();
                assert_eq!(sums.sum_dtime_steps, fd.sum_dtime_steps, "k={k} tile={tile}");
                assert_eq!(sums.sum_dhops, fd.sum_dhops, "k={k} tile={tile}");
                assert_eq!(sums.finite_triples, fd.finite_triples, "k={k} tile={tile}");
            }
        }
    }

    /// A single tile over a middle column range must equal the column
    /// restriction of the full run, with global node ids in the reports.
    #[test]
    fn middle_tile_reports_global_node_ids() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nb c 5\nc d 10\nd e 15\n",
            Directedness::Undirected,
        )
        .unwrap();
        let targets = TargetSet::all(5);
        let t = Timeline::aggregated(&s, 4);
        let mut full = Collect::default();
        earliest_arrival_dp(&t, &targets, &mut full, DpOptions::default());
        let expected: Vec<_> =
            full.0.iter().copied().filter(|&(_, v, ..)| v == 2 || v == 3).collect();
        let mut tile = Collect::default();
        let mut arena = EngineArena::new();
        earliest_arrival_dp_tile_in(
            &mut arena,
            &t,
            &targets,
            2,
            2,
            &mut tile,
            DpOptions::default(),
        );
        assert_eq!(tile.0, expected);
    }

    /// The degree-1 bypass must be invisible: identical trip streams (order
    /// included), stats, and distance sums with the fast path on and off,
    /// on directed and undirected timelines alike.
    #[test]
    fn degree1_fast_path_is_invisible() {
        let text = "a b 0\nb c 7\nc d 13\nd a 20\na c 27\nb d 33\nc e 41\ne a 47\n";
        for directedness in [Directedness::Undirected, Directedness::Directed] {
            let s = saturn_linkstream::io::read_str(text, directedness).unwrap();
            for &k in &[2u64, 5, 13, 47] {
                let t = Timeline::aggregated(&s, k);
                assert!(
                    k < 13 || t.steps_desc().any(|step| step.len() == 1),
                    "fine scales must exercise single-edge steps (k={k})"
                );
                let mut fast = Collect::default();
                let fs = earliest_arrival_dp(
                    &t,
                    &TargetSet::all(5),
                    &mut fast,
                    DpOptions { collect_distances: true, ..Default::default() },
                );
                let mut general = Collect::default();
                let gs = earliest_arrival_dp(
                    &t,
                    &TargetSet::all(5),
                    &mut general,
                    DpOptions {
                        collect_distances: true,
                        no_degree1_fast_path: true,
                        ..Default::default()
                    },
                );
                assert_eq!(fast.0, general.0, "{directedness:?} k={k}");
                assert_eq!(fs.trips, gs.trips, "{directedness:?} k={k}");
                assert_eq!(fs.traversals, gs.traversals, "{directedness:?} k={k}");
                let (fd, gd) = (fs.distances.unwrap(), gs.distances.unwrap());
                assert_eq!(fd.sum_dtime_steps, gd.sum_dtime_steps, "{directedness:?} k={k}");
                assert_eq!(fd.sum_dhops, gd.sum_dhops, "{directedness:?} k={k}");
                assert_eq!(fd.finite_triples, gd.finite_triples, "{directedness:?} k={k}");
            }
        }
    }

    /// Delta propagation must be invisible: identical trip streams (order
    /// included), stats, and distance sums with the watermark filters on
    /// and off, across directednesses, scales, and one arena reused for
    /// all runs (watermark state from earlier scales must stay dead).
    #[test]
    fn delta_propagation_is_invisible() {
        let text = "a b 0\nb c 7\nc d 13\nd a 20\na c 27\nb d 33\nc e 41\ne a 47\n\
                    a b 50\nb c 57\nc d 63\nd a 70\n";
        let mut arena = EngineArena::new();
        for directedness in [Directedness::Undirected, Directedness::Directed] {
            let s = saturn_linkstream::io::read_str(text, directedness).unwrap();
            for &k in &[1u64, 2, 5, 13, 29, 70] {
                let t = Timeline::aggregated(&s, k);
                let mut on = Collect::default();
                let on_stats = earliest_arrival_dp_in(
                    &mut arena,
                    &t,
                    &TargetSet::all(5),
                    &mut on,
                    DpOptions { collect_distances: true, ..Default::default() },
                );
                let mut off = Collect::default();
                let off_stats = earliest_arrival_dp_in(
                    &mut arena,
                    &t,
                    &TargetSet::all(5),
                    &mut off,
                    DpOptions {
                        collect_distances: true,
                        no_delta_propagation: true,
                        ..Default::default()
                    },
                );
                assert_eq!(on.0, off.0, "{directedness:?} k={k}");
                assert_eq!(on_stats.trips, off_stats.trips, "{directedness:?} k={k}");
                assert_eq!(on_stats.traversals, off_stats.traversals, "{directedness:?} k={k}");
                let (od, fd) = (on_stats.distances.unwrap(), off_stats.distances.unwrap());
                assert_eq!(od.sum_dtime_steps, fd.sum_dtime_steps, "{directedness:?} k={k}");
                assert_eq!(od.sum_dhops, fd.sum_dhops, "{directedness:?} k={k}");
                assert_eq!(od.finite_triples, fd.finite_triples, "{directedness:?} k={k}");
            }
        }
    }

    /// Delta filtering composes with tiling: every tile cover with delta on
    /// merges to the delta-off untiled run.
    #[test]
    fn delta_propagation_composes_with_tiles() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nc d 3\nb c 7\nd e 9\na e 14\nb d 18\nc e 21\na c 25\nb c 31\nd e 37\n",
            Directedness::Undirected,
        )
        .unwrap();
        let targets = TargetSet::all(5);
        let mut arena = EngineArena::new();
        for &k in &[3u64, 9, 37] {
            let t = Timeline::aggregated(&s, k);
            let mut full_sink = Collect::default();
            earliest_arrival_dp(
                &t,
                &targets,
                &mut full_sink,
                DpOptions { no_delta_propagation: true, ..Default::default() },
            );
            let mut full_trips = full_sink.0;
            full_trips.sort_unstable();
            for tile in [1usize, 2, 5] {
                let mut trips = Vec::new();
                for (start, len) in targets.tile_ranges(tile) {
                    let mut sink = Collect::default();
                    earliest_arrival_dp_tile_in(
                        &mut arena,
                        &t,
                        &targets,
                        start,
                        len as usize,
                        &mut sink,
                        DpOptions::default(),
                    );
                    trips.extend(sink.0);
                }
                trips.sort_unstable();
                assert_eq!(trips, full_trips, "k={k} tile={tile}");
            }
        }
    }

    /// The frontier-pruned engine and the baseline full-scan engine must be
    /// indistinguishable, including trip report order.
    #[test]
    fn frontier_engine_matches_baseline() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nc d 3\nb c 7\nd e 9\na e 14\nb d 18\nc e 21\na c 25\n",
            Directedness::Undirected,
        )
        .unwrap();
        for &k in &[1u64, 2, 4, 7, 13, 25] {
            let t = Timeline::aggregated(&s, k);
            let mut fast = Collect::default();
            let f = earliest_arrival_dp(
                &t,
                &TargetSet::all(5),
                &mut fast,
                DpOptions { collect_distances: true, ..Default::default() },
            );
            let mut slow = Collect::default();
            let b = baseline::earliest_arrival_dp(
                &t,
                &TargetSet::all(5),
                &mut slow,
                DpOptions { collect_distances: true, ..Default::default() },
            );
            assert_eq!(fast.0, slow.0, "k={k}");
            assert_eq!(f.trips, b.trips, "k={k}");
            assert_eq!(f.traversals, b.traversals, "k={k}");
            let (df, db) = (f.distances.unwrap(), b.distances.unwrap());
            assert_eq!(df.sum_dtime_steps, db.sum_dtime_steps, "k={k}");
            assert_eq!(df.sum_dhops, db.sum_dhops, "k={k}");
            assert_eq!(df.finite_triples, db.finite_triples, "k={k}");
        }
    }

    /// A present-but-never-fired token must be invisible: identical trip
    /// stream and stats as the `None` path (the knob-matrix invariant at the
    /// engine level).
    #[test]
    fn unfired_token_is_invisible() {
        let s = saturn_linkstream::io::read_str(
            "a b 0\nb c 7\nc d 13\nd a 20\na c 27\nb d 33\n",
            Directedness::Undirected,
        )
        .unwrap();
        let t = Timeline::aggregated(&s, 17);
        let targets = TargetSet::all(4);
        let mut plain = Collect::default();
        let ps = earliest_arrival_dp(&t, &targets, &mut plain, DpOptions::default());
        let token = CancelToken::new();
        let mut arena = EngineArena::new();
        let mut with_token = Collect::default();
        let ts = earliest_arrival_dp_tile_cancel_in(
            &mut arena,
            &t,
            &targets,
            0,
            targets.len(),
            &mut with_token,
            DpOptions::default(),
            Some(&token),
        );
        assert_eq!(plain.0, with_token.0);
        assert_eq!(ps.trips, ts.trips);
        assert_eq!(ps.traversals, ts.traversals);
    }

    /// A pre-fired token stops the run within one `CANCEL_STRIDE` of steps,
    /// and the arena remains reusable for a full run afterwards.
    #[test]
    fn fired_token_stops_early_and_arena_survives() {
        // > 3×CANCEL_STRIDE single-edge steps so several polls happen.
        let mut text = String::new();
        for i in 0..(3 * CANCEL_STRIDE + 100) {
            text.push_str(&format!("a b {i}\n"));
        }
        let s = saturn_linkstream::io::read_str(&text, Directedness::Undirected).unwrap();
        let k = u64::from(3 * CANCEL_STRIDE + 100);
        let t = Timeline::aggregated(&s, k);
        let targets = TargetSet::all(2);
        let mut full = Collect::default();
        let fs = earliest_arrival_dp(&t, &targets, &mut full, DpOptions::default());

        let token = CancelToken::new();
        token.cancel();
        let mut arena = EngineArena::new();
        let mut partial = Collect::default();
        let ps = earliest_arrival_dp_tile_cancel_in(
            &mut arena,
            &t,
            &targets,
            0,
            targets.len(),
            &mut partial,
            DpOptions::default(),
            Some(&token),
        );
        // The backward DP walks steps newest-first; a pre-fired token lets at
        // most one stride of steps run before the poll breaks out.
        assert!(
            ps.trips <= u64::from(2 * CANCEL_STRIDE),
            "cancelled run did too much work: {} trips vs {} full",
            ps.trips,
            fs.trips
        );
        assert!(ps.trips < fs.trips, "cancellation had no effect");

        // Reusing the arena after an abandoned run must be sound and exact.
        let mut again = Collect::default();
        let rs = earliest_arrival_dp_tile_cancel_in(
            &mut arena,
            &t,
            &targets,
            0,
            targets.len(),
            &mut again,
            DpOptions::default(),
            None,
        );
        assert_eq!(again.0, full.0);
        assert_eq!(rs.trips, fs.trips);
    }
}
