//! Temporal paths, minimal trips and occupancy rates.
//!
//! This crate implements the computational heart of the occupancy method
//! (Léo, Crespelle, Fleury, CoNEXT 2015): the backward dynamic program that
//! enumerates, in `O(nM)` time, all *minimal trips* of a graph series or of a
//! raw link stream, together with their durations and minimum hop counts
//! (Section 5 of the paper).
//!
//! # Concepts (Definitions 2–8 of the paper)
//!
//! * A **temporal path** is a sequence of edges that chains endpoints and
//!   occurs at *strictly increasing* steps — two links of the same snapshot
//!   (or the same instant) can never be chained (Remark 1).
//! * A **trip** `(u, v, t_dep, t_arr)` exists when some temporal path leaves
//!   `u` and reaches `v` entirely within `[t_dep, t_arr]`; it is **minimal**
//!   when no trip between the same nodes fits in a strictly smaller interval.
//! * The **occupancy rate** of a minimal trip is `hops/duration` — the
//!   fraction of its time steps spent moving rather than waiting.
//! * A **shortest transition** is a two-hop temporal path realizing a minimal
//!   trip; the fraction of them falling inside a single aggregation window is
//!   the loss measure of Section 8, and the **elongation factor** compares
//!   each aggregated minimal trip with the fastest underlying trip of the
//!   original stream.
//!
//! # Entry points
//!
//! * [`Timeline`] — a prepared step sequence, either
//!   [`aggregated`](Timeline::aggregated) (windows of `G_Δ`) or
//!   [`exact`](Timeline::exact) (distinct timestamps of `L`);
//! * [`earliest_arrival_dp`] — the generic engine, feeding minimal trips to a
//!   [`TripSink`];
//! * [`occupancy_histogram`], [`distance_means`], [`stream_minimal_trips`],
//!   [`elongation_stats`] — the high-level analyses built on the engine;
//! * [`reference`] — small brute-force implementations used to validate the
//!   engine in tests.
//!
//! ```
//! use saturn_linkstream::{Directedness, LinkStreamBuilder};
//! use saturn_trips::{occupancy_histogram, TargetSet};
//!
//! let mut b = LinkStreamBuilder::new(Directedness::Undirected);
//! b.add("a", "b", 0);
//! b.add("b", "c", 5);
//! b.add("c", "d", 9);
//! let stream = b.build().unwrap();
//!
//! // Aggregate over K = 10 windows and collect all minimal-trip occupancy rates.
//! let hist = occupancy_histogram(&stream, 10, &TargetSet::all(4));
//! assert!(hist.total_trips() > 0);
//! ```

pub mod cancel;
pub mod distances;
pub mod dp;
pub mod elongation;
pub mod occupancy;
pub mod reference;
pub mod stream_trips;
pub mod target;
pub mod timeline;
pub mod transitions;

pub use cancel::{CancelToken, Cancelled};
pub use distances::{distance_means, distance_means_on, DistanceMeans};
pub use dp::{
    earliest_arrival_dp, earliest_arrival_dp_in, earliest_arrival_dp_tile_cancel_in,
    earliest_arrival_dp_tile_in, DpOptions, DpStats, EngineArena, TripSink, CANCEL_STRIDE,
};
pub use elongation::{elongation_stats, elongation_stats_on, ElongationStats};
pub use occupancy::{
    occupancy_histogram, occupancy_histogram_in, occupancy_histogram_on,
    occupancy_histogram_tile_cancel_in, occupancy_histogram_tile_in,
    occupancy_histogram_tile_opts_in, occupancy_histogram_tile_stats_in, OccupancyHistogram,
};
pub use stream_trips::{stream_minimal_trips, PairTrips, StreamTrips};
pub use target::TargetSet;
pub use timeline::{EventView, StepView, Timeline};
pub use transitions::{lost_transition_fraction, ShortestTransitions, Transition};
