//! Brute-force reference implementations, by literal application of the
//! paper's definitions.
//!
//! These enumerate every temporal path of a timeline by depth-first search —
//! exponential in the worst case, so they are only suitable for the tiny
//! inputs used in tests and property-based validation of the `O(nM)` engine.

use crate::Timeline;
use std::collections::HashMap;

/// A `(u, v, dep, arr, hops)` record.
pub type TripRecord = (u32, u32, u32, u32, u32);

/// Enumerates every temporal path of `timeline` (Definition 3) and returns,
/// for each realized `(u, v, dep, arr)` quadruple, the minimum hop count.
///
/// # Panics
/// Panics if more than `path_budget` paths are generated, to protect tests
/// from accidental blow-ups.
pub fn all_paths_min_hops(
    timeline: &Timeline,
    path_budget: usize,
) -> HashMap<(u32, u32, u32, u32), u32> {
    // traversals[s] = list of directed (u, w) available at ascending step s
    let steps: Vec<(u32, Vec<(u32, u32)>)> = timeline
        .steps_asc()
        .map(|s| {
            let mut tr: Vec<(u32, u32)> = Vec::new();
            for (u, w) in s.edges() {
                tr.push((u, w));
                if !timeline.is_directed() {
                    tr.push((w, u));
                }
            }
            (s.index, tr)
        })
        .collect();

    let mut best: HashMap<(u32, u32, u32, u32), u32> = HashMap::new();
    let mut generated = 0usize;

    // DFS stack: (start node, current node, dep step, current step, hops)
    struct Frame {
        start: u32,
        node: u32,
        dep: u32,
        arr: u32,
        hops: u32,
        next_step: usize, // index into `steps` to continue from
    }

    let mut stack: Vec<Frame> = Vec::new();
    for (si, (step, traversals)) in steps.iter().enumerate() {
        for &(u, w) in traversals {
            stack.push(Frame {
                start: u,
                node: w,
                dep: *step,
                arr: *step,
                hops: 1,
                next_step: si + 1,
            });
        }
    }

    while let Some(f) = stack.pop() {
        generated += 1;
        assert!(generated <= path_budget, "path budget exceeded: use a smaller input");
        if f.start != f.node {
            let key = (f.start, f.node, f.dep, f.arr);
            let e = best.entry(key).or_insert(f.hops);
            if f.hops < *e {
                *e = f.hops;
            }
        }
        for (si, (step, traversals)) in steps.iter().enumerate().skip(f.next_step) {
            for &(u, w) in traversals {
                if u == f.node {
                    stack.push(Frame {
                        start: f.start,
                        node: w,
                        dep: f.dep,
                        arr: *step,
                        hops: f.hops + 1,
                        next_step: si + 1,
                    });
                }
            }
        }
    }
    best
}

/// Computes all minimal trips of `timeline` by literal application of
/// Definition 5: a `(dep, arr)` interval of a pair is minimal iff no realized
/// interval of the same pair is strictly included in it. Returns sorted
/// `(u, v, dep, arr, min_hops)` records.
pub fn minimal_trips_bruteforce(timeline: &Timeline, path_budget: usize) -> Vec<TripRecord> {
    let realized = all_paths_min_hops(timeline, path_budget);

    // group intervals per pair
    let mut per_pair: HashMap<(u32, u32), Vec<(u32, u32)>> = HashMap::new();
    for &(u, v, dep, arr) in realized.keys() {
        per_pair.entry((u, v)).or_default().push((dep, arr));
    }

    let mut out = Vec::new();
    for ((u, v), intervals) in &per_pair {
        for &(dep, arr) in intervals {
            let strictly_inside = intervals
                .iter()
                .any(|&(d2, a2)| d2 >= dep && a2 <= arr && (d2, a2) != (dep, arr));
            if !strictly_inside {
                // minimum hops among paths departing exactly at dep and
                // arriving exactly at arr
                let hops = realized[&(*u, *v, dep, arr)];
                out.push((*u, *v, dep, arr, hops));
            }
        }
    }
    out.sort_unstable();
    out
}

/// Per-pair earliest-arrival function: `value[t] = Some((arr, hops))` for
/// every departure step `t` with a finite distance.
pub type EaFunction = Vec<Option<(u32, u32)>>;

/// Brute-force earliest arrival: `ea(u, v, t)` = minimum `arr` among realized
/// quadruples with `dep >= t`, plus the hop count of Definition 4's
/// `d_hops`. Returns, for each `(u, v)`, a function sampled at every step:
/// `result[(u,v)][t] = Some((arr, hops))`.
pub fn earliest_arrival_bruteforce(
    timeline: &Timeline,
    path_budget: usize,
) -> HashMap<(u32, u32), EaFunction> {
    let realized = all_paths_min_hops(timeline, path_budget);
    let k = timeline.num_steps() as usize;
    let mut out: HashMap<(u32, u32), EaFunction> = HashMap::new();
    for (&(u, v, dep, arr), &hops) in &realized {
        let entry = out.entry((u, v)).or_insert_with(|| vec![None; k]);
        for slot in entry.iter_mut().take(dep as usize + 1) {
            match *slot {
                None => *slot = Some((arr, hops)),
                Some((a, h)) => {
                    if arr < a || (arr == a && hops < h) {
                        *slot = Some((arr, hops));
                    }
                }
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{earliest_arrival_dp, DpOptions, TargetSet, TripSink};
    use saturn_linkstream::{io, Directedness};

    #[derive(Default)]
    struct Collect(Vec<TripRecord>);
    impl TripSink for Collect {
        fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
            self.0.push((u, v, dep, arr, hops));
        }
    }

    fn check_agreement(text: &str, directedness: Directedness, ks: &[u64]) {
        let s = io::read_str(text, directedness).unwrap();
        for &k in ks {
            let t = Timeline::aggregated(&s, k);
            let brute = minimal_trips_bruteforce(&t, 2_000_000);
            let mut sink = Collect::default();
            earliest_arrival_dp(&t, &TargetSet::all(t.n()), &mut sink, DpOptions::default());
            let mut fast = sink.0;
            fast.sort_unstable();
            assert_eq!(fast, brute, "k={k} text={text:?}");
        }
    }

    #[test]
    fn engine_matches_bruteforce_on_small_examples() {
        check_agreement("a b 0\nb c 5\nc d 9\n", Directedness::Undirected, &[1, 2, 3, 5, 9]);
        check_agreement("a b 0\nb a 1\na c 2\nc b 3\n", Directedness::Directed, &[1, 2, 3]);
        check_agreement(
            "a b 0\na c 0\nb d 4\nc d 4\nd a 8\n",
            Directedness::Undirected,
            &[1, 2, 4, 8],
        );
    }

    #[test]
    fn figure_one_example() {
        // The link stream of Figure 1 of the paper (5 nodes a..e, 3 windows).
        // Links (reading the figure; times chosen so that K=3 gives the
        // paper's windows): within window 1: (c,d), (b,e); window 2: (a,b),
        // (d,e); window 3: (a,c), (c,d), (d,b).
        let text = "c d 1\nb e 2\na b 4\nd e 5\na c 7\nc d 7\nd b 8\n";
        let s = io::read_str(text, Directedness::Undirected).unwrap();
        // period [1,8], span 7... use explicit K=3 windows of 7/3
        let t = Timeline::aggregated(&s, 3);
        let brute = minimal_trips_bruteforce(&t, 1_000_000);
        let mut sink = Collect::default();
        earliest_arrival_dp(&t, &TargetSet::all(5), &mut sink, DpOptions::default());
        let mut fast = sink.0;
        fast.sort_unstable();
        assert_eq!(fast, brute);

        // Paper's dark-blue temporal path e->b exists in the series:
        // e-b? e@w0 via (b,e): that IS e->b directly... the figure's path is
        // e -(w1 d,e)- d -(w2 d,b)- b; either way a trip e->b must exist.
        let e = 4u32; // labels: c=0,d=1,b=2,e=3,a=4 by first appearance
        let b = 2u32;
        assert!(
            fast.iter().any(|&(u, v, ..)| (u, v) == (e, b))
                || fast.iter().any(|&(u, v, ..)| (u, v) == (3, 2))
        );
    }

    #[test]
    fn bruteforce_ea_consistent_with_trips() {
        let s = io::read_str("a b 0\nb c 3\na c 9\n", Directedness::Undirected).unwrap();
        let t = Timeline::aggregated(&s, 10);
        let ea = earliest_arrival_bruteforce(&t, 100_000);
        let trips = minimal_trips_bruteforce(&t, 100_000);
        // every trip's (dep, arr) must equal the EA at its departure step
        for (u, v, dep, arr, _) in trips {
            let f = &ea[&(u, v)];
            assert_eq!(f[dep as usize], Some((arr, f[dep as usize].unwrap().1)));
        }
    }
}
