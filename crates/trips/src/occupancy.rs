//! Occupancy-rate distributions of minimal trips (Definition 7).
//!
//! The occupancy rate of a minimal trip is `hops/duration` where the duration
//! is counted in steps (`arr - dep + 1` for a graph series): the proportion
//! of time steps the trip spends hopping rather than waiting. Rates are exact
//! rationals; the histogram therefore keys on the reduced `(hops, duration)`
//! pair so no two distinct rates are ever merged by floating-point rounding.

use crate::{
    earliest_arrival_dp_in, earliest_arrival_dp_tile_cancel_in, CancelToken, DpOptions,
    DpStats, EngineArena, TargetSet, Timeline, TripSink,
};
use rustc_hash::FxHashMap;
use saturn_linkstream::LinkStream;
use serde::Serialize;

/// Exact histogram of minimal-trip occupancy rates.
#[derive(Clone, Debug, Default, Serialize)]
pub struct OccupancyHistogram {
    /// `(hops, duration) -> multiplicity`, with `hops/duration` in lowest
    /// terms. Fx-hashed: the insert sits in the trip sink, once per minimal
    /// trip, and SipHash was measurable there at fine scales.
    counts: FxHashMap<(u32, u32), u64>,
    total: u64,
}

fn gcd(mut a: u32, mut b: u32) -> u32 {
    while b != 0 {
        let r = a % b;
        a = b;
        b = r;
    }
    a
}

impl OccupancyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records one minimal trip with the given hop count and duration (in
    /// steps, `>= 1`).
    pub fn record(&mut self, hops: u32, duration: u32) {
        debug_assert!(hops >= 1 && duration >= hops, "0 < hops <= duration violated");
        let g = gcd(hops, duration).max(1);
        *self.counts.entry((hops / g, duration / g)).or_insert(0) += 1;
        self.total += 1;
    }

    /// Total number of recorded trips.
    pub fn total_trips(&self) -> u64 {
        self.total
    }

    /// Whether no trip was recorded.
    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Number of distinct occupancy rates.
    pub fn distinct_rates(&self) -> usize {
        self.counts.len()
    }

    /// The rates and their multiplicities, sorted by increasing rate.
    /// Every rate lies in `(0, 1]` (Remark 2 of the paper).
    pub fn sorted_rates(&self) -> Vec<(f64, u64)> {
        let mut entries: Vec<(&(u32, u32), &u64)> = self.counts.iter().collect();
        // exact rational comparison: h1/d1 < h2/d2  <=>  h1*d2 < h2*d1
        entries.sort_unstable_by(|a, b| {
            let (h1, d1) = *a.0;
            let (h2, d2) = *b.0;
            (h1 as u64 * d2 as u64).cmp(&(h2 as u64 * d1 as u64))
        });
        entries.into_iter().map(|(&(h, d), &c)| (h as f64 / d as f64, c)).collect()
    }

    /// Mean occupancy rate.
    ///
    /// Summation runs in sorted key order: tiled sweeps merge per-tile
    /// histograms whose map insertion order differs from an untiled run's,
    /// and the float accumulation must not depend on hash iteration order
    /// for reports to stay bit-identical across tilings.
    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        let mut entries: Vec<((u32, u32), u64)> =
            self.counts.iter().map(|(&key, &c)| (key, c)).collect();
        entries.sort_unstable_by_key(|&(key, _)| key);
        let s: f64 = entries.iter().map(|&((h, d), c)| c as f64 * h as f64 / d as f64).sum();
        s / self.total as f64
    }

    /// Fraction of trips with occupancy rate exactly 1 (fully saturated
    /// trips — the mass that grows past the saturation scale).
    pub fn fraction_at_one(&self) -> f64 {
        if self.total == 0 {
            return f64::NAN;
        }
        self.counts.get(&(1, 1)).copied().unwrap_or(0) as f64 / self.total as f64
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &OccupancyHistogram) {
        for (&key, &c) in &other.counts {
            *self.counts.entry(key).or_insert(0) += c;
        }
        self.total += other.total;
    }
}

struct HistogramSink(OccupancyHistogram);

impl TripSink for HistogramSink {
    fn minimal_trip(&mut self, _u: u32, _v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.record(hops, arr - dep + 1);
    }
}

/// Computes the occupancy-rate distribution of all minimal trips of the
/// series `G_Δ` with `Δ = T/k`, for destinations in `targets`.
pub fn occupancy_histogram(
    stream: &LinkStream,
    k: u64,
    targets: &TargetSet,
) -> OccupancyHistogram {
    let timeline = Timeline::aggregated(stream, k);
    occupancy_histogram_on(&timeline, targets)
}

/// Same as [`occupancy_histogram`], for an already-built timeline.
pub fn occupancy_histogram_on(timeline: &Timeline, targets: &TargetSet) -> OccupancyHistogram {
    let mut arena = EngineArena::new();
    occupancy_histogram_in(&mut arena, timeline, targets)
}

/// Same as [`occupancy_histogram_on`], reusing a caller-owned
/// [`EngineArena`] — the sweep's hot path (one arena per worker, reused for
/// every scale).
pub fn occupancy_histogram_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
) -> OccupancyHistogram {
    let mut sink = HistogramSink(OccupancyHistogram::new());
    earliest_arrival_dp_in(arena, timeline, targets, &mut sink, DpOptions::default());
    sink.0
}

/// The histogram of one *target tile* — minimal trips toward destinations
/// `col_start .. col_start + col_len` of `targets` only (see
/// [`crate::earliest_arrival_dp_tile_in`]). Tiles partition the trips of the
/// untiled run exactly, so [`OccupancyHistogram::merge`]-ing the tiles of a
/// [`TargetSet::tile_ranges`] cover reproduces [`occupancy_histogram_in`].
pub fn occupancy_histogram_tile_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
) -> OccupancyHistogram {
    occupancy_histogram_tile_opts_in(
        arena,
        timeline,
        targets,
        col_start,
        col_len,
        DpOptions::default(),
    )
}

/// [`occupancy_histogram_tile_in`] with explicit engine options — the sweep
/// scheduler's entry point, used to thread execution knobs that do not
/// change results (e.g. [`DpOptions::no_delta_propagation`] for the delta
/// ablation) through the tiled path.
pub fn occupancy_histogram_tile_opts_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
    options: DpOptions,
) -> OccupancyHistogram {
    occupancy_histogram_tile_cancel_in(
        arena, timeline, targets, col_start, col_len, options, None,
    )
}

/// [`occupancy_histogram_tile_opts_in`] with a cooperative [`CancelToken`]
/// (see [`crate::dp::earliest_arrival_dp_tile_cancel_in`]). A `None` or
/// never-fired token is result-identical to the plain path; a fired token
/// stops the DP within one stride and the returned partial histogram must be
/// discarded.
pub fn occupancy_histogram_tile_cancel_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
    options: DpOptions,
    cancel: Option<&CancelToken>,
) -> OccupancyHistogram {
    occupancy_histogram_tile_stats_in(
        arena, timeline, targets, col_start, col_len, options, cancel,
    )
    .0
}

/// [`occupancy_histogram_tile_cancel_in`] that also surfaces the engine's
/// [`DpStats`] instead of dropping them in the sink — the telemetry hook of
/// the sweep scheduler. The histogram is byte-for-byte the one the plain
/// variant returns; the stats are observational only and, like the
/// histogram, must be discarded if the token fired mid-run.
pub fn occupancy_histogram_tile_stats_in(
    arena: &mut EngineArena,
    timeline: &Timeline,
    targets: &TargetSet,
    col_start: u32,
    col_len: usize,
    options: DpOptions,
    cancel: Option<&CancelToken>,
) -> (OccupancyHistogram, DpStats) {
    let mut sink = HistogramSink(OccupancyHistogram::new());
    let stats = earliest_arrival_dp_tile_cancel_in(
        arena, timeline, targets, col_start, col_len, &mut sink, options, cancel,
    );
    (sink.0, stats)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{io, Directedness};

    #[test]
    fn rates_are_reduced_and_sorted() {
        let mut h = OccupancyHistogram::new();
        h.record(1, 2);
        h.record(2, 4); // same rate as 1/2
        h.record(1, 1);
        h.record(1, 3);
        assert_eq!(h.total_trips(), 4);
        assert_eq!(h.distinct_rates(), 3);
        let rates = h.sorted_rates();
        assert_eq!(rates[0], (1.0 / 3.0, 1));
        assert_eq!(rates[1], (0.5, 2));
        assert_eq!(rates[2], (1.0, 1));
        assert!((h.fraction_at_one() - 0.25).abs() < 1e-12);
        assert!((h.mean() - (1.0 / 3.0 + 0.5 + 0.5 + 1.0) / 4.0).abs() < 1e-12);
    }

    #[test]
    fn total_aggregation_all_rates_one() {
        // With K = 1 every minimal trip is a single link: occupancy 1
        // (Section 4: "when the aggregation period reaches its maximum
        // value... their occupation rate is 1").
        let s = io::read_str("a b 0\nb c 5\nc d 9\n", Directedness::Undirected).unwrap();
        let h = occupancy_histogram(&s, 1, &TargetSet::all(4));
        assert!(h.total_trips() > 0);
        assert_eq!(h.fraction_at_one(), 1.0);
    }

    #[test]
    fn fine_aggregation_has_low_rates() {
        // Chain spread over a long period: at fine scales trips wait a lot.
        let s = io::read_str("a b 0\nb c 50\nc d 100\n", Directedness::Undirected).unwrap();
        let h = occupancy_histogram(&s, 100, &TargetSet::all(4));
        // a->d trip: 3 hops over 100 steps => rate ~0.03 exists
        let min_rate = h.sorted_rates().first().unwrap().0;
        assert!(min_rate < 0.1, "min rate {min_rate}");
    }

    #[test]
    fn merge_adds_counts() {
        let mut a = OccupancyHistogram::new();
        a.record(1, 2);
        let mut b = OccupancyHistogram::new();
        b.record(1, 2);
        b.record(1, 1);
        a.merge(&b);
        assert_eq!(a.total_trips(), 3);
        assert_eq!(a.sorted_rates(), vec![(0.5, 2), (1.0, 1)]);
    }

    #[test]
    fn empty_histogram_statistics() {
        let h = OccupancyHistogram::new();
        assert!(h.is_empty());
        assert!(h.mean().is_nan());
        assert!(h.fraction_at_one().is_nan());
        assert!(h.sorted_rates().is_empty());
    }
}
