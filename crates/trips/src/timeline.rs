//! Step sequences consumed by the dynamic program, in a flat CSR layout.
//!
//! The backward DP is agnostic to whether its steps are aggregation windows
//! of `G_Δ` or distinct timestamps of the raw stream `L`; both are "a finite
//! sequence of edge sets at strictly increasing steps". [`Timeline`] captures
//! that common shape, prepared once so the engine can iterate it in
//! descending order.
//!
//! # Layout
//!
//! A timeline is compressed-sparse-row over its non-empty steps: the edges
//! of all steps live in two contiguous parallel arrays (`edge_src`,
//! `edge_dst`), and `step_offsets[i]..step_offsets[i + 1]` delimits the
//! edges of the `i`-th non-empty step (`step_index[i]` holds its step
//! number). This replaces the earlier one-`Vec` -per-step layout: the DP
//! touches one flat allocation instead of chasing per-step vectors, and the
//! sweep stops paying an allocator round-trip per window.
//!
//! # The shared sorted event view
//!
//! Aggregating at scale `Δ = T/K` needs, per window, the *distinct* pairs
//! linked inside it. The naive route (bucket events per window, sort, dedup
//! — what this module did before the CSR rework) re-sorts every window of
//! every swept scale. [`EventView`] instead sorts the stream **once** by
//! `(u, v, t)`; for any `K`, scanning that view yields each pair's windows
//! in non-decreasing order, so per-window dedup degenerates to comparing
//! neighbors, and grouping by window is a stable two-pass radix scatter —
//! `O(E)` per scale, no comparison sort, no per-window allocation. The
//! occupancy sweep builds one `EventView` and feeds it to every scale (see
//! [`Timeline::aggregated_from_view`]).
//!
//! # Merge invariants (incremental adjacent-scale construction)
//!
//! A sweep evaluates the same stream at a *series* of scales, and adjacent
//! scales share almost all of their window structure. When the coarser
//! window count divides the finer one (`k_fine = r · k_coarse`),
//! [`Timeline::aggregated_by_merge`] derives the coarse timeline from the
//! fine one by merging runs of `r` adjacent windows instead of re-scattering
//! the full [`EventView`]; [`Timeline::merge_compatible`] is the predicate
//! guarding it. The merged timeline is **field-for-field identical** to the
//! scratch-built one ([`aggregated_from_view`](Timeline::aggregated_from_view)
//! at the same `k`), resting on these invariants:
//!
//! * **Exact window nesting.** [`WindowPartition::index`] maps an offset to
//!   `⌊off · k / span⌋` (clamped at `k − 1`). For any real `x` and integer
//!   `r ≥ 1`, `⌊⌊x · k_fine⌋ / r⌋ = ⌊x · k_coarse⌋` when
//!   `k_fine = r · k_coarse`, and the end-of-period clamp commutes with the
//!   division (`(k_fine − 1) / r = k_coarse − 1`). Hence every event's
//!   coarse window is its fine window divided by `r` — *no event can
//!   straddle a merge*. Non-divisor ratios have no such guarantee (a fine
//!   window can span a coarse boundary), which is exactly what
//!   `merge_compatible` rejects; callers then fall back to a scratch build.
//! * **Pair ids are scale-independent.** On the aggregated path, pair ids
//!   are assigned in `(u, v)`-sorted view order, so a pair's id is its rank
//!   among the view's distinct pairs — the same at every `k`. Merging
//!   carries ids through unchanged and copies `distinct_pairs`, preserving
//!   the stable-id contract the delta engine's watermarks key on.
//! * **Order and dedup.** Within a step, edges ascend by `(u, v)`, and pair
//!   ids are a monotone function of `(u, v)`; the union of the `r` fine
//!   steps of one coarse window is therefore a sorted-by-pair-id multiway
//!   merge, with equal ids collapsing to one edge — the same set, in the
//!   same order, that the radix scatter produces after its neighbor dedup.
//! * **Exact timelines never merge.** Their steps are distinct timestamps,
//!   not windows; `merge_compatible` is `false` for them.
//!
//! The differential proptest `timeline_incremental.rs` enforces the
//! field-for-field equality (offsets, edge arrays, pair ids, and the DP
//! results computed from them) over random streams × random divisor chains.
//!
//! # Splice invariants (append-only suffix rebuild)
//!
//! A streaming ingest session appends events to a stream whose study
//! period is **pinned** at creation; re-analysis must not rebuild every
//! scale's timeline from scratch when only the trailing windows changed.
//! [`Timeline::spliced_from_view`] rebuilds exactly the window suffix
//! `[first_dirty, K)` from the grown [`EventView`] and keeps the CSR
//! prefix of the old timeline verbatim (modulo pair-id remapping). The
//! result is **field-for-field identical** to
//! [`aggregated_from_view`](Timeline::aggregated_from_view) of the new
//! view at the same `K`, resting on these invariants:
//!
//! * **Pinned study period.** Both timelines must partition the *same*
//!   `[t_begin, t_end]` into `K` windows. If the period grew with the
//!   appended events, every window boundary `Δ = T/K` would move and no
//!   prefix could be reused — which is why ingest sessions require an
//!   explicit period up front (and reject out-of-period appends).
//! * **Append-only superset.** The new view's events are a superset of
//!   the old ones, and every *new* event lands in a window
//!   `>= first_dirty`. Windows `< first_dirty` therefore hold exactly the
//!   event multiset they held before, so their deduplicated steps are
//!   unchanged and the old CSR prefix (rows `< first_dirty`) is reused
//!   byte-for-byte. A conservative (too small) `first_dirty` is always
//!   safe — it only rebuilds more suffix than strictly necessary.
//! * **Pair ids are view ranks.** The aggregated path assigns pair ids in
//!   `(u, v)`-sorted view order. Appends can introduce new pairs anywhere
//!   in that order, shifting the ranks of existing pairs, so the reused
//!   prefix remaps each old id to the pair's rank in the *new* view
//!   (a monotone map — within-step ascending `(u, v)` order survives).
//!   The spliced timeline's ids therefore match the scratch build's ids
//!   exactly, preserving the stable-id contract inside the one timeline.
//! * **Dedup locality.** Same-pair-same-window repeats are adjacent in
//!   the view, and a window is either entirely in the prefix or entirely
//!   in the suffix — the scratch build's neighbor dedup commutes with the
//!   prefix/suffix split.
//!
//! The differential proptest `timeline_splice.rs` enforces splice-equals-
//! scratch over random streams × random append splits, and `Timeline`
//! derives `PartialEq` so callers (the sweep's session cache) can verify
//! "nothing actually changed at this scale" by direct comparison.

use saturn_linkstream::{LinkStream, WindowPartition};

/// A borrowed view of one non-empty step: its index in `0..num_steps` and
/// its deduplicated edge slices (`u <= v` holds per edge if undirected;
/// edges are in ascending `(u, v)` order).
#[derive(Clone, Copy, Debug)]
pub struct StepView<'a> {
    /// Step index (window index, or rank of the distinct timestamp).
    pub index: u32,
    /// Source endpoints of the step's distinct edges.
    pub src: &'a [u32],
    /// Destination endpoints, parallel to `src`.
    pub dst: &'a [u32],
    /// Stable pair id of each edge, parallel to `src`: every distinct
    /// `(src, dst)` pair of the timeline gets one id in
    /// `0..`[`Timeline::distinct_pairs`], identical across all the steps in
    /// which the pair recurs. The delta-propagation engine keys its
    /// per-(edge, direction) watermarks on these.
    pub pair: &'a [u32],
}

impl<'a> StepView<'a> {
    /// The step's edges as `(u, v)` pairs.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + 'a {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Number of distinct edges in the step.
    #[inline]
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the step carries no edge (never true for stored steps).
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// The stream's events re-sorted by `(u, v, t)`, shared by every scale of a
/// sweep. Building one costs a single `O(E log E)` sort; each
/// [`Timeline::aggregated_from_view`] is then `O(E)`.
#[derive(Clone, Debug)]
pub struct EventView {
    n: u32,
    directed: bool,
    t_begin: saturn_linkstream::Time,
    t_end: saturn_linkstream::Time,
    /// Event endpoints and instants, sorted by `(src, dst, tick)`.
    src: Vec<u32>,
    dst: Vec<u32>,
    ticks: Vec<i64>,
}

impl EventView {
    /// Sorts `stream`'s events by `(u, v, t)`.
    ///
    /// # Panics
    /// Panics if the stream holds `>= u32::MAX` events (the view and the
    /// CSR timelines built from it index with `u32`).
    pub fn new(stream: &LinkStream) -> Self {
        let events = stream.events();
        assert!(events.len() < u32::MAX as usize, "event count exceeds engine limit");
        let mut order: Vec<u32> = (0..events.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let l = &events[i as usize];
            (l.u.raw(), l.v.raw(), l.t.ticks())
        });
        let mut src = Vec::with_capacity(events.len());
        let mut dst = Vec::with_capacity(events.len());
        let mut ticks = Vec::with_capacity(events.len());
        for &i in &order {
            let l = &events[i as usize];
            src.push(l.u.raw());
            dst.push(l.v.raw());
            ticks.push(l.t.ticks());
        }
        EventView {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            t_begin: stream.t_begin(),
            t_end: stream.t_end(),
            src,
            dst,
            ticks,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the view holds no event (never true for built streams).
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// A prepared sequence of steps for the DP engine (see the module docs for
/// the CSR layout). `PartialEq` is field-for-field — two equal timelines
/// are interchangeable for the engine (the basis of the sweep cache's
/// scale-reuse test).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Timeline {
    n: u32,
    directed: bool,
    num_steps: u32,
    /// Indices of the non-empty steps, **ascending**.
    step_index: Vec<u32>,
    /// CSR offsets into the edge arrays; `len = step_index.len() + 1`.
    step_offsets: Vec<u32>,
    /// Edge sources, grouped by step, ascending `(u, v)` within a step.
    edge_src: Vec<u32>,
    /// Edge destinations, parallel to `edge_src`.
    edge_dst: Vec<u32>,
    /// Stable pair id of each edge, parallel to `edge_src` (see
    /// [`StepView::pair`]).
    edge_pair: Vec<u32>,
    /// Number of distinct `(src, dst)` pairs across all steps.
    distinct_pairs: u32,
    /// For exact timelines: tick of each step index (ascending). Empty for
    /// aggregated timelines.
    ticks: Vec<i64>,
}

/// Radix bucket width for the window-grouping scatter (16 bits keeps the
/// count array at 256 KiB and means a single pass for any sweep with
/// `K <= 65536`; a second pass covers the full `u32` step range).
const RADIX_BITS: u32 = 16;
const RADIX_SIZE: usize = 1 << RADIX_BITS;

impl Timeline {
    /// Builds the timeline of the aggregated series `G_Δ` with `Δ = T/k`:
    /// step `w` holds the distinct pairs linked inside window `w`.
    ///
    /// Sorts a fresh [`EventView`] internally; sweeps analyzing many scales
    /// of one stream should build the view once and call
    /// [`aggregated_from_view`](Timeline::aggregated_from_view).
    ///
    /// # Panics
    /// Panics if `k` is invalid for the stream's study period or exceeds
    /// `u32::MAX - 1` (the engine stores step indices as `u32`).
    pub fn aggregated(stream: &LinkStream, k: u64) -> Self {
        Self::aggregated_from_view(&EventView::new(stream), k)
    }

    /// Builds the aggregated timeline from a prepared [`EventView`] in
    /// `O(E)` — no comparison sort, no per-window allocation.
    ///
    /// # Panics
    /// As [`aggregated`](Timeline::aggregated).
    pub fn aggregated_from_view(view: &EventView, k: u64) -> Self {
        assert!(k < u32::MAX as u64, "window count {k} exceeds engine limit");
        let partition =
            WindowPartition::new(view.t_begin, view.t_end, k).expect("invalid window count");

        // 1. One pass over the pair-sorted view: map each event to its
        //    window and drop same-pair-same-window repeats (within a pair,
        //    ticks ascend, so repeats are adjacent). The same sort order
        //    makes all occurrences of one pair adjacent, so stable pair ids
        //    are assigned here by neighbor comparison — no hashing.
        let len = view.len();
        let mut win: Vec<u32> = Vec::with_capacity(len);
        let mut src: Vec<u32> = Vec::with_capacity(len);
        let mut dst: Vec<u32> = Vec::with_capacity(len);
        let mut pair: Vec<u32> = Vec::with_capacity(len);
        let mut next_pair = 0u32;
        for i in 0..len {
            let w = partition.index(saturn_linkstream::Time::new(view.ticks[i])) as u32;
            if let Some(last) = win.last() {
                let j = src.len() - 1;
                let same_pair = src[j] == view.src[i] && dst[j] == view.dst[i];
                if *last == w && same_pair {
                    continue;
                }
                if !same_pair {
                    next_pair += 1;
                }
            }
            win.push(w);
            src.push(view.src[i]);
            dst.push(view.dst[i]);
            pair.push(next_pair);
        }
        let distinct_pairs = if pair.is_empty() { 0 } else { next_pair + 1 };

        // 2. Stable LSD radix scatter by window. Stability preserves the
        //    pair-sorted order within each window, so every step's edges end
        //    up in ascending (u, v) order — the order the per-window sort
        //    used to produce. (The u32 bound is guaranteed by EventView::new,
        //    asserted here too since the radix offsets are u32 arithmetic.)
        assert!(src.len() < u32::MAX as usize, "edge count exceeds engine limit");
        let (win, src, dst, pair) = radix_by_window(win, src, dst, pair, k as u32);

        // 3. Fold runs of equal windows into the CSR arrays.
        let mut step_index = Vec::new();
        let mut step_offsets = vec![0u32];
        for (i, &w) in win.iter().enumerate() {
            if step_index.last() != Some(&w) {
                if !step_index.is_empty() {
                    step_offsets.push(i as u32);
                }
                step_index.push(w);
            }
        }
        if !step_index.is_empty() {
            step_offsets.push(win.len() as u32);
        }

        Timeline {
            n: view.n,
            directed: view.directed,
            num_steps: k as u32,
            step_index,
            step_offsets,
            edge_src: src,
            edge_dst: dst,
            edge_pair: pair,
            distinct_pairs,
            ticks: Vec::new(),
        }
    }

    /// Builds the exact timeline of the raw stream `L`: one step per distinct
    /// timestamp (links sharing an instant cannot be chained — Remark 1 — so
    /// an instant behaves exactly like one snapshot).
    ///
    /// # Panics
    /// Panics if the stream has `>= u32::MAX` distinct timestamps.
    pub fn exact(stream: &LinkStream) -> Self {
        // edges <= events, so this bounds the u32 CSR offsets below
        assert!(stream.events().len() < u32::MAX as usize, "edge count exceeds engine limit");
        let mut ticks = Vec::new();
        let mut step_index = Vec::new();
        let mut step_offsets = vec![0u32];
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_pair = Vec::new();
        // events are (t, u, v)-sorted, so one pair's occurrences are NOT
        // adjacent here (unlike the aggregated path) — a build-time hash
        // assigns the stable pair ids
        let mut pair_ids: rustc_hash::FxHashMap<(u32, u32), u32> =
            rustc_hash::FxHashMap::default();
        for (t, links) in stream.timestamp_groups() {
            let index = ticks.len() as u32;
            assert!(index < u32::MAX, "too many distinct timestamps");
            ticks.push(t.ticks());
            // events are stream-sorted by (t, u, v): within a timestamp
            // group they are already in (u, v) order, so dedup is a
            // neighbor comparison
            for l in links {
                let (u, v) = (l.u.raw(), l.v.raw());
                let start = *step_offsets.last().expect("non-empty offsets") as usize;
                if edge_src.len() > start {
                    let j = edge_src.len() - 1;
                    if edge_src[j] == u && edge_dst[j] == v {
                        continue;
                    }
                }
                let next = pair_ids.len() as u32;
                edge_pair.push(*pair_ids.entry((u, v)).or_insert(next));
                edge_src.push(u);
                edge_dst.push(v);
            }
            step_index.push(index);
            step_offsets.push(edge_src.len() as u32);
        }
        Timeline {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            num_steps: ticks.len() as u32,
            step_index,
            step_offsets,
            edge_src,
            edge_dst,
            edge_pair,
            distinct_pairs: pair_ids.len() as u32,
            ticks,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Total number of steps (windows `K`, or distinct timestamps).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Number of non-empty steps.
    pub fn nonempty_steps(&self) -> usize {
        self.step_index.len()
    }

    /// The `i`-th non-empty step in **ascending** index order.
    #[inline]
    pub fn step(&self, i: usize) -> StepView<'_> {
        let lo = self.step_offsets[i] as usize;
        let hi = self.step_offsets[i + 1] as usize;
        StepView {
            index: self.step_index[i],
            src: &self.edge_src[lo..hi],
            dst: &self.edge_dst[lo..hi],
            pair: &self.edge_pair[lo..hi],
        }
    }

    /// The non-empty steps in **descending** index order (DP iteration
    /// order).
    pub fn steps_desc(&self) -> impl Iterator<Item = StepView<'_>> {
        (0..self.nonempty_steps()).rev().map(|i| self.step(i))
    }

    /// The non-empty steps in ascending index order.
    pub fn steps_asc(&self) -> impl Iterator<Item = StepView<'_>> {
        (0..self.nonempty_steps()).map(|i| self.step(i))
    }

    /// Total number of edges `M` over all steps.
    pub fn total_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Number of distinct `(src, dst)` pairs across all steps — the id
    /// space of [`StepView::pair`]. The DP engine sizes its per-(edge,
    /// direction) delta watermarks as `2 × distinct_pairs`.
    pub fn distinct_pairs(&self) -> u32 {
        self.distinct_pairs
    }

    /// For exact timelines, the tick of step `index`; for aggregated
    /// timelines, `None`.
    pub fn tick_of(&self, index: u32) -> Option<i64> {
        self.ticks.get(index as usize).copied()
    }

    /// Whether this timeline is an exact (timestamp-indexed) one.
    pub fn is_exact(&self) -> bool {
        !self.ticks.is_empty()
    }

    /// Whether the timeline of `k` windows can be derived from this one by
    /// [`aggregated_by_merge`](Timeline::aggregated_by_merge): this timeline
    /// must be aggregated (window-indexed, not timestamp-indexed) and `k`
    /// must divide its window count — only then is every coarse window an
    /// exact union of adjacent fine windows (module docs, "Merge
    /// invariants").
    pub fn merge_compatible(&self, k: u64) -> bool {
        !self.is_exact()
            && k >= 1
            && k <= self.num_steps as u64
            && (self.num_steps as u64).is_multiple_of(k)
    }

    /// Derives the aggregated timeline at the coarser scale `k` by merging
    /// runs of `num_steps / k` adjacent windows, instead of re-scattering
    /// the full event view. Field-for-field identical to
    /// [`aggregated_from_view`](Timeline::aggregated_from_view) at the same
    /// `k` (module docs, "Merge invariants"); cost is `O(M_fine)` over the
    /// fine timeline's deduplicated edges — plus one bitmap-word walk per
    /// merged window — rather than `O(E)` over all events.
    ///
    /// Three run shapes, cheapest first: consecutive fine steps that each
    /// land *alone* in their coarse window are batched into one verbatim
    /// slice copy (their edges are contiguous in the CSR arrays — the
    /// dominant shape on the sparse fine-scale tail); a two-step window
    /// takes a classic two-way merge on pair ids (the dominant merging
    /// shape on ratio-2 chains); wider windows take a pair-id bitmap union
    /// whose ordered bit walk emits the sorted deduplicated result without
    /// any comparison merging.
    ///
    /// # Panics
    /// Panics unless [`merge_compatible`](Timeline::merge_compatible)
    /// holds.
    pub fn aggregated_by_merge(&self, k: u64) -> Timeline {
        assert!(
            self.merge_compatible(k),
            "scales are not merge-compatible: {} windows -> {k}",
            self.num_steps
        );
        let r = self.num_steps as u64 / k;
        if r == 1 {
            return self.clone();
        }
        let nonempty = self.nonempty_steps();
        let mut step_index = Vec::with_capacity(nonempty.min(k as usize));
        let mut step_offsets = Vec::with_capacity(nonempty.min(k as usize) + 1);
        step_offsets.push(0u32);
        let mut src = Vec::with_capacity(self.edge_src.len());
        let mut dst = Vec::with_capacity(self.edge_src.len());
        let mut pair = Vec::with_capacity(self.edge_src.len());
        // union scratch for 3+-step windows, allocated lazily on the first
        // one: a pair-id presence bitmap (cleared word-by-word as it is
        // walked) and the (src, dst) of each present pair
        let mut seen: Vec<u64> = Vec::new();
        let mut pair_src: Vec<u32> = Vec::new();
        let mut pair_dst: Vec<u32> = Vec::new();

        let coarse = |s: usize| (self.step_index[s] as u64 / r) as u32;
        let offs = |s: usize| self.step_offsets[s] as usize;
        let mut i = 0;
        while i < nonempty {
            let w = coarse(i);
            // the run of fine steps landing in coarse window `w`
            let mut j = i + 1;
            while j < nonempty && coarse(j) == w {
                j += 1;
            }
            if j == i + 1 {
                // `i` is alone in its window: extend the batch over every
                // following step that is also alone in its own window, and
                // copy the whole contiguous edge range in one go
                while j < nonempty
                    && coarse(j) != coarse(j - 1)
                    && (j + 1 == nonempty || coarse(j + 1) != coarse(j))
                {
                    j += 1;
                }
                let base = src.len();
                src.extend_from_slice(&self.edge_src[offs(i)..offs(j)]);
                dst.extend_from_slice(&self.edge_dst[offs(i)..offs(j)]);
                pair.extend_from_slice(&self.edge_pair[offs(i)..offs(j)]);
                for s in i..j {
                    step_index.push(coarse(s));
                    step_offsets.push((base + offs(s + 1) - offs(i)) as u32);
                }
                i = j;
                continue;
            }
            if j == i + 2 {
                // two fine steps: classic two-way merge on pair id (the
                // dominant merging case on ratio-2 chains at fine scales)
                let (mut a, a_hi) = (offs(i), offs(i + 1));
                let (mut b, b_hi) = (a_hi, offs(i + 2));
                while a < a_hi && b < b_hi {
                    let (pa, pb) = (self.edge_pair[a], self.edge_pair[b]);
                    let take = if pa <= pb { a } else { b };
                    src.push(self.edge_src[take]);
                    dst.push(self.edge_dst[take]);
                    pair.push(self.edge_pair[take]);
                    if pa <= pb {
                        a += 1;
                    }
                    if pb <= pa {
                        b += 1;
                    }
                }
                let (mut rest, hi) = if a < a_hi { (a, a_hi) } else { (b, b_hi) };
                while rest < hi {
                    src.push(self.edge_src[rest]);
                    dst.push(self.edge_dst[rest]);
                    pair.push(self.edge_pair[rest]);
                    rest += 1;
                }
            } else {
                // 3+ fine steps: mark pairs in the bitmap, then walk the
                // touched words in ascending order — pair ids ascend with
                // (u, v), so the bit walk *is* the sorted dedup union
                if seen.is_empty() {
                    seen = vec![0u64; (self.distinct_pairs as usize).div_ceil(64).max(1)];
                    pair_src = vec![0u32; self.distinct_pairs as usize];
                    pair_dst = vec![0u32; self.distinct_pairs as usize];
                }
                let (mut min_p, mut max_p) = (u32::MAX, 0u32);
                for e in offs(i)..offs(j) {
                    let p = self.edge_pair[e];
                    let (word, bit) = ((p >> 6) as usize, 1u64 << (p & 63));
                    if seen[word] & bit == 0 {
                        seen[word] |= bit;
                        pair_src[p as usize] = self.edge_src[e];
                        pair_dst[p as usize] = self.edge_dst[e];
                        min_p = min_p.min(p);
                        max_p = max_p.max(p);
                    }
                }
                let word_lo = (min_p >> 6) as usize;
                for (at, slot) in seen[word_lo..=(max_p >> 6) as usize].iter_mut().enumerate() {
                    let mut word = *slot;
                    *slot = 0;
                    while word != 0 {
                        let p = ((word_lo + at) as u32) << 6 | word.trailing_zeros();
                        src.push(pair_src[p as usize]);
                        dst.push(pair_dst[p as usize]);
                        pair.push(p);
                        word &= word - 1;
                    }
                }
            }
            step_index.push(w);
            step_offsets.push(src.len() as u32);
            i = j;
        }

        Timeline {
            n: self.n,
            directed: self.directed,
            num_steps: k as u32,
            step_index,
            step_offsets,
            edge_src: src,
            edge_dst: dst,
            edge_pair: pair,
            distinct_pairs: self.distinct_pairs,
            ticks: Vec::new(),
        }
    }

    /// Rebuilds only the window suffix `[first_dirty, K)` from the grown
    /// `view`, keeping this timeline's CSR prefix for the clean windows
    /// (module docs, "Splice invariants"). Field-for-field identical to
    /// [`aggregated_from_view`](Timeline::aggregated_from_view) of `view`
    /// at the same `K`, provided the study period is pinned, `view` is an
    /// append-only superset of the events this timeline was built from,
    /// and every appended event lands in a window `>= first_dirty`.
    /// `first_dirty == 0` is a plain scratch rebuild; a conservative
    /// (too small) `first_dirty` is always correct, just slower.
    ///
    /// Cost is `O(E)` for the pair/window pass (the pass is shared with a
    /// scratch build) but the radix scatter and CSR fold — the allocation-
    /// heavy parts — touch only the suffix events and `K - first_dirty`
    /// buckets.
    ///
    /// # Panics
    /// Panics if this timeline is exact, or `first_dirty > num_steps`, or
    /// the view's period disagrees with a prefix pair's presence (an
    /// append-only violation).
    pub fn spliced_from_view(&self, view: &EventView, first_dirty: u32) -> Timeline {
        assert!(!self.is_exact(), "suffix splice applies to aggregated timelines only");
        assert!(
            first_dirty <= self.num_steps,
            "first_dirty {first_dirty} exceeds window count {}",
            self.num_steps
        );
        let k = self.num_steps as u64;
        if first_dirty == 0 {
            return Timeline::aggregated_from_view(view, k);
        }
        let partition =
            WindowPartition::new(view.t_begin, view.t_end, k).expect("invalid window count");

        // One pass over the pair-sorted view: collect the sorted distinct
        // pairs (rank = the id a scratch build would assign) and the
        // deduplicated suffix events with windows shifted down by
        // `first_dirty`. Same-pair-same-window repeats are adjacent (within
        // a pair, ticks ascend), so the dedup matches the scratch pass.
        let len = view.len();
        let mut pairs_src: Vec<u32> = Vec::new();
        let mut pairs_dst: Vec<u32> = Vec::new();
        let mut win: Vec<u32> = Vec::new();
        let mut src: Vec<u32> = Vec::new();
        let mut dst: Vec<u32> = Vec::new();
        let mut pair: Vec<u32> = Vec::new();
        let mut cur: Option<(u32, u32)> = None;
        let mut prev_win = u32::MAX;
        for i in 0..len {
            let uv = (view.src[i], view.dst[i]);
            if cur != Some(uv) {
                cur = Some(uv);
                pairs_src.push(uv.0);
                pairs_dst.push(uv.1);
                prev_win = u32::MAX;
            }
            let w = partition.index(saturn_linkstream::Time::new(view.ticks[i])) as u32;
            if w == prev_win {
                continue;
            }
            prev_win = w;
            if w >= first_dirty {
                win.push(w - first_dirty);
                src.push(uv.0);
                dst.push(uv.1);
                pair.push((pairs_src.len() - 1) as u32);
            }
        }
        let distinct_pairs = pairs_src.len() as u32;
        assert!(src.len() < u32::MAX as usize, "edge count exceeds engine limit");
        let (win, src, dst, pair) =
            radix_by_window(win, src, dst, pair, self.num_steps - first_dirty);

        // Reuse the clean CSR prefix (steps with window < first_dirty),
        // remapping each old pair id to the pair's rank in the new view.
        let p = self.step_index.partition_point(|&w| w < first_dirty);
        let prefix_edges = self.step_offsets[p] as usize;
        let mut step_index = self.step_index[..p].to_vec();
        let mut step_offsets = self.step_offsets[..=p].to_vec();
        let mut edge_src = self.edge_src[..prefix_edges].to_vec();
        let mut edge_dst = self.edge_dst[..prefix_edges].to_vec();
        let mut remap = vec![u32::MAX; self.distinct_pairs as usize];
        let mut edge_pair: Vec<u32> = Vec::with_capacity(prefix_edges + pair.len());
        for e in 0..prefix_edges {
            let old = self.edge_pair[e] as usize;
            if remap[old] == u32::MAX {
                let uv = (self.edge_src[e], self.edge_dst[e]);
                let (mut lo, mut hi) = (0usize, pairs_src.len());
                while lo < hi {
                    let mid = (lo + hi) / 2;
                    if (pairs_src[mid], pairs_dst[mid]) < uv {
                        lo = mid + 1;
                    } else {
                        hi = mid;
                    }
                }
                assert!(
                    lo < pairs_src.len() && (pairs_src[lo], pairs_dst[lo]) == uv,
                    "prefix pair absent from the view: splice requires an append-only superset"
                );
                remap[old] = lo as u32;
            }
            edge_pair.push(remap[old]);
        }

        // Append the rebuilt suffix, folding equal-window runs into the CSR
        // arrays with indices and offsets shifted back up.
        edge_src.extend_from_slice(&src);
        edge_dst.extend_from_slice(&dst);
        edge_pair.extend_from_slice(&pair);
        let base = prefix_edges as u32;
        let mut i = 0usize;
        while i < win.len() {
            let w = win[i];
            let mut j = i + 1;
            while j < win.len() && win[j] == w {
                j += 1;
            }
            step_index.push(w + first_dirty);
            step_offsets.push(base + j as u32);
            i = j;
        }

        Timeline {
            n: view.n,
            directed: view.directed,
            num_steps: self.num_steps,
            step_index,
            step_offsets,
            edge_src,
            edge_dst,
            edge_pair,
            distinct_pairs,
            ticks: Vec::new(),
        }
    }

    /// An order-sensitive checksum over every field the DP engine consumes
    /// (step indices, CSR offsets, edge endpoints, pair ids, step/pair
    /// counts). Two timelines with equal checksums are field-for-field
    /// interchangeable for the engine; the sweep bench hard-asserts
    /// merged-vs-scratch checksum equality.
    pub fn checksum(&self) -> u64 {
        let mut acc = 0xcbf2_9ce4_8422_2325u64
            ^ ((self.num_steps as u64) << 1)
            ^ ((self.distinct_pairs as u64) << 33)
            ^ (self.directed as u64);
        let mut mix = |x: u64| {
            acc = (acc ^ x).wrapping_mul(0x9E37_79B9_7F4A_7C15).rotate_left(23);
        };
        for (i, &w) in self.step_index.iter().enumerate() {
            mix((w as u64) << 32 | self.step_offsets[i + 1] as u64);
        }
        for e in 0..self.edge_src.len() {
            mix((self.edge_src[e] as u64) << 40
                | (self.edge_dst[e] as u64) << 16
                | self.edge_pair[e] as u64 & 0xFFFF);
            mix(self.edge_pair[e] as u64);
        }
        acc
    }
}

/// Stable counting-sort of the `(win, src, dst, pair)` quads by `win`: one
/// pass when every window index fits 16 bits, else a classic two-pass LSD
/// radix (low 16 bits, then high bits). Returns the reordered arrays.
fn radix_by_window(
    win: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    pair: Vec<u32>,
    k: u32,
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    if win.is_empty() {
        return (win, src, dst, pair);
    }
    if (k as usize) <= RADIX_SIZE {
        let mut counts = vec![0u32; k.max(1) as usize];
        radix_pass((win, src, dst, pair), &mut counts, |w| w as usize)
    } else {
        let mut lo_counts = vec![0u32; RADIX_SIZE];
        let cur = radix_pass((win, src, dst, pair), &mut lo_counts, |w| {
            (w as usize) & (RADIX_SIZE - 1)
        });
        let mut hi_counts = vec![0u32; (((k - 1) as usize) >> RADIX_BITS) + 1];
        radix_pass(cur, &mut hi_counts, |w| (w >> RADIX_BITS) as usize)
    }
}

fn radix_pass(
    (win, src, dst, pair): (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>),
    counts: &mut [u32],
    bucket: impl Fn(u32) -> usize,
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    for &w in &win {
        counts[bucket(w)] += 1;
    }
    let mut offset = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = offset;
        offset += n;
    }
    let len = win.len();
    let mut out_win = vec![0u32; len];
    let mut out_src = vec![0u32; len];
    let mut out_dst = vec![0u32; len];
    let mut out_pair = vec![0u32; len];
    for i in 0..len {
        let b = bucket(win[i]);
        let pos = counts[b] as usize;
        counts[b] += 1;
        out_win[pos] = win[i];
        out_src[pos] = src[i];
        out_dst[pos] = dst[i];
        out_pair[pos] = pair[i];
    }
    (out_win, out_src, out_dst, out_pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("a", "b", 1); // same pair again
        b.add("b", "c", 1);
        b.add("c", "d", 9);
        b.build().unwrap()
    }

    #[test]
    fn aggregated_timeline_dedups_per_window() {
        let s = stream();
        let t = Timeline::aggregated(&s, 3); // Δ = 3: [0,3), [3,6), [6,9]
        assert_eq!(t.num_steps(), 3);
        assert!(!t.is_exact());
        let steps: Vec<(u32, usize)> = t.steps_desc().map(|s| (s.index, s.len())).collect();
        // window 0: {ab, bc}; window 2: {cd}; descending order
        assert_eq!(steps, vec![(2, 1), (0, 2)]);
        assert_eq!(t.total_edges(), 3);
    }

    #[test]
    fn exact_timeline_steps_are_distinct_timestamps() {
        let s = stream();
        let t = Timeline::exact(&s);
        assert!(t.is_exact());
        assert_eq!(t.num_steps(), 3); // t = 0, 1, 9
        assert_eq!(t.tick_of(0), Some(0));
        assert_eq!(t.tick_of(1), Some(1));
        assert_eq!(t.tick_of(2), Some(9));
        // descending
        let idx: Vec<u32> = t.steps_desc().map(|s| s.index).collect();
        assert_eq!(idx, vec![2, 1, 0]);
        // step at t=1 holds both ab (duplicate event collapses) and bc
        let mid: Vec<(u32, u32)> = t.steps_desc().nth(1).unwrap().edges().collect();
        assert_eq!(mid, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn total_aggregation_single_step() {
        let s = stream();
        let t = Timeline::aggregated(&s, 1);
        assert_eq!(t.num_steps(), 1);
        assert_eq!(t.nonempty_steps(), 1);
        assert_eq!(t.step(0).len(), 3); // ab, bc, cd
    }

    #[test]
    fn directed_edges_are_kept_oriented() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 0);
        b.add("b", "a", 0);
        let s = b.build().unwrap();
        let t = Timeline::exact(&s);
        assert!(t.is_directed());
        let edges: Vec<(u32, u32)> = t.step(0).edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn view_reuse_matches_fresh_aggregation() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 9);
        for i in 0..200i64 {
            b.add_indexed((i % 9) as u32, ((i * 5 + 1) % 9) as u32, (i * 13) % 997);
        }
        let s = b.build().unwrap();
        let view = EventView::new(&s);
        for k in [1u64, 2, 7, 100, 996, 997] {
            let fresh = Timeline::aggregated(&s, k);
            let shared = Timeline::aggregated_from_view(&view, k);
            assert_eq!(fresh.nonempty_steps(), shared.nonempty_steps(), "k={k}");
            for (a, b) in fresh.steps_desc().zip(shared.steps_desc()) {
                assert_eq!(a.index, b.index, "k={k}");
                assert_eq!(a.src, b.src, "k={k}");
                assert_eq!(a.dst, b.dst, "k={k}");
            }
        }
    }

    #[test]
    fn csr_edges_are_sorted_within_each_step() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 12);
        for i in 0..300i64 {
            b.add_indexed((i * 7 % 12) as u32, (i * 11 % 12) as u32, i % 50);
        }
        let s = b.build().unwrap();
        for k in [1u64, 3, 17, 50] {
            let t = Timeline::aggregated(&s, k);
            for step in t.steps_desc() {
                let edges: Vec<(u32, u32)> = step.edges().collect();
                assert!(edges.windows(2).all(|w| w[0] < w[1]), "k={k} step={}", step.index);
            }
        }
    }

    /// Pair ids are a bijection with the distinct `(src, dst)` pairs: the
    /// same pair carries the same id in every step it recurs in, different
    /// pairs never share an id, and ids cover `0..distinct_pairs` — on both
    /// the aggregated and the exact construction paths.
    #[test]
    fn pair_ids_are_stable_across_steps() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
        for i in 0..400i64 {
            b.add_indexed((i * 3 % 10) as u32, (i * 7 % 10) as u32, i % 83);
        }
        let s = b.build().unwrap();
        let timelines =
            [Timeline::exact(&s), Timeline::aggregated(&s, 5), Timeline::aggregated(&s, 80)];
        for t in &timelines {
            let mut id_of = std::collections::HashMap::new();
            for step in t.steps_asc() {
                for ((u, v), &p) in step.edges().zip(step.pair.iter()) {
                    assert!(p < t.distinct_pairs());
                    assert_eq!(*id_of.entry((u, v)).or_insert(p), p, "pair ({u},{v})");
                }
            }
            assert_eq!(id_of.len(), t.distinct_pairs() as usize);
            let distinct_ids: std::collections::HashSet<u32> =
                id_of.values().copied().collect();
            assert_eq!(distinct_ids.len(), t.distinct_pairs() as usize);
        }
    }

    /// Strict structural equality — every field the engine can observe.
    fn assert_identical(a: &Timeline, b: &Timeline, what: &str) {
        assert_eq!(a.num_steps(), b.num_steps(), "{what}: num_steps");
        assert_eq!(a.nonempty_steps(), b.nonempty_steps(), "{what}: nonempty_steps");
        assert_eq!(a.distinct_pairs(), b.distinct_pairs(), "{what}: distinct_pairs");
        assert_eq!(a.is_exact(), b.is_exact(), "{what}: is_exact");
        assert_eq!(a.is_directed(), b.is_directed(), "{what}: directedness");
        for i in 0..a.nonempty_steps() {
            let (x, y) = (a.step(i), b.step(i));
            assert_eq!(x.index, y.index, "{what}: step {i} index");
            assert_eq!(x.src, y.src, "{what}: step {i} src");
            assert_eq!(x.dst, y.dst, "{what}: step {i} dst");
            assert_eq!(x.pair, y.pair, "{what}: step {i} pair ids");
        }
        assert_eq!(a.checksum(), b.checksum(), "{what}: checksum");
    }

    #[test]
    fn merge_equals_scratch_across_divisor_ladder() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 11);
        for i in 0..500i64 {
            b.add_indexed((i * 3 % 11) as u32, (i * 7 % 11) as u32, (i * 17) % 1201);
        }
        let s = b.build().unwrap();
        let view = EventView::new(&s);
        // fine -> coarse ladder: every hop divides the previous window count
        for (k_fine, k_coarse) in
            [(1200u64, 600u64), (600, 120), (120, 12), (12, 1), (1200, 12)]
        {
            let fine = Timeline::aggregated_from_view(&view, k_fine);
            assert!(fine.merge_compatible(k_coarse), "{k_fine} -> {k_coarse}");
            let merged = fine.aggregated_by_merge(k_coarse);
            let scratch = Timeline::aggregated_from_view(&view, k_coarse);
            assert_identical(&merged, &scratch, &format!("merge {k_fine} -> {k_coarse}"));
        }
        // chained merges compose: 1200 -> 120 -> 12 equals scratch at 12
        let chained = Timeline::aggregated_from_view(&view, 1200)
            .aggregated_by_merge(120)
            .aggregated_by_merge(12);
        assert_identical(&chained, &Timeline::aggregated(&s, 12), "chained 1200->120->12");
    }

    #[test]
    fn splice_equals_scratch_across_append_splits() {
        // base stream + appended suffix under a pinned period [0, 1200]
        let k = 48u64;
        let mut base = LinkStreamBuilder::indexed(Directedness::Undirected, 9);
        base.period(0, 1200);
        for i in 0..300i64 {
            base.add_indexed((i * 3 % 9) as u32, (i * 7 % 9) as u32, (i * 11) % 900);
        }
        let old = base.clone().build().unwrap();
        // appends land at t >= 900: windows >= ceil-free index of t=900;
        // the pair pattern differs from the base, so new pairs interleave
        // into the sorted pair order and shift the ranks of old pairs
        let mut grown = base;
        for i in 0..80i64 {
            grown.add_indexed((i % 9) as u32, ((i * 5 + 1) % 9) as u32, 900 + (i * 3) % 300);
        }
        let new = grown.build().unwrap();
        assert_eq!((new.t_begin(), new.t_end()), (old.t_begin(), old.t_end()), "pinned");
        let old_tl = Timeline::aggregated(&old, k);
        let view = EventView::new(&new);
        let scratch = Timeline::aggregated_from_view(&view, k);
        // the tight first_dirty (window of the earliest append) plus
        // conservative picks down to 0 (the scratch-rebuild degenerate)
        let tight = new.partition(k).unwrap().index(saturn_linkstream::Time::new(900)) as u32;
        for fd in [tight, tight / 2, 7, 1, 0] {
            let spliced = old_tl.spliced_from_view(&view, fd);
            assert_identical(&spliced, &scratch, &format!("splice first_dirty={fd}"));
            assert_eq!(spliced, scratch, "PartialEq agrees (first_dirty={fd})");
        }
    }

    #[test]
    fn splice_with_no_dirty_suffix_is_identity() {
        let s = stream();
        let view = EventView::new(&s);
        let t = Timeline::aggregated(&s, 3);
        // first_dirty == num_steps: the whole timeline is clean prefix
        assert_identical(&t.spliced_from_view(&view, 3), &t, "no-op splice");
        assert_eq!(t.spliced_from_view(&view, 3), t);
    }

    #[test]
    #[should_panic(expected = "aggregated timelines only")]
    fn splice_rejects_exact_timelines() {
        let s = stream();
        Timeline::exact(&s).spliced_from_view(&EventView::new(&s), 0);
    }

    #[test]
    #[should_panic(expected = "exceeds window count")]
    fn splice_rejects_out_of_range_first_dirty() {
        let s = stream();
        Timeline::aggregated(&s, 3).spliced_from_view(&EventView::new(&s), 4);
    }

    #[test]
    fn merge_compatibility_predicate() {
        let s = stream();
        let t = Timeline::aggregated(&s, 9);
        assert!(t.merge_compatible(9)); // ratio 1: trivial clone
        assert!(t.merge_compatible(3));
        assert!(t.merge_compatible(1));
        assert!(!t.merge_compatible(2)); // non-divisor
        assert!(!t.merge_compatible(4));
        assert!(!t.merge_compatible(0));
        assert!(!t.merge_compatible(18)); // refining is not merging
        assert!(!Timeline::exact(&s).merge_compatible(1)); // exact path never merges
    }

    #[test]
    #[should_panic(expected = "not merge-compatible")]
    fn merge_rejects_non_divisor_ratio() {
        let s = stream();
        Timeline::aggregated(&s, 9).aggregated_by_merge(2);
    }

    #[test]
    fn merge_ratio_one_is_identity() {
        let s = stream();
        let t = Timeline::aggregated(&s, 3);
        assert_identical(&t.aggregated_by_merge(3), &t, "ratio-1 merge");
    }

    #[test]
    fn merge_handles_wide_ratios_through_the_bitmap_union_path() {
        // >2 non-empty fine steps per coarse window exercises the pair-id
        // bitmap union; a bursty pair recurring across fine windows inside
        // one coarse window exercises dedup
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 6);
        for i in 0..240i64 {
            b.add_indexed((i % 5) as u32, 5, i * 5 % 1200);
            b.add_indexed(0, 1, i * 7 % 1200); // recurrent pair
        }
        let s = b.build().unwrap();
        let view = EventView::new(&s);
        let fine = Timeline::aggregated_from_view(&view, 1200);
        for k in [240u64, 48, 8, 2] {
            let merged = fine.aggregated_by_merge(k);
            assert_identical(
                &merged,
                &Timeline::aggregated_from_view(&view, k),
                &format!("wide-ratio merge 1200 -> {k}"),
            );
        }
    }

    #[test]
    fn checksum_distinguishes_different_timelines() {
        let s = stream();
        let a = Timeline::aggregated(&s, 3);
        let b = Timeline::aggregated(&s, 9);
        assert_ne!(a.checksum(), b.checksum());
        assert_eq!(a.checksum(), Timeline::aggregated(&s, 3).checksum());
    }

    #[test]
    fn radix_handles_many_windows() {
        // force the two-pass path: K > 65536
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 4);
        for i in 0..120i64 {
            b.add_indexed((i % 4) as u32, ((i + 1) % 4) as u32, i * 1_000);
        }
        let s = b.build().unwrap();
        let k = 100_000u64;
        let t = Timeline::aggregated(&s, k);
        assert_eq!(t.num_steps(), k as u32);
        // all step indices strictly ascending
        let idx: Vec<u32> = t.steps_asc().map(|s| s.index).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t.total_edges(), 120); // every event lands in its own window
    }
}
