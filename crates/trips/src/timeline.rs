//! Step sequences consumed by the dynamic program, in a flat CSR layout.
//!
//! The backward DP is agnostic to whether its steps are aggregation windows
//! of `G_Δ` or distinct timestamps of the raw stream `L`; both are "a finite
//! sequence of edge sets at strictly increasing steps". [`Timeline`] captures
//! that common shape, prepared once so the engine can iterate it in
//! descending order.
//!
//! # Layout
//!
//! A timeline is compressed-sparse-row over its non-empty steps: the edges
//! of all steps live in two contiguous parallel arrays (`edge_src`,
//! `edge_dst`), and `step_offsets[i]..step_offsets[i + 1]` delimits the
//! edges of the `i`-th non-empty step (`step_index[i]` holds its step
//! number). This replaces the earlier one-`Vec` -per-step layout: the DP
//! touches one flat allocation instead of chasing per-step vectors, and the
//! sweep stops paying an allocator round-trip per window.
//!
//! # The shared sorted event view
//!
//! Aggregating at scale `Δ = T/K` needs, per window, the *distinct* pairs
//! linked inside it. The naive route (bucket events per window, sort, dedup
//! — what this module did before the CSR rework) re-sorts every window of
//! every swept scale. [`EventView`] instead sorts the stream **once** by
//! `(u, v, t)`; for any `K`, scanning that view yields each pair's windows
//! in non-decreasing order, so per-window dedup degenerates to comparing
//! neighbors, and grouping by window is a stable two-pass radix scatter —
//! `O(E)` per scale, no comparison sort, no per-window allocation. The
//! occupancy sweep builds one `EventView` and feeds it to every scale (see
//! [`Timeline::aggregated_from_view`]).

use saturn_linkstream::{LinkStream, WindowPartition};

/// A borrowed view of one non-empty step: its index in `0..num_steps` and
/// its deduplicated edge slices (`u <= v` holds per edge if undirected;
/// edges are in ascending `(u, v)` order).
#[derive(Clone, Copy, Debug)]
pub struct StepView<'a> {
    /// Step index (window index, or rank of the distinct timestamp).
    pub index: u32,
    /// Source endpoints of the step's distinct edges.
    pub src: &'a [u32],
    /// Destination endpoints, parallel to `src`.
    pub dst: &'a [u32],
    /// Stable pair id of each edge, parallel to `src`: every distinct
    /// `(src, dst)` pair of the timeline gets one id in
    /// `0..`[`Timeline::distinct_pairs`], identical across all the steps in
    /// which the pair recurs. The delta-propagation engine keys its
    /// per-(edge, direction) watermarks on these.
    pub pair: &'a [u32],
}

impl<'a> StepView<'a> {
    /// The step's edges as `(u, v)` pairs.
    #[inline]
    pub fn edges(&self) -> impl Iterator<Item = (u32, u32)> + 'a {
        self.src.iter().copied().zip(self.dst.iter().copied())
    }

    /// Number of distinct edges in the step.
    #[inline]
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the step carries no edge (never true for stored steps).
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// The stream's events re-sorted by `(u, v, t)`, shared by every scale of a
/// sweep. Building one costs a single `O(E log E)` sort; each
/// [`Timeline::aggregated_from_view`] is then `O(E)`.
#[derive(Clone, Debug)]
pub struct EventView {
    n: u32,
    directed: bool,
    t_begin: saturn_linkstream::Time,
    t_end: saturn_linkstream::Time,
    /// Event endpoints and instants, sorted by `(src, dst, tick)`.
    src: Vec<u32>,
    dst: Vec<u32>,
    ticks: Vec<i64>,
}

impl EventView {
    /// Sorts `stream`'s events by `(u, v, t)`.
    ///
    /// # Panics
    /// Panics if the stream holds `>= u32::MAX` events (the view and the
    /// CSR timelines built from it index with `u32`).
    pub fn new(stream: &LinkStream) -> Self {
        let events = stream.events();
        assert!(
            events.len() < u32::MAX as usize,
            "event count exceeds engine limit"
        );
        let mut order: Vec<u32> = (0..events.len() as u32).collect();
        order.sort_unstable_by_key(|&i| {
            let l = &events[i as usize];
            (l.u.raw(), l.v.raw(), l.t.ticks())
        });
        let mut src = Vec::with_capacity(events.len());
        let mut dst = Vec::with_capacity(events.len());
        let mut ticks = Vec::with_capacity(events.len());
        for &i in &order {
            let l = &events[i as usize];
            src.push(l.u.raw());
            dst.push(l.v.raw());
            ticks.push(l.t.ticks());
        }
        EventView {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            t_begin: stream.t_begin(),
            t_end: stream.t_end(),
            src,
            dst,
            ticks,
        }
    }

    /// Number of events.
    pub fn len(&self) -> usize {
        self.src.len()
    }

    /// Whether the view holds no event (never true for built streams).
    pub fn is_empty(&self) -> bool {
        self.src.is_empty()
    }
}

/// A prepared sequence of steps for the DP engine (see the module docs for
/// the CSR layout).
#[derive(Clone, Debug)]
pub struct Timeline {
    n: u32,
    directed: bool,
    num_steps: u32,
    /// Indices of the non-empty steps, **ascending**.
    step_index: Vec<u32>,
    /// CSR offsets into the edge arrays; `len = step_index.len() + 1`.
    step_offsets: Vec<u32>,
    /// Edge sources, grouped by step, ascending `(u, v)` within a step.
    edge_src: Vec<u32>,
    /// Edge destinations, parallel to `edge_src`.
    edge_dst: Vec<u32>,
    /// Stable pair id of each edge, parallel to `edge_src` (see
    /// [`StepView::pair`]).
    edge_pair: Vec<u32>,
    /// Number of distinct `(src, dst)` pairs across all steps.
    distinct_pairs: u32,
    /// For exact timelines: tick of each step index (ascending). Empty for
    /// aggregated timelines.
    ticks: Vec<i64>,
}

/// Radix bucket width for the window-grouping scatter (16 bits keeps the
/// count array at 256 KiB and means a single pass for any sweep with
/// `K <= 65536`; a second pass covers the full `u32` step range).
const RADIX_BITS: u32 = 16;
const RADIX_SIZE: usize = 1 << RADIX_BITS;

impl Timeline {
    /// Builds the timeline of the aggregated series `G_Δ` with `Δ = T/k`:
    /// step `w` holds the distinct pairs linked inside window `w`.
    ///
    /// Sorts a fresh [`EventView`] internally; sweeps analyzing many scales
    /// of one stream should build the view once and call
    /// [`aggregated_from_view`](Timeline::aggregated_from_view).
    ///
    /// # Panics
    /// Panics if `k` is invalid for the stream's study period or exceeds
    /// `u32::MAX - 1` (the engine stores step indices as `u32`).
    pub fn aggregated(stream: &LinkStream, k: u64) -> Self {
        Self::aggregated_from_view(&EventView::new(stream), k)
    }

    /// Builds the aggregated timeline from a prepared [`EventView`] in
    /// `O(E)` — no comparison sort, no per-window allocation.
    ///
    /// # Panics
    /// As [`aggregated`](Timeline::aggregated).
    pub fn aggregated_from_view(view: &EventView, k: u64) -> Self {
        assert!(k < u32::MAX as u64, "window count {k} exceeds engine limit");
        let partition = WindowPartition::new(view.t_begin, view.t_end, k)
            .expect("invalid window count");

        // 1. One pass over the pair-sorted view: map each event to its
        //    window and drop same-pair-same-window repeats (within a pair,
        //    ticks ascend, so repeats are adjacent). The same sort order
        //    makes all occurrences of one pair adjacent, so stable pair ids
        //    are assigned here by neighbor comparison — no hashing.
        let len = view.len();
        let mut win: Vec<u32> = Vec::with_capacity(len);
        let mut src: Vec<u32> = Vec::with_capacity(len);
        let mut dst: Vec<u32> = Vec::with_capacity(len);
        let mut pair: Vec<u32> = Vec::with_capacity(len);
        let mut next_pair = 0u32;
        for i in 0..len {
            let w = partition.index(saturn_linkstream::Time::new(view.ticks[i])) as u32;
            if let Some(last) = win.last() {
                let j = src.len() - 1;
                let same_pair = src[j] == view.src[i] && dst[j] == view.dst[i];
                if *last == w && same_pair {
                    continue;
                }
                if !same_pair {
                    next_pair += 1;
                }
            }
            win.push(w);
            src.push(view.src[i]);
            dst.push(view.dst[i]);
            pair.push(next_pair);
        }
        let distinct_pairs = if pair.is_empty() { 0 } else { next_pair + 1 };

        // 2. Stable LSD radix scatter by window. Stability preserves the
        //    pair-sorted order within each window, so every step's edges end
        //    up in ascending (u, v) order — the order the per-window sort
        //    used to produce. (The u32 bound is guaranteed by EventView::new,
        //    asserted here too since the radix offsets are u32 arithmetic.)
        assert!(src.len() < u32::MAX as usize, "edge count exceeds engine limit");
        let (win, src, dst, pair) = radix_by_window(win, src, dst, pair, k as u32);

        // 3. Fold runs of equal windows into the CSR arrays.
        let mut step_index = Vec::new();
        let mut step_offsets = vec![0u32];
        for (i, &w) in win.iter().enumerate() {
            if step_index.last() != Some(&w) {
                if !step_index.is_empty() {
                    step_offsets.push(i as u32);
                }
                step_index.push(w);
            }
        }
        if !step_index.is_empty() {
            step_offsets.push(win.len() as u32);
        }

        Timeline {
            n: view.n,
            directed: view.directed,
            num_steps: k as u32,
            step_index,
            step_offsets,
            edge_src: src,
            edge_dst: dst,
            edge_pair: pair,
            distinct_pairs,
            ticks: Vec::new(),
        }
    }

    /// Builds the exact timeline of the raw stream `L`: one step per distinct
    /// timestamp (links sharing an instant cannot be chained — Remark 1 — so
    /// an instant behaves exactly like one snapshot).
    ///
    /// # Panics
    /// Panics if the stream has `>= u32::MAX` distinct timestamps.
    pub fn exact(stream: &LinkStream) -> Self {
        // edges <= events, so this bounds the u32 CSR offsets below
        assert!(
            stream.events().len() < u32::MAX as usize,
            "edge count exceeds engine limit"
        );
        let mut ticks = Vec::new();
        let mut step_index = Vec::new();
        let mut step_offsets = vec![0u32];
        let mut edge_src = Vec::new();
        let mut edge_dst = Vec::new();
        let mut edge_pair = Vec::new();
        // events are (t, u, v)-sorted, so one pair's occurrences are NOT
        // adjacent here (unlike the aggregated path) — a build-time hash
        // assigns the stable pair ids
        let mut pair_ids: rustc_hash::FxHashMap<(u32, u32), u32> =
            rustc_hash::FxHashMap::default();
        for (t, links) in stream.timestamp_groups() {
            let index = ticks.len() as u32;
            assert!(index < u32::MAX, "too many distinct timestamps");
            ticks.push(t.ticks());
            // events are stream-sorted by (t, u, v): within a timestamp
            // group they are already in (u, v) order, so dedup is a
            // neighbor comparison
            for l in links {
                let (u, v) = (l.u.raw(), l.v.raw());
                let start = *step_offsets.last().expect("non-empty offsets") as usize;
                if edge_src.len() > start {
                    let j = edge_src.len() - 1;
                    if edge_src[j] == u && edge_dst[j] == v {
                        continue;
                    }
                }
                let next = pair_ids.len() as u32;
                edge_pair.push(*pair_ids.entry((u, v)).or_insert(next));
                edge_src.push(u);
                edge_dst.push(v);
            }
            step_index.push(index);
            step_offsets.push(edge_src.len() as u32);
        }
        Timeline {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            num_steps: ticks.len() as u32,
            step_index,
            step_offsets,
            edge_src,
            edge_dst,
            edge_pair,
            distinct_pairs: pair_ids.len() as u32,
            ticks,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Total number of steps (windows `K`, or distinct timestamps).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// Number of non-empty steps.
    pub fn nonempty_steps(&self) -> usize {
        self.step_index.len()
    }

    /// The `i`-th non-empty step in **ascending** index order.
    #[inline]
    pub fn step(&self, i: usize) -> StepView<'_> {
        let lo = self.step_offsets[i] as usize;
        let hi = self.step_offsets[i + 1] as usize;
        StepView {
            index: self.step_index[i],
            src: &self.edge_src[lo..hi],
            dst: &self.edge_dst[lo..hi],
            pair: &self.edge_pair[lo..hi],
        }
    }

    /// The non-empty steps in **descending** index order (DP iteration
    /// order).
    pub fn steps_desc(&self) -> impl Iterator<Item = StepView<'_>> {
        (0..self.nonempty_steps()).rev().map(|i| self.step(i))
    }

    /// The non-empty steps in ascending index order.
    pub fn steps_asc(&self) -> impl Iterator<Item = StepView<'_>> {
        (0..self.nonempty_steps()).map(|i| self.step(i))
    }

    /// Total number of edges `M` over all steps.
    pub fn total_edges(&self) -> usize {
        self.edge_src.len()
    }

    /// Number of distinct `(src, dst)` pairs across all steps — the id
    /// space of [`StepView::pair`]. The DP engine sizes its per-(edge,
    /// direction) delta watermarks as `2 × distinct_pairs`.
    pub fn distinct_pairs(&self) -> u32 {
        self.distinct_pairs
    }

    /// For exact timelines, the tick of step `index`; for aggregated
    /// timelines, `None`.
    pub fn tick_of(&self, index: u32) -> Option<i64> {
        self.ticks.get(index as usize).copied()
    }

    /// Whether this timeline is an exact (timestamp-indexed) one.
    pub fn is_exact(&self) -> bool {
        !self.ticks.is_empty()
    }
}

/// Stable counting-sort of the `(win, src, dst, pair)` quads by `win`: one
/// pass when every window index fits 16 bits, else a classic two-pass LSD
/// radix (low 16 bits, then high bits). Returns the reordered arrays.
fn radix_by_window(
    win: Vec<u32>,
    src: Vec<u32>,
    dst: Vec<u32>,
    pair: Vec<u32>,
    k: u32,
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    if win.is_empty() {
        return (win, src, dst, pair);
    }
    if (k as usize) <= RADIX_SIZE {
        let mut counts = vec![0u32; k.max(1) as usize];
        radix_pass((win, src, dst, pair), &mut counts, |w| w as usize)
    } else {
        let mut lo_counts = vec![0u32; RADIX_SIZE];
        let cur = radix_pass((win, src, dst, pair), &mut lo_counts, |w| {
            (w as usize) & (RADIX_SIZE - 1)
        });
        let mut hi_counts = vec![0u32; (((k - 1) as usize) >> RADIX_BITS) + 1];
        radix_pass(cur, &mut hi_counts, |w| (w >> RADIX_BITS) as usize)
    }
}

fn radix_pass(
    (win, src, dst, pair): (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>),
    counts: &mut [u32],
    bucket: impl Fn(u32) -> usize,
) -> (Vec<u32>, Vec<u32>, Vec<u32>, Vec<u32>) {
    for &w in &win {
        counts[bucket(w)] += 1;
    }
    let mut offset = 0u32;
    for c in counts.iter_mut() {
        let n = *c;
        *c = offset;
        offset += n;
    }
    let len = win.len();
    let mut out_win = vec![0u32; len];
    let mut out_src = vec![0u32; len];
    let mut out_dst = vec![0u32; len];
    let mut out_pair = vec![0u32; len];
    for i in 0..len {
        let b = bucket(win[i]);
        let pos = counts[b] as usize;
        counts[b] += 1;
        out_win[pos] = win[i];
        out_src[pos] = src[i];
        out_dst[pos] = dst[i];
        out_pair[pos] = pair[i];
    }
    (out_win, out_src, out_dst, out_pair)
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("a", "b", 1); // same pair again
        b.add("b", "c", 1);
        b.add("c", "d", 9);
        b.build().unwrap()
    }

    #[test]
    fn aggregated_timeline_dedups_per_window() {
        let s = stream();
        let t = Timeline::aggregated(&s, 3); // Δ = 3: [0,3), [3,6), [6,9]
        assert_eq!(t.num_steps(), 3);
        assert!(!t.is_exact());
        let steps: Vec<(u32, usize)> =
            t.steps_desc().map(|s| (s.index, s.len())).collect();
        // window 0: {ab, bc}; window 2: {cd}; descending order
        assert_eq!(steps, vec![(2, 1), (0, 2)]);
        assert_eq!(t.total_edges(), 3);
    }

    #[test]
    fn exact_timeline_steps_are_distinct_timestamps() {
        let s = stream();
        let t = Timeline::exact(&s);
        assert!(t.is_exact());
        assert_eq!(t.num_steps(), 3); // t = 0, 1, 9
        assert_eq!(t.tick_of(0), Some(0));
        assert_eq!(t.tick_of(1), Some(1));
        assert_eq!(t.tick_of(2), Some(9));
        // descending
        let idx: Vec<u32> = t.steps_desc().map(|s| s.index).collect();
        assert_eq!(idx, vec![2, 1, 0]);
        // step at t=1 holds both ab (duplicate event collapses) and bc
        let mid: Vec<(u32, u32)> = t.steps_desc().nth(1).unwrap().edges().collect();
        assert_eq!(mid, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn total_aggregation_single_step() {
        let s = stream();
        let t = Timeline::aggregated(&s, 1);
        assert_eq!(t.num_steps(), 1);
        assert_eq!(t.nonempty_steps(), 1);
        assert_eq!(t.step(0).len(), 3); // ab, bc, cd
    }

    #[test]
    fn directed_edges_are_kept_oriented() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 0);
        b.add("b", "a", 0);
        let s = b.build().unwrap();
        let t = Timeline::exact(&s);
        assert!(t.is_directed());
        let edges: Vec<(u32, u32)> = t.step(0).edges().collect();
        assert_eq!(edges, vec![(0, 1), (1, 0)]);
    }

    #[test]
    fn view_reuse_matches_fresh_aggregation() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 9);
        for i in 0..200i64 {
            b.add_indexed((i % 9) as u32, ((i * 5 + 1) % 9) as u32, (i * 13) % 997);
        }
        let s = b.build().unwrap();
        let view = EventView::new(&s);
        for k in [1u64, 2, 7, 100, 996, 997] {
            let fresh = Timeline::aggregated(&s, k);
            let shared = Timeline::aggregated_from_view(&view, k);
            assert_eq!(fresh.nonempty_steps(), shared.nonempty_steps(), "k={k}");
            for (a, b) in fresh.steps_desc().zip(shared.steps_desc()) {
                assert_eq!(a.index, b.index, "k={k}");
                assert_eq!(a.src, b.src, "k={k}");
                assert_eq!(a.dst, b.dst, "k={k}");
            }
        }
    }

    #[test]
    fn csr_edges_are_sorted_within_each_step() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 12);
        for i in 0..300i64 {
            b.add_indexed((i * 7 % 12) as u32, (i * 11 % 12) as u32, i % 50);
        }
        let s = b.build().unwrap();
        for k in [1u64, 3, 17, 50] {
            let t = Timeline::aggregated(&s, k);
            for step in t.steps_desc() {
                let edges: Vec<(u32, u32)> = step.edges().collect();
                assert!(edges.windows(2).all(|w| w[0] < w[1]), "k={k} step={}", step.index);
            }
        }
    }

    /// Pair ids are a bijection with the distinct `(src, dst)` pairs: the
    /// same pair carries the same id in every step it recurs in, different
    /// pairs never share an id, and ids cover `0..distinct_pairs` — on both
    /// the aggregated and the exact construction paths.
    #[test]
    fn pair_ids_are_stable_across_steps() {
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 10);
        for i in 0..400i64 {
            b.add_indexed((i * 3 % 10) as u32, (i * 7 % 10) as u32, i % 83);
        }
        let s = b.build().unwrap();
        let timelines =
            [Timeline::exact(&s), Timeline::aggregated(&s, 5), Timeline::aggregated(&s, 80)];
        for t in &timelines {
            let mut id_of = std::collections::HashMap::new();
            for step in t.steps_asc() {
                for ((u, v), &p) in step.edges().zip(step.pair.iter()) {
                    assert!(p < t.distinct_pairs());
                    assert_eq!(*id_of.entry((u, v)).or_insert(p), p, "pair ({u},{v})");
                }
            }
            assert_eq!(id_of.len(), t.distinct_pairs() as usize);
            let distinct_ids: std::collections::HashSet<u32> =
                id_of.values().copied().collect();
            assert_eq!(distinct_ids.len(), t.distinct_pairs() as usize);
        }
    }

    #[test]
    fn radix_handles_many_windows() {
        // force the two-pass path: K > 65536
        let mut b = LinkStreamBuilder::indexed(Directedness::Undirected, 4);
        for i in 0..120i64 {
            b.add_indexed((i % 4) as u32, ((i + 1) % 4) as u32, i * 1_000);
        }
        let s = b.build().unwrap();
        let k = 100_000u64;
        let t = Timeline::aggregated(&s, k);
        assert_eq!(t.num_steps(), k as u32);
        // all step indices strictly ascending
        let idx: Vec<u32> = t.steps_asc().map(|s| s.index).collect();
        assert!(idx.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(t.total_edges(), 120); // every event lands in its own window
    }
}
