//! Step sequences consumed by the dynamic program.
//!
//! The backward DP is agnostic to whether its steps are aggregation windows
//! of `G_Δ` or distinct timestamps of the raw stream `L`; both are "a finite
//! sequence of edge sets at strictly increasing steps". [`Timeline`] captures
//! that common shape, prepared once so the engine can iterate it in
//! descending order.

use saturn_linkstream::LinkStream;

/// One non-empty step: its index in `0..num_steps` and its deduplicated edge
/// set.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Step {
    /// Step index (window index, or rank of the distinct timestamp).
    pub index: u32,
    /// Distinct edges of the step, sorted; `u <= v` holds if undirected.
    pub edges: Vec<(u32, u32)>,
}

/// A prepared sequence of steps for the DP engine.
#[derive(Clone, Debug)]
pub struct Timeline {
    n: u32,
    directed: bool,
    num_steps: u32,
    /// Non-empty steps in **descending** index order (DP iteration order).
    steps_desc: Vec<Step>,
    /// For exact timelines: tick of each step index (ascending). Empty for
    /// aggregated timelines.
    ticks: Vec<i64>,
}

impl Timeline {
    /// Builds the timeline of the aggregated series `G_Δ` with `Δ = T/k`:
    /// step `w` holds the distinct pairs linked inside window `w`.
    ///
    /// # Panics
    /// Panics if `k` is invalid for the stream's study period or exceeds
    /// `u32::MAX - 1` (the engine stores step indices as `u32`).
    pub fn aggregated(stream: &LinkStream, k: u64) -> Self {
        assert!(k < u32::MAX as u64, "window count {k} exceeds engine limit");
        let partition = stream.partition(k).expect("invalid window count");
        let mut steps_desc = Vec::new();
        for (w, links) in partition.window_slices_rev(stream) {
            let mut edges: Vec<(u32, u32)> =
                links.iter().map(|l| (l.u.raw(), l.v.raw())).collect();
            edges.sort_unstable();
            edges.dedup();
            steps_desc.push(Step { index: w as u32, edges });
        }
        Timeline {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            num_steps: k as u32,
            steps_desc,
            ticks: Vec::new(),
        }
    }

    /// Builds the exact timeline of the raw stream `L`: one step per distinct
    /// timestamp (links sharing an instant cannot be chained — Remark 1 — so
    /// an instant behaves exactly like one snapshot).
    ///
    /// # Panics
    /// Panics if the stream has `>= u32::MAX` distinct timestamps.
    pub fn exact(stream: &LinkStream) -> Self {
        let mut ticks = Vec::new();
        let mut steps_asc = Vec::new();
        for (t, links) in stream.timestamp_groups() {
            let index = ticks.len() as u32;
            assert!(index < u32::MAX, "too many distinct timestamps");
            ticks.push(t.ticks());
            let mut edges: Vec<(u32, u32)> =
                links.iter().map(|l| (l.u.raw(), l.v.raw())).collect();
            edges.sort_unstable();
            edges.dedup();
            steps_asc.push(Step { index, edges });
        }
        steps_asc.reverse();
        Timeline {
            n: stream.node_count() as u32,
            directed: stream.is_directed(),
            num_steps: ticks.len() as u32,
            steps_desc: steps_asc,
            ticks,
        }
    }

    /// Number of nodes.
    pub fn n(&self) -> u32 {
        self.n
    }

    /// Whether edges are directed.
    pub fn is_directed(&self) -> bool {
        self.directed
    }

    /// Total number of steps (windows `K`, or distinct timestamps).
    pub fn num_steps(&self) -> u32 {
        self.num_steps
    }

    /// The non-empty steps in descending index order.
    pub fn steps_desc(&self) -> &[Step] {
        &self.steps_desc
    }

    /// Total number of edges `M` over all steps.
    pub fn total_edges(&self) -> usize {
        self.steps_desc.iter().map(|s| s.edges.len()).sum()
    }

    /// For exact timelines, the tick of step `index`; for aggregated
    /// timelines, `None`.
    pub fn tick_of(&self, index: u32) -> Option<i64> {
        self.ticks.get(index as usize).copied()
    }

    /// Whether this timeline is an exact (timestamp-indexed) one.
    pub fn is_exact(&self) -> bool {
        !self.ticks.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use saturn_linkstream::{Directedness, LinkStreamBuilder};

    fn stream() -> LinkStream {
        let mut b = LinkStreamBuilder::new(Directedness::Undirected);
        b.add("a", "b", 0);
        b.add("a", "b", 1); // same pair again
        b.add("b", "c", 1);
        b.add("c", "d", 9);
        b.build().unwrap()
    }

    #[test]
    fn aggregated_timeline_dedups_per_window() {
        let s = stream();
        let t = Timeline::aggregated(&s, 3); // Δ = 3: [0,3), [3,6), [6,9]
        assert_eq!(t.num_steps(), 3);
        assert!(!t.is_exact());
        let steps: Vec<(u32, usize)> =
            t.steps_desc().iter().map(|s| (s.index, s.edges.len())).collect();
        // window 0: {ab, bc}; window 2: {cd}; descending order
        assert_eq!(steps, vec![(2, 1), (0, 2)]);
        assert_eq!(t.total_edges(), 3);
    }

    #[test]
    fn exact_timeline_steps_are_distinct_timestamps() {
        let s = stream();
        let t = Timeline::exact(&s);
        assert!(t.is_exact());
        assert_eq!(t.num_steps(), 3); // t = 0, 1, 9
        assert_eq!(t.tick_of(0), Some(0));
        assert_eq!(t.tick_of(1), Some(1));
        assert_eq!(t.tick_of(2), Some(9));
        // descending
        let idx: Vec<u32> = t.steps_desc().iter().map(|s| s.index).collect();
        assert_eq!(idx, vec![2, 1, 0]);
        // step at t=1 holds both ab (duplicate event collapses) and bc
        assert_eq!(t.steps_desc()[1].edges, vec![(0, 1), (1, 2)]);
    }

    #[test]
    fn total_aggregation_single_step() {
        let s = stream();
        let t = Timeline::aggregated(&s, 1);
        assert_eq!(t.num_steps(), 1);
        assert_eq!(t.steps_desc().len(), 1);
        assert_eq!(t.steps_desc()[0].edges.len(), 3); // ab, bc, cd
    }

    #[test]
    fn directed_edges_are_kept_oriented() {
        let mut b = LinkStreamBuilder::new(Directedness::Directed);
        b.add("a", "b", 0);
        b.add("b", "a", 0);
        let s = b.build().unwrap();
        let t = Timeline::exact(&s);
        assert!(t.is_directed());
        assert_eq!(t.steps_desc()[0].edges, vec![(0, 1), (1, 0)]);
    }
}
