//! Ablation called out in DESIGN.md §6: the engine snapshots pre-step rows
//! before applying a step's edges, which is what enforces the *strict*
//! inequality of Remark 1 (a temporal path cannot use two links of the same
//! snapshot). This test implements the naive in-place variant — the obvious
//! "optimization" of skipping the snapshot — and demonstrates that it
//! manufactures paths that do not exist, while the real engine agrees with
//! brute force.

use saturn_linkstream::{io, Directedness};
use saturn_trips::reference::minimal_trips_bruteforce;
use saturn_trips::{earliest_arrival_dp, DpOptions, TargetSet, Timeline, TripSink};
use std::collections::HashMap;

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);

impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

/// The deliberately broken variant: per-step updates read the *current*
/// table, so an edge can chain onto another edge of the same step.
fn naive_in_place_reachability(timeline: &Timeline) -> HashMap<(u32, u32), u32> {
    let n = timeline.n() as usize;
    let mut ea: Vec<u32> = vec![u32::MAX; n * n];
    for step in timeline.steps_desc() {
        let k = step.index;
        for (eu, ew) in step.edges() {
            let dirs =
                if timeline.is_directed() { vec![(eu, ew)] } else { vec![(eu, ew), (ew, eu)] };
            for (u, w) in dirs {
                for v in 0..n as u32 {
                    if v == u {
                        continue;
                    }
                    let cand = if v == w {
                        k
                    } else {
                        // BUG: reads the possibly-already-updated row of w,
                        // allowing same-step chaining
                        ea[w as usize * n + v as usize]
                    };
                    let cell = &mut ea[u as usize * n + v as usize];
                    if cand < *cell {
                        *cell = cand;
                    }
                }
            }
        }
    }
    let mut out = HashMap::new();
    for u in 0..n as u32 {
        for v in 0..n as u32 {
            let a = ea[u as usize * n + v as usize];
            if a != u32::MAX {
                out.insert((u, v), a);
            }
        }
    }
    out
}

/// A stream where the only a->c route requires chaining two links of the
/// same snapshot: the naive variant claims reachability, the real engine and
/// brute force must not.
///
/// The in-place bug only fires when the continuation row is updated *before*
/// the row that reads it, so the input is ordered to intern `b` and `c`
/// first: the step's sorted edge list is then `[(b,c), (b,a)]`, row `b`
/// learns about `c` first, and the subsequent `a`-via-`b` update chains two
/// same-window links.
#[test]
fn naive_in_place_violates_remark_1() {
    // both links inside window 0 of a K=1 aggregation; ids: b=0, c=1, a=2
    let s = io::read_str("b c 5\na b 0\n", Directedness::Undirected).unwrap();
    let (a, c) = (2u32, 1u32);
    let timeline = Timeline::aggregated(&s, 1);

    let naive = naive_in_place_reachability(&timeline);
    assert!(
        naive.contains_key(&(a, c)),
        "the buggy variant manufactures the forbidden a->c path: {naive:?}"
    );

    let mut sink = Collect::default();
    earliest_arrival_dp(&timeline, &TargetSet::all(3), &mut sink, DpOptions::default());
    assert!(
        !sink.0.iter().any(|&(u, v, ..)| (u, v) == (a, c)),
        "the real engine must respect Remark 1"
    );
    let brute = minimal_trips_bruteforce(&timeline, 10_000);
    assert!(!brute.iter().any(|&(u, v, ..)| (u, v) == (a, c)));
}

/// On a stream whose chains always span distinct steps, the two variants
/// coincide — the snapshotting only matters within a step (sanity check that
/// the ablation isolates the right mechanism).
#[test]
fn variants_agree_when_no_same_step_chaining_is_possible() {
    let s = io::read_str("a b 0\nb c 10\nc d 20\nd a 30\n", Directedness::Undirected).unwrap();
    let timeline = Timeline::aggregated(&s, 4); // one link per window
    let naive = naive_in_place_reachability(&timeline);

    let mut sink = Collect::default();
    earliest_arrival_dp(&timeline, &TargetSet::all(4), &mut sink, DpOptions::default());
    // earliest arrival per pair from the engine's trips (max dep's arr =
    // value at dep 0): take min arr per pair
    let mut engine: HashMap<(u32, u32), u32> = HashMap::new();
    for &(u, v, _dep, arr, _) in &sink.0 {
        engine.entry((u, v)).and_modify(|a| *a = (*a).min(arr)).or_insert(arr);
    }
    assert_eq!(naive, engine);
}

/// The degree-1 snapshot bypass must agree with the general snapshot path
/// on exactly the fixtures of this ablation suite — the streams engineered
/// to punish any Remark-1 ordering mistake. The bypass reads the
/// continuation row live and pre-snapshots only the written row, which is a
/// different mechanism than the slot machinery; this pins down that it is
/// not a different *semantics*.
#[test]
fn degree1_fast_path_matches_general_path_on_fixtures() {
    let fixtures: [(&str, Directedness); 3] = [
        ("b c 5\na b 0\n", Directedness::Undirected),
        ("a b 0\nb c 10\nc d 20\nd a 30\n", Directedness::Undirected),
        ("a b 0\nb a 1\nb c 2\n", Directedness::Directed),
    ];
    for (text, directedness) in fixtures {
        let s = io::read_str(text, directedness).unwrap();
        let n = s.node_count() as u32;
        for k in [1u64, 2, 4, s.span().max(1) as u64] {
            let timeline = Timeline::aggregated(&s, k);
            let mut fast = Collect::default();
            let fs = earliest_arrival_dp(
                &timeline,
                &TargetSet::all(n),
                &mut fast,
                DpOptions::default(),
            );
            let mut general = Collect::default();
            let gs = earliest_arrival_dp(
                &timeline,
                &TargetSet::all(n),
                &mut general,
                DpOptions { no_degree1_fast_path: true, ..Default::default() },
            );
            assert_eq!(fast.0, general.0, "{text:?} k={k}");
            assert_eq!(fs.trips, gs.trips, "{text:?} k={k}");
            assert_eq!(fs.traversals, gs.traversals, "{text:?} k={k}");
        }
    }
}

/// Directed same-step cycles are the nastiest case: a->b and b->a in one
/// window must not make a reach itself or chain further.
#[test]
fn directed_same_window_cycle() {
    let s = io::read_str("a b 0\nb a 1\nb c 2\n", Directedness::Directed).unwrap();
    let timeline = Timeline::aggregated(&s, 1);
    let mut sink = Collect::default();
    earliest_arrival_dp(&timeline, &TargetSet::all(3), &mut sink, DpOptions::default());
    let pairs: Vec<(u32, u32)> = sink.0.iter().map(|&(u, v, ..)| (u, v)).collect();
    // only the three direct links exist as trips
    assert_eq!(pairs.len(), 3);
    assert!(pairs.contains(&(0, 1)) && pairs.contains(&(1, 0)) && pairs.contains(&(1, 2)));
    assert!(!pairs.contains(&(0, 2)), "a->c would need two same-window hops");
}
