//! Differential validation of the suffix splice (`Timeline::
//! spliced_from_view`), the primitive behind streaming re-analysis: on
//! random streams × random append splits × random scales, a timeline
//! spliced from its pre-append predecessor must equal the scratch rebuild
//! of the grown stream **field for field** — step indices, CSR offsets,
//! edge arrays, pair ids, distinct-pair count — including over chains of
//! repeated appends (each round splicing the previous round's result) and
//! for every conservative (earlier-than-necessary) dirty mark.
//!
//! Field equality is the whole contract: `Timeline` derives `PartialEq`,
//! the DP engine is a pure function of the timeline, and the sweep cache's
//! reuse test is exactly `==` — so these properties are what make an
//! incremental refresh byte-identical to a scratch analyze.

use proptest::prelude::*;
use saturn_linkstream::{Directedness, LinkStream, LinkStreamBuilder, Time};
use saturn_trips::{EventView, Timeline};

/// The pinned study period every stream in this file lives on.
const PERIOD_END: i64 = 60;

/// Field-for-field equality (panics with context for the proptest report).
fn assert_timelines_identical(a: &Timeline, b: &Timeline, what: &str) {
    assert_eq!(a.num_steps(), b.num_steps(), "{what}: num_steps");
    assert_eq!(a.nonempty_steps(), b.nonempty_steps(), "{what}: nonempty_steps");
    assert_eq!(a.distinct_pairs(), b.distinct_pairs(), "{what}: distinct_pairs");
    assert_eq!(a.total_edges(), b.total_edges(), "{what}: total_edges");
    for i in 0..a.nonempty_steps() {
        let (x, y) = (a.step(i), b.step(i));
        assert_eq!(x.index, y.index, "{what}: step {i} index");
        assert_eq!(x.src, y.src, "{what}: step {i} src");
        assert_eq!(x.dst, y.dst, "{what}: step {i} dst");
        assert_eq!(x.pair, y.pair, "{what}: step {i} pair ids");
    }
    assert_eq!(a.checksum(), b.checksum(), "{what}: checksum");
    assert_eq!(a, b, "{what}: PartialEq must agree with the field walk");
}

/// Adds `events` to `builder`, clamping each timestamp into
/// `[split, PERIOD_END]` (the append region) and dropping self-loops.
fn append_region(builder: &mut LinkStreamBuilder, events: &[(u32, u32, i64)], split: i64) {
    for &(u, v, t) in events {
        if u != v {
            builder.add_indexed(u, v, split + t % (PERIOD_END - split + 1));
        }
    }
}

/// The first window of scale `k` an event at `split` can land in — the
/// tightest correct dirty mark for appends at `t >= split`.
fn tight_dirty(stream: &LinkStream, k: u64, split: i64) -> u32 {
    stream.partition(k).expect("valid scale").index(Time::new(split)) as u32
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// One append round: splice(old, grown view, first_dirty) == scratch
    /// for the tight dirty mark and for every conservative earlier one
    /// (halved, and the full-rebuild mark 0), directed and undirected.
    #[test]
    fn spliced_timeline_equals_scratch_on_random_append_splits(
        base in proptest::collection::vec((0u32..7, 0u32..7, 0i64..=PERIOD_END), 1..18),
        appends in proptest::collection::vec((0u32..7, 0u32..7, 0i64..=PERIOD_END), 0..12),
        split in 0i64..=PERIOD_END,
        k in 1u64..16,
        directed in any::<bool>(),
    ) {
        let d = if directed { Directedness::Directed } else { Directedness::Undirected };
        let mut builder = LinkStreamBuilder::indexed(d, 7);
        builder.period(0, PERIOD_END);
        for &(u, v, t) in &base {
            if u != v {
                builder.add_indexed(u, v, t);
            }
        }
        prop_assume!(!builder.is_empty());
        let base_stream = builder.snapshot().expect("non-empty base");
        append_region(&mut builder, &appends, split);
        let grown_stream = builder.build().expect("non-empty");

        let old = Timeline::aggregated_from_view(&EventView::new(&base_stream), k);
        let grown_view = EventView::new(&grown_stream);
        let scratch = Timeline::aggregated_from_view(&grown_view, k);
        let tight = tight_dirty(&grown_stream, k, split);
        for first_dirty in [tight, tight / 2, 0] {
            assert_timelines_identical(
                &old.spliced_from_view(&grown_view, first_dirty),
                &scratch,
                &format!("k={k} split={split} first_dirty={first_dirty}"),
            );
        }
    }

    /// Repeated appends: three growth rounds, each round splicing the
    /// *previous round's spliced* timeline (never a scratch one), exactly
    /// as a session's sweep cache chains refreshes. Every round must equal
    /// the scratch rebuild of the stream-so-far.
    #[test]
    fn splice_chains_across_repeated_appends(
        base in proptest::collection::vec((0u32..7, 0u32..7, 0i64..=PERIOD_END), 1..14),
        rounds in proptest::collection::vec(
            (proptest::collection::vec((0u32..7, 0u32..7, 0i64..=PERIOD_END), 0..8),
             0i64..=PERIOD_END),
            1..4,
        ),
        k in 1u64..16,
    ) {
        let mut builder = LinkStreamBuilder::indexed(Directedness::Undirected, 7);
        builder.period(0, PERIOD_END);
        for &(u, v, t) in &base {
            if u != v {
                builder.add_indexed(u, v, t);
            }
        }
        prop_assume!(!builder.is_empty());
        let mut current = Timeline::aggregated_from_view(
            &EventView::new(&builder.snapshot().expect("non-empty base")),
            k,
        );
        for (round, (events, split)) in rounds.iter().enumerate() {
            append_region(&mut builder, events, *split);
            let grown = builder.snapshot().expect("non-empty");
            let view = EventView::new(&grown);
            current = current.spliced_from_view(&view, tight_dirty(&grown, k, *split));
            assert_timelines_identical(
                &current,
                &Timeline::aggregated_from_view(&view, k),
                &format!("k={k} round={round} split={split}"),
            );
        }
    }
}
