//! Differential validation of incremental (adjacent-window merge) timeline
//! construction: on random streams and random divisor scale chains, a
//! timeline derived by `Timeline::aggregated_by_merge` must equal the
//! scratch-built timeline **field for field** — step indices, CSR offsets,
//! edge arrays, pair ids, distinct-pair count — and the DP engine must
//! produce identical trips, stats, and distance sums from either (with
//! delta propagation on and off, the machinery `proptest_frontier.rs`
//! exercises), so sweep reports match with incremental on or off.

use proptest::prelude::*;
use saturn_linkstream::{Directedness, LinkStreamBuilder};
use saturn_trips::{
    earliest_arrival_dp, occupancy_histogram_on, DpOptions, EventView, TargetSet, Timeline,
    TripSink,
};

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);

impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

/// A random stream over <= 7 nodes and <= 18 events in [0, 60].
fn arb_stream(directed: bool) -> impl Strategy<Value = saturn_linkstream::LinkStream> {
    let d = if directed { Directedness::Directed } else { Directedness::Undirected };
    proptest::collection::vec((0u32..7, 0u32..7, 0i64..61), 1..18).prop_filter_map(
        "needs at least one non-loop event",
        move |events| {
            let mut b = LinkStreamBuilder::indexed(d, 7);
            for (u, v, t) in events {
                if u != v {
                    b.add_indexed(u, v, t);
                }
            }
            if b.is_empty() {
                return None;
            }
            Some(b.build().expect("non-empty"))
        },
    )
}

/// Field-for-field equality of two timelines (panics with context, which
/// the proptest harness reports with the failing case's inputs).
fn assert_timelines_identical(a: &Timeline, b: &Timeline, what: &str) {
    assert_eq!(a.num_steps(), b.num_steps(), "{what}: num_steps");
    assert_eq!(a.nonempty_steps(), b.nonempty_steps(), "{what}: nonempty_steps");
    assert_eq!(a.distinct_pairs(), b.distinct_pairs(), "{what}: distinct_pairs");
    assert_eq!(a.total_edges(), b.total_edges(), "{what}: total_edges");
    assert_eq!(a.is_exact(), b.is_exact(), "{what}: is_exact");
    for i in 0..a.nonempty_steps() {
        let (x, y) = (a.step(i), b.step(i));
        assert_eq!(x.index, y.index, "{what}: step {i} index");
        assert_eq!(x.src, y.src, "{what}: step {i} src");
        assert_eq!(x.dst, y.dst, "{what}: step {i} dst");
        assert_eq!(x.pair, y.pair, "{what}: step {i} pair ids");
    }
    assert_eq!(a.checksum(), b.checksum(), "{what}: checksum");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(120))]

    /// Random stream × random divisor chain `k_fine = k_c·f2·f1 → k_mid =
    /// k_c·f2 → k_c`: every merge hop (including the composed fine→coarse
    /// hop and merge-of-merge chaining) equals the scratch build field for
    /// field.
    #[test]
    fn merged_timeline_equals_scratch_field_for_field(
        stream in arb_stream(false),
        k_c in 1u64..8,
        f1 in 1u64..7,
        f2 in 1u64..7,
    ) {
        let (k_c, f1, f2) =
            if stream.span() == 0 { (1, 1, 1) } else { (k_c, f1, f2) };
        let (k_mid, k_fine) = (k_c * f2, k_c * f2 * f1);
        let view = EventView::new(&stream);
        let fine = Timeline::aggregated_from_view(&view, k_fine);
        prop_assert!(fine.merge_compatible(k_mid));
        prop_assert!(fine.merge_compatible(k_c));

        let mid = fine.aggregated_by_merge(k_mid);
        assert_timelines_identical(
            &mid,
            &Timeline::aggregated_from_view(&view, k_mid),
            "fine -> mid",
        );
        // direct wide-ratio merge and chained merge-of-merge agree with
        // scratch (and hence with each other)
        let coarse_direct = fine.aggregated_by_merge(k_c);
        let coarse_chained = mid.aggregated_by_merge(k_c);
        let scratch = Timeline::aggregated_from_view(&view, k_c);
        assert_timelines_identical(&coarse_direct, &scratch, "fine -> coarse direct");
        assert_timelines_identical(&coarse_chained, &scratch, "fine -> mid -> coarse");
    }

    /// Directed streams keep edge orientation through merges.
    #[test]
    fn merged_timeline_matches_scratch_directed(
        stream in arb_stream(true),
        k_c in 1u64..10,
        ratio in 1u64..9,
    ) {
        let (k_c, ratio) = if stream.span() == 0 { (1, 1) } else { (k_c, ratio) };
        let view = EventView::new(&stream);
        let fine = Timeline::aggregated_from_view(&view, k_c * ratio);
        assert_timelines_identical(
            &fine.aggregated_by_merge(k_c),
            &Timeline::aggregated_from_view(&view, k_c),
            "directed merge",
        );
    }

    /// The DP level: the engine fed a merged timeline reports the same
    /// trip stream, stats, and distance sums as when fed the scratch
    /// timeline — with delta propagation on and off (the merged timeline's
    /// pair ids drive the delta watermarks, so this is the contract that
    /// keeps sweep reports identical with incremental on/off).
    #[test]
    fn dp_results_match_on_merged_and_scratch_timelines(
        stream in arb_stream(false),
        k_c in 1u64..12,
        ratio in 2u64..8,
    ) {
        let (k_c, ratio) = if stream.span() == 0 { (1, 1) } else { (k_c, ratio) };
        let view = EventView::new(&stream);
        let merged =
            Timeline::aggregated_from_view(&view, k_c * ratio).aggregated_by_merge(k_c);
        let scratch = Timeline::aggregated_from_view(&view, k_c);
        let targets = TargetSet::all(7);
        for no_delta in [false, true] {
            let options = DpOptions {
                collect_distances: true,
                no_delta_propagation: no_delta,
                ..Default::default()
            };
            let mut from_merged = Collect::default();
            let ms = earliest_arrival_dp(&merged, &targets, &mut from_merged, options);
            let mut from_scratch = Collect::default();
            let ss = earliest_arrival_dp(&scratch, &targets, &mut from_scratch, options);
            prop_assert_eq!(&from_merged.0, &from_scratch.0, "no_delta={}", no_delta);
            prop_assert_eq!(ms.trips, ss.trips);
            prop_assert_eq!(ms.traversals, ss.traversals);
            prop_assert_eq!(ms.chain_offers, ss.chain_offers);
            prop_assert_eq!(ms.snap_entries, ss.snap_entries);
            let (md, sd) = (ms.distances.unwrap(), ss.distances.unwrap());
            prop_assert_eq!(md.sum_dtime_steps, sd.sum_dtime_steps);
            prop_assert_eq!(md.sum_dhops, sd.sum_dhops);
            prop_assert_eq!(md.finite_triples, sd.finite_triples);
        }
        // occupancy histograms (what sweep reports are built from) match too
        let hm = occupancy_histogram_on(&merged, &targets);
        let hs = occupancy_histogram_on(&scratch, &targets);
        prop_assert_eq!(hm.total_trips(), hs.total_trips());
        prop_assert_eq!(hm.distinct_rates(), hs.distinct_rates());
        prop_assert_eq!(hm.sorted_rates(), hs.sorted_rates());
    }
}
