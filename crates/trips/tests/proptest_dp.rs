//! Property-based validation of the earliest-arrival engine against the
//! brute-force reference, on random small link streams.

use proptest::prelude::*;
use saturn_linkstream::{Directedness, LinkStreamBuilder};
use saturn_trips::reference::{earliest_arrival_bruteforce, minimal_trips_bruteforce};
use saturn_trips::{earliest_arrival_dp, DpOptions, TargetSet, Timeline, TripSink};

#[derive(Default)]
struct Collect(Vec<(u32, u32, u32, u32, u32)>);

impl TripSink for Collect {
    fn minimal_trip(&mut self, u: u32, v: u32, dep: u32, arr: u32, hops: u32) {
        self.0.push((u, v, dep, arr, hops));
    }
}

/// A random stream over <= 6 nodes and <= 12 events in [0, 30].
fn arb_stream(directed: bool) -> impl Strategy<Value = saturn_linkstream::LinkStream> {
    let d = if directed { Directedness::Directed } else { Directedness::Undirected };
    proptest::collection::vec((0u32..6, 0u32..6, 0i64..31), 1..12).prop_filter_map(
        "needs at least one non-loop event",
        move |events| {
            let mut b = LinkStreamBuilder::indexed(d, 6);
            for (u, v, t) in events {
                if u != v {
                    b.add_indexed(u, v, t);
                }
            }
            if b.is_empty() {
                return None;
            }
            Some(b.build().expect("non-empty"))
        },
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The engine's minimal trips equal the brute-force enumeration of
    /// Definition 5 on the aggregated timeline, for every K.
    #[test]
    fn dp_matches_bruteforce_aggregated(
        stream in arb_stream(false),
        k in 1u64..20,
        directed_seed in any::<bool>(),
    ) {
        let _ = directed_seed;
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let brute = minimal_trips_bruteforce(&timeline, 3_000_000);
        let mut sink = Collect::default();
        earliest_arrival_dp(&timeline, &TargetSet::all(6), &mut sink, DpOptions::default());
        let mut fast = sink.0;
        fast.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// Same property for directed streams on the exact timeline.
    #[test]
    fn dp_matches_bruteforce_exact_directed(stream in arb_stream(true)) {
        let timeline = Timeline::exact(&stream);
        let brute = minimal_trips_bruteforce(&timeline, 3_000_000);
        let mut sink = Collect::default();
        earliest_arrival_dp(&timeline, &TargetSet::all(6), &mut sink, DpOptions::default());
        let mut fast = sink.0;
        fast.sort_unstable();
        prop_assert_eq!(fast, brute);
    }

    /// Minimality: no trip interval of a pair strictly contains another.
    #[test]
    fn trips_are_minimal_and_rates_in_unit_interval(
        stream in arb_stream(false),
        k in 1u64..20,
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let mut sink = Collect::default();
        earliest_arrival_dp(&timeline, &TargetSet::all(6), &mut sink, DpOptions::default());
        let trips = sink.0;
        for &(u, v, dep, arr, hops) in &trips {
            // occupancy in (0, 1] (Remark 2 + Definition 7)
            let dur = arr - dep + 1;
            prop_assert!(hops >= 1 && hops <= dur);
            // no strictly nested trip of the same pair
            for &(u2, v2, d2, a2, _) in &trips {
                if (u, v) == (u2, v2) && (dep, arr) != (d2, a2) {
                    prop_assert!(
                        !(d2 >= dep && a2 <= arr),
                        "trip ({},{}) [{},{}] contains [{},{}]",
                        u, v, dep, arr, d2, a2
                    );
                }
            }
        }
    }

    /// The distance accumulator equals brute-force sums over all departure
    /// steps.
    #[test]
    fn distance_sums_match_bruteforce(
        stream in arb_stream(false),
        k in 1u64..16,
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let stats = earliest_arrival_dp(
            &timeline,
            &TargetSet::all(6),
            &mut saturn_trips::dp::NullSink,
            DpOptions { collect_distances: true, ..Default::default() },
        );
        let sums = stats.distances.unwrap();

        let ea = earliest_arrival_bruteforce(&timeline, 3_000_000);
        let mut dtime = 0i128;
        let mut dhops = 0i128;
        let mut cnt = 0i128;
        for per_step in ea.values() {
            for (t, entry) in per_step.iter().enumerate() {
                if let Some((arr, hops)) = entry {
                    dtime += (*arr as i128) - (t as i128) + 1;
                    dhops += *hops as i128;
                    cnt += 1;
                }
            }
        }
        prop_assert_eq!(sums.finite_triples, cnt);
        prop_assert_eq!(sums.sum_dtime_steps, dtime);
        prop_assert_eq!(sums.sum_dhops, dhops);
    }

    /// Target sampling returns exactly the full-run trips restricted to the
    /// sampled destinations.
    #[test]
    fn sampling_is_exact_restriction(
        stream in arb_stream(true),
        k in 1u64..12,
        targets in proptest::collection::btree_set(0u32..6, 1..4),
    ) {
        let k = if stream.span() == 0 { 1 } else { k };
        let timeline = Timeline::aggregated(&stream, k);
        let nodes: Vec<u32> = targets.into_iter().collect();

        let mut full = Collect::default();
        earliest_arrival_dp(&timeline, &TargetSet::all(6), &mut full, DpOptions::default());
        let mut expected: Vec<_> = full
            .0
            .into_iter()
            .filter(|&(_, v, ..)| nodes.contains(&v))
            .collect();
        expected.sort_unstable();

        let mut sampled = Collect::default();
        earliest_arrival_dp(
            &timeline,
            &TargetSet::from_nodes(6, &nodes),
            &mut sampled,
            DpOptions::default(),
        );
        let mut got = sampled.0;
        got.sort_unstable();
        prop_assert_eq!(got, expected);
    }
}
